//! Per-run simulation statistics.
//!
//! `events_delivered` is the dynamic column of the paper's Table 1
//! ("# total events"): every payload event enqueued at any input port,
//! including the initial events. It is engine-independent — a key
//! correctness invariant checked by the differential tests.

/// Counters collected during one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Payload events delivered to ports (Table 1's "# total events"),
    /// including initial events. Deterministic across engines.
    pub events_delivered: u64,
    /// Payload events processed by nodes. Equals `events_delivered` at
    /// termination (every delivered event is eventually processed).
    pub events_processed: u64,
    /// NULL messages sent (one per edge, per Chandy–Misra termination).
    pub nulls_sent: u64,
    /// Node activations (`RUNNODE` calls that actually ran a node's body).
    pub node_runs: u64,
    /// Tasks / workset items that found nothing to do (redundant wakeups,
    /// failed claims, lock-failure retries).
    pub wasted_activations: u64,
    /// Lock acquisition failures observed (parallel engines only).
    pub lock_failures: u64,
    /// Speculative aborts (Galois engine only).
    pub aborts: u64,
    /// Extra `try_lock_all` attempts spent in the bounded retry loop
    /// beyond the first attempt (parallel engines only).
    pub lock_retries: u64,
    /// Backoff waits taken between lock-retry attempts.
    pub backoff_waits: u64,
    /// Payload events that crossed a shard boundary (sharded engine only).
    pub cut_events_sent: u64,
    /// Cross-shard NULL messages — terminal plus lookahead — sent through
    /// the mailboxes (sharded engine only). Lookahead nulls depend on
    /// thread timing, so this counter is not deterministic.
    pub shard_nulls_sent: u64,
    /// Partition load imbalance: how far (in percent) the heaviest shard
    /// exceeded a perfectly balanced split (sharded engine only). Node
    /// counts of the *initial* partition, i.e. the static estimate even
    /// when rebalancing later moved nodes; `shard_load_imbalance_pct`
    /// holds the observed figure.
    pub max_shard_imbalance_pct: u64,
    /// Epoch barriers that actually migrated nodes (sharded engine with
    /// rebalancing only).
    pub rebalances: u64,
    /// Nodes migrated between shards across all rebalances.
    pub nodes_migrated: u64,
    /// *Observed* per-shard load imbalance over the whole run: how far
    /// (in percent) the busiest shard's processed-event count exceeded a
    /// perfectly even split. This is what rebalancing exists to lower;
    /// compare it against `max_shard_imbalance_pct`'s static estimate.
    pub shard_load_imbalance_pct: u64,
    /// Wire frames sent by the transport (socket fabrics only; zero for
    /// the in-process loopback, which sends no frames).
    pub net_frames_sent: u64,
    /// Encoded bytes in those frames, headers and checksums included.
    pub net_bytes_sent: u64,
    /// Cross-process messages that rode inside batch frames.
    pub net_msgs_batched: u64,
    /// Batch flushes forced by NULL urgency before the size threshold.
    pub net_forced_flushes: u64,
}

impl SimStats {
    /// Merge another run's counters into this one (for aggregating).
    pub fn merge(&mut self, other: &SimStats) {
        self.events_delivered += other.events_delivered;
        self.events_processed += other.events_processed;
        self.nulls_sent += other.nulls_sent;
        self.node_runs += other.node_runs;
        self.wasted_activations += other.wasted_activations;
        self.lock_failures += other.lock_failures;
        self.aborts += other.aborts;
        self.lock_retries += other.lock_retries;
        self.backoff_waits += other.backoff_waits;
        self.cut_events_sent += other.cut_events_sent;
        self.shard_nulls_sent += other.shard_nulls_sent;
        // Imbalance is a property of a partition, not a flow count: keep
        // the worst one seen.
        self.max_shard_imbalance_pct = self.max_shard_imbalance_pct.max(other.max_shard_imbalance_pct);
        self.rebalances += other.rebalances;
        self.nodes_migrated += other.nodes_migrated;
        self.shard_load_imbalance_pct =
            self.shard_load_imbalance_pct.max(other.shard_load_imbalance_pct);
        self.net_frames_sent += other.net_frames_sent;
        self.net_bytes_sent += other.net_bytes_sent;
        self.net_msgs_batched += other.net_msgs_batched;
        self.net_forced_flushes += other.net_forced_flushes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = SimStats {
            events_delivered: 10,
            events_processed: 10,
            nulls_sent: 2,
            node_runs: 4,
            wasted_activations: 1,
            lock_failures: 3,
            aborts: 0,
            lock_retries: 2,
            backoff_waits: 1,
            cut_events_sent: 6,
            shard_nulls_sent: 4,
            max_shard_imbalance_pct: 10,
            rebalances: 1,
            nodes_migrated: 4,
            shard_load_imbalance_pct: 30,
            net_frames_sent: 2,
            net_bytes_sent: 100,
            net_msgs_batched: 8,
            net_forced_flushes: 1,
        };
        let b = SimStats {
            events_delivered: 5,
            cut_events_sent: 2,
            shard_nulls_sent: 3,
            max_shard_imbalance_pct: 25,
            rebalances: 2,
            nodes_migrated: 3,
            shard_load_imbalance_pct: 12,
            net_frames_sent: 1,
            net_bytes_sent: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.events_delivered, 15);
        assert_eq!(a.nulls_sent, 2);
        // Comm counters sum; imbalance takes the worst partition seen.
        assert_eq!(a.cut_events_sent, 8);
        assert_eq!(a.shard_nulls_sent, 7);
        assert_eq!(a.max_shard_imbalance_pct, 25);
        assert_eq!(a.rebalances, 3);
        assert_eq!(a.nodes_migrated, 7);
        assert_eq!(a.shard_load_imbalance_pct, 30);
        assert_eq!(a.net_frames_sent, 3);
        assert_eq!(a.net_bytes_sent, 150);
        assert_eq!(a.net_msgs_batched, 8);
    }

    #[test]
    fn merge_imbalance_keeps_existing_max() {
        let mut a = SimStats {
            max_shard_imbalance_pct: 40,
            ..Default::default()
        };
        a.merge(&SimStats {
            max_shard_imbalance_pct: 15,
            ..Default::default()
        });
        assert_eq!(a.max_shard_imbalance_pct, 40);
    }
}
