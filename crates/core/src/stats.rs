//! Per-run simulation statistics.
//!
//! `events_delivered` is the dynamic column of the paper's Table 1
//! ("# total events"): every payload event enqueued at any input port,
//! including the initial events. It is engine-independent — a key
//! correctness invariant checked by the differential tests.
//!
//! [`SimStats::as_array`]/[`SimStats::from_array`] define the canonical
//! field order once; merging, the distributed engine's wire encoding,
//! and the metrics export all iterate that array instead of repeating
//! the field list.

use std::time::Duration;

/// Counters collected during one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Payload events delivered to ports (Table 1's "# total events"),
    /// including initial events. Deterministic across engines.
    pub events_delivered: u64,
    /// Payload events processed by nodes. Equals `events_delivered` at
    /// termination (every delivered event is eventually processed).
    pub events_processed: u64,
    /// NULL messages sent (one per edge, per Chandy–Misra termination).
    pub nulls_sent: u64,
    /// Node activations (`RUNNODE` calls that actually ran a node's body).
    pub node_runs: u64,
    /// Tasks / workset items that found nothing to do (redundant wakeups,
    /// failed claims, lock-failure retries).
    pub wasted_activations: u64,
    /// Lock acquisition failures observed (parallel engines only).
    pub lock_failures: u64,
    /// Speculative aborts (Galois engine only).
    pub aborts: u64,
    /// Extra `try_lock_all` attempts spent in the bounded retry loop
    /// beyond the first attempt (parallel engines only).
    pub lock_retries: u64,
    /// Backoff waits taken between lock-retry attempts.
    pub backoff_waits: u64,
    /// Payload events that crossed a shard boundary (sharded engine only).
    pub cut_events_sent: u64,
    /// Cross-shard NULL messages — terminal plus lookahead — sent through
    /// the mailboxes (sharded engine only). Lookahead nulls depend on
    /// thread timing, so this counter is not deterministic.
    pub shard_nulls_sent: u64,
    /// Partition load imbalance: how far (in percent) the heaviest shard
    /// exceeded a perfectly balanced split (sharded engine only). Node
    /// counts of the *initial* partition, i.e. the static estimate even
    /// when rebalancing later moved nodes; `shard_load_imbalance_pct`
    /// holds the observed figure.
    pub max_shard_imbalance_pct: u64,
    /// Epoch barriers that actually migrated nodes (sharded engine with
    /// rebalancing only).
    pub rebalances: u64,
    /// Nodes migrated between shards across all rebalances.
    pub nodes_migrated: u64,
    /// *Observed* per-shard load imbalance over the whole run: how far
    /// (in percent) the busiest shard's processed-event count exceeded a
    /// perfectly even split. This is what rebalancing exists to lower;
    /// compare it against `max_shard_imbalance_pct`'s static estimate.
    pub shard_load_imbalance_pct: u64,
    /// Wire frames sent by the transport (socket fabrics only; zero for
    /// the in-process loopback, which sends no frames).
    pub net_frames_sent: u64,
    /// Encoded bytes in those frames, headers and checksums included.
    pub net_bytes_sent: u64,
    /// Cross-process messages that rode inside batch frames.
    pub net_msgs_batched: u64,
    /// Batch flushes forced by NULL urgency before the size threshold.
    pub net_forced_flushes: u64,
}

/// Number of counters in [`SimStats`] (the length of [`SimStats::as_array`]).
pub const NUM_STAT_FIELDS: usize = 19;

/// Snake-case field names in [`SimStats::as_array`] order. Used for
/// metric names and the bench report's JSON keys.
pub const STAT_FIELD_NAMES: [&str; NUM_STAT_FIELDS] = [
    "events_delivered",
    "events_processed",
    "nulls_sent",
    "node_runs",
    "wasted_activations",
    "lock_failures",
    "aborts",
    "lock_retries",
    "backoff_waits",
    "cut_events_sent",
    "shard_nulls_sent",
    "max_shard_imbalance_pct",
    "rebalances",
    "nodes_migrated",
    "shard_load_imbalance_pct",
    "net_frames_sent",
    "net_bytes_sent",
    "net_msgs_batched",
    "net_forced_flushes",
];

/// Array indices of the fields that are partition *properties* rather
/// than flow counts: merging keeps the worst value seen instead of
/// summing.
const MAX_MERGED_FIELDS: [usize; 2] = [11, 14];

impl SimStats {
    /// The counters in [`STAT_FIELD_NAMES`] order.
    pub fn as_array(&self) -> [u64; NUM_STAT_FIELDS] {
        [
            self.events_delivered,
            self.events_processed,
            self.nulls_sent,
            self.node_runs,
            self.wasted_activations,
            self.lock_failures,
            self.aborts,
            self.lock_retries,
            self.backoff_waits,
            self.cut_events_sent,
            self.shard_nulls_sent,
            self.max_shard_imbalance_pct,
            self.rebalances,
            self.nodes_migrated,
            self.shard_load_imbalance_pct,
            self.net_frames_sent,
            self.net_bytes_sent,
            self.net_msgs_batched,
            self.net_forced_flushes,
        ]
    }

    /// Inverse of [`SimStats::as_array`].
    pub fn from_array(a: [u64; NUM_STAT_FIELDS]) -> SimStats {
        SimStats {
            events_delivered: a[0],
            events_processed: a[1],
            nulls_sent: a[2],
            node_runs: a[3],
            wasted_activations: a[4],
            lock_failures: a[5],
            aborts: a[6],
            lock_retries: a[7],
            backoff_waits: a[8],
            cut_events_sent: a[9],
            shard_nulls_sent: a[10],
            max_shard_imbalance_pct: a[11],
            rebalances: a[12],
            nodes_migrated: a[13],
            shard_load_imbalance_pct: a[14],
            net_frames_sent: a[15],
            net_bytes_sent: a[16],
            net_msgs_batched: a[17],
            net_forced_flushes: a[18],
        }
    }

    /// Merge another run's counters into this one (for aggregating).
    /// Flow counts sum; the imbalance percentages keep the worst seen.
    pub fn merge(&mut self, other: &SimStats) {
        let mut acc = self.as_array();
        for (i, (dst, src)) in acc.iter_mut().zip(other.as_array()).enumerate() {
            if MAX_MERGED_FIELDS.contains(&i) {
                *dst = (*dst).max(src);
            } else {
                *dst += src;
            }
        }
        *self = SimStats::from_array(acc);
    }

    /// Export every counter into `recorder`'s metric registry, labelled
    /// with the engine name, plus the run's wall time as a gauge. Called
    /// once per run from each engine's epilogue — zero hot-path cost.
    pub fn publish(&self, recorder: &obs::Recorder, engine: &str, wall: Duration) {
        self.publish_ranked(recorder, engine, None, wall);
    }

    /// Like [`SimStats::publish`], but each metric also carries a `rank`
    /// label — the uniform identity scheme for distributed runs, where
    /// one endpoint exposes several processes' metrics side by side.
    pub fn publish_ranked(
        &self,
        recorder: &obs::Recorder,
        engine: &str,
        rank: Option<u64>,
        wall: Duration,
    ) {
        if !recorder.is_enabled() {
            return;
        }
        let rank_str = rank.map(|r| r.to_string());
        let mut labels: Vec<(&str, &str)> = vec![("engine", engine)];
        if let Some(r) = rank_str.as_deref() {
            labels.push(("rank", r));
        }
        for (name, value) in STAT_FIELD_NAMES.iter().zip(self.as_array()) {
            if name.ends_with("_pct") {
                recorder.gauge(&format!("sim_{name}"), &labels).set(value);
            } else {
                recorder
                    .counter(&format!("sim_{name}_total"), &labels)
                    .add(value);
            }
        }
        recorder
            .gauge("sim_run_wall_ns", &labels)
            .set(wall.as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = SimStats {
            events_delivered: 10,
            events_processed: 10,
            nulls_sent: 2,
            node_runs: 4,
            wasted_activations: 1,
            lock_failures: 3,
            aborts: 0,
            lock_retries: 2,
            backoff_waits: 1,
            cut_events_sent: 6,
            shard_nulls_sent: 4,
            max_shard_imbalance_pct: 10,
            rebalances: 1,
            nodes_migrated: 4,
            shard_load_imbalance_pct: 30,
            net_frames_sent: 2,
            net_bytes_sent: 100,
            net_msgs_batched: 8,
            net_forced_flushes: 1,
        };
        let b = SimStats {
            events_delivered: 5,
            cut_events_sent: 2,
            shard_nulls_sent: 3,
            max_shard_imbalance_pct: 25,
            rebalances: 2,
            nodes_migrated: 3,
            shard_load_imbalance_pct: 12,
            net_frames_sent: 1,
            net_bytes_sent: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.events_delivered, 15);
        assert_eq!(a.nulls_sent, 2);
        // Comm counters sum; imbalance takes the worst partition seen.
        assert_eq!(a.cut_events_sent, 8);
        assert_eq!(a.shard_nulls_sent, 7);
        assert_eq!(a.max_shard_imbalance_pct, 25);
        assert_eq!(a.rebalances, 3);
        assert_eq!(a.nodes_migrated, 7);
        assert_eq!(a.shard_load_imbalance_pct, 30);
        assert_eq!(a.net_frames_sent, 3);
        assert_eq!(a.net_bytes_sent, 150);
        assert_eq!(a.net_msgs_batched, 8);
    }

    #[test]
    fn merge_imbalance_keeps_existing_max() {
        let mut a = SimStats {
            max_shard_imbalance_pct: 40,
            ..Default::default()
        };
        a.merge(&SimStats {
            max_shard_imbalance_pct: 15,
            ..Default::default()
        });
        assert_eq!(a.max_shard_imbalance_pct, 40);
    }

    #[test]
    fn array_round_trips_every_field() {
        // Distinct values per slot so a swapped pair can't cancel out.
        let a: [u64; NUM_STAT_FIELDS] = std::array::from_fn(|i| (i as u64 + 1) * 7);
        let stats = SimStats::from_array(a);
        assert_eq!(stats.as_array(), a);
        assert_eq!(stats.events_delivered, 7);
        assert_eq!(stats.net_forced_flushes, 19 * 7);
        // The max-merged indices really are the two percentage fields.
        for &ix in &MAX_MERGED_FIELDS {
            assert!(STAT_FIELD_NAMES[ix].ends_with("_pct"), "{}", STAT_FIELD_NAMES[ix]);
        }
    }

    #[test]
    fn publish_exports_counters_and_wall_gauge() {
        let rec = obs::Recorder::new(&obs::ObsConfig::enabled());
        let stats = SimStats {
            events_delivered: 12,
            shard_load_imbalance_pct: 40,
            ..Default::default()
        };
        stats.publish(&rec, "test-engine", Duration::from_nanos(500));
        let labels = [("engine", "test-engine")];
        assert_eq!(rec.counter("sim_events_delivered_total", &labels).get(), 12);
        assert_eq!(rec.gauge("sim_shard_load_imbalance_pct", &labels).get(), 40);
        assert_eq!(rec.gauge("sim_run_wall_ns", &labels).get(), 500);
        // Publishing on a disabled recorder is a no-op branch.
        stats.publish(&obs::Recorder::off(), "x", Duration::ZERO);
    }
}
