//! VCD (Value Change Dump, IEEE 1364) export of simulation waveforms.
//!
//! Lets the output of any engine be inspected with standard waveform
//! viewers (GTKWave etc.). Only the settled view is emitted — one value
//! per (signal, timestamp) — which is the deterministic observable all
//! engines agree on.

use std::fmt::Write as _;

use circuit::Circuit;

use crate::engine::SimOutput;
use crate::event::Timestamp;

/// VCD identifier characters (printable ASCII, per the spec).
const ID_CHARS: &[u8] = b"!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";

/// Short VCD identifier for signal `n`.
fn ident(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(ID_CHARS[n % ID_CHARS.len()] as char);
        n /= ID_CHARS.len();
        if n == 0 {
            break;
        }
    }
    s
}

/// Render the output waveforms of a run as a VCD document.
///
/// Signals are the circuit outputs, named after their output nodes. The
/// initial value of every signal is `x` (unknown) until its first event.
pub fn to_vcd(circuit: &Circuit, output: &SimOutput, module: &str) -> String {
    let mut vcd = String::new();
    writeln!(vcd, "$date reproduced-simulation $end").unwrap();
    writeln!(vcd, "$version hj-des DES engines $end").unwrap();
    writeln!(vcd, "$timescale 1ns $end").unwrap();
    writeln!(vcd, "$scope module {module} $end").unwrap();
    for (ix, &o) in circuit.outputs().iter().enumerate() {
        let name = circuit
            .node(o)
            .name
            .clone()
            .unwrap_or_else(|| format!("out{ix}"));
        writeln!(vcd, "$var wire 1 {} {} $end", ident(ix), name).unwrap();
    }
    writeln!(vcd, "$upscope $end").unwrap();
    writeln!(vcd, "$enddefinitions $end").unwrap();

    // Initial values: unknown.
    writeln!(vcd, "$dumpvars").unwrap();
    for ix in 0..circuit.outputs().len() {
        writeln!(vcd, "x{}", ident(ix)).unwrap();
    }
    writeln!(vcd, "$end").unwrap();

    // Merge the settled waveforms into one time-ordered change list.
    let settled: Vec<Vec<(Timestamp, circuit::Logic)>> =
        output.waveforms.iter().map(|w| w.settled()).collect();
    let mut cursors = vec![0usize; settled.len()];
    loop {
        let next_t = settled
            .iter()
            .zip(&cursors)
            .filter_map(|(wf, &c)| wf.get(c).map(|&(t, _)| t))
            .min();
        let Some(t) = next_t else { break };
        writeln!(vcd, "#{t}").unwrap();
        for (ix, (wf, cursor)) in settled.iter().zip(cursors.iter_mut()).enumerate() {
            while let Some(&(wt, v)) = wf.get(*cursor) {
                if wt != t {
                    break;
                }
                writeln!(vcd, "{}{}", v.as_bit(), ident(ix)).unwrap();
                *cursor += 1;
            }
        }
    }
    vcd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seq::SeqWorksetEngine;
    use crate::engine::Engine;
    use circuit::generators::{c17, inverter_chain};
    use circuit::{DelayModel, Logic, Stimulus, TimedValue};

    #[test]
    fn ident_is_unique_and_printable() {
        let ids: Vec<String> = (0..500).map(ident).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 500);
        assert!(ids.iter().all(|i| i.chars().all(|c| c.is_ascii_graphic())));
    }

    #[test]
    fn vcd_contains_declarations_and_changes() {
        let c = inverter_chain(1);
        let s = Stimulus::from_events(vec![vec![
            TimedValue { time: 1, value: Logic::One },
            TimedValue { time: 10, value: Logic::Zero },
        ]]);
        let out = SeqWorksetEngine::new().run(&c, &s, &DelayModel::standard());
        let vcd = to_vcd(&c, &out, "chain");
        assert!(vcd.contains("$scope module chain $end"));
        assert!(vcd.contains("$var wire 1 ! y $end"));
        // Inverter delay 1: edges at t=2 (0) and t=11 (1).
        assert!(vcd.contains("#2\n0!"), "vcd was:\n{vcd}");
        assert!(vcd.contains("#11\n1!"));
    }

    #[test]
    fn vcd_merges_simultaneous_changes() {
        let c = c17();
        let s = Stimulus::single_vector(&[Logic::One; 5]);
        let out = SeqWorksetEngine::new().run(&c, &s, &DelayModel::standard());
        let vcd = to_vcd(&c, &out, "c17");
        // Two outputs declared.
        assert_eq!(vcd.matches("$var wire 1 ").count(), 2);
        // Every timestamp line appears at most once.
        let stamps: Vec<&str> = vcd.lines().filter(|l| l.starts_with('#')).collect();
        let mut dedup = stamps.clone();
        dedup.dedup();
        assert_eq!(stamps, dedup);
    }

    #[test]
    fn empty_run_produces_header_only() {
        let c = c17();
        let out = SeqWorksetEngine::new().run(
            &c,
            &Stimulus::empty(c.inputs().len()),
            &DelayModel::standard(),
        );
        let vcd = to_vcd(&c, &out, "idle");
        assert!(vcd.contains("$enddefinitions"));
        assert!(!vcd.lines().any(|l| l.starts_with('#')));
    }
}
