//! Available-parallelism profiling — Figure 1 of the paper.
//!
//! The Galois project measured, per computation step, how many active
//! nodes *could* run in parallel. We reproduce that with a
//! level-synchronous greedy schedule: round `r` runs every node that is
//! active at the start of the round; the number of such nodes is the
//! available parallelism of step `r`. For the tree multiplier the curve
//! starts low (few input ports), swells in the middle (large fanout), and
//! tapers at the outputs — the shape of Figure 1.

use circuit::{Circuit, DelayModel, NodeId, Stimulus};

use crate::engine::seq::Sim;

/// The available-parallelism curve of one simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelismProfile {
    /// Number of simultaneously runnable nodes at each computation step.
    pub active_per_round: Vec<usize>,
    /// Total payload events delivered over the run.
    pub total_events: u64,
}

impl ParallelismProfile {
    /// The largest parallelism observed.
    pub fn peak(&self) -> usize {
        self.active_per_round.iter().copied().max().unwrap_or(0)
    }

    /// Arithmetic mean parallelism over the run.
    pub fn mean(&self) -> f64 {
        if self.active_per_round.is_empty() {
            return 0.0;
        }
        let sum: usize = self.active_per_round.iter().sum();
        sum as f64 / self.active_per_round.len() as f64
    }

    /// Number of rounds (the span of the greedy schedule).
    pub fn rounds(&self) -> usize {
        self.active_per_round.len()
    }
}

/// Measure the available parallelism of simulating `circuit` under
/// `stimulus` (Figure 1's series).
pub fn available_parallelism(
    circuit: &Circuit,
    stimulus: &Stimulus,
    delays: &DelayModel,
) -> ParallelismProfile {
    let mut sim = Sim::new(circuit, stimulus, delays);
    let mut current: Vec<NodeId> = sim.initially_active();
    let mut queued = vec![false; circuit.num_nodes()];
    for &id in &current {
        queued[id.index()] = true;
    }
    let mut profile = ParallelismProfile {
        active_per_round: Vec::new(),
        total_events: 0,
    };
    while !current.is_empty() {
        profile.active_per_round.push(current.len());
        let mut next: Vec<NodeId> = Vec::new();
        for &id in &current {
            queued[id.index()] = false;
        }
        for &id in &current {
            sim.run_node(id);
        }
        for &id in &current {
            for m in sim.candidates(id) {
                if !queued[m.index()] && sim.node_is_active(m) {
                    queued[m.index()] = true;
                    next.push(m);
                }
            }
        }
        current = next;
    }
    profile.total_events = sim.stats().events_delivered;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::generators::{fanout_tree, inverter_chain, wallace_multiplier};
    use circuit::{DelayModel, Stimulus};

    #[test]
    fn chain_has_parallelism_one() {
        let c = inverter_chain(10);
        let s = Stimulus::random_vectors(&c, 1, 1, 0);
        let p = available_parallelism(&c, &s, &DelayModel::standard());
        assert_eq!(p.peak(), 1);
        // input + 10 inverters + output = 12 rounds.
        assert_eq!(p.rounds(), 12);
    }

    #[test]
    fn fanout_tree_parallelism_doubles_per_level() {
        let c = fanout_tree(4, 2);
        let s = Stimulus::random_vectors(&c, 1, 1, 0);
        let p = available_parallelism(&c, &s, &DelayModel::standard());
        // Rounds: input, then 2, 4, 8, 16 buffers, then 16 outputs.
        assert_eq!(p.active_per_round, vec![1, 2, 4, 8, 16, 16]);
        assert_eq!(p.peak(), 16);
    }

    #[test]
    fn multiplier_profile_has_figure_1_shape() {
        // Low at the ports, high in the middle (paper §2.2 / Figure 1).
        let c = wallace_multiplier(8);
        let s = Stimulus::random_vectors(&c, 4, 7, 5);
        let p = available_parallelism(&c, &s, &DelayModel::standard());
        let first = p.active_per_round[0];
        let last = *p.active_per_round.last().unwrap();
        assert!(p.peak() > 4 * first.min(last).max(1), "peak {} vs ends {first}/{last}", p.peak());
        // The peak is strictly inside the run, not at either end.
        let peak_ix = p
            .active_per_round
            .iter()
            .position(|&x| x == p.peak())
            .unwrap();
        assert!(peak_ix > 0 && peak_ix < p.rounds() - 1);
    }

    #[test]
    fn mean_and_empty_profile() {
        let p = ParallelismProfile {
            active_per_round: vec![1, 3, 2],
            total_events: 0,
        };
        assert!((p.mean() - 2.0).abs() < 1e-12);
        let empty = ParallelismProfile {
            active_per_round: vec![],
            total_events: 0,
        };
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.peak(), 0);
    }
}
