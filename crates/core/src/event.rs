//! Events and timestamps (paper §1, §4.1).
//!
//! Every electric signal is an event carrying a timestamp and a logic
//! value; NULL messages (Chandy–Misra termination) are modelled as the
//! reserved timestamp [`NULL_TS`] and never enter event queues — they only
//! advance the receiving port's "last received" clock to infinity.

use circuit::Logic;

// Canonical definitions live in `circuit::time` (shared with `sim-shard`
// and `sim-net`, whose messages carry the same clocks across threads and
// sockets); re-exported here to keep the historical `des::event` paths.
pub use circuit::{Timestamp, NULL_TS};

/// A signal event: the value arrives (and is to be processed) at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    pub time: Timestamp,
    pub value: Logic,
}

impl Event {
    /// Construct an event; `time` must not be the NULL sentinel.
    #[inline]
    pub fn new(time: Timestamp, value: Logic) -> Self {
        debug_assert!(time != NULL_TS, "NULL_TS is reserved for NULL messages");
        Event { time, value }
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.value, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ordering_is_time_major() {
        let a = Event::new(1, Logic::One);
        let b = Event::new(2, Logic::Zero);
        assert!(a < b);
    }

    #[test]
    fn display_format() {
        assert_eq!(Event::new(7, Logic::One).to_string(), "1@7");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "reserved")]
    fn null_ts_rejected_in_debug() {
        let _ = Event::new(NULL_TS, Logic::Zero);
    }
}
