//! Events and timestamps (paper §1, §4.1).
//!
//! Every electric signal is an event carrying a timestamp and a logic
//! value; NULL messages (Chandy–Misra termination) are modelled as the
//! reserved timestamp [`NULL_TS`] and never enter event queues — they only
//! advance the receiving port's "last received" clock to infinity.
//!
//! The event is generic over its payload so the same conservative
//! machinery (per-port FIFO queues, local clocks, NULL promises) carries
//! user-defined model payloads in `sim-model` as well as circuit logic
//! values. `V` defaults to [`Logic`], so all circuit-engine code keeps
//! reading `Event` unchanged.

use circuit::Logic;

// Canonical definitions live in `circuit::time` (shared with `sim-shard`
// and `sim-net`, whose messages carry the same clocks across threads and
// sockets); re-exported here to keep the historical `des::event` paths.
pub use circuit::{Timestamp, NULL_TS};

/// A signal event: the value arrives (and is to be processed) at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event<V = Logic> {
    pub time: Timestamp,
    pub value: V,
}

impl<V> Event<V> {
    /// Construct an event; `time` must not be the NULL sentinel.
    #[inline]
    pub fn new(time: Timestamp, value: V) -> Self {
        debug_assert!(time != NULL_TS, "NULL_TS is reserved for NULL messages");
        Event { time, value }
    }
}

impl<V: std::fmt::Display> std::fmt::Display for Event<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.value, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ordering_is_time_major() {
        let a = Event::new(1, Logic::One);
        let b = Event::new(2, Logic::Zero);
        assert!(a < b);
    }

    #[test]
    fn display_format() {
        assert_eq!(Event::new(7, Logic::One).to_string(), "1@7");
    }

    #[test]
    fn generic_payloads_carry_through() {
        let e: Event<u64> = Event::new(3, 0xDEAD);
        assert_eq!(e.value, 0xDEAD);
        assert_eq!(e.to_string(), "57005@3");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "reserved")]
    fn null_ts_rejected_in_debug() {
        let _ = Event::new(NULL_TS, Logic::Zero);
    }
}
