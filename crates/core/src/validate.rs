//! Cross-engine validation on the deterministic observables.
//!
//! Equal-timestamp events on different ports may be processed in either
//! order (paper §4.1), so raw waveforms can differ between legal runs.
//! What *is* deterministic (and therefore comparable):
//!
//! 1. the total payload event count ("# total events", Table 1) — every
//!    processed event emits exactly one event per fanout edge, regardless
//!    of value;
//! 2. the settled waveform at every output (last value per timestamp) —
//!    by induction, the last value per timestamp on every edge is
//!    independent of tie order;
//! 3. the final value of every node;
//! 4. conservation: every delivered event is eventually processed.
//!
//! Additionally, the final values must agree with the zero-delay
//! functional oracle applied to the stimulus' final vector.

use circuit::{evaluate, Circuit, Logic, Stimulus};

use crate::engine::SimOutput;
use crate::event::Timestamp;

/// The deterministic observables extracted from one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observables {
    pub total_events: u64,
    pub settled_waveforms: Vec<Vec<(Timestamp, Logic)>>,
    pub node_values: Vec<Logic>,
}

/// Extract the deterministic observables from a run.
pub fn observables(output: &SimOutput) -> Observables {
    Observables {
        total_events: output.stats.events_delivered,
        settled_waveforms: output.waveforms.iter().map(|w| w.settled()).collect(),
        node_values: output.node_values.clone(),
    }
}

/// A mismatch between two runs (or a run and the oracle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mismatch {
    TotalEvents { left: u64, right: u64 },
    NodeValues,
    SettledWaveform { output_ix: usize },
    Unprocessed { delivered: u64, processed: u64 },
    OracleFinalValue { output_ix: usize },
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mismatch::TotalEvents { left, right } => {
                write!(f, "total event counts differ: {left} vs {right}")
            }
            Mismatch::NodeValues => write!(f, "final node values differ"),
            Mismatch::SettledWaveform { output_ix } => {
                write!(f, "settled waveform differs at output {output_ix}")
            }
            Mismatch::Unprocessed { delivered, processed } => {
                write!(f, "{delivered} delivered but only {processed} processed")
            }
            Mismatch::OracleFinalValue { output_ix } => {
                write!(f, "final value at output {output_ix} contradicts the functional oracle")
            }
        }
    }
}

/// Check the internal conservation law of a single run.
pub fn check_conservation(output: &SimOutput) -> Result<(), Mismatch> {
    if output.stats.events_delivered != output.stats.events_processed {
        return Err(Mismatch::Unprocessed {
            delivered: output.stats.events_delivered,
            processed: output.stats.events_processed,
        });
    }
    Ok(())
}

/// Compare two runs on the deterministic observables.
pub fn check_equivalent(left: &SimOutput, right: &SimOutput) -> Result<(), Mismatch> {
    if left.stats.events_delivered != right.stats.events_delivered {
        return Err(Mismatch::TotalEvents {
            left: left.stats.events_delivered,
            right: right.stats.events_delivered,
        });
    }
    if left.node_values != right.node_values {
        return Err(Mismatch::NodeValues);
    }
    for (ix, (l, r)) in left.waveforms.iter().zip(&right.waveforms).enumerate() {
        if l.settled() != r.settled() {
            return Err(Mismatch::SettledWaveform { output_ix: ix });
        }
    }
    Ok(())
}

/// The settled state the DES must reach, derived analytically from the
/// circuit and stimulus — including partial-drive semantics.
///
/// Unlike the plain zero-delay oracle ([`evaluate`]), this accounts for
/// nodes that never fire: a gate emits only if at least one of its
/// drivers ever emitted, and a latch port whose driver never emitted
/// holds its reset value ([`Logic::Zero`]) regardless of what the
/// driver's combinational value *would* be.
pub fn des_settled_oracle(circuit: &Circuit, stimulus: &Stimulus) -> Vec<Logic> {
    use circuit::NodeKind;
    let n = circuit.num_nodes();
    let mut emitted = vec![false; n];
    let mut value = vec![Logic::Zero; n];
    for (ix, &input) in circuit.inputs().iter().enumerate() {
        let events = stimulus.input_events(ix);
        emitted[input.index()] = !events.is_empty();
        if let Some(last) = events.last() {
            value[input.index()] = last.value;
        }
    }
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        if node.fanin.is_empty() {
            continue;
        }
        let mut latch = [Logic::Zero; 2];
        let mut any = false;
        for (p, &src) in node.fanin.iter().enumerate() {
            if emitted[src.index()] {
                latch[p] = value[src.index()];
                any = true;
            }
        }
        emitted[id.index()] = any;
        value[id.index()] = match node.kind {
            NodeKind::Input => unreachable!("inputs have no fanin"),
            NodeKind::Output => latch[0],
            NodeKind::Gate(kind) => kind.eval(&latch[..kind.arity()]),
        };
    }
    value
}

/// Check a run's final state against the analytic settled oracle: every
/// node's final value, and — when all inputs are driven — the plain
/// zero-delay functional evaluation as an independent cross-check.
pub fn check_against_oracle(
    circuit: &Circuit,
    stimulus: &Stimulus,
    output: &SimOutput,
) -> Result<(), Mismatch> {
    let settled = des_settled_oracle(circuit, stimulus);
    if output.node_values != settled {
        return Err(Mismatch::NodeValues);
    }
    let fully_driven = (0..stimulus.num_inputs()).all(|i| !stimulus.input_events(i).is_empty());
    if fully_driven {
        let oracle = evaluate(circuit, &stimulus.final_values());
        for (ix, &o) in circuit.outputs().iter().enumerate() {
            let Some(simulated) = output.waveforms[ix].final_value() else {
                continue;
            };
            if simulated != oracle.value(o) {
                return Err(Mismatch::OracleFinalValue { output_ix: ix });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seq::SeqWorksetEngine;
    use crate::engine::seq_heap::SeqHeapEngine;
    use crate::engine::Engine;
    use circuit::generators::c17;
    use circuit::DelayModel;

    #[test]
    fn seq_engines_are_equivalent() {
        let c = c17();
        let s = Stimulus::random_vectors(&c, 12, 2, 99);
        let d = DelayModel::standard();
        let a = SeqWorksetEngine::new().run(&c, &s, &d);
        let b = SeqHeapEngine::new().run(&c, &s, &d);
        check_conservation(&a).unwrap();
        check_conservation(&b).unwrap();
        check_equivalent(&a, &b).unwrap();
        check_against_oracle(&c, &s, &a).unwrap();
        assert_eq!(observables(&a), observables(&b));
    }

    #[test]
    fn mismatch_detects_different_stimuli() {
        let c = c17();
        let d = DelayModel::standard();
        let a = SeqWorksetEngine::new().run(&c, &Stimulus::random_vectors(&c, 10, 2, 1), &d);
        let b = SeqWorksetEngine::new().run(&c, &Stimulus::random_vectors(&c, 11, 2, 1), &d);
        assert!(check_equivalent(&a, &b).is_err());
    }

    #[test]
    fn mismatch_messages_are_informative() {
        let m = Mismatch::TotalEvents { left: 1, right: 2 };
        assert!(m.to_string().contains("1 vs 2"));
        assert!(Mismatch::NodeValues.to_string().contains("node values"));
    }
}
