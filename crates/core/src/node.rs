//! Per-node Chandy–Misra state shared by the queue-based engines.
//!
//! Per paper §4.1/§4.5.1: each node keeps one FIFO deque **per input
//! port** (events on one port arrive in nondecreasing timestamp order, so
//! a plain deque suffices — this is the ArrayDeque-vs-PriorityQueue
//! optimization), a per-port "last received" clock, and latched input
//! values. The node's local clock is the minimum of the per-port clocks;
//! queued events no later than the clock are *ready*.
//!
//! [`PortQueue`] and the clock/drain helpers are generic over the event
//! payload (defaulting to [`Logic`]) so `sim-model` components reuse the
//! exact same FIFO-plus-clock discipline for opaque user payloads.

use std::collections::VecDeque;

use circuit::{Logic, PortIx};

use crate::event::{Event, Timestamp, NULL_TS};

/// One input port: its FIFO event deque and receive clock.
#[derive(Debug, Clone)]
pub struct PortQueue<V = Logic> {
    /// Pending events, in arrival (= nondecreasing timestamp) order.
    pub deque: VecDeque<Event<V>>,
    /// Timestamp of the last message received on this port; [`NULL_TS`]
    /// once the NULL message arrived.
    pub last_ts: Timestamp,
}

impl<V> PortQueue<V> {
    /// A fresh port: nothing received yet.
    pub fn new() -> Self {
        PortQueue {
            deque: VecDeque::new(),
            last_ts: 0,
        }
    }

    /// Deliver a payload event (must not regress this port's clock).
    #[inline]
    pub fn push(&mut self, event: Event<V>) {
        debug_assert!(
            event.time >= self.last_ts,
            "per-port arrivals must be nondecreasing ({} < {})",
            event.time,
            self.last_ts
        );
        debug_assert!(self.last_ts != NULL_TS, "event after NULL message");
        self.last_ts = event.time;
        self.deque.push_back(event);
    }

    /// Deliver the NULL message: no more events will ever arrive here.
    #[inline]
    pub fn push_null(&mut self) {
        debug_assert!(self.last_ts != NULL_TS, "duplicate NULL message");
        self.last_ts = NULL_TS;
    }

    /// Timestamp at the head of the deque ([`NULL_TS`] when empty).
    #[inline]
    pub fn head_ts(&self) -> Timestamp {
        self.deque.front().map_or(NULL_TS, |e| e.time)
    }

    /// Advance this port's clock to `ts` without delivering an event — a
    /// *lookahead NULL* from the sharded engine's cross-shard protocol:
    /// the sender promises no event earlier than `ts` will arrive here.
    /// Stale promises (`ts` at or behind the clock) and promises after
    /// the terminal NULL are ignored; a terminal NULL itself must use
    /// [`PortQueue::push_null`].
    #[inline]
    pub fn advance_clock(&mut self, ts: Timestamp) {
        debug_assert!(ts != NULL_TS, "terminal NULL must use push_null");
        if self.last_ts != NULL_TS && ts > self.last_ts {
            self.last_ts = ts;
        }
    }
}

impl<V> Default for PortQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// The local clock: minimum "last received" over all ports ([`NULL_TS`]
/// for nodes without input ports, i.e. circuit inputs).
#[inline]
pub fn local_clock<V>(ports: &[PortQueue<V>]) -> Timestamp {
    ports.iter().map(|p| p.last_ts).min().unwrap_or(NULL_TS)
}

/// Pop all ready events (timestamp ≤ `clock`) from the per-port deques
/// into `temp`, merged in (timestamp, port) order — the paper's
/// "temporary queue" of §4.5.1. Returns the number of events moved.
pub fn drain_ready<V>(
    ports: &mut [PortQueue<V>],
    clock: Timestamp,
    temp: &mut Vec<(PortIx, Event<V>)>,
) -> usize {
    let before = temp.len();
    loop {
        // Find the port with the smallest head timestamp (ties: lowest
        // port index, keeping the merge deterministic for distinct ports).
        let mut best: Option<(usize, Timestamp)> = None;
        for (i, port) in ports.iter().enumerate() {
            let h = port.head_ts();
            if h != NULL_TS && h <= clock && best.is_none_or(|(_, bh)| h < bh) {
                best = Some((i, h));
            }
        }
        match best {
            Some((i, _)) => {
                let e = ports[i].deque.pop_front().expect("head exists");
                temp.push((i as PortIx, e));
            }
            None => break,
        }
    }
    temp.len() - before
}

/// True when the node is *active*: it has ready events, or it has drained
/// completely after receiving NULL on every port and still owes its own
/// NULL message downstream (`null_sent == false`).
#[inline]
pub fn is_active<V>(ports: &[PortQueue<V>], null_sent: bool) -> bool {
    let clock = local_clock(ports);
    let min_head = ports.iter().map(|p| p.head_ts()).min().unwrap_or(NULL_TS);
    if min_head != NULL_TS && min_head <= clock {
        return true;
    }
    clock == NULL_TS && min_head == NULL_TS && !null_sent
}

/// Latched input values of a gate (ports default to logic zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latch(pub [Logic; 2]);

impl Latch {
    pub fn new() -> Self {
        Latch([Logic::Zero; 2])
    }

    #[inline]
    pub fn set(&mut self, port: PortIx, value: Logic) {
        self.0[port as usize] = value;
    }

    #[inline]
    pub fn values(&self, arity: usize) -> &[Logic] {
        &self.0[..arity]
    }
}

impl Default for Latch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Timestamp) -> Event {
        Event::new(t, Logic::One)
    }

    #[test]
    fn push_advances_clock() {
        let mut p = PortQueue::new();
        assert_eq!(p.last_ts, 0);
        p.push(ev(5));
        assert_eq!(p.last_ts, 5);
        assert_eq!(p.head_ts(), 5);
        p.push(ev(5)); // equal timestamps allowed
        p.push(ev(9));
        assert_eq!(p.last_ts, 9);
    }

    #[test]
    fn null_closes_port() {
        let mut p = PortQueue::new();
        p.push(ev(3));
        p.push_null();
        assert_eq!(p.last_ts, NULL_TS);
        assert_eq!(p.head_ts(), 3); // queued event still pending
    }

    #[test]
    fn clock_is_min_over_ports() {
        let mut a = PortQueue::new();
        let mut b = PortQueue::new();
        a.push(ev(10));
        b.push(ev(4));
        assert_eq!(local_clock(&[a.clone(), b.clone()]), 4);
        b.push_null();
        assert_eq!(local_clock(&[a, b]), 10);
    }

    #[test]
    fn drain_ready_merges_by_time_then_port() {
        let mut ports = vec![PortQueue::new(), PortQueue::new()];
        ports[0].push(ev(2));
        ports[0].push(ev(6));
        ports[1].push(ev(2));
        ports[1].push(ev(4));
        // clock 5: events at 2 (port 0 first), 2, 4 are ready; 6 is not.
        let mut temp = Vec::new();
        let n = drain_ready(&mut ports, 5, &mut temp);
        assert_eq!(n, 3);
        let order: Vec<(PortIx, Timestamp)> = temp.iter().map(|(p, e)| (*p, e.time)).collect();
        assert_eq!(order, vec![(0, 2), (1, 2), (1, 4)]);
        assert_eq!(ports[0].deque.len(), 1);
    }

    #[test]
    fn drain_respects_clock_boundary_inclusive() {
        let mut ports = vec![PortQueue::new()];
        ports[0].push(ev(5));
        let mut temp = Vec::new();
        assert_eq!(drain_ready(&mut ports, 4, &mut temp), 0);
        assert_eq!(drain_ready(&mut ports, 5, &mut temp), 1);
    }

    #[test]
    fn activity_rules() {
        // Ready event → active.
        let mut ports = vec![PortQueue::new(), PortQueue::new()];
        ports[0].push(ev(3));
        ports[1].push(ev(3));
        assert!(is_active(&ports, false));
        // Pending but not ready (other port's clock behind) → inactive.
        let mut ports = vec![PortQueue::new(), PortQueue::new()];
        ports[0].push(ev(3));
        assert!(!is_active(&ports, false));
        // Fully drained after NULLs, null not yet forwarded → active.
        let mut ports = vec![PortQueue::<Logic>::new()];
        ports[0].push_null();
        assert!(is_active(&ports, false));
        assert!(!is_active(&ports, true));
    }

    #[test]
    fn advance_clock_is_monotone_and_respects_null() {
        let mut p = PortQueue::<Logic>::new();
        p.advance_clock(5);
        assert_eq!(p.last_ts, 5);
        p.advance_clock(3); // stale promise: ignored
        assert_eq!(p.last_ts, 5);
        p.advance_clock(9);
        assert_eq!(p.last_ts, 9);
        p.push_null();
        p.advance_clock(100); // port closed: ignored
        assert_eq!(p.last_ts, NULL_TS);
    }

    #[test]
    fn advance_clock_then_push_at_promise_time() {
        // A promise of t allows a later event at exactly t.
        let mut p = PortQueue::new();
        p.advance_clock(7);
        p.push(ev(7));
        assert_eq!(p.head_ts(), 7);
    }

    #[test]
    fn latch_defaults_to_zero() {
        let mut l = Latch::new();
        assert_eq!(l.values(2), &[Logic::Zero, Logic::Zero]);
        l.set(1, Logic::One);
        assert_eq!(l.values(2), &[Logic::Zero, Logic::One]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "nondecreasing")]
    fn regressing_push_rejected_in_debug() {
        let mut p = PortQueue::new();
        p.push(ev(5));
        p.push(ev(4));
    }
}
