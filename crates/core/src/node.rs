//! Per-node Chandy–Misra state shared by the queue-based engines.
//!
//! Per paper §4.1/§4.5.1: each node keeps one FIFO deque **per input
//! port** (events on one port arrive in nondecreasing timestamp order, so
//! a plain deque suffices — this is the ArrayDeque-vs-PriorityQueue
//! optimization), a per-port "last received" clock, and latched input
//! values. The node's local clock is the minimum of the per-port clocks;
//! queued events no later than the clock are *ready*.
//!
//! [`PortQueue`] and the clock/drain helpers are generic over the event
//! payload (defaulting to [`Logic`]) so `sim-model` components reuse the
//! exact same FIFO-plus-clock discipline for opaque user payloads.
//!
//! Storage is arena-backed: a queue holds `(timestamp, EventRef)` pairs
//! while the events themselves live in the caller's [`EventArena`]
//! (one per shard/actor/component). The representation is sealed —
//! every mutation goes through [`PortQueue::push`] /
//! [`PortQueue::pop_ready`] / [`PortQueue::drain_batch`] and friends, so
//! the arena layout can change without touching any engine. Timestamps
//! are mirrored into the queue so the read-only clock helpers
//! ([`PortQueue::head_ts`], [`local_clock`], [`is_active`]) never need
//! the arena.

use std::collections::VecDeque;

use circuit::{Logic, PortIx};

use crate::arena::{EventArena, EventRef};
use crate::event::{Event, Timestamp, NULL_TS};

/// One input port: its FIFO event queue and receive clock.
///
/// The queue owns handles, not events; pass the owning arena to any
/// method that moves an event in or out.
#[derive(Debug, Clone)]
pub struct PortQueue<V = Logic> {
    /// Pending events as `(time, handle)`, in arrival (= nondecreasing
    /// timestamp) order. The mirrored time keeps clock reads arena-free.
    refs: VecDeque<(Timestamp, EventRef)>,
    /// Timestamp of the last message received on this port; [`NULL_TS`]
    /// once the NULL message arrived.
    last_ts: Timestamp,
    _payload: std::marker::PhantomData<V>,
}

impl<V> PortQueue<V> {
    /// A fresh port: nothing received yet.
    pub fn new() -> Self {
        PortQueue {
            refs: VecDeque::new(),
            last_ts: 0,
            _payload: std::marker::PhantomData,
        }
    }

    /// Deliver a payload event (must not regress this port's clock).
    #[inline]
    pub fn push(&mut self, arena: &mut EventArena<V>, event: Event<V>) {
        debug_assert!(
            event.time >= self.last_ts,
            "per-port arrivals must be nondecreasing ({} < {})",
            event.time,
            self.last_ts
        );
        debug_assert!(self.last_ts != NULL_TS, "event after NULL message");
        self.last_ts = event.time;
        let time = event.time;
        self.refs.push_back((time, arena.alloc(event)));
    }

    /// Deliver the NULL message: no more events will ever arrive here.
    #[inline]
    pub fn push_null(&mut self) {
        debug_assert!(self.last_ts != NULL_TS, "duplicate NULL message");
        self.last_ts = NULL_TS;
    }

    /// Timestamp at the head of the queue ([`NULL_TS`] when empty).
    #[inline]
    pub fn head_ts(&self) -> Timestamp {
        self.refs.front().map_or(NULL_TS, |&(t, _)| t)
    }

    /// Timestamp of the head event, `None` when the queue is empty —
    /// the peek half of the pop-if-ready protocol.
    #[inline]
    pub fn peek(&self) -> Option<Timestamp> {
        self.refs.front().map(|&(t, _)| t)
    }

    /// This port's receive clock ([`NULL_TS`] once closed).
    #[inline]
    pub fn last_ts(&self) -> Timestamp {
        self.last_ts
    }

    /// Queued (undelivered) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True when no events are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Conservative lower bound on the next event this port can deliver:
    /// the head timestamp when events are queued, the receive clock when
    /// drained (nothing can arrive earlier than what was promised).
    #[inline]
    pub fn next_event_bound(&self) -> Timestamp {
        match self.refs.front() {
            Some(&(t, _)) => t,
            None => self.last_ts,
        }
    }

    /// Advance this port's clock to `ts` without delivering an event — a
    /// *lookahead NULL* from the sharded engine's cross-shard protocol:
    /// the sender promises no event earlier than `ts` will arrive here.
    /// Stale promises (`ts` at or behind the clock) and promises after
    /// the terminal NULL are ignored; a terminal NULL itself must use
    /// [`PortQueue::push_null`].
    #[inline]
    pub fn advance_clock(&mut self, ts: Timestamp) {
        debug_assert!(ts != NULL_TS, "terminal NULL must use push_null");
        if self.last_ts != NULL_TS && ts > self.last_ts {
            self.last_ts = ts;
        }
    }

    /// Pop the head event if its timestamp is ≤ `bound`, reclaiming its
    /// arena slot. The single-event safe-to-process primitive.
    #[inline]
    pub fn pop_ready(&mut self, arena: &mut EventArena<V>, bound: Timestamp) -> Option<Event<V>> {
        match self.refs.front() {
            Some(&(t, _)) if t != NULL_TS && t <= bound => {
                let (_, r) = self.refs.pop_front().expect("head exists");
                Some(arena.take(r))
            }
            _ => None,
        }
    }

    /// Pop *every* event with timestamp ≤ `bound` into `out` (appending),
    /// one batch per node wakeup instead of a pop per event. Returns the
    /// number of events moved. Events from one port are already in
    /// timestamp order; use [`drain_ready`] for the cross-port merge.
    pub fn drain_batch(
        &mut self,
        arena: &mut EventArena<V>,
        bound: Timestamp,
        out: &mut Vec<Event<V>>,
    ) -> usize {
        let before = out.len();
        while let Some(ev) = self.pop_ready(arena, bound) {
            out.push(ev);
        }
        out.len() - before
    }

    /// Move *all* queued events out in order (regardless of readiness),
    /// reclaiming their arena slots: cross-arena handoff (migration) and
    /// teardown. The receive clock is left untouched.
    pub fn take_events(&mut self, arena: &mut EventArena<V>) -> Vec<Event<V>> {
        self.refs.drain(..).map(|(_, r)| arena.take(r)).collect()
    }

    /// Copy the queued events out in order, leaving the queue untouched
    /// (checkpoint capture).
    pub fn snapshot_events(&self, arena: &EventArena<V>) -> Vec<Event<V>>
    where
        V: Clone,
    {
        self.refs.iter().map(|&(_, r)| arena.get(r).clone()).collect()
    }

    /// Rebuild a port from checkpointed state: `events` are re-homed
    /// into `arena` verbatim and the receive clock is restored exactly
    /// (bypassing the push-time monotonicity bookkeeping, which already
    /// held when the snapshot was taken).
    pub fn restore(
        arena: &mut EventArena<V>,
        last_ts: Timestamp,
        events: impl IntoIterator<Item = Event<V>>,
    ) -> Self {
        let refs = events
            .into_iter()
            .map(|ev| {
                let t = ev.time;
                (t, arena.alloc(ev))
            })
            .collect();
        PortQueue {
            refs,
            last_ts,
            _payload: std::marker::PhantomData,
        }
    }
}

impl<V> Default for PortQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// The local clock: minimum "last received" over all ports ([`NULL_TS`]
/// for nodes without input ports, i.e. circuit inputs).
#[inline]
pub fn local_clock<V>(ports: &[PortQueue<V>]) -> Timestamp {
    ports.iter().map(|p| p.last_ts).min().unwrap_or(NULL_TS)
}

/// Pop all ready events (timestamp ≤ `clock`) from the per-port queues
/// into `temp`, merged in (timestamp, port) order — the paper's
/// "temporary queue" of §4.5.1, batched per node wakeup. `temp` is the
/// caller's reusable scratch buffer. Returns the number of events moved.
pub fn drain_ready<V>(
    ports: &mut [PortQueue<V>],
    arena: &mut EventArena<V>,
    clock: Timestamp,
    temp: &mut Vec<(PortIx, Event<V>)>,
) -> usize {
    let before = temp.len();
    loop {
        // Find the port with the smallest head timestamp (ties: lowest
        // port index, keeping the merge deterministic for distinct ports).
        let mut best: Option<(usize, Timestamp)> = None;
        for (i, port) in ports.iter().enumerate() {
            let h = port.head_ts();
            if h != NULL_TS && h <= clock && best.is_none_or(|(_, bh)| h < bh) {
                best = Some((i, h));
            }
        }
        match best {
            Some((i, h)) => {
                let e = ports[i].pop_ready(arena, h).expect("head exists");
                temp.push((i as PortIx, e));
            }
            None => break,
        }
    }
    temp.len() - before
}

/// True when the node is *active*: it has ready events, or it has drained
/// completely after receiving NULL on every port and still owes its own
/// NULL message downstream (`null_sent == false`).
#[inline]
pub fn is_active<V>(ports: &[PortQueue<V>], null_sent: bool) -> bool {
    let clock = local_clock(ports);
    let min_head = ports.iter().map(|p| p.head_ts()).min().unwrap_or(NULL_TS);
    if min_head != NULL_TS && min_head <= clock {
        return true;
    }
    clock == NULL_TS && min_head == NULL_TS && !null_sent
}

/// Latched input values of a gate (ports default to logic zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latch(pub [Logic; 2]);

impl Latch {
    pub fn new() -> Self {
        Latch([Logic::Zero; 2])
    }

    #[inline]
    pub fn set(&mut self, port: PortIx, value: Logic) {
        self.0[port as usize] = value;
    }

    #[inline]
    pub fn values(&self, arity: usize) -> &[Logic] {
        &self.0[..arity]
    }
}

impl Default for Latch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Timestamp) -> Event {
        Event::new(t, Logic::One)
    }

    #[test]
    fn push_advances_clock() {
        let mut arena = EventArena::new();
        let mut p = PortQueue::new();
        assert_eq!(p.last_ts(), 0);
        p.push(&mut arena, ev(5));
        assert_eq!(p.last_ts(), 5);
        assert_eq!(p.head_ts(), 5);
        assert_eq!(p.peek(), Some(5));
        p.push(&mut arena, ev(5)); // equal timestamps allowed
        p.push(&mut arena, ev(9));
        assert_eq!(p.last_ts(), 9);
        assert_eq!(p.len(), 3);
        assert_eq!(arena.live(), 3);
    }

    #[test]
    fn null_closes_port() {
        let mut arena = EventArena::new();
        let mut p = PortQueue::new();
        p.push(&mut arena, ev(3));
        p.push_null();
        assert_eq!(p.last_ts(), NULL_TS);
        assert_eq!(p.head_ts(), 3); // queued event still pending
    }

    #[test]
    fn clock_is_min_over_ports() {
        let mut arena = EventArena::new();
        let mut a = PortQueue::new();
        let mut b = PortQueue::new();
        a.push(&mut arena, ev(10));
        b.push(&mut arena, ev(4));
        assert_eq!(local_clock(&[a.clone(), b.clone()]), 4);
        b.push_null();
        assert_eq!(local_clock(&[a, b]), 10);
    }

    #[test]
    fn drain_ready_merges_by_time_then_port() {
        let mut arena = EventArena::new();
        let mut ports = vec![PortQueue::new(), PortQueue::new()];
        ports[0].push(&mut arena, ev(2));
        ports[0].push(&mut arena, ev(6));
        ports[1].push(&mut arena, ev(2));
        ports[1].push(&mut arena, ev(4));
        // clock 5: events at 2 (port 0 first), 2, 4 are ready; 6 is not.
        let mut temp = Vec::new();
        let n = drain_ready(&mut ports, &mut arena, 5, &mut temp);
        assert_eq!(n, 3);
        let order: Vec<(PortIx, Timestamp)> = temp.iter().map(|(p, e)| (*p, e.time)).collect();
        assert_eq!(order, vec![(0, 2), (1, 2), (1, 4)]);
        assert_eq!(ports[0].len(), 1);
        assert_eq!(arena.live(), 1, "drained slots returned to the arena");
    }

    #[test]
    fn drain_respects_clock_boundary_inclusive() {
        let mut arena = EventArena::new();
        let mut ports = vec![PortQueue::new()];
        ports[0].push(&mut arena, ev(5));
        let mut temp = Vec::new();
        assert_eq!(drain_ready(&mut ports, &mut arena, 4, &mut temp), 0);
        assert_eq!(drain_ready(&mut ports, &mut arena, 5, &mut temp), 1);
    }

    #[test]
    fn pop_ready_and_drain_batch_respect_bound() {
        let mut arena = EventArena::new();
        let mut p = PortQueue::new();
        p.push(&mut arena, ev(2));
        p.push(&mut arena, ev(4));
        p.push(&mut arena, ev(9));
        assert!(p.pop_ready(&mut arena, 1).is_none());
        let mut out = Vec::new();
        assert_eq!(p.drain_batch(&mut arena, 4, &mut out), 2);
        assert_eq!(out.iter().map(|e| e.time).collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(p.pop_ready(&mut arena, 100).map(|e| e.time), Some(9));
        assert!(p.is_empty());
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn snapshot_and_restore_round_trip() {
        let mut arena = EventArena::new();
        let mut p = PortQueue::new();
        p.push(&mut arena, ev(3));
        p.push(&mut arena, ev(8));
        let events = p.snapshot_events(&arena);
        assert_eq!(events.len(), 2);
        assert_eq!(p.len(), 2, "snapshot leaves the queue intact");

        let mut arena2 = EventArena::new();
        let mut q = PortQueue::restore(&mut arena2, p.last_ts(), events);
        assert_eq!(q.last_ts(), 8);
        assert_eq!(q.head_ts(), 3);
        assert_eq!(q.pop_ready(&mut arena2, 100).map(|e| e.time), Some(3));
        assert_eq!(q.pop_ready(&mut arena2, 100).map(|e| e.time), Some(8));
    }

    #[test]
    fn restore_preserves_null_clock() {
        // A port that had already received NULL restores as closed even
        // with events still queued (push would reject this — restore
        // bypasses the arrival bookkeeping by design).
        let mut arena = EventArena::new();
        let q: PortQueue = PortQueue::restore(&mut arena, NULL_TS, [ev(3)]);
        assert_eq!(q.last_ts(), NULL_TS);
        assert_eq!(q.head_ts(), 3);
    }

    #[test]
    fn next_event_bound_uses_head_then_clock() {
        let mut arena = EventArena::new();
        let mut p = PortQueue::new();
        p.advance_clock(4);
        assert_eq!(p.next_event_bound(), 4);
        p.push(&mut arena, ev(6));
        assert_eq!(p.next_event_bound(), 6);
    }

    #[test]
    fn activity_rules() {
        // Ready event → active.
        let mut arena = EventArena::new();
        let mut ports = vec![PortQueue::new(), PortQueue::new()];
        ports[0].push(&mut arena, ev(3));
        ports[1].push(&mut arena, ev(3));
        assert!(is_active(&ports, false));
        // Pending but not ready (other port's clock behind) → inactive.
        let mut ports = vec![PortQueue::new(), PortQueue::new()];
        ports[0].push(&mut arena, ev(3));
        assert!(!is_active(&ports, false));
        // Fully drained after NULLs, null not yet forwarded → active.
        let mut ports = vec![PortQueue::<Logic>::new()];
        ports[0].push_null();
        assert!(is_active(&ports, false));
        assert!(!is_active(&ports, true));
    }

    #[test]
    fn advance_clock_is_monotone_and_respects_null() {
        let mut p = PortQueue::<Logic>::new();
        p.advance_clock(5);
        assert_eq!(p.last_ts(), 5);
        p.advance_clock(3); // stale promise: ignored
        assert_eq!(p.last_ts(), 5);
        p.advance_clock(9);
        assert_eq!(p.last_ts(), 9);
        p.push_null();
        p.advance_clock(100); // port closed: ignored
        assert_eq!(p.last_ts(), NULL_TS);
    }

    #[test]
    fn advance_clock_then_push_at_promise_time() {
        // A promise of t allows a later event at exactly t.
        let mut arena = EventArena::new();
        let mut p = PortQueue::new();
        p.advance_clock(7);
        p.push(&mut arena, ev(7));
        assert_eq!(p.head_ts(), 7);
    }

    #[test]
    fn latch_defaults_to_zero() {
        let mut l = Latch::new();
        assert_eq!(l.values(2), &[Logic::Zero, Logic::Zero]);
        l.set(1, Logic::One);
        assert_eq!(l.values(2), &[Logic::Zero, Logic::One]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "nondecreasing")]
    fn regressing_push_rejected_in_debug() {
        let mut arena = EventArena::new();
        let mut p = PortQueue::new();
        p.push(&mut arena, ev(5));
        p.push(&mut arena, ev(4));
    }
}
