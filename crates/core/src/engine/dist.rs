//! Distributed sharded engine: the Chandy–Misra shard fabric across
//! process boundaries over `sim-net`'s TCP transport (DESIGN.md §9).
//!
//! Every participating process loads the *same* circuit, stimulus, and
//! partition (agreement is enforced by a configuration digest in the
//! connection handshake), runs the contiguous block of shards
//! [`net::shards_of_process`] assigns to its rank, and exchanges
//! cross-process events and NULLs through batched, checksummed frames.
//! The shard cores themselves are byte-for-byte the ones the
//! single-process [`super::sharded::ShardedEngine`] runs — they are
//! generic over [`net::Link`] — so the deterministic observables are
//! unchanged by distribution.
//!
//! ## Distributed termination
//!
//! Chandy–Misra termination needs no global clock: a shard finishes
//! once every in-edge has delivered its terminal NULL, and a finished
//! shard is owed nothing further (its upstream nodes have all retired).
//! Distribution adds only the question "when may a process tear down
//! its sockets?", answered by a two-step protocol on the control plane:
//!
//! 1. **Workers → coordinator**: when all local shards finish cleanly, a
//!    worker sends each shard's encoded outcome ([`Frame::Outcome`])
//!    followed by [`Frame::Done`], then parks waiting for shutdown. As a
//!    cross-check it first verifies the per-peer terminal-NULL counters
//!    against the expected cut-edge counts — a mismatch means the
//!    protocol itself is broken and is reported as an invariant error,
//!    not silently ignored.
//! 2. **Coordinator → workers**: rank 0 collects every outcome and every
//!    `Done`, broadcasts [`Frame::Shutdown`] (raising its own teardown
//!    flag first so the resulting EOFs are expected), merges the
//!    outcomes exactly as the single-process engine merges its shard
//!    results, and returns the [`SimOutput`].
//!
//! A peer dying mid-run surfaces as a structured
//! [`SimError::Transport`] from the fabric's reader threads (which also
//! cancel the run), and the no-progress watchdog — armed here over the
//! TCP probe, so stall reports include per-link outbox depths — remains
//! the backstop for anything subtler.

use std::net::{SocketAddr, TcpListener};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use circuit::{Circuit, DelayModel, Logic, Stimulus};
use fault::{FaultPlan, RunCtl, RunPolicy, SimError, Watchdog};
use net::tcp::{establish, ControlEvent, TcpConfig, TcpControl, TcpFabric};
use net::wire::{get_u8, get_uvarint, put_uvarint};
use net::{shards_of_process, BackoffSchedule, Link, DEFAULT_OUTBOX_FRAMES};
use obs::{FleetCollector, RankReport, Recorder};
use shard::comm::outgoing_cut_edges;
use shard::{Partition, PartitionStrategy};

use crate::engine::checkpoint::CheckpointConfig;
use crate::engine::config::EngineConfig;
use crate::engine::pin::{self, PinPolicy};
use crate::engine::probe::RunProbe;
use crate::engine::sharded::{
    checkpoint_policy, checkpoint_setup, merge_outcomes, shard_mem_stats, stall_snapshot,
    MigrationBus, ShardCore, ShardOutcome, WaitMatrix,
};
use crate::engine::{Engine, SimOutput};
use crate::event::Event;
use crate::monitor::Waveform;
use crate::stats::{SimStats, NUM_STAT_FIELDS};

/// Version byte of the outcome blob encoding. Version 2 added the
/// rebalancing counters (always zero for distributed runs, which keep
/// their static partition, but the blob mirrors [`SimStats`] 1:1).
const OUTCOME_VERSION: u8 = 2;

/// How long the control-plane wait loops block per poll.
const CONTROL_POLL: Duration = Duration::from_millis(20);

/// Everything one process needs to join a distributed run. Every rank
/// must be constructed from the same logical configuration; agreement is
/// checked via [`config_digest`] during the handshake.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// This process's rank in `addrs` (rank 0 is the coordinator).
    pub process: usize,
    /// Listen address of every process, indexed by rank.
    pub addrs: Vec<SocketAddr>,
    /// Total shard count across all processes.
    pub num_shards: usize,
    /// Partition strategy (must agree across ranks for identical cuts).
    pub strategy: PartitionStrategy,
    /// Per-shard inbox capacity.
    pub mailbox_capacity: usize,
    /// Coalesce up to this many cross-process messages per frame.
    pub batch_msgs: usize,
    /// No-progress watchdog deadline (`None` disables it).
    pub watchdog: Option<Duration>,
    /// How long to keep redialing peers during setup, and how long the
    /// termination waits may take before being declared wedged.
    pub connect_deadline: Duration,
    /// Deterministic epoch checkpoints (DESIGN.md §12); `None` disables
    /// them. Every rank must configure the same interval (it drives the
    /// shared barrier schedule) and, on one machine, the same directory.
    pub checkpoint: Option<CheckpointConfig>,
    /// Resume from the newest consistent checkpoint instead of starting
    /// fresh. All ranks of a session must agree (the resumed epoch is
    /// fenced in the connection handshake).
    pub restore: bool,
    /// Pin this rank's shard threads to cores (the plan is computed over
    /// the rank's *local* shards, so each machine uses its own cores).
    pub pinning: PinPolicy,
    /// Pre-size each local shard's event arena (0 = grow on demand).
    pub arena_capacity: usize,
    /// Piggyback fleet telemetry (rank-tagged metric snapshots, trace
    /// flushes, clock-offset pings) on the framed protocol. Advertised
    /// as a feature bit in the `Hello` handshake; telemetry frames only
    /// flow on links where *both* ends enabled it. With this `false`
    /// the handshake bytes and wire traffic are identical to the
    /// pre-telemetry protocol.
    pub telemetry: bool,
    /// How often each worker captures and ships a [`RankReport`] while
    /// its shards run (the final report at termination is uncondi-
    /// tional). Ignored unless `telemetry` is on.
    pub telemetry_period: Duration,
    /// Coordinator-only sink for merged fleet telemetry: every absorbed
    /// rank report and clock estimate lands here, for the caller to
    /// export (merged Perfetto trace, rank-labelled Prometheus text,
    /// straggler report). Ignored on workers and when `telemetry` is
    /// off.
    pub fleet: Option<Arc<Mutex<FleetCollector>>>,
}

impl DistConfig {
    /// Number of processes in the run.
    pub fn num_processes(&self) -> usize {
        self.addrs.len()
    }
}

/// FNV-1a over the run parameters every rank must agree on. Carried in
/// the `Hello` handshake so two processes launched with different
/// circuits, stimuli, or partitions refuse to connect instead of
/// desynchronizing mid-run.
pub fn config_digest(
    circuit: &Circuit,
    stimulus: &Stimulus,
    num_shards: usize,
    strategy: PartitionStrategy,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(circuit.num_nodes() as u64);
    mix(circuit.inputs().len() as u64);
    mix(circuit.outputs().len() as u64);
    mix(stimulus.num_events() as u64);
    mix(stimulus.horizon());
    mix(num_shards as u64);
    for b in strategy.name().bytes() {
        mix(u64::from(b));
    }
    h
}

// ---------------------------------------------------------------------------
// Outcome blobs: a shard's results encoded for the coordinator.

/// Encode one shard's outcome for a [`net::Frame::Outcome`] blob, using
/// the wire crate's varint vocabulary. The stats travel as
/// [`SimStats::as_array`] in field order, so the blob tracks the struct
/// without this module naming every counter.
fn encode_outcome(outcome: &ShardOutcome) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.push(OUTCOME_VERSION);
    for v in outcome.stats.as_array() {
        put_uvarint(&mut buf, v);
    }
    put_uvarint(&mut buf, outcome.values.len() as u64);
    for &(ix, v) in &outcome.values {
        put_uvarint(&mut buf, ix as u64);
        buf.push(v.as_bit() as u8);
    }
    put_uvarint(&mut buf, outcome.waveforms.len() as u64);
    for (out_ix, wf) in &outcome.waveforms {
        put_uvarint(&mut buf, *out_ix as u64);
        put_uvarint(&mut buf, wf.len() as u64);
        for e in wf.events() {
            put_uvarint(&mut buf, e.time);
            buf.push(e.value.as_bit() as u8);
        }
    }
    buf
}

fn blob_err(shard: usize, context: &str) -> SimError {
    SimError::invariant(format!("outcome blob from shard {shard}: {context}"))
}

fn get_logic(buf: &[u8], pos: &mut usize, shard: usize) -> Result<Logic, SimError> {
    match get_u8(buf, pos).map_err(|e| blob_err(shard, &e.to_string()))? {
        0 => Ok(Logic::Zero),
        1 => Ok(Logic::One),
        b => Err(blob_err(shard, &format!("bad logic byte {b:#x}"))),
    }
}

/// Decode a [`net::Frame::Outcome`] blob back into a [`ShardOutcome`].
fn decode_outcome(shard: usize, blob: &[u8]) -> Result<ShardOutcome, SimError> {
    let wire = |e: net::WireError| blob_err(shard, &e.to_string());
    let pos = &mut 0usize;
    let version = get_u8(blob, pos).map_err(wire)?;
    if version != OUTCOME_VERSION {
        return Err(blob_err(shard, &format!("unknown version {version}")));
    }
    let mut fields = [0u64; NUM_STAT_FIELDS];
    for f in fields.iter_mut() {
        *f = get_uvarint(blob, pos).map_err(wire)?;
    }
    let stats = SimStats::from_array(fields);
    let nvalues = get_uvarint(blob, pos).map_err(wire)? as usize;
    let mut values = Vec::with_capacity(nvalues.min(1 << 20));
    for _ in 0..nvalues {
        let ix = get_uvarint(blob, pos).map_err(wire)? as usize;
        let v = get_logic(blob, pos, shard)?;
        values.push((ix, v));
    }
    let nwaves = get_uvarint(blob, pos).map_err(wire)? as usize;
    let mut waveforms = Vec::with_capacity(nwaves.min(1 << 20));
    for _ in 0..nwaves {
        let out_ix = get_uvarint(blob, pos).map_err(wire)? as usize;
        let nevents = get_uvarint(blob, pos).map_err(wire)? as usize;
        let mut wf = Waveform::new();
        let mut last = 0u64;
        for _ in 0..nevents {
            let time = get_uvarint(blob, pos).map_err(wire)?;
            let value = get_logic(blob, pos, shard)?;
            if time < last {
                return Err(blob_err(shard, "waveform times decrease"));
            }
            last = time;
            wf.record(Event { time, value });
        }
        waveforms.push((out_ix, wf));
    }
    if *pos != blob.len() {
        return Err(blob_err(shard, "trailing bytes"));
    }
    Ok(ShardOutcome {
        stats,
        values,
        waveforms,
    })
}

// ---------------------------------------------------------------------------
// One process's run.

/// Drop trace dumps of threads this rank does not own from a telemetry
/// report. With one recorder per OS process (the `des-node` binary)
/// this is a no-op; the in-process harness shares a single recorder
/// across all rank threads, so an unfiltered capture would attribute
/// every rank's rings to every report and the merged timeline would
/// show each thread once per rank. Shard cores and their senders carry
/// global shard ids (`shard-N`, `net-N`); reader threads are named
/// after the remote peer (`net-rx-P`). Unrecognized thread names are
/// kept — better a duplicate than a dropped ring.
fn retain_local_traces(report: &mut RankReport, local: &Range<usize>, process: usize) {
    report.traces.retain(|dump| {
        let t = dump.thread.as_str();
        if let Some(id) = t.strip_prefix("shard-").and_then(|s| s.parse::<usize>().ok()) {
            return local.contains(&id);
        }
        if let Some(peer) = t.strip_prefix("net-rx-").and_then(|s| s.parse::<usize>().ok()) {
            return peer != process;
        }
        if let Some(id) = t.strip_prefix("net-").and_then(|s| s.parse::<usize>().ok()) {
            return local.contains(&id);
        }
        true
    });
}

/// Run this process's block of shards as one node of a distributed
/// simulation.
///
/// The caller provides the already-bound listener for its own address
/// (bind first, share the resolved address, then call — this is what
/// makes ephemeral ports usable in tests). Returns `Ok(Some(output))`
/// on the coordinator (rank 0) once every process reported done, and
/// `Ok(None)` on workers once the coordinator's shutdown arrived.
pub fn run_node(
    circuit: &Circuit,
    stimulus: &Stimulus,
    delays: &DelayModel,
    listener: TcpListener,
    cfg: &DistConfig,
    fault: Arc<FaultPlan>,
    recorder: &Recorder,
) -> Result<Option<SimOutput>, SimError> {
    assert_eq!(stimulus.num_inputs(), circuit.inputs().len());
    fault.reset();
    let wall_start = Instant::now();
    let nproc = cfg.num_processes();
    let engine_name = format!("dist[p={}/{nproc}]", cfg.process);
    let partition = Arc::new(Partition::build(circuit, cfg.num_shards, cfg.strategy));
    let metrics = partition.metrics(circuit);
    let ctl = Arc::new(RunCtl::new());
    let local = shards_of_process(cfg.num_shards, nproc, cfg.process);

    // Checkpoint/restore wiring. Every rank resolves the newest
    // consistent epoch independently from the shared directory; the
    // session epoch in the handshake fences any disagreement (a stale
    // writer that resumed from a different epoch is refused).
    let ckpt_setup = match cfg.checkpoint.as_ref() {
        Some(cc) => Some(checkpoint_setup(
            cc,
            cfg.process as u64,
            nproc,
            local.clone().map(|s| s as u64).collect(),
            cfg.restore,
            circuit,
            &partition,
            recorder,
        )?),
        None => None,
    };
    let resumed = ckpt_setup.as_ref().is_some_and(|s| s.resume.is_some());
    let session_epoch = ckpt_setup.as_ref().map_or(0, |s| s.session_epoch());
    let barrier_policy = cfg
        .checkpoint
        .as_ref()
        .map(|cc| checkpoint_policy(cc.every_events));
    let bus = barrier_policy.map(|_| MigrationBus::new(circuit.num_nodes()));

    let fabric = establish(
        listener,
        &TcpConfig {
            process: cfg.process,
            addrs: cfg.addrs.clone(),
            num_shards: cfg.num_shards,
            mailbox_capacity: cfg.mailbox_capacity,
            batch_msgs: cfg.batch_msgs,
            max_outbox_frames: DEFAULT_OUTBOX_FRAMES,
            digest: config_digest(circuit, stimulus, cfg.num_shards, cfg.strategy),
            connect_deadline: cfg.connect_deadline,
            session_epoch,
            retry_seed: fault.seed(),
            recorder: recorder.clone(),
            fault: Arc::clone(&fault),
            telemetry: cfg.telemetry,
        },
        Arc::clone(&partition),
        Arc::clone(&ctl),
    )?;
    let TcpFabric {
        endpoints,
        control,
        probe,
    } = fabric;

    let shard_done: Arc<Vec<AtomicBool>> =
        Arc::new(local.clone().map(|_| AtomicBool::new(false)).collect());
    let pin_plan = cfg.pinning.plan(local.len())?;
    let mem = shard_mem_stats(local.len());
    // Global shard ids index the matrix; only this rank's rows are ever
    // written locally — remote ranks report theirs via telemetry.
    let waits = Arc::new(WaitMatrix::new(cfg.num_shards));
    let watchdog = cfg.watchdog.map(|deadline| {
        let engine = engine_name.clone();
        let fault = Arc::clone(&fault);
        let done = Arc::clone(&shard_done);
        let mem = Arc::clone(&mem);
        let probe = probe.clone();
        let waits = Arc::clone(&waits);
        let cut_edges = metrics.cut_edges;
        let imbalance = metrics.load_imbalance_pct;
        let recorder = recorder.clone();
        Watchdog::arm(Arc::clone(&ctl), deadline, move |stalled_for, ticks| {
            stall_snapshot(
                &engine, &probe, &done, &mem, &fault, &recorder, &waits, cut_edges,
                imbalance, stalled_for, ticks,
            )
        })
    });

    // Telemetry sequencing: periodic in-run reports plus one final
    // report share the counter so the collector's stale-seq drop works.
    let telemetry_on = cfg.telemetry;
    let mut telemetry_seq: u64 = 0;

    // Run the local shard cores exactly as the single-process engine
    // does: one thread each, panics contained at the shard boundary.
    let mut outcomes: Vec<Option<ShardOutcome>> = Vec::with_capacity(local.len());
    std::thread::scope(|scope| {
        // Workers additionally run a telemetry pump: every period,
        // capture this rank's metric/trace snapshot and ship it to the
        // coordinator as an opaque blob. Lossy by design — a full
        // outbox drops the report rather than perturb the simulation.
        if telemetry_on && cfg.process != 0 {
            let control = &control;
            let done = Arc::clone(&shard_done);
            let ctl = Arc::clone(&ctl);
            let engine = engine_name.clone();
            let period = cfg.telemetry_period.max(Duration::from_millis(10));
            let rank = cfg.process as u64;
            let seq = &mut telemetry_seq;
            let recorder = recorder.clone();
            let local = local.clone();
            let process = cfg.process;
            scope.spawn(move || {
                let mut next = Instant::now() + period;
                while !(done.iter().all(|d| d.load(Ordering::Acquire)) || ctl.is_cancelled())
                {
                    std::thread::sleep(Duration::from_millis(5));
                    if Instant::now() < next {
                        continue;
                    }
                    next += period;
                    if control.peer_telemetry(0) {
                        let mut report =
                            RankReport::capture(rank, &engine, *seq, &recorder, 1 << 14);
                        retain_local_traces(&mut report, &local, process);
                        *seq += 1;
                        control.send_telemetry(0, report.seq, report.encode());
                    }
                }
            });
        }
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|link| {
                let ctl = Arc::clone(&ctl);
                let fault = Arc::clone(&fault);
                let done = Arc::clone(&shard_done);
                let partition = &partition;
                let first = local.start;
                let engine_name = &engine_name;
                let bus = bus.as_ref();
                let ckpt_setup = ckpt_setup.as_ref();
                let arena_capacity = cfg.arena_capacity;
                let pin_slot = pin_plan[link.shard() - first];
                let mem = Arc::clone(&mem);
                let waits = &waits;
                scope.spawn(move || {
                    let mut link = link;
                    let id = link.shard();
                    link.set_tracer(recorder.tracer(&format!("net-{id}")));
                    // Pin before building the core so the arena is
                    // allocated from the pinned core.
                    mem[id - first].record_pin(pin_slot.and_then(pin::pin_current_thread));
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        // Distributed runs keep their static partition:
                        // the barrier bus is Some only for checkpoint
                        // epochs (never for node migration).
                        let reb = bus.zip(barrier_policy);
                        let ckpt = ckpt_setup.map(|setup| setup.spec_for(id));
                        let mut core = ShardCore::new(
                            circuit,
                            stimulus,
                            delays,
                            (**partition).clone(),
                            link,
                            &ctl,
                            &fault,
                            reb,
                            ckpt,
                            RunProbe::with_rank(
                                recorder,
                                engine_name,
                                &format!("shard-{id}"),
                                Some(cfg.process as u64),
                            ),
                            arena_capacity,
                            &mem[id - first],
                            waits,
                        );
                        core.run();
                        core.into_outcome()
                    }));
                    done[id - first].store(true, Ordering::Release);
                    match result {
                        Ok(outcome) => Some(outcome),
                        Err(payload) => {
                            ctl.record_error(SimError::from_panic(None, payload.as_ref()));
                            None
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            outcomes.push(handle.join().unwrap_or(None));
        }
    });

    let finish = |watchdog: Option<Watchdog>, err: SimError| {
        if let Some(dog) = watchdog {
            dog.disarm();
        }
        // Raise the teardown flag so our sockets closing underneath the
        // peers' readers is not misread by *our* threads, then let the
        // fabric drop announce the failure as EOFs.
        control.begin_shutdown();
        Err(err)
    };

    if let Some(err) = ctl.take_error() {
        return finish(watchdog, err);
    }
    let outcomes: Vec<ShardOutcome> = match outcomes.into_iter().collect() {
        Some(v) => v,
        None => {
            return finish(
                watchdog,
                SimError::invariant("dist: a shard produced no outcome without an error"),
            )
        }
    };

    // Cross-check distributed termination: every inbound cut edge from a
    // remote shard must have delivered exactly one terminal NULL. A
    // resumed run skips the check — edges whose terminal NULL landed
    // before the checkpoint carry it inside the snapshot (the port's
    // clock is already at the horizon), so it is never re-sent.
    if !resumed {
        for peer in 0..nproc {
            if peer == cfg.process {
                continue;
            }
            let expected: usize = shards_of_process(cfg.num_shards, nproc, peer)
                .map(|s| {
                    outgoing_cut_edges(circuit, &partition, s)
                        .iter()
                        .filter(|e| local.contains(&e.dst_shard))
                        .count()
                })
                .sum();
            let got = control.terminal_nulls_from(peer);
            if got != expected {
                return finish(
                    watchdog,
                    SimError::invariant(format!(
                        "dist: expected {expected} terminal NULLs from process {peer}, saw {got}"
                    )),
                );
            }
        }
    }

    let deadline = Instant::now() + cfg.connect_deadline;
    if cfg.process != 0 {
        // Worker: ship the final telemetry report and outcomes, announce
        // done, park until shutdown. The final report is what carries
        // the authoritative end-of-run counters (NULL-wait totals,
        // trace rings), so unlike the periodic reports it retries
        // briefly instead of dropping on a full outbox.
        if telemetry_on && control.peer_telemetry(0) {
            let mut report = RankReport::capture(
                cfg.process as u64,
                &engine_name,
                telemetry_seq,
                recorder,
                1 << 14,
            );
            retain_local_traces(&mut report, &local, cfg.process);
            let blob = report.encode();
            for _ in 0..50 {
                if control.send_telemetry(0, report.seq, blob.clone()) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        for (off, outcome) in outcomes.iter().enumerate() {
            control.send_outcome(0, local.start + off, encode_outcome(outcome))?;
        }
        control.send_done(0)?;
        loop {
            if let Some(err) = ctl.take_error() {
                return finish(watchdog, err);
            }
            match control.recv_timeout(CONTROL_POLL) {
                Some(ControlEvent::Shutdown) => break,
                Some(ControlEvent::ClockPing { peer, echo_ns, t_rx_ns }) => {
                    // Answer clock probes from the park loop: the 4-stamp
                    // NTP exchange cancels our processing delay, so the
                    // poll latency costs no accuracy.
                    control.send_clock_pong(peer, echo_ns, t_rx_ns, recorder.now_ns());
                }
                Some(ControlEvent::PeerLost { .. }) | None => {}
                Some(_) => {}
            }
            ctl.tick(); // parked-but-healthy: keep the watchdog quiet
            if Instant::now() >= deadline {
                return finish(
                    watchdog,
                    SimError::Transport {
                        peer: Some(0),
                        direction: None,
                        epoch: None,
                        context: "no shutdown from coordinator within deadline".into(),
                    },
                );
            }
        }
        if let Some(dog) = watchdog {
            dog.disarm();
        }
        return Ok(None);
    }

    // Coordinator: collect every remote outcome and done, then shut the
    // fabric down and merge. Telemetry rides the same loop: rank
    // reports are absorbed into the fleet collector as they arrive, and
    // each poll tick pings every telemetry-enabled peer so the per-link
    // clock-offset estimates accumulate RTT samples (the minimum-RTT
    // sample wins; more pings only sharpen it).
    let fleet = cfg.fleet.as_ref().filter(|_| telemetry_on);
    let absorb = |fleet: Option<&Arc<Mutex<FleetCollector>>>, event: &ControlEvent| {
        let Some(fleet) = fleet else { return };
        match event {
            ControlEvent::Telemetry { peer, blob, .. } => {
                // Corrupt telemetry is diagnostic-only: drop it.
                if let Ok(report) = RankReport::decode(blob) {
                    fleet.lock().expect("fleet collector").absorb(report);
                }
                let _ = peer;
            }
            ControlEvent::ClockPong { peer, echo_ns, t_rx_ns, t_tx_ns, t_recv_ns } => {
                fleet.lock().expect("fleet collector").observe_clock(
                    *peer as u64,
                    *echo_ns,
                    *t_rx_ns,
                    *t_tx_ns,
                    *t_recv_ns,
                );
            }
            _ => {}
        }
    };
    let ping_peers = |control: &TcpControl| {
        if !telemetry_on {
            return;
        }
        for peer in 1..nproc {
            if control.peer_telemetry(peer) {
                control.send_clock_ping(peer, recorder.now_ns());
            }
        }
    };
    let mut all = Vec::with_capacity(cfg.num_shards);
    all.extend(outcomes);
    let mut done = vec![false; nproc];
    done[0] = true;
    while !(done.iter().all(|&d| d) && all.len() == cfg.num_shards) {
        if let Some(err) = ctl.take_error() {
            return finish(watchdog, err);
        }
        ping_peers(&control);
        match control.recv_timeout(CONTROL_POLL) {
            Some(ControlEvent::Outcome { shard, blob }) => {
                ctl.tick();
                all.push(decode_outcome(shard, &blob)?);
            }
            Some(ControlEvent::Done { process }) => {
                ctl.tick();
                if process >= nproc || done[process] {
                    return finish(
                        watchdog,
                        SimError::invariant(format!("dist: bogus done from process {process}")),
                    );
                }
                done[process] = true;
            }
            Some(ControlEvent::Shutdown) => {
                return finish(
                    watchdog,
                    SimError::invariant("dist: coordinator received shutdown"),
                );
            }
            Some(ref event @ (ControlEvent::Telemetry { .. } | ControlEvent::ClockPong { .. })) => {
                ctl.tick();
                absorb(fleet, event);
            }
            Some(ControlEvent::ClockPing { peer, echo_ns, t_rx_ns }) => {
                control.send_clock_pong(peer, echo_ns, t_rx_ns, recorder.now_ns());
            }
            Some(ControlEvent::PeerLost { .. }) | None => {}
        }
        if Instant::now() >= deadline {
            let missing: Vec<usize> =
                (0..nproc).filter(|&p| !done[p]).collect();
            return finish(
                watchdog,
                SimError::Transport {
                    peer: missing.first().copied(),
                    direction: None,
                    epoch: None,
                    context: format!(
                        "termination wait timed out: {}/{} outcomes, waiting on processes {missing:?}",
                        all.len(),
                        cfg.num_shards
                    ),
                },
            );
        }
    }
    if let Some(dog) = watchdog {
        dog.disarm();
    }
    // Clock-offset round: every worker is now parked in its shutdown
    // poll loop, which answers pings, so a burst of exchanges per link
    // lands cleanly here. The minimum-RTT sample wins, so extra rounds
    // only sharpen the estimate; pings the run itself dropped (lossy
    // control channel) cost nothing.
    if let Some(fleet) = fleet {
        for _ in 0..8 {
            ping_peers(&control);
            let round_deadline = Instant::now() + Duration::from_millis(40);
            while Instant::now() < round_deadline {
                match control.recv_timeout(Duration::from_millis(10)) {
                    Some(
                        ref event @ (ControlEvent::Telemetry { .. }
                        | ControlEvent::ClockPong { .. }),
                    ) => absorb(Some(fleet), event),
                    Some(ControlEvent::ClockPing { peer, echo_ns, t_rx_ns }) => {
                        control.send_clock_pong(peer, echo_ns, t_rx_ns, recorder.now_ns());
                    }
                    _ => {}
                }
            }
            let sharp_enough = (1..nproc)
                .filter(|&p| control.peer_telemetry(p))
                .all(|p| {
                    fleet
                        .lock()
                        .expect("fleet collector")
                        .clock_estimate(p as u64)
                        .is_some_and(|e| e.samples >= 4)
                });
            if sharp_enough {
                break;
            }
        }
    }
    control.broadcast_shutdown();
    let output = merge_outcomes(circuit, all, metrics.load_imbalance_pct);
    output
        .stats
        .publish_ranked(recorder, &engine_name, Some(cfg.process as u64), wall_start.elapsed());
    // The coordinator's own snapshot goes in last, after the merged
    // stats publish, so the fleet exports carry rank 0's final counters
    // (including its shards' NULL-wait totals) alongside the workers'.
    if let Some(fleet) = fleet {
        let mut report = RankReport::capture(0, &engine_name, telemetry_seq, recorder, 1 << 14);
        retain_local_traces(&mut report, &local, cfg.process);
        fleet.lock().expect("fleet collector").absorb(report);
    }
    Ok(Some(output))
}

// ---------------------------------------------------------------------------
// In-process harness: N "processes" as threads over real sockets.

/// Default deadline for setup and termination waits.
const DEFAULT_CONNECT_DEADLINE: Duration = Duration::from_secs(30);

/// The distributed engine driven from a single OS process: spawns one
/// thread per rank, each running [`run_node`] over real localhost TCP
/// sockets. This exists so the TCP fabric is exercised by the same
/// differential tests and benchmarks as every other engine; genuinely
/// separate processes use the `des-node` binary with the same
/// [`run_node`] entry point.
pub struct TcpShardedEngine {
    num_shards: usize,
    num_processes: usize,
    strategy: PartitionStrategy,
    mailbox_capacity: usize,
    batch_msgs: usize,
    policy: RunPolicy,
    checkpoint: Option<CheckpointConfig>,
    restore: bool,
    recovery_attempts: usize,
    pinning: PinPolicy,
    arena_capacity: usize,
    telemetry: bool,
    fleet: Option<Arc<Mutex<FleetCollector>>>,
}

impl TcpShardedEngine {
    fn make(num_shards: usize, num_processes: usize, strategy: PartitionStrategy) -> Self {
        assert!(num_processes > 0, "need at least one process");
        assert!(
            num_processes <= num_shards,
            "more processes than shards: {num_processes} > {num_shards}"
        );
        TcpShardedEngine {
            num_shards,
            num_processes,
            strategy,
            mailbox_capacity: 256,
            batch_msgs: net::DEFAULT_BATCH_MSGS,
            policy: RunPolicy::new(),
            checkpoint: None,
            restore: false,
            recovery_attempts: 0,
            pinning: PinPolicy::None,
            arena_capacity: 0,
            telemetry: false,
            fleet: None,
        }
    }

    /// Build the engine from the unified [`EngineConfig`]. Note the
    /// distributed engine always runs its static partition: a configured
    /// rebalance policy is ignored (the rebalancing protocol is
    /// in-process only).
    ///
    /// # Panics
    /// If `cfg.processes()` is 0 or exceeds `cfg.shards()`.
    pub fn from_config(cfg: &EngineConfig) -> Self {
        let mut engine = Self::make(cfg.shards(), cfg.processes(), cfg.strategy());
        engine.mailbox_capacity = cfg.mailbox_capacity();
        engine.batch_msgs = cfg.batch_msgs();
        engine.policy = cfg.run_policy();
        engine.checkpoint = cfg.checkpoint();
        engine.restore = cfg.restore();
        engine.recovery_attempts = cfg.recovery_attempts();
        engine.pinning = cfg.pinning().clone();
        engine.arena_capacity = cfg.arena_capacity();
        engine
    }

    /// Override the partition strategy.
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the per-shard inbox capacity.
    pub fn with_mailbox_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0);
        self.mailbox_capacity = capacity;
        self
    }

    /// Override the per-peer batching threshold (1 disables coalescing).
    pub fn with_batch_msgs(mut self, batch: usize) -> Self {
        assert!(batch > 0);
        self.batch_msgs = batch;
        self
    }

    /// Set (or disable) the no-progress watchdog deadline.
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.policy = self.policy.with_watchdog(deadline);
        self
    }

    /// Install a fault plan, shared by every rank of the in-process
    /// harness. Each rank resets the plan when it starts, so inject
    /// counted faults only where a double reset during the connection
    /// handshake cannot skew the decision stream (e.g. wedges).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.policy = self.policy.with_fault_plan(plan);
        self
    }

    /// Write a deterministic checkpoint to `dir` every `every_events`
    /// delivered events per shard (DESIGN.md §12).
    pub fn with_checkpoints(mut self, every_events: u64, dir: impl Into<PathBuf>) -> Self {
        assert!(every_events >= 1);
        self.checkpoint = Some(CheckpointConfig {
            every_events,
            dir: dir.into(),
        });
        self
    }

    /// Start from the newest consistent checkpoint in the configured
    /// directory instead of from the stimulus.
    pub fn with_restore(mut self, restore: bool) -> Self {
        self.restore = restore;
        self
    }

    /// After a transport failure or rank crash, tear the fabric down and
    /// retry the run from the newest consistent checkpoint up to
    /// `attempts` times (0 disables in-harness recovery). Requires
    /// checkpoints to be configured.
    pub fn with_recovery_attempts(mut self, attempts: usize) -> Self {
        self.recovery_attempts = attempts;
        self
    }

    /// Pin each local shard thread to a core per `policy`.
    pub fn with_pinning(mut self, policy: PinPolicy) -> Self {
        self.pinning = policy;
        self
    }

    /// Pre-size each local shard's event arena (0 = grow on demand).
    pub fn with_arena(mut self, capacity: usize) -> Self {
        self.arena_capacity = capacity;
        self
    }

    /// Enable fleet telemetry frames on every link and direct the
    /// coordinator's merged telemetry into `fleet` (merged traces,
    /// rank-labelled metrics, clock offsets, straggler report).
    pub fn with_fleet(mut self, fleet: Arc<Mutex<FleetCollector>>) -> Self {
        self.telemetry = true;
        self.fleet = Some(fleet);
        self
    }

    /// One full fabric lifetime: bind, connect, run, merge.
    fn run_attempt(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
        restore: bool,
    ) -> Result<SimOutput, SimError> {
        // Bind every rank's listener first so the shared address list is
        // complete before anyone dials (ephemeral ports).
        let mut listeners = Vec::with_capacity(self.num_processes);
        let mut addrs = Vec::with_capacity(self.num_processes);
        for _ in 0..self.num_processes {
            let l = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| SimError::transport(None, format!("bind: {e}")))?;
            addrs.push(
                l.local_addr()
                    .map_err(|e| SimError::transport(None, format!("local_addr: {e}")))?,
            );
            listeners.push(l);
        }
        let recorder = self.policy.recorder();
        let mut results: Vec<Result<Option<SimOutput>, SimError>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = listeners
                .into_iter()
                .enumerate()
                .map(|(rank, listener)| {
                    let cfg = DistConfig {
                        process: rank,
                        addrs: addrs.clone(),
                        num_shards: self.num_shards,
                        strategy: self.strategy,
                        mailbox_capacity: self.mailbox_capacity,
                        batch_msgs: self.batch_msgs,
                        watchdog: self.policy.watchdog(),
                        connect_deadline: DEFAULT_CONNECT_DEADLINE,
                        checkpoint: self.checkpoint.clone(),
                        restore,
                        pinning: self.pinning.clone(),
                        arena_capacity: self.arena_capacity,
                        telemetry: self.telemetry,
                        telemetry_period: Duration::from_millis(100),
                        fleet: if rank == 0 { self.fleet.clone() } else { None },
                    };
                    let fault = Arc::clone(self.policy.fault());
                    scope.spawn(move || {
                        run_node(circuit, stimulus, delays, listener, &cfg, fault, recorder)
                    })
                })
                .collect();
            for handle in handles {
                results.push(handle.join().unwrap_or_else(|_| {
                    Err(SimError::invariant("dist: rank thread panicked"))
                }));
            }
        });
        let mut output = None;
        let mut first_err = None;
        for (rank, result) in results.into_iter().enumerate() {
            match result {
                Ok(Some(out)) => {
                    debug_assert_eq!(rank, 0, "only the coordinator returns output");
                    output = Some(out);
                }
                Ok(None) => {}
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match (output, first_err) {
            (Some(out), None) => Ok(out),
            (_, Some(e)) => Err(e),
            (None, None) => Err(SimError::invariant(
                "dist: coordinator returned no output and no error",
            )),
        }
    }
}

/// Failures worth restarting from a checkpoint: a lost peer or a crashed
/// rank. Configuration and invariant errors are never retried — the
/// retry would fail identically.
fn recoverable(err: &SimError) -> bool {
    matches!(
        err,
        SimError::Transport { .. } | SimError::TaskPanicked { .. }
    )
}

impl Engine for TcpShardedEngine {
    fn name(&self) -> String {
        let tag = if self.checkpoint.is_some() { ",ckpt" } else { "" };
        format!(
            "tcp-sharded[k={},p={},{}{tag}]",
            self.num_shards,
            self.num_processes,
            self.strategy.name()
        )
    }

    fn try_run(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
    ) -> Result<SimOutput, SimError> {
        // Recovery supervisor: run the fabric, and on a recoverable
        // failure rebuild it from the newest consistent checkpoint after
        // a deterministic backoff (DESIGN.md §12). The first attempt
        // honors the configured `restore` flag; every retry restores.
        let budget = if self.checkpoint.is_some() {
            self.recovery_attempts
        } else {
            0
        };
        let mut backoff = BackoffSchedule::new(self.policy.fault().seed(), u64::MAX);
        let mut restore = self.restore;
        for remaining in (0..=budget).rev() {
            match self.run_attempt(circuit, stimulus, delays, restore) {
                Ok(out) => return Ok(out),
                Err(e) if remaining > 0 && recoverable(&e) => {
                    std::thread::sleep(backoff.next_delay());
                    restore = true;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("recovery loop returns on its final attempt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seq::SeqWorksetEngine;
    use circuit::generators::{c17, kogge_stone_adder};

    #[test]
    fn outcome_blob_round_trips() {
        let mut wf = Waveform::new();
        wf.record(Event {
            time: 3,
            value: Logic::One,
        });
        wf.record(Event {
            time: 900,
            value: Logic::Zero,
        });
        let outcome = ShardOutcome {
            stats: SimStats {
                events_delivered: 42,
                cut_events_sent: 7,
                net_bytes_sent: 123_456,
                ..Default::default()
            },
            values: vec![(0, Logic::Zero), (5, Logic::One)],
            waveforms: vec![(1, wf)],
        };
        let blob = encode_outcome(&outcome);
        let back = decode_outcome(3, &blob).unwrap();
        assert_eq!(back.stats, outcome.stats);
        assert_eq!(back.values, outcome.values);
        assert_eq!(back.waveforms, outcome.waveforms);

        // Corruption and truncation must error, never panic.
        assert!(decode_outcome(3, &blob[..blob.len() - 1]).is_err());
        let mut bad = blob.clone();
        bad[0] = 99;
        assert!(decode_outcome(3, &bad).is_err());
    }

    #[test]
    fn digest_is_sensitive_to_config() {
        let ks = kogge_stone_adder(8);
        let stim = Stimulus::random_vectors(&ks, 4, 10, 1);
        let base = config_digest(&ks, &stim, 4, PartitionStrategy::GreedyCut);
        assert_ne!(base, config_digest(&ks, &stim, 2, PartitionStrategy::GreedyCut));
        assert_ne!(
            base,
            config_digest(&ks, &stim, 4, PartitionStrategy::RoundRobin)
        );
        let c = c17();
        let stim_c = Stimulus::random_vectors(&c, 4, 10, 1);
        assert_ne!(base, config_digest(&c, &stim_c, 4, PartitionStrategy::GreedyCut));
    }

    #[test]
    fn two_process_tcp_matches_seq_on_c17() {
        let circuit = c17();
        let stimulus = Stimulus::random_vectors(&circuit, 6, 10, 7);
        let delays = DelayModel::unit();
        let seq = SeqWorksetEngine::new().run(&circuit, &stimulus, &delays);
        let dist = TcpShardedEngine::from_config(
            &EngineConfig::default().with_shards(2).with_processes(2),
        )
        .run(&circuit, &stimulus, &delays);
        assert_eq!(dist.node_values, seq.node_values);
        assert_eq!(dist.stats.events_delivered, seq.stats.events_delivered);
        for (a, b) in dist.waveforms.iter().zip(&seq.waveforms) {
            assert_eq!(a.settled(), b.settled());
        }
    }
}
