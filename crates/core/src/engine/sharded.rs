//! The sharded conservative engine: partitioned Chandy–Misra over
//! message-passing shards.
//!
//! Where [`super::hj::HjEngine`] parallelizes at single-node granularity
//! over one shared workset (Algorithm 2), this engine splits the netlist
//! into K shards (`sim-shard`'s [`Partition`]) and runs one *sequential*
//! Chandy–Misra core per shard on a dedicated thread — the PARSIR-style
//! architecture. Shards share nothing; every cross-shard edge carries its
//! traffic through bounded mailboxes ([`shard::comm`]):
//!
//! * **payload events**, delivered into the destination port's FIFO deque
//!   exactly as a local delivery would be (each input port has a single
//!   driver, and drivers emit in nondecreasing timestamp order, so FIFO
//!   channels preserve the per-port arrival invariant);
//! * **terminal NULLs** (Chandy–Misra termination), closing a cut edge
//!   when its source node forwards NULL;
//! * **lookahead NULLs**: when a shard goes idle it promises, per open
//!   outgoing cut edge, a clock floor of `LB(u) + delay(u) - 1` — no
//!   event at or below that time will ever cross the edge — letting the
//!   destination shard process events that were already safe without
//!   waiting for upstream payload traffic.
//!
//! The `- 1` in the promise is load-bearing for determinism: a promise of
//! exactly `LB + delay` would let a node process an event tied with a
//! *future* cross-shard arrival at the same timestamp, inverting the
//! deterministic `(time, port)` processing order the sequential engines
//! use. Keeping promises strictly below the earliest possible arrival
//! means timestamp ties are only ever resolved between events that are
//! physically present — the same resolution every other engine makes.
//!
//! ## Deadlock freedom
//!
//! The circuit is a DAG, so terminal NULLs alone guarantee termination:
//! events and NULLs flow forward in topological order regardless of the
//! cut (lookahead promises are a latency optimization, not a correctness
//! requirement). Bounded mailboxes add the classic cyclic-backpressure
//! risk (shard A full → B can't send → B never drains → A stays full); the
//! send loop breaks it by draining its *own* inbox between `try_send`
//! attempts, so every retry frees capacity somewhere in the cycle. The
//! PR-1 no-progress watchdog remains as the backstop that converts any
//! residual stall (injected wedge, future protocol bug) into a structured
//! [`SimError::NoProgress`] instead of a hang.
//!
//! ## Dynamic repartitioning
//!
//! With a [`RebalancePolicy`] installed the engine also runs an
//! *epoch-barrier migration protocol* (in-process fabric only — the
//! distributed engine always keeps its static partition):
//!
//! 1. Every shard counts events processed since the last barrier. A
//!    shard crossing `policy.epoch_events` either initiates a barrier
//!    (if it is the leader — the lowest shard it has not seen retire) or
//!    sends the leader a [`ShardMsg::BarrierRequest`].
//! 2. A barrier is an all-to-all round of [`ShardMsg::Barrier`] markers
//!    carrying telemetry (events this epoch, inbox depth). Markers ride
//!    the same FIFO mailboxes as payload traffic, so holding a peer's
//!    marker proves all its pre-barrier traffic has been delivered; a
//!    retired peer's [`ShardMsg::Retire`] stands in for its marker.
//! 3. Each shard then computes [`shard::plan_rebalance`] locally from
//!    the collected telemetry. The planner is a pure function of data
//!    every participant holds identically, so every shard computes the
//!    *same* plan and no plan broadcast is needed.
//! 4. If the plan moves nodes, donors park the complete per-node state
//!    (port queues, latch, waveform, `null_sent`) on a shared
//!    [`MigrationBus`], apply the plan to their partition copy, and
//!    exchange [`ShardMsg::Transferred`]; nobody resumes until every
//!    active shard has both parked its donations and updated its
//!    routing. Payload arriving during that window is buffered and
//!    replayed after the new owners have adopted their nodes.
//!
//! Determinism is unaffected: conservative simulation produces identical
//! observables under *any* ownership of the nodes, and migration moves
//! port queues and latches intact, so the merged waveforms, node values,
//! and `events_delivered` are bit-identical with rebalancing on or off.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use circuit::{Circuit, DelayModel, NodeKind, NodeId, PortIx, Stimulus, Target};
use fault::{
    FaultPlan, NullWaitEntry, RunCtl, RunPolicy, SimError, StallSnapshot, Watchdog,
    WorkerSnapshot,
};
use net::transport::{
    loopback, FabricProbe, Link, RecvTimeoutError, TryRecvError, TrySendError,
};
use obs::{Counter, Recorder, SpanKind};
use shard::comm::{incoming_cut_edges, outgoing_cut_edges, CutEdge, ShardMsg};
use shard::{plan_rebalance, Partition, PartitionStrategy, RebalancePolicy, ShardId, ShardLoad};

use crate::arena::EventArena;
use crate::engine::checkpoint::{
    self, CheckpointConfig, CheckpointSink, NodeSnapshot, PortSnapshot, ShardSnapshot,
};
use crate::engine::config::EngineConfig;
use crate::engine::pin::{self, PinPolicy};
use crate::engine::probe::RunProbe;
use crate::engine::seq::extract_node_values;
use crate::engine::{Engine, SimOutput};
use crate::event::{Event, Timestamp, NULL_TS};
use crate::monitor::Waveform;
use crate::node::{drain_ready, is_active, local_clock, Latch, PortQueue};
use crate::stats::SimStats;

/// Default per-shard inbox capacity. Small enough that backpressure is
/// real (a fast producer can't buffer an unbounded wavefront), large
/// enough that steady-state traffic rarely blocks.
pub(crate) const DEFAULT_MAILBOX_CAPACITY: usize = 256;

/// How long an idle shard blocks on its inbox before re-checking
/// cancellation and re-offering lookahead promises.
const IDLE_RECV_TIMEOUT: Duration = Duration::from_millis(1);

/// Partitioned conservative engine: one sequential Chandy–Misra core per
/// shard, cross-shard traffic over bounded mailboxes.
pub struct ShardedEngine {
    num_shards: usize,
    strategy: PartitionStrategy,
    mailbox_capacity: usize,
    policy: RunPolicy,
    rebalance: Option<RebalancePolicy>,
    checkpoint: Option<CheckpointConfig>,
    restore: bool,
    pinning: PinPolicy,
    arena_capacity: usize,
    rank: Option<u64>,
}

impl ShardedEngine {
    fn make(num_shards: usize, strategy: PartitionStrategy) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        ShardedEngine {
            num_shards,
            strategy,
            mailbox_capacity: DEFAULT_MAILBOX_CAPACITY,
            policy: RunPolicy::new(),
            rebalance: None,
            checkpoint: None,
            restore: false,
            pinning: PinPolicy::None,
            arena_capacity: 0,
            rank: None,
        }
    }

    /// Build the engine from the unified [`EngineConfig`].
    pub fn from_config(cfg: &EngineConfig) -> Self {
        let mut engine = Self::make(cfg.shards(), cfg.strategy());
        engine.mailbox_capacity = cfg.mailbox_capacity();
        engine.policy = cfg.run_policy();
        engine.rebalance = cfg.rebalance();
        engine.checkpoint = cfg.checkpoint();
        engine.restore = cfg.restore();
        engine.pinning = cfg.pinning().clone();
        engine.arena_capacity = cfg.arena_capacity();
        engine.rank = cfg.rank();
        engine
    }

    /// Override the per-shard inbox capacity (tests use tiny capacities to
    /// exercise the backpressure path).
    pub fn with_mailbox_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0);
        self.mailbox_capacity = capacity;
        self
    }

    /// Install a fault plan; its decision counters are reset at the start
    /// of every run so each run replays the same injection stream.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.policy = self.policy.with_fault_plan(plan);
        self
    }

    /// Set (or with `None` disable) the no-progress watchdog deadline.
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.policy = self.policy.with_watchdog(deadline);
        self
    }

    /// Enable (or with `None` disable) epoch-based dynamic repartitioning.
    pub fn with_rebalance(mut self, policy: Option<RebalancePolicy>) -> Self {
        self.rebalance = policy;
        self
    }

    /// Take a deterministic checkpoint into `dir` every `every_events`
    /// processed events (per shard, at the next epoch barrier). Mutually
    /// exclusive with rebalancing: checkpoints reuse the epoch-barrier
    /// protocol with a never-move policy, and the snapshot format
    /// assumes the static partition.
    pub fn with_checkpoints(mut self, every_events: u64, dir: impl Into<PathBuf>) -> Self {
        assert!(every_events >= 1);
        self.checkpoint = Some(CheckpointConfig {
            every_events,
            dir: dir.into(),
        });
        self
    }

    /// Resume from the newest consistent checkpoint in the configured
    /// checkpoint directory (falls back to a fresh run when none exists).
    pub fn with_restore(mut self, restore: bool) -> Self {
        self.restore = restore;
        self
    }

    /// Pin each shard thread to a core per `policy` (its event arena and
    /// port queues are then allocated from that core — first-touch
    /// locality). [`PinPolicy::None`] leaves threads floating.
    pub fn with_pinning(mut self, policy: PinPolicy) -> Self {
        self.pinning = policy;
        self
    }

    /// Pre-size each shard's event arena to `capacity` slots (0 = grow
    /// on demand).
    pub fn with_arena(mut self, capacity: usize) -> Self {
        self.arena_capacity = capacity;
        self
    }

    /// The engine's fault plan (for asserting on injection counts).
    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        self.policy.fault()
    }

    /// The configured shard count.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The configured partition strategy.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The configured rebalance policy, if dynamic repartitioning is on.
    pub fn rebalance(&self) -> Option<RebalancePolicy> {
        self.rebalance
    }
}

impl Engine for ShardedEngine {
    fn name(&self) -> String {
        let tag = if self.rebalance.is_some() {
            ",reb"
        } else if self.checkpoint.is_some() {
            ",ckpt"
        } else {
            ""
        };
        let pin = match &self.pinning {
            PinPolicy::None => String::new(),
            p => format!(",pin={}", p.label()),
        };
        format!(
            "sharded[k={},{}{tag}{pin}]",
            self.num_shards,
            self.strategy.name()
        )
    }

    fn try_run(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
    ) -> Result<SimOutput, SimError> {
        assert_eq!(stimulus.num_inputs(), circuit.inputs().len());
        assert!(
            self.rebalance.is_none() || self.checkpoint.is_none(),
            "checkpointing and dynamic repartitioning are mutually exclusive"
        );
        let fault = Arc::clone(self.policy.fault());
        fault.reset();
        let recorder = self.policy.recorder();
        let wall_start = Instant::now();
        let partition = Partition::build(circuit, self.num_shards, self.strategy);
        let metrics = partition.metrics(circuit);
        let ctl = Arc::new(RunCtl::new());
        let (links, probe) = loopback(self.num_shards, self.mailbox_capacity);
        // Checkpointing rides the same epoch-barrier protocol as
        // rebalancing, under a policy whose planner never moves a node.
        let barrier_policy = self
            .rebalance
            .or_else(|| self.checkpoint.as_ref().map(|cc| checkpoint_policy(cc.every_events)));
        let bus = barrier_policy.map(|_| MigrationBus::new(circuit.num_nodes()));
        let ckpt_setup = match self.checkpoint.as_ref() {
            Some(cc) => Some(checkpoint_setup(
                cc,
                0,
                1,
                (0..self.num_shards as u64).collect(),
                self.restore,
                circuit,
                &partition,
                recorder,
            )?),
            None => None,
        };
        let shard_done: Arc<Vec<AtomicBool>> =
            Arc::new((0..self.num_shards).map(|_| AtomicBool::new(false)).collect());
        // Resolve the pin plan up front: an invalid explicit core list is
        // a configuration error, not a per-thread surprise mid-run.
        let pin_plan = self.pinning.plan(self.num_shards)?;
        let mem = shard_mem_stats(self.num_shards);
        let waits = Arc::new(WaitMatrix::new(self.num_shards));

        let watchdog = self.policy.watchdog().map(|deadline| {
            let engine = self.name();
            let fault = Arc::clone(&fault);
            let done = Arc::clone(&shard_done);
            let mem = Arc::clone(&mem);
            let waits = Arc::clone(&waits);
            let cut_edges = metrics.cut_edges;
            let imbalance = metrics.load_imbalance_pct;
            let recorder = recorder.clone();
            Watchdog::arm(Arc::clone(&ctl), deadline, move |stalled_for, ticks| {
                stall_snapshot(
                    &engine, &probe, &done, &mem, &fault, &recorder, &waits, cut_edges,
                    imbalance, stalled_for, ticks,
                )
            })
        });

        // One OS thread per shard. Panics are contained at the shard
        // boundary: the core is built *inside* catch_unwind so an unwind
        // drops its endpoint (other shards observe Disconnected and
        // retire), and the scope joins every thread before we return —
        // the drained-on-error guarantee.
        let mut outcomes: Vec<Option<ShardOutcome>> = Vec::with_capacity(self.num_shards);
        std::thread::scope(|scope| {
            let handles: Vec<_> = links
                .into_iter()
                .map(|link| {
                    let ctl = Arc::clone(&ctl);
                    let fault = Arc::clone(&fault);
                    let done = Arc::clone(&shard_done);
                    let partition = &partition;
                    let bus = bus.as_ref();
                    let ckpt_setup = ckpt_setup.as_ref();
                    let recorder = &recorder;
                    let engine_name = self.name();
                    let arena_capacity = self.arena_capacity;
                    let pin_slot = pin_plan[link.shard()];
                    let mem = Arc::clone(&mem);
                    let waits = &waits;
                    scope.spawn(move || {
                        let id = link.shard();
                        // Pin before building the core: the arena and port
                        // queues are then allocated from the pinned core
                        // (first-touch locality).
                        mem[id].record_pin(pin_slot.and_then(pin::pin_current_thread));
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let reb = bus.zip(barrier_policy);
                            let ckpt = ckpt_setup.map(|setup| setup.spec_for(id));
                            let mut core = ShardCore::new(
                                circuit,
                                stimulus,
                                delays,
                                partition.clone(),
                                link,
                                &ctl,
                                &fault,
                                reb,
                                ckpt,
                                RunProbe::with_rank(
                                    recorder,
                                    &engine_name,
                                    &format!("shard-{id}"),
                                    self.rank,
                                ),
                                arena_capacity,
                                &mem[id],
                                waits,
                            );
                            core.run();
                            core.into_outcome()
                        }));
                        done[id].store(true, Ordering::Release);
                        match result {
                            Ok(outcome) => Some(outcome),
                            Err(payload) => {
                                ctl.record_error(SimError::from_panic(None, payload.as_ref()));
                                None
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                outcomes.push(handle.join().unwrap_or(None));
            }
        });
        if let Some(dog) = watchdog {
            dog.disarm();
        }

        if let Some(err) = ctl.take_error() {
            return Err(err);
        }
        let outcomes: Vec<ShardOutcome> = match outcomes.into_iter().collect() {
            Some(v) => v,
            None => {
                return Err(SimError::invariant(
                    "sharded: a shard produced no outcome without recording an error",
                ))
            }
        };
        let output = merge_outcomes(circuit, outcomes, metrics.load_imbalance_pct);
        output
            .stats
            .publish_ranked(recorder, &self.name(), self.rank, wall_start.elapsed());
        Ok(output)
    }
}

/// Merge per-shard results into one `SimOutput`. Shared with the
/// distributed engine, whose coordinator merges outcomes it received
/// over the wire together with its own local shards'.
pub(crate) fn merge_outcomes(
    circuit: &Circuit,
    mut outcomes: Vec<ShardOutcome>,
    imbalance_pct: u64,
) -> SimOutput {
    let mut stats = SimStats::default();
    for outcome in &outcomes {
        stats.merge(&outcome.stats);
    }
    stats.max_shard_imbalance_pct = imbalance_pct;
    stats.shard_load_imbalance_pct = observed_load_imbalance(&outcomes);
    let mut values = vec![None; circuit.num_nodes()];
    for outcome in &outcomes {
        for &(ix, v) in &outcome.values {
            values[ix] = Some(v);
        }
    }
    let node_values = extract_node_values(circuit, |id| {
        values[id.index()].expect("every node owned by exactly one shard")
    });
    let mut waveform_slots: Vec<Option<Waveform>> = vec![None; circuit.outputs().len()];
    for outcome in &mut outcomes {
        for (out_ix, wf) in outcome.waveforms.drain(..) {
            waveform_slots[out_ix] = Some(wf);
        }
    }
    let waveforms = waveform_slots
        .into_iter()
        .map(|w| w.expect("every output owned by exactly one shard"))
        .collect();
    SimOutput {
        stats,
        waveforms,
        node_values,
    }
}

/// Observed processed-event imbalance across the shards that ended the
/// run owning at least one node: how far (in percent) the busiest shard
/// exceeded a perfectly even split. This is the figure rebalancing
/// exists to lower; contrast `max_shard_imbalance_pct`, the planner's
/// static node-count estimate.
fn observed_load_imbalance(outcomes: &[ShardOutcome]) -> u64 {
    let loads: Vec<u64> = outcomes
        .iter()
        .filter(|o| !o.values.is_empty())
        .map(|o| o.stats.events_processed)
        .collect();
    let total: u64 = loads.iter().sum();
    if loads.is_empty() || total == 0 {
        return 0;
    }
    let max = *loads.iter().max().expect("nonempty");
    let ideal = (total as f64 / loads.len() as f64).max(1.0);
    ((max as f64 / ideal - 1.0) * 100.0).round().max(0.0) as u64
}

/// Build the watchdog's diagnostic snapshot: per-shard liveness,
/// mailbox depths, and (for socket fabrics) per-peer link depths, all
/// read through the fabric probe without touching simulation state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stall_snapshot(
    engine: &str,
    probe: &dyn FabricProbe,
    done: &[AtomicBool],
    mem: &[ShardMemStat],
    fault: &FaultPlan,
    recorder: &Recorder,
    waits: &WaitMatrix,
    cut_edges: usize,
    imbalance_pct: u64,
    stalled_for: Duration,
    ticks: u64,
) -> StallSnapshot {
    let queue_depths = probe.inbox_depths();
    let links = probe.link_depths();
    let workers: Vec<WorkerSnapshot> = done
        .iter()
        .enumerate()
        .map(|(id, d)| WorkerSnapshot {
            id,
            state: if d.load(Ordering::Acquire) {
                "done".into()
            } else {
                "running".into()
            },
            queue_depth: queue_depths.get(id).copied(),
            pinned_core: mem.get(id).and_then(ShardMemStat::pinned_core),
            arena_live: mem.get(id).and_then(ShardMemStat::arena_live),
        })
        .collect();
    let workset_size = queue_depths.iter().sum();
    let mut notes = vec![format!(
        "partition: {cut_edges} cut edges, {imbalance_pct}% load imbalance"
    )];
    if fault.is_active() {
        notes.push(format!("fault injection active: {:?}", fault.injected()));
    }
    StallSnapshot {
        engine: engine.to_string(),
        stalled_for,
        progress_ticks: ticks,
        workers,
        held_locks: Vec::new(),
        queue_depths,
        links,
        workset_size,
        notes,
        null_waits: waits.snapshot(),
        traces: recorder.recent_traces(16),
    }
}

/// Shared per-link blocked-on-NULL wait accounting: cell `(w, p)` is
/// the total nanoseconds shard `w` spent idle-blocked while shard `p`
/// held the lowest incoming channel clock — "p stalled w". Written
/// lock-free (relaxed adds) by the waiting shard thread, read by the
/// watchdog's stall snapshot and the straggler report. Barrier waits
/// (checkpoint / rebalance epochs) fold into the same matrix,
/// attributed to the first peer whose marker is missing.
pub(crate) struct WaitMatrix {
    n: usize,
    cells: Vec<AtomicU64>,
}

impl WaitMatrix {
    pub(crate) fn new(n: usize) -> WaitMatrix {
        WaitMatrix {
            n,
            cells: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Charge `ns` of shard `waiter`'s blocked time to `peer`.
    pub(crate) fn add(&self, waiter: ShardId, peer: ShardId, ns: u64) {
        debug_assert!(waiter < self.n && peer < self.n);
        self.cells[waiter * self.n + peer].fetch_add(ns, Ordering::Relaxed);
    }

    /// Every nonzero cell as a [`NullWaitEntry`], worst wait first —
    /// the first entry names the run's straggler.
    pub(crate) fn snapshot(&self) -> Vec<NullWaitEntry> {
        let mut entries: Vec<NullWaitEntry> = (0..self.n)
            .flat_map(|w| (0..self.n).map(move |p| (w, p)))
            .filter_map(|(w, p)| {
                let ns = self.cells[w * self.n + p].load(Ordering::Relaxed);
                (ns > 0).then_some(NullWaitEntry {
                    waiter_shard: w,
                    peer_shard: p,
                    wait_ns: ns,
                })
            })
            .collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.wait_ns));
        entries
    }
}

/// Per-shard memory diagnostics, published lock-free by the shard
/// thread and read by the watchdog's stall snapshot. `usize::MAX` is
/// the "not recorded" sentinel (unpinned thread / core not yet running).
pub(crate) struct ShardMemStat {
    pinned: AtomicUsize,
    arena_live: AtomicUsize,
}

impl ShardMemStat {
    pub(crate) fn new() -> Self {
        ShardMemStat {
            pinned: AtomicUsize::new(usize::MAX),
            arena_live: AtomicUsize::new(usize::MAX),
        }
    }

    /// Record the core this shard's thread landed on (`None` = floating).
    pub(crate) fn record_pin(&self, core: Option<usize>) {
        self.pinned.store(core.unwrap_or(usize::MAX), Ordering::Release);
    }

    /// Publish the shard arena's current live-event count.
    pub(crate) fn record_arena(&self, live: usize) {
        self.arena_live.store(live, Ordering::Relaxed);
    }

    fn pinned_core(&self) -> Option<usize> {
        match self.pinned.load(Ordering::Acquire) {
            usize::MAX => None,
            core => Some(core),
        }
    }

    fn arena_live(&self) -> Option<usize> {
        match self.arena_live.load(Ordering::Relaxed) {
            usize::MAX => None,
            live => Some(live),
        }
    }
}

/// One [`ShardMemStat`] per shard, shared between the shard threads and
/// the watchdog.
pub(crate) fn shard_mem_stats(num_shards: usize) -> Arc<Vec<ShardMemStat>> {
    Arc::new((0..num_shards).map(|_| ShardMemStat::new()).collect())
}

/// What one shard hands back after a clean run.
pub(crate) struct ShardOutcome {
    pub(crate) stats: SimStats,
    /// `(node index, settled value)` for every owned node.
    pub(crate) values: Vec<(usize, circuit::Logic)>,
    /// `(index into circuit.outputs(), waveform)` for every owned output.
    pub(crate) waveforms: Vec<(usize, Waveform)>,
}

/// Per-node state of a shard's sequential core (same shape as the
/// sequential engine's). The port queues, clocks, latch, waveform, and
/// `null_sent` flag *are* the node's complete simulation state, so a
/// migrated node resumes exactly where the donor stopped — see
/// [`MigratedNode`] for the cross-arena handoff.
struct ShardNode {
    kind: NodeKind,
    delay: u64,
    ports: Vec<PortQueue>,
    latch: Latch,
    null_sent: bool,
    waveform: Waveform,
}

/// Shared-memory handoff for migrating node state: one slot per node,
/// filled by the donor before it sends [`ShardMsg::Transferred`] and
/// emptied by the new owner after it holds a `Transferred` from every
/// active peer — the channel round is what sequences the lock accesses.
pub(crate) struct MigrationBus {
    slots: Vec<Mutex<Option<MigratedNode>>>,
}

/// A node's state serialized for cross-shard migration. [`crate::EventRef`]
/// handles are arena-local, so the donor moves the queued events *out*
/// of its arena at park and the adopter re-homes them into its own at
/// take; everything else moves wholesale.
pub(crate) struct MigratedNode {
    kind: NodeKind,
    delay: u64,
    latch: Latch,
    null_sent: bool,
    waveform: Waveform,
    /// Per input port: receive clock + queued events in arrival order.
    ports: Vec<(Timestamp, Vec<Event>)>,
}

/// Serialize `node` out of the donor's `arena` for the migration bus.
fn park_node(node: ShardNode, arena: &mut EventArena) -> MigratedNode {
    MigratedNode {
        kind: node.kind,
        delay: node.delay,
        latch: node.latch,
        null_sent: node.null_sent,
        waveform: node.waveform,
        ports: node
            .ports
            .into_iter()
            .map(|mut p| (p.last_ts(), p.take_events(arena)))
            .collect(),
    }
}

/// Re-home a parked node's events into the adopter's `arena`.
fn adopt_node(mig: MigratedNode, arena: &mut EventArena) -> ShardNode {
    ShardNode {
        kind: mig.kind,
        delay: mig.delay,
        ports: mig
            .ports
            .into_iter()
            .map(|(last_ts, events)| PortQueue::restore(arena, last_ts, events))
            .collect(),
        latch: mig.latch,
        null_sent: mig.null_sent,
        waveform: mig.waveform,
    }
}

impl MigrationBus {
    pub(crate) fn new(num_nodes: usize) -> Self {
        MigrationBus {
            slots: (0..num_nodes).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn park(&self, ix: usize, node: MigratedNode) {
        let prev = self.slots[ix].lock().unwrap().replace(node);
        debug_assert!(prev.is_none(), "node {ix} parked twice");
    }

    fn take(&self, ix: usize) -> MigratedNode {
        self.slots[ix]
            .lock()
            .unwrap()
            .take()
            .expect("migrated node parked before Transferred")
    }
}

// ---------------------------------------------------------------------------
// Deterministic checkpointing (DESIGN.md §12).

/// The epoch-barrier policy a checkpointing run installs: barriers fire
/// on the checkpoint interval, and the planner can never find enough
/// imbalance to move a node — every barrier is a pure snapshot point.
pub(crate) fn checkpoint_policy(every_events: u64) -> RebalancePolicy {
    RebalancePolicy {
        epoch_events: every_events,
        min_imbalance_pct: u64::MAX,
        max_moves: 0,
    }
}

/// `result[node][port]` = shard owning the driver of that input port.
/// Used to tell, for an incoming payload message, whether its sender has
/// already snapshotted this epoch (its barrier marker is held). Static:
/// checkpointing excludes rebalancing, so ownership never changes.
pub(crate) fn port_source_shards(circuit: &Circuit, partition: &Partition) -> Vec<Vec<ShardId>> {
    let mut map: Vec<Vec<ShardId>> = (0..circuit.num_nodes())
        .map(|ix| vec![0; circuit.node(NodeId(ix as u32)).kind.num_inputs()])
        .collect();
    for ix in 0..circuit.num_nodes() {
        let id = NodeId(ix as u32);
        let src = partition.shard_of(id);
        for &t in &circuit.node(id).fanout {
            map[t.node.index()][t.port as usize] = src;
        }
    }
    map
}

/// Per-rank checkpoint wiring shared by every local shard core.
pub(crate) struct CkptSetup {
    pub(crate) sink: Arc<CheckpointSink>,
    pub(crate) rank: u64,
    pub(crate) src_shard: Arc<Vec<Vec<ShardId>>>,
    /// `Some((epoch, per-shard snapshots))` when resuming.
    pub(crate) resume: Option<(u64, BTreeMap<u64, ShardSnapshot>)>,
}

impl CkptSetup {
    /// The spec one shard core takes ownership of.
    pub(crate) fn spec_for(&self, shard: ShardId) -> CkptSpec {
        CkptSpec {
            sink: Arc::clone(&self.sink),
            rank: self.rank,
            src_shard: Arc::clone(&self.src_shard),
            resume: self.resume.as_ref().map(|(epoch, snaps)| {
                let snap = snaps
                    .get(&(shard as u64))
                    .unwrap_or_else(|| {
                        panic!("checkpoint epoch {epoch} has no snapshot for shard {shard}")
                    })
                    .clone();
                (*epoch, snap)
            }),
        }
    }

    /// The epoch being resumed from (0 when starting fresh) — the
    /// distributed engine's session epoch.
    pub(crate) fn session_epoch(&self) -> u64 {
        self.resume.as_ref().map_or(0, |(e, _)| *e)
    }
}

/// Build a rank's checkpoint sink and, when restoring, load its slice of
/// the newest consistent checkpoint. Shared by the in-process engine
/// (one rank owning every shard) and the distributed [`super::dist`]
/// ranks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn checkpoint_setup(
    cc: &CheckpointConfig,
    rank: u64,
    num_ranks: usize,
    local: Vec<u64>,
    restore: bool,
    circuit: &Circuit,
    partition: &Partition,
    recorder: &Recorder,
) -> Result<CkptSetup, SimError> {
    let sink = CheckpointSink::new(cc.dir.clone(), rank, local, recorder)
        .map_err(|e| SimError::invariant(format!("checkpoint dir {}: {e}", cc.dir.display())))?;
    let resume = if restore {
        match checkpoint::latest_consistent_epoch(&cc.dir, num_ranks) {
            Some(epoch) => {
                let snaps = checkpoint::load_rank(&cc.dir, epoch, rank)
                    .map_err(SimError::invariant)?
                    .into_iter()
                    .map(|s| (s.shard, s))
                    .collect();
                recorder
                    .counter("sim_recoveries_total", &[("rank", &rank.to_string())])
                    .inc();
                Some((epoch, snaps))
            }
            None => None,
        }
    } else {
        None
    };
    Ok(CkptSetup {
        sink: Arc::new(sink),
        rank,
        src_shard: Arc::new(port_source_shards(circuit, partition)),
        resume,
    })
}

/// One shard core's checkpoint handle (see [`CkptSetup`]).
pub(crate) struct CkptSpec {
    sink: Arc<CheckpointSink>,
    rank: u64,
    src_shard: Arc<Vec<Vec<ShardId>>>,
    /// Consumed by `ShardCore::new`: `(checkpoint epoch, snapshot)`.
    resume: Option<(u64, ShardSnapshot)>,
}

/// Why a shard's loop stopped before normal termination.
struct Stopped;

/// Per-shard state of the epoch-barrier rebalancing protocol.
struct RebalanceRt<'a> {
    policy: RebalancePolicy,
    bus: &'a MigrationBus,
    /// Current epoch number; all active shards advance it in lockstep.
    epoch: u64,
    /// Events processed since the last barrier (the telemetry a marker
    /// carries).
    events: u64,
    /// This shard already asked the leader for a barrier this epoch.
    requested: bool,
    /// A barrier must run at the next safe point.
    pending: bool,
    /// Inside `run_epoch` (markers for the current epoch must not
    /// re-trigger `pending`).
    in_epoch: bool,
    /// Inside the transfer wait: buffer payload into `held` because it
    /// may target nodes not yet adopted from the bus.
    in_transfer: bool,
    /// Telemetry collected from each shard's marker this epoch.
    markers: Vec<Option<ShardLoad>>,
    /// Which peers have parked their donations this epoch.
    transferred: Vec<bool>,
    /// Which peers have retired (their `Retire` stands in for markers).
    retired: Vec<bool>,
    /// Payload buffered during the transfer wait, replayed after the
    /// arrivals are adopted.
    held: Vec<ShardMsg>,
    /// Control traffic for the *next* epoch, from peers that finished
    /// this epoch first; replayed after the local epoch rollover.
    deferred: Vec<ShardMsg>,
}

impl<'a> RebalanceRt<'a> {
    fn new(bus: &'a MigrationBus, policy: RebalancePolicy, num_shards: usize) -> Self {
        RebalanceRt {
            policy,
            bus,
            epoch: 1,
            events: 0,
            requested: false,
            pending: false,
            in_epoch: false,
            in_transfer: false,
            markers: vec![None; num_shards],
            transferred: vec![false; num_shards],
            retired: vec![false; num_shards],
            held: Vec::new(),
            deferred: Vec::new(),
        }
    }
}

/// One shard's sequential Chandy–Misra core plus its transport link.
/// Generic over [`Link`] so the same core drives the in-process
/// loopback fabric and the TCP fabric unchanged.
pub(crate) struct ShardCore<'a, L: Link> {
    shard: ShardId,
    circuit: &'a Circuit,
    stimulus: &'a Stimulus,
    /// This shard's copy of the node→shard map. Starts identical on
    /// every shard and stays identical: every shard applies every
    /// rebalance plan, and the plans are deterministic functions of
    /// barrier data all participants hold.
    partition: Partition,
    ctl: &'a RunCtl,
    fault: &'a FaultPlan,
    /// Indexed by `NodeId::index`; `Some` iff this shard owns the node.
    nodes: Vec<Option<ShardNode>>,
    owned: Vec<NodeId>,
    link: L,
    /// Open outgoing cut edges, with the last promised clock floor per
    /// edge (promise suppression: only strictly increasing floors are
    /// worth a message).
    cut_out: Vec<CutEdge>,
    last_floor: Vec<Timestamp>,
    /// Incoming cut edges as `(source shard, local target port)` — the
    /// candidate culprits when this shard idles waiting for NULLs.
    cut_in: Vec<(ShardId, Target)>,
    /// Where idle-blocked time is charged, shared with the watchdog.
    waits: &'a WaitMatrix,
    /// Lazily minted `sim_null_wait_ns_total{peer}` counters, one per
    /// peer shard this core has ever blamed for a wait.
    null_wait: Vec<Option<Counter>>,
    workset: VecDeque<NodeId>,
    queued: Vec<bool>,
    stats: SimStats,
    temp: Vec<(PortIx, Event)>,
    /// Slab backing every event queued on this shard. Built on the shard
    /// thread (after pinning) so its pages are first-touched from the
    /// core the thread runs on.
    arena: EventArena,
    /// Where this shard publishes arena occupancy for stall snapshots.
    mem: &'a ShardMemStat,
    /// `Some` iff dynamic repartitioning is enabled for this run.
    reb: Option<RebalanceRt<'a>>,
    /// `Some` iff deterministic checkpointing is enabled for this run.
    ckpt: Option<CkptSpec>,
    /// True when this core was rebuilt from a checkpoint snapshot.
    resumed: bool,
    /// This shard's tracing + timing handles (one ring per shard thread).
    probe: RunProbe,
}

impl<'a, L: Link> ShardCore<'a, L> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        circuit: &'a Circuit,
        stimulus: &'a Stimulus,
        delays: &'a DelayModel,
        partition: Partition,
        link: L,
        ctl: &'a RunCtl,
        fault: &'a FaultPlan,
        rebalance: Option<(&'a MigrationBus, RebalancePolicy)>,
        ckpt: Option<CkptSpec>,
        probe: RunProbe,
        arena_capacity: usize,
        mem: &'a ShardMemStat,
        waits: &'a WaitMatrix,
    ) -> Self {
        let shard = link.shard();
        let owned = partition.nodes_of(shard);
        let mut nodes: Vec<Option<ShardNode>> = (0..circuit.num_nodes()).map(|_| None).collect();
        for &id in &owned {
            let n = circuit.node(id);
            nodes[id.index()] = Some(ShardNode {
                kind: n.kind,
                delay: match n.kind {
                    NodeKind::Input => delays.input,
                    NodeKind::Output => delays.output,
                    NodeKind::Gate(kind) => delays.of(kind),
                },
                ports: (0..n.kind.num_inputs()).map(|_| PortQueue::new()).collect(),
                latch: Latch::new(),
                null_sent: false,
                waveform: Waveform::new(),
            });
        }
        let mut arena = EventArena::with_capacity(arena_capacity);
        let cut_out = outgoing_cut_edges(circuit, &partition, shard);
        let last_floor = vec![0; cut_out.len()];
        let cut_in = incoming_cut_edges(circuit, &partition, shard);
        let num_shards = partition.num_shards();
        let mut reb = rebalance.map(|(bus, policy)| RebalanceRt::new(bus, policy, num_shards));

        // Restore: overwrite the fresh per-node state with the snapshot's
        // and fast-forward the epoch counter past the restored barrier.
        let mut ckpt = ckpt;
        let mut stats = SimStats::default();
        let mut resumed = false;
        if let Some((epoch, snap)) = ckpt.as_mut().and_then(|ck| ck.resume.take()) {
            assert_eq!(snap.shard, shard as u64, "snapshot routed to wrong shard");
            assert_eq!(
                snap.nodes.len(),
                owned.len(),
                "snapshot does not cover this shard's nodes (partition changed?)"
            );
            stats = SimStats::from_array(snap.stats);
            for ns in &snap.nodes {
                let slot = nodes[ns.id as usize]
                    .as_mut()
                    .expect("snapshot node is owned by this shard");
                slot.null_sent = ns.null_sent;
                slot.latch = Latch(ns.latch);
                slot.ports = ns
                    .ports
                    .iter()
                    .map(|p| PortQueue::restore(&mut arena, p.last_ts, p.events.iter().copied()))
                    .collect();
                let mut wf = Waveform::new();
                for &e in &ns.waveform {
                    wf.record(e);
                }
                slot.waveform = wf;
            }
            if let Some(rt) = reb.as_mut() {
                rt.epoch = epoch + 1;
            }
            resumed = true;
        }
        ShardCore {
            shard,
            circuit,
            stimulus,
            partition,
            ctl,
            fault,
            nodes,
            owned,
            link,
            cut_out,
            last_floor,
            cut_in,
            waits,
            null_wait: (0..num_shards).map(|_| None).collect(),
            workset: VecDeque::new(),
            queued: vec![false; circuit.num_nodes()],
            stats,
            temp: Vec::new(),
            arena,
            mem,
            reb,
            ckpt,
            resumed,
            probe,
        }
    }

    fn node(&self, id: NodeId) -> &ShardNode {
        self.nodes[id.index()].as_ref().expect("owned node")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut ShardNode {
        self.nodes[id.index()].as_mut().expect("owned node")
    }

    fn owns(&self, id: NodeId) -> bool {
        self.partition.shard_of(id) == self.shard
    }

    /// The shard's main loop: drain inbox, run active nodes, and when
    /// idle offer lookahead promises, flush the transport, and block
    /// briefly on the inbox.
    pub(crate) fn run(&mut self) {
        if self.fault.is_active() && self.fault.should_panic_shard(self.shard as u64) {
            self.ctl.record_error(SimError::TaskPanicked {
                node: None,
                payload: "injected shard panic".into(),
            });
            panic!("fault injection: panic in shard {}", self.shard);
        }
        if self.resumed {
            // Activity is a pure function of restored per-node state, so
            // re-deriving it from scratch resumes the exact frontier:
            // inputs that had not yet emitted re-run their full stimulus
            // (input runs are atomic between epoch safe points), gates
            // with ready events re-queue, everything else stays parked.
            for id in self.owned.clone() {
                self.activate(id);
            }
        } else {
            let inputs: Vec<NodeId> = self
                .owned
                .iter()
                .copied()
                .filter(|&id| matches!(self.node(id).kind, NodeKind::Input))
                .collect();
            for id in inputs {
                self.activate(id);
            }
        }
        loop {
            // Publish arena occupancy where the watchdog and metrics can
            // see it (relaxed stores: diagnostic, not synchronizing).
            self.mem.record_arena(self.arena.live());
            self.probe.arena(self.arena.live(), self.arena.high_water());
            if self.ctl.is_cancelled() {
                return;
            }
            self.drain_inbox();
            if self.maybe_epoch().is_err() {
                return;
            }
            while let Some(id) = self.workset.pop_front() {
                self.queued[id.index()] = false;
                if self.ctl.is_cancelled() {
                    return;
                }
                if self.fault.is_active() && self.fault_hooks(id).is_err() {
                    return;
                }
                if self.run_node(id).is_err() {
                    return;
                }
                // Keep the inbox shallow while churning through the
                // workset: cheap, and it keeps upstream senders unblocked.
                self.drain_inbox();
                // The hot shard's workset may never run dry, so the epoch
                // safe point must live inside the drain loop too.
                if self.maybe_epoch().is_err() {
                    return;
                }
            }
            if self.owned.iter().all(|&id| self.node(id).null_sent) {
                debug_assert!(self.workset.is_empty());
                // Clean Chandy–Misra termination. Tell the rebalancing
                // peers we will never answer another barrier, then push
                // every coalesced message to the wire before retiring:
                // downstream shards still need the events and terminal
                // NULLs we batched.
                if self.reb.is_some() && self.broadcast_control(retire_msg(self.shard)).is_err() {
                    return;
                }
                // Terminal snapshot: stands in for this shard in every
                // later checkpoint epoch (its state is a fixed point).
                if let Some(sink) = self.ckpt.as_ref().map(|ck| Arc::clone(&ck.sink)) {
                    sink.submit_final(self.snapshot());
                }
                self.final_flush();
                return;
            }
            // Idle: nothing runnable until a message arrives. Promise
            // clock floors downstream, flush anything a batching
            // transport is still holding, then block briefly.
            if self.send_lookahead_nulls().is_err() {
                return;
            }
            if self.link.flush().is_err() {
                return; // fabric torn down
            }
            if !self.workset.is_empty() {
                continue; // inbox drain inside a send loop found work
            }
            // This block is the blocked-on-NULL state: nothing runnable
            // until an upstream shard advances a channel clock. Charge
            // the time to whichever peer's clock is holding us back.
            let culprit = self.blocking_peer();
            let waited = Instant::now();
            match self.link.recv_timeout(IDLE_RECV_TIMEOUT) {
                Ok(msg) => {
                    self.note_null_wait(culprit, waited.elapsed());
                    self.handle(msg)
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.note_null_wait(culprit, waited.elapsed())
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every other shard is gone but we are not done: the
                    // run is wedged (or cancelled); don't spin while the
                    // watchdog/cancellation decides.
                    std::thread::sleep(IDLE_RECV_TIMEOUT);
                }
            }
        }
    }

    /// Which peer shard to blame for an idle wait: the source of the
    /// incoming cut edge whose receive clock is lowest (ties to the
    /// lowest shard id, for determinism). That channel is the binding
    /// constraint — every other input has promised at least as far.
    /// `None` when every incoming edge has already delivered its
    /// terminal NULL (then the wait is on local work, not a peer).
    fn blocking_peer(&self) -> Option<ShardId> {
        let mut best: Option<(Timestamp, ShardId)> = None;
        for &(src_shard, target) in &self.cut_in {
            let Some(node) = self.nodes[target.node.index()].as_ref() else {
                continue; // migrated away since the list was built
            };
            let ts = node.ports[target.port as usize].last_ts();
            if ts == NULL_TS {
                continue;
            }
            if best.is_none_or(|b| (ts, src_shard) < b) {
                best = Some((ts, src_shard));
            }
        }
        best.map(|(_, s)| s)
    }

    /// Record one idle-blocked interval against `peer` in the shared
    /// wait matrix and the per-peer `sim_null_wait_ns_total` counter.
    fn note_null_wait(&mut self, peer: Option<ShardId>, waited: Duration) {
        let ns = waited.as_nanos() as u64;
        let Some(peer) = peer else { return };
        if ns == 0 {
            return;
        }
        self.waits.add(self.shard, peer, ns);
        if self.probe.is_enabled() {
            let probe = &self.probe;
            let counter = self.null_wait[peer].get_or_insert_with(|| {
                probe.counter("sim_null_wait_ns_total", &[("peer", &peer.to_string())])
            });
            counter.add(ns);
        }
    }

    /// Drive [`Link::flush`] to completion at clean termination. `false`
    /// from flush means traffic is still queued behind a momentarily
    /// full outbox (or an in-flight writer): drain our inbox — we may
    /// still be handed lookahead promises we no longer need — and retry.
    fn final_flush(&mut self) {
        loop {
            match self.link.flush() {
                Ok(true) => return,
                Ok(false) => {
                    if self.ctl.is_cancelled() {
                        return;
                    }
                    self.drain_inbox();
                    std::thread::yield_now();
                }
                Err(_) => return, // peer gone; the error is already recorded
            }
        }
    }

    /// Fault-plan decision points at a node activation (mirrors the HJ
    /// engine's task body).
    fn fault_hooks(&mut self, id: NodeId) -> Result<(), Stopped> {
        if self.fault.is_wedged() {
            // Deliberate wedge (watchdog tests): hold the node and make no
            // progress until the watchdog cancels the run.
            while !self.ctl.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            return Err(Stopped);
        }
        if self.fault.should_panic_spawn() {
            self.ctl.record_error(SimError::TaskPanicked {
                node: Some(id.index()),
                payload: "injected task panic".into(),
            });
            panic!("fault injection: task panic at node {}", id.index());
        }
        if let Some(delay) = self.fault.straggler_delay() {
            std::thread::sleep(delay);
        }
        Ok(())
    }

    /// Queue an owned node if it is active and not already queued.
    fn activate(&mut self, id: NodeId) {
        debug_assert!(self.owns(id));
        if self.queued[id.index()] {
            return;
        }
        let node = self.node(id);
        let active = match node.kind {
            // Inputs run exactly once, eagerly seeded by `run`.
            NodeKind::Input => !node.null_sent,
            _ => is_active(&node.ports, node.null_sent),
        };
        if active {
            self.queued[id.index()] = true;
            self.workset.push_back(id);
        }
    }

    /// Non-blocking inbox drain: route every pending message into its
    /// port queue and re-check the destination's activity.
    fn drain_inbox(&mut self) {
        loop {
            match self.link.try_recv() {
                Ok(msg) => self.handle(msg),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return,
            }
        }
    }

    /// True while payload must be buffered instead of applied (transfer
    /// wait: it may target nodes not yet adopted from the bus).
    fn buffering(&self) -> bool {
        self.reb.as_ref().is_some_and(|rt| rt.in_transfer)
    }

    /// Checkpoint-epoch buffering: payload from a peer whose barrier
    /// marker we already hold was sent *after* that peer's snapshot.
    /// Applying it before our own snapshot would bake post-cut traffic
    /// into the checkpoint — traffic the sender deterministically
    /// regenerates after a restore, so it would be delivered twice. Hold
    /// it until the epoch rolls over (markers clear at rollover, so the
    /// condition self-releases). See DESIGN.md §12.
    fn ckpt_holds(&self, target: Target) -> bool {
        let (Some(ck), Some(rt)) = (&self.ckpt, &self.reb) else {
            return false;
        };
        let src = ck.src_shard[target.node.index()][usize::from(target.port)];
        src != self.shard && rt.markers[src].is_some()
    }

    /// This shard's complete Chandy–Misra state for the checkpoint cut.
    fn snapshot(&self) -> ShardSnapshot {
        let nodes = self
            .owned
            .iter()
            .map(|&id| {
                let n = self.node(id);
                NodeSnapshot {
                    id: id.index() as u64,
                    null_sent: n.null_sent,
                    latch: n.latch.0,
                    ports: n
                        .ports
                        .iter()
                        .map(|p| PortSnapshot {
                            last_ts: p.last_ts(),
                            events: p.snapshot_events(&self.arena),
                        })
                        .collect(),
                    waveform: n.waveform.events().to_vec(),
                }
            })
            .collect();
        ShardSnapshot {
            shard: self.shard as u64,
            stats: self.stats.as_array(),
            nodes,
        }
    }

    /// Apply one cross-shard message.
    fn handle(&mut self, msg: ShardMsg) {
        match msg {
            ShardMsg::Event { target, time, value } => {
                if self.buffering() || self.ckpt_holds(target) {
                    self.reb.as_mut().expect("buffering").held.push(msg);
                    return;
                }
                debug_assert!(self.owns(target.node), "message routed to wrong shard");
                self.stats.events_delivered += 1;
                self.probe
                    .hot_instant(SpanKind::EventDeliver, target.node.index() as u64, time);
                self.ctl.tick();
                self.nodes[target.node.index()]
                    .as_mut()
                    .expect("owned node")
                    .ports[target.port as usize]
                    .push(&mut self.arena, Event::new(time, value));
                self.activate(target.node);
            }
            ShardMsg::Null { target, time } => {
                if self.buffering() || self.ckpt_holds(target) {
                    self.reb.as_mut().expect("buffering").held.push(msg);
                    return;
                }
                debug_assert!(self.owns(target.node), "message routed to wrong shard");
                self.probe
                    .hot_instant(SpanKind::NullRecv, target.node.index() as u64, time);
                let port = &mut self.node_mut(target.node).ports[target.port as usize];
                if time == NULL_TS {
                    port.push_null();
                    self.ctl.tick();
                } else {
                    // Lookahead promise: advance the port clock only.
                    port.advance_clock(time);
                }
                self.activate(target.node);
            }
            ShardMsg::BarrierRequest { from, epoch } => self.note_barrier_request(from, epoch),
            ShardMsg::Barrier { from, epoch, load, depth } => {
                self.note_barrier(from, epoch, load, depth)
            }
            ShardMsg::Transferred { from, epoch } => self.note_transferred(from, epoch),
            ShardMsg::Retire { from } => self.note_retire(from),
        }
    }

    /// A peer crossed its epoch threshold and wants a barrier. Only the
    /// leader acts on these; starting a barrier is always safe (worst
    /// case the planner finds nothing to move). A request from a peer
    /// already one epoch ahead is deferred; one for an epoch whose
    /// barrier is running or already ran is satisfied and dropped (the
    /// requester will re-request next epoch if it is still hot).
    fn note_barrier_request(&mut self, from: ShardId, epoch: u64) {
        let Some(rt) = self.reb.as_mut() else { return };
        if epoch > rt.epoch {
            debug_assert_eq!(epoch, rt.epoch + 1, "peers may be at most one epoch ahead");
            rt.deferred.push(ShardMsg::BarrierRequest { from, epoch });
        } else if epoch == rt.epoch && !rt.in_epoch {
            rt.pending = true;
        }
    }

    /// Record a peer's barrier marker (and its telemetry). A marker for
    /// the current epoch received outside `run_epoch` is the signal to
    /// join the barrier at the next safe point; one received for a
    /// future epoch (a fast peer already moved on) is deferred.
    fn note_barrier(&mut self, from: ShardId, epoch: u64, load: u64, depth: u64) {
        let Some(rt) = self.reb.as_mut() else { return };
        self.ctl.tick();
        if epoch == rt.epoch {
            rt.markers[from] = Some(ShardLoad {
                events: load,
                inbox_depth: depth,
                active: true,
            });
            if !rt.in_epoch {
                rt.pending = true;
            }
        } else {
            debug_assert_eq!(epoch, rt.epoch + 1, "peers may be at most one epoch ahead");
            rt.deferred.push(ShardMsg::Barrier { from, epoch, load, depth });
        }
    }

    /// A peer finished parking its donations for the current epoch.
    fn note_transferred(&mut self, from: ShardId, epoch: u64) {
        let Some(rt) = self.reb.as_mut() else { return };
        self.ctl.tick();
        debug_assert_eq!(
            epoch, rt.epoch,
            "Transferred cannot outrun the epoch's marker round"
        );
        rt.transferred[from] = true;
    }

    /// A peer retired: it owes no traffic and answers no more barriers.
    fn note_retire(&mut self, from: ShardId) {
        let Some(rt) = self.reb.as_mut() else { return };
        self.ctl.tick();
        rt.retired[from] = true;
    }

    /// The barrier leader: the lowest shard not seen retiring. Views can
    /// briefly disagree while a `Retire` is in flight; a request sent to
    /// a just-retired leader is simply lost, which costs one rebalance
    /// opportunity, never correctness.
    fn leader(&self) -> ShardId {
        let rt = self.reb.as_ref().expect("rebalance enabled");
        (0..self.partition.num_shards())
            .find(|&s| s == self.shard || !rt.retired[s])
            .expect("self is never retired")
    }

    /// Epoch safe point: called between node runs (never inside one), so
    /// migrating a node can never tear state out from under `run_node`.
    fn maybe_epoch(&mut self) -> Result<(), Stopped> {
        let Some(rt) = self.reb.as_ref() else {
            return Ok(());
        };
        if rt.pending {
            return self.run_epoch();
        }
        if rt.events >= rt.policy.epoch_events {
            let leader = self.leader();
            if leader == self.shard {
                self.reb.as_mut().expect("rebalance enabled").pending = true;
                return self.run_epoch();
            }
            if !rt.requested {
                let epoch = rt.epoch;
                self.reb.as_mut().expect("rebalance enabled").requested = true;
                self.send_control(leader, ShardMsg::BarrierRequest { from: self.shard, epoch })?;
            }
        }
        Ok(())
    }

    /// Run one epoch barrier: all-to-all markers, a locally computed
    /// (identical-everywhere) plan, and — when the plan moves nodes — the
    /// park/transfer/adopt migration round. See the module docs.
    fn run_epoch(&mut self) -> Result<(), Stopped> {
        let k = self.partition.num_shards();
        let depth = self.link.inbox_len() as u64;
        self.probe
            .tracer()
            .begin(SpanKind::RebalanceBarrier, self.shard as u64);
        let epoch;
        {
            let rt = self.reb.as_mut().expect("rebalance enabled");
            rt.pending = false;
            rt.in_epoch = true;
            epoch = rt.epoch;
            rt.markers[self.shard] = Some(ShardLoad {
                events: rt.events,
                inbox_depth: depth,
                active: true,
            });
        }
        if self.fault.is_active() && self.fault.should_panic_migration(epoch) {
            self.ctl.record_error(SimError::TaskPanicked {
                node: None,
                payload: format!("injected panic at migration epoch {epoch}"),
            });
            panic!(
                "fault injection: panic at migration epoch {epoch} in shard {}",
                self.shard
            );
        }
        let events = self.reb.as_ref().expect("rebalance enabled").events;
        self.broadcast_control(ShardMsg::Barrier {
            from: self.shard,
            epoch,
            load: events,
            depth,
        })?;
        // Collect every active peer's marker; a Retire stands in for one.
        // FIFO mailboxes guarantee all pre-barrier payload from a peer is
        // applied before its marker is, so once this wait completes no
        // old-routing traffic can be in flight.
        self.await_peers(|rt, s| rt.markers[s].is_some())?;

        // Deterministic checkpoint: with every live peer's marker held,
        // the channels toward us hold only post-cut traffic (buffered by
        // `ckpt_holds`, regenerated by the sender after a restore), and
        // between our own marker broadcast and this point we sent no
        // payload — so this shard's state alone is its complete
        // contribution to the global cut at this epoch.
        if let Some((sink, rank)) = self.ckpt.as_ref().map(|ck| (Arc::clone(&ck.sink), ck.rank)) {
            if self.fault.is_active() && self.fault.should_kill_rank(rank, epoch) {
                // The kill lands *before* the snapshot is submitted, so
                // epoch `epoch` never completes on this rank and recovery
                // restores from an earlier consistent epoch.
                self.ctl.record_error(SimError::Transport {
                    peer: Some(rank as usize),
                    direction: None,
                    epoch: Some(epoch),
                    context: "injected rank kill at checkpoint epoch".into(),
                });
                panic!("fault injection: rank {rank} killed at epoch {epoch}");
            }
            sink.submit(epoch, self.snapshot());
        }

        let (plan, counts_rebalance) = {
            let rt = self.reb.as_ref().expect("rebalance enabled");
            // A held marker proves the peer participated in THIS epoch —
            // even if its Retire has also arrived already (it finished the
            // epoch first and then terminated). Using the marker whenever
            // one exists is what keeps the loads, and therefore the plan,
            // identical on every participant: the fast peer computed with
            // itself active, so the slow ones must too.
            let loads: Vec<ShardLoad> = (0..k)
                .map(|s| rt.markers[s].unwrap_or_default())
                .collect();
            let plan = plan_rebalance(self.circuit, &self.partition, &loads, &rt.policy);
            // Exactly one participant accounts the rebalance: the lowest
            // shard that contributed a marker (every participant holds
            // every participant's marker, so the set is agreed on).
            let lowest = (0..k)
                .find(|&s| rt.markers[s].is_some())
                .expect("self's marker is recorded");
            (plan, lowest == self.shard)
        };

        if let Some(plan) = plan {
            if counts_rebalance {
                self.stats.rebalances += 1;
            }
            // Scheduling state is rebuilt from scratch after the move;
            // activity is a pure function of per-node state, so nothing
            // is lost by clearing it.
            self.workset.clear();
            self.queued.iter_mut().for_each(|q| *q = false);
            self.reb.as_mut().expect("rebalance enabled").in_transfer = true;
            for m in &plan.moves {
                self.partition.reassign(m.node, m.to);
                if m.from == self.shard {
                    self.probe.tracer().instant(
                        SpanKind::Migration,
                        m.node.index() as u64,
                        m.to as u64,
                    );
                    let node = self.nodes[m.node.index()].take().expect("donor owns the node");
                    let parked = park_node(node, &mut self.arena);
                    self.reb
                        .as_ref()
                        .expect("rebalance enabled")
                        .bus
                        .park(m.node.index(), parked);
                    self.stats.nodes_migrated += 1;
                }
            }
            self.broadcast_control(ShardMsg::Transferred { from: self.shard, epoch })?;
            // Nobody resumes simulation until every active shard has
            // parked its donations and repointed its routing; the channel
            // round also sequences the bus accesses (park happens-before
            // the Transferred send, which happens-before our take).
            self.await_peers(|rt, s| rt.transferred[s])?;
            for m in &plan.moves {
                if m.to == self.shard {
                    let parked =
                        self.reb.as_ref().expect("rebalance enabled").bus.take(m.node.index());
                    self.nodes[m.node.index()] = Some(adopt_node(parked, &mut self.arena));
                }
            }
            self.owned = self.partition.nodes_of(self.shard);
            self.cut_out = outgoing_cut_edges(self.circuit, &self.partition, self.shard);
            self.cut_in = incoming_cut_edges(self.circuit, &self.partition, self.shard);
            // Promise floors restart at zero; stale (lower) promises are
            // ignored by the receiver's monotone `advance_clock`.
            self.last_floor = vec![0; self.cut_out.len()];
            for id in self.owned.clone() {
                self.activate(id);
            }
        }

        // Roll the epoch over and release anything buffered meanwhile.
        let (held, deferred) = {
            let rt = self.reb.as_mut().expect("rebalance enabled");
            rt.in_transfer = false;
            rt.in_epoch = false;
            rt.events = 0;
            rt.requested = false;
            rt.epoch += 1;
            rt.markers.iter_mut().for_each(|m| *m = None);
            rt.transferred.iter_mut().for_each(|t| *t = false);
            (std::mem::take(&mut rt.held), std::mem::take(&mut rt.deferred))
        };
        for msg in held {
            self.handle(msg);
        }
        for msg in deferred {
            self.handle(msg);
        }
        self.probe
            .tracer()
            .end(SpanKind::RebalanceBarrier, self.shard as u64, epoch);
        Ok(())
    }

    /// Block until `ready` holds for every non-retired peer, applying
    /// whatever arrives meanwhile. Cancellation (a peer's panic, the
    /// watchdog) breaks the wait — no barrier ever outlives the run.
    fn await_peers<F>(&mut self, ready: F) -> Result<(), Stopped>
    where
        F: Fn(&RebalanceRt, ShardId) -> bool,
    {
        let k = self.partition.num_shards();
        loop {
            if self.ctl.is_cancelled() {
                return Err(Stopped);
            }
            let laggard = {
                let rt = self.reb.as_ref().expect("rebalance enabled");
                (0..k).find(|&s| s != self.shard && !rt.retired[s] && !ready(rt, s))
            };
            let Some(laggard) = laggard else {
                return Ok(());
            };
            // Barrier waits count as stalls too: the first peer whose
            // marker is missing is who we are blocked on.
            let waited = Instant::now();
            match self.link.recv_timeout(IDLE_RECV_TIMEOUT) {
                Ok(msg) => {
                    self.note_null_wait(Some(laggard), waited.elapsed());
                    self.handle(msg)
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.note_null_wait(Some(laggard), waited.elapsed());
                    // A batching transport may still be holding our own
                    // barrier traffic (e.g. a marker that hit a full
                    // outbox on its urgent flush); push it out so the
                    // barrier cannot wedge on an unflushed link. Errors
                    // surface through cancellation.
                    let _ = self.link.flush();
                }
                Err(RecvTimeoutError::Disconnected) => std::thread::sleep(IDLE_RECV_TIMEOUT),
            }
        }
    }

    /// Send a control message to every non-retired peer.
    fn broadcast_control(&mut self, msg: ShardMsg) -> Result<(), Stopped> {
        for dst in 0..self.partition.num_shards() {
            if dst == self.shard || self.reb.as_ref().is_some_and(|rt| rt.retired[dst]) {
                continue;
            }
            self.send_control(dst, msg)?;
        }
        Ok(())
    }

    /// Like [`Self::send_cross`], but tolerant of a vanished peer: a
    /// `Disconnected` destination has retired (its `Retire` may still be
    /// queued behind this send) or the run is tearing down; either way
    /// the control message is moot and dropping it is safe — barriers
    /// never wait on a shard whose disappearance has been observed.
    fn send_control(&mut self, dst: ShardId, msg: ShardMsg) -> Result<(), Stopped> {
        debug_assert_ne!(dst, self.shard);
        let mut msg = msg;
        loop {
            match self.link.try_send(dst, msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(m)) => {
                    if self.ctl.is_cancelled() {
                        return Err(Stopped);
                    }
                    msg = m;
                    let before = self.link.inbox_len();
                    self.drain_inbox();
                    if before == 0 {
                        std::thread::yield_now();
                    }
                }
                Err(TrySendError::Disconnected) => return Ok(()),
            }
        }
    }

    /// Send one message across a shard boundary, draining our own inbox
    /// while the destination is full (cyclic-backpressure deadlock
    /// avoidance). `Err` means the run is cancelled or the destination is
    /// gone — the caller retires.
    fn send_cross(&mut self, dst: ShardId, msg: ShardMsg) -> Result<(), Stopped> {
        debug_assert_ne!(dst, self.shard);
        let mut msg = msg;
        loop {
            match self.link.try_send(dst, msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(m)) => {
                    if self.ctl.is_cancelled() {
                        return Err(Stopped);
                    }
                    msg = m;
                    let before = self.link.inbox_len();
                    self.probe
                        .tracer()
                        .instant(SpanKind::MailboxStall, dst as u64, before as u64);
                    self.drain_inbox();
                    if before == 0 {
                        // Nothing of ours to drain: the destination is
                        // momentarily busy, not cyclically blocked on us.
                        std::thread::yield_now();
                    }
                }
                Err(TrySendError::Disconnected) => {
                    // The destination shard exited. On a clean exit it can
                    // no longer be owed traffic, so this only happens when
                    // the run is being torn down.
                    return Err(Stopped);
                }
            }
        }
    }

    /// Count one processed event toward the epoch telemetry.
    #[inline]
    fn note_processed(&mut self) {
        self.stats.events_processed += 1;
        if let Some(rt) = self.reb.as_mut() {
            rt.events += 1;
        }
    }

    /// Deliver one payload event to `target`, locally or across the cut.
    fn deliver(&mut self, target: Target, event: Event) -> Result<(), Stopped> {
        let dst = self.partition.shard_of(target.node);
        self.probe
            .hot_instant(SpanKind::EventDeliver, target.node.index() as u64, event.time);
        if dst == self.shard {
            self.stats.events_delivered += 1;
            self.ctl.tick();
            self.nodes[target.node.index()]
                .as_mut()
                .expect("owned node")
                .ports[target.port as usize]
                .push(&mut self.arena, event);
            self.activate(target.node);
        } else {
            self.stats.cut_events_sent += 1;
            self.ctl.tick();
            self.send_cross(
                dst,
                ShardMsg::Event {
                    target,
                    time: event.time,
                    value: event.value,
                },
            )?;
        }
        Ok(())
    }

    /// Deliver the terminal NULL to `target`, locally or across the cut.
    /// The sender counts `nulls_sent` (one per edge, as in the sequential
    /// engine), keeping the total deterministic at `num_edges`.
    fn deliver_null(&mut self, target: Target) -> Result<(), Stopped> {
        self.stats.nulls_sent += 1;
        self.probe
            .hot_instant(SpanKind::NullSend, target.node.index() as u64, NULL_TS);
        let dst = self.partition.shard_of(target.node);
        if dst == self.shard {
            self.ctl.tick();
            self.node_mut(target.node).ports[target.port as usize].push_null();
            self.activate(target.node);
        } else {
            self.stats.shard_nulls_sent += 1;
            self.ctl.tick();
            self.send_cross(
                dst,
                ShardMsg::Null {
                    target,
                    time: NULL_TS,
                },
            )?;
        }
        Ok(())
    }

    /// Process all of a node's ready events (the sequential `RUNNODE`,
    /// with routing on delivery).
    fn run_node(&mut self, id: NodeId) -> Result<(), Stopped> {
        self.stats.node_runs += 1;
        let before = self.stats.events_processed;
        let span = self.probe.begin(id.index());
        let result = match self.node(id).kind {
            NodeKind::Input => self.run_input(id),
            _ => self.run_gate_or_output(id),
        };
        self.probe
            .end(span, id.index(), self.stats.events_processed - before);
        result
    }

    /// Emit an input node's whole stimulus, then its terminal NULL.
    fn run_input(&mut self, id: NodeId) -> Result<(), Stopped> {
        let input_ix = self
            .circuit
            .inputs()
            .iter()
            .position(|&i| i == id)
            .expect("id is an input node");
        let delay = self.node(id).delay;
        let fanout = self.circuit.node(id).fanout.clone();
        let events = self.stimulus.input_events(input_ix).to_vec();
        for tv in &events {
            // The initial event itself counts as delivered + processed.
            self.stats.events_delivered += 1;
            self.note_processed();
            let out = Event::new(tv.time + delay, tv.value);
            for &t in &fanout {
                self.deliver(t, out)?;
            }
        }
        for &t in &fanout {
            self.deliver_null(t)?;
        }
        if let Some(last) = events.last() {
            self.node_mut(id).latch.set(0, last.value);
        }
        self.node_mut(id).null_sent = true;
        Ok(())
    }

    fn run_gate_or_output(&mut self, id: NodeId) -> Result<(), Stopped> {
        let mut temp = std::mem::take(&mut self.temp);
        temp.clear();
        {
            let node = self.nodes[id.index()].as_mut().expect("owned node");
            let clock = local_clock(&node.ports);
            drain_ready(&mut node.ports, &mut self.arena, clock, &mut temp);
        }
        self.probe.batch(temp.len() as u64);

        let fanout = self.circuit.node(id).fanout.clone();
        let mut result = Ok(());
        for &(port, ev) in &temp {
            self.note_processed();
            let emitted = {
                let node = self.node_mut(id);
                node.latch.set(port, ev.value);
                match node.kind {
                    NodeKind::Output => {
                        node.waveform.record(ev);
                        None
                    }
                    NodeKind::Gate(kind) => {
                        let out_val = kind.eval(node.latch.values(kind.arity()));
                        Some(Event::new(ev.time + node.delay, out_val))
                    }
                    NodeKind::Input => unreachable!("inputs use run_input"),
                }
            };
            if let Some(out) = emitted {
                for &t in &fanout {
                    if self.deliver(t, out).is_err() {
                        result = Err(Stopped);
                        break;
                    }
                }
            }
            if result.is_err() {
                break;
            }
        }
        self.temp = temp;
        result?;

        // Forward the terminal NULL once every port is closed and drained.
        let node = self.node(id);
        if !node.null_sent
            && local_clock(&node.ports) == NULL_TS
            && node.ports.iter().all(|p| p.is_empty())
        {
            self.node_mut(id).null_sent = true;
            for &t in &fanout {
                self.deliver_null(t)?;
            }
        }
        Ok(())
    }

    /// An idle shard's demand-driven promises: for every open outgoing cut
    /// edge `u → v`, the earliest event that can still cross is bounded
    /// below by `LB(u) + delay(u)`, where `LB(u)` is the earliest
    /// timestamp `u` might still process (queue heads and port clocks).
    /// Promise the floor `LB + delay - 1` whenever it strictly improves on
    /// the last promise. No progress tick: promises alone must not feed
    /// the watchdog.
    fn send_lookahead_nulls(&mut self) -> Result<(), Stopped> {
        for i in 0..self.cut_out.len() {
            let CutEdge { src, target, dst_shard } = self.cut_out[i];
            let node = self.node(src);
            if node.null_sent || matches!(node.kind, NodeKind::Input) {
                continue; // edge closed (or closing in one atomic run)
            }
            let lb = node
                .ports
                .iter()
                .map(|p| p.next_event_bound())
                .min()
                .unwrap_or(NULL_TS);
            if lb == NULL_TS {
                continue; // node is about to forward its terminal NULL
            }
            let floor = lb.saturating_add(node.delay).saturating_sub(1);
            if floor > self.last_floor[i] {
                self.last_floor[i] = floor;
                self.stats.shard_nulls_sent += 1;
                self.probe
                    .hot_instant(SpanKind::NullSend, target.node.index() as u64, floor);
                self.send_cross(dst_shard, ShardMsg::Null { target, time: floor })?;
            }
        }
        Ok(())
    }

    /// Finalize after clean termination: verify the Chandy–Misra
    /// invariants and extract this shard's slice of the output.
    pub(crate) fn into_outcome(mut self) -> ShardOutcome {
        let link_stats = self.link.stats();
        self.stats.net_frames_sent += link_stats.frames_sent;
        self.stats.net_bytes_sent += link_stats.bytes_sent;
        self.stats.net_msgs_batched += link_stats.msgs_batched;
        self.stats.net_forced_flushes += link_stats.forced_flushes;
        let mut values = Vec::with_capacity(self.owned.len());
        let mut waveforms = Vec::new();
        for &id in &self.owned {
            let node = self.nodes[id.index()].as_mut().expect("owned node");
            debug_assert!(
                node.ports.iter().all(|p| p.is_empty()),
                "node {} has undrained events",
                id.index()
            );
            debug_assert!(node.null_sent, "node {} never forwarded NULL", id.index());
            let value = match node.kind {
                NodeKind::Input | NodeKind::Output => node.latch.0[0],
                NodeKind::Gate(kind) => kind.eval(node.latch.values(kind.arity())),
            };
            values.push((id.index(), value));
            if matches!(node.kind, NodeKind::Output) {
                let out_ix = self
                    .circuit
                    .outputs()
                    .iter()
                    .position(|&o| o == id)
                    .expect("output node is listed");
                waveforms.push((out_ix, std::mem::take(&mut node.waveform)));
            }
        }
        debug_assert_eq!(
            self.arena.live(),
            0,
            "undrained events leaked in the shard arena"
        );
        ShardOutcome {
            stats: self.stats,
            values,
            waveforms,
        }
    }
}

/// Free helper so `run`'s borrow of `self.reb` doesn't conflict.
fn retire_msg(shard: ShardId) -> ShardMsg {
    ShardMsg::Retire { from: shard }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seq::SeqWorksetEngine;
    use crate::validate::check_equivalent;
    use circuit::generators::{
        c17, fanout_tree, full_adder, inverter_chain, kogge_stone_adder, wallace_multiplier,
    };

    const STRATEGIES: [PartitionStrategy; 3] = [
        PartitionStrategy::RoundRobin,
        PartitionStrategy::BfsLayered,
        PartitionStrategy::GreedyCut,
    ];

    fn sharded(k: usize, strategy: PartitionStrategy) -> ShardedEngine {
        ShardedEngine::from_config(&EngineConfig::default().with_shards(k).with_strategy(strategy))
    }

    fn sharded_k(k: usize) -> ShardedEngine {
        sharded(k, PartitionStrategy::default())
    }

    fn check_against_seq(circuit: &Circuit, stimulus: &Stimulus) {
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(circuit, stimulus, &delays);
        for strategy in STRATEGIES {
            for k in [1, 2, 4, 8] {
                let engine = sharded(k, strategy);
                let out = engine.run(circuit, stimulus, &delays);
                check_equivalent(&seq, &out)
                    .unwrap_or_else(|e| panic!("k={k} {strategy:?}: {e}"));
                assert_eq!(
                    out.stats.events_processed, out.stats.events_delivered,
                    "conservation, k={k} {strategy:?}"
                );
                assert_eq!(
                    out.stats.nulls_sent as usize,
                    circuit.num_edges(),
                    "terminal nulls, k={k} {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn matches_seq_on_c17() {
        let c = c17();
        let s = Stimulus::random_vectors(&c, 10, 3, 7);
        check_against_seq(&c, &s);
    }

    #[test]
    fn matches_seq_on_full_adder_dense_ties() {
        let c = full_adder();
        let s = Stimulus::random_vectors(&c, 25, 1, 3);
        check_against_seq(&c, &s);
    }

    #[test]
    fn matches_seq_on_fanout_tree() {
        let c = fanout_tree(4, 3);
        let s = Stimulus::random_vectors(&c, 6, 2, 11);
        check_against_seq(&c, &s);
    }

    #[test]
    fn matches_seq_on_kogge_stone() {
        let c = kogge_stone_adder(16);
        let s = Stimulus::random_vectors(&c, 4, 5, 13);
        check_against_seq(&c, &s);
    }

    #[test]
    fn matches_seq_on_multiplier() {
        let c = wallace_multiplier(6);
        let s = Stimulus::random_vectors(&c, 4, 5, 17);
        check_against_seq(&c, &s);
    }

    #[test]
    fn arena_matches_owned_heap_oracle_across_k_and_pin_policies() {
        // The seq-heap engine stores whole owned events in a global
        // binary heap — it never touches `PortQueue` or `EventArena` —
        // so it is the owned-representation oracle: if the arena layer
        // dropped, duplicated, or reordered anything, the observables
        // (node values, settled waveforms, events_delivered) diverge.
        let c = kogge_stone_adder(16);
        let s = Stimulus::random_vectors(&c, 5, 4, 29);
        let delays = DelayModel::standard();
        let oracle = crate::engine::seq_heap::SeqHeapEngine::new().run(&c, &s, &delays);
        let policies = [PinPolicy::None, PinPolicy::Compact, PinPolicy::Spread];
        let mut reference: Option<SimOutput> = None;
        for k in [1, 2, 4, 8] {
            for policy in &policies {
                let out = sharded_k(k).with_pinning(policy.clone()).run(&c, &s, &delays);
                check_equivalent(&oracle, &out)
                    .unwrap_or_else(|e| panic!("k={k} pin={}: {e}", policy.label()));
                // Bit-identical across every (k, pin) combination: the
                // waveforms and values must not merely be equivalent,
                // they must be the same bytes.
                match &reference {
                    None => reference = Some(out),
                    Some(r) => {
                        assert_eq!(r.node_values, out.node_values, "k={k} pin={}", policy.label());
                        assert_eq!(
                            r.waveforms.iter().map(|w| w.settled()).collect::<Vec<_>>(),
                            out.waveforms.iter().map(|w| w.settled()).collect::<Vec<_>>(),
                            "k={k} pin={}",
                            policy.label()
                        );
                        assert_eq!(
                            r.stats.events_delivered, out.stats.events_delivered,
                            "k={k} pin={}",
                            policy.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pinning_falls_back_when_shards_exceed_cores() {
        // More shards than online cores: compact/spread wrap instead of
        // failing, and the wrapped run stays bit-identical.
        let shards = 2 * crate::engine::pin::online_cores() + 1;
        let c = c17();
        let s = Stimulus::random_vectors(&c, 6, 3, 31);
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
        for policy in [PinPolicy::Compact, PinPolicy::Spread] {
            let out = sharded_k(shards).with_pinning(policy).run(&c, &s, &delays);
            check_equivalent(&seq, &out).expect("equivalent with oversubscribed pinning");
        }
    }

    #[test]
    fn offline_core_in_explicit_pin_list_is_a_config_error() {
        let c = c17();
        let s = Stimulus::random_vectors(&c, 2, 3, 1);
        let err = sharded_k(2)
            .with_pinning(PinPolicy::Explicit(vec![0, 100_000]))
            .try_run(&c, &s, &DelayModel::standard())
            .expect_err("offline core must be rejected");
        match err {
            SimError::Config { context } => {
                assert!(context.contains("core 100000"), "{context}")
            }
            other => panic!("expected Config error, got {other}"),
        }
    }

    #[test]
    fn name_tags_pin_policy_only_when_set() {
        assert_eq!(sharded_k(2).name(), "sharded[k=2,greedy-cut]");
        assert_eq!(
            sharded_k(2).with_pinning(PinPolicy::Compact).name(),
            "sharded[k=2,greedy-cut,pin=compact]"
        );
        assert_eq!(
            sharded_k(4).with_pinning(PinPolicy::Explicit(vec![0, 1])).name(),
            "sharded[k=4,greedy-cut,pin=0,1]"
        );
    }

    #[test]
    fn checkpoint_restore_round_trips_arena_backed_queues() {
        // A mid-run checkpoint snapshots non-empty arena-backed port
        // queues (via `snapshot_events`); restoring re-homes every event
        // into the new shard's arena (via `PortQueue::restore`). Kill the
        // first life at epoch 2, restore the second — the resumed run
        // must reproduce the uninterrupted reference exactly, with
        // pinning on so the restore path also crosses pinned threads.
        let dir = std::env::temp_dir().join(format!(
            "des-arena-ckpt-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let c = kogge_stone_adder(16);
        let s = Stimulus::random_vectors(&c, 12, 10, 37);
        let delays = DelayModel::standard();
        let reference = SeqWorksetEngine::new().run(&c, &s, &delays);
        sharded_k(4)
            .with_pinning(PinPolicy::Compact)
            .with_checkpoints(40, &dir)
            .with_fault_plan(FaultPlan::seeded(7).kill_rank_at_epoch(0, 2))
            .try_run(&c, &s, &delays)
            .expect_err("the injected kill must fail the first life");
        let resumed = sharded_k(4)
            .with_pinning(PinPolicy::Compact)
            .with_checkpoints(40, &dir)
            .with_restore(true)
            .run(&c, &s, &delays);
        check_equivalent(&reference, &resumed).expect("restored observables diverge");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_mailboxes_backpressure_without_deadlock() {
        // Capacity 1 makes every cross-shard send hit the Full path; the
        // drain-own-inbox loop must still complete the run.
        let c = kogge_stone_adder(16);
        let s = Stimulus::random_vectors(&c, 8, 2, 5);
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
        let engine = sharded_k(4).with_mailbox_capacity(1);
        let out = engine.run(&c, &s, &delays);
        check_equivalent(&seq, &out).expect("equivalent under backpressure");
    }

    #[test]
    fn empty_stimulus_terminates_with_nulls_only() {
        let c = c17();
        let out = sharded_k(4).run(&c, &Stimulus::empty(5), &DelayModel::standard());
        assert_eq!(out.stats.events_delivered, 0);
        assert_eq!(out.stats.events_processed, 0);
        assert_eq!(out.stats.nulls_sent as usize, c.num_edges());
        assert!(out.waveforms.iter().all(Waveform::is_empty));
    }

    #[test]
    fn records_comm_and_partition_counters() {
        // A chain split across shards must push events over the cut.
        let c = inverter_chain(24);
        let s = Stimulus::random_vectors(&c, 6, 4, 9);
        let out = sharded_k(4).run(&c, &s, &DelayModel::standard());
        assert!(out.stats.cut_events_sent > 0, "no cross-shard events");
        assert!(out.stats.shard_nulls_sent > 0, "no cross-shard nulls");
        // Single shard: everything is local.
        let solo = sharded_k(1).run(&c, &s, &DelayModel::standard());
        assert_eq!(solo.stats.cut_events_sent, 0);
        assert_eq!(solo.stats.shard_nulls_sent, 0);
        assert_eq!(solo.stats.max_shard_imbalance_pct, 0);
        assert_eq!(solo.stats.shard_load_imbalance_pct, 0);
    }

    #[test]
    fn more_shards_than_nodes() {
        let c = c17(); // 13 nodes
        let s = Stimulus::random_vectors(&c, 3, 4, 21);
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
        let out = sharded_k(16).run(&c, &s, &delays);
        check_equivalent(&seq, &out).expect("equivalent with empty shards");
    }

    #[test]
    fn engine_is_reusable() {
        let c = full_adder();
        let engine = sharded_k(2);
        let delays = DelayModel::standard();
        let s1 = Stimulus::random_vectors(&c, 3, 10, 1);
        let s2 = Stimulus::random_vectors(&c, 3, 10, 2);
        let a1 = engine.run(&c, &s1, &delays);
        let a2 = engine.run(&c, &s2, &delays);
        let b1 = engine.run(&c, &s1, &delays);
        assert_eq!(a1.node_values, b1.node_values);
        assert_eq!(a1.stats.events_delivered, b1.stats.events_delivered);
        let _ = a2;
    }

    // -- dynamic repartitioning -------------------------------------------

    /// An aggressive policy so barriers fire on test-sized workloads.
    fn eager_rebalance() -> RebalancePolicy {
        RebalancePolicy {
            epoch_events: 32,
            min_imbalance_pct: 5,
            max_moves: 16,
        }
    }

    fn rebalancing(k: usize) -> ShardedEngine {
        ShardedEngine::from_config(
            &EngineConfig::default()
                .with_shards(k)
                .with_rebalance(Some(eager_rebalance())),
        )
    }

    /// Stimulus that drives a few inputs hard and leaves the rest almost
    /// silent, so the observed load diverges from the node-count
    /// estimate the static partition balanced for.
    fn skewed(c: &Circuit) -> Stimulus {
        Stimulus::skewed_vectors(c, 48, 2, 0xD15EA5E, 3)
    }

    #[test]
    fn rebalance_fires_on_skew_and_matches_seq() {
        let c = kogge_stone_adder(16);
        let s = skewed(&c);
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
        let out = rebalancing(4).run(&c, &s, &delays);
        check_equivalent(&seq, &out).expect("equivalent with rebalancing");
        assert_eq!(out.stats.events_processed, out.stats.events_delivered);
        assert_eq!(out.stats.nulls_sent as usize, c.num_edges());
        assert!(
            out.stats.rebalances >= 1,
            "skewed load must trigger at least one rebalance, stats: {:?}",
            out.stats
        );
        assert!(out.stats.nodes_migrated >= 1);
    }

    #[test]
    fn rebalancing_observables_identical_to_static() {
        // Identical on the *deterministic* observables (see
        // `crate::validate`): total event count, settled waveforms, final
        // node values. Raw waveforms may legally permute equal-timestamp
        // glitches between any two runs — static or rebalancing alike —
        // so bitwise waveform equality is not the determinism contract.
        let c = wallace_multiplier(6);
        let s = skewed(&c);
        let delays = DelayModel::standard();
        for k in [2, 4] {
            let on = rebalancing(k).run(&c, &s, &delays);
            let off = sharded_k(k).run(&c, &s, &delays);
            check_equivalent(&on, &off).unwrap_or_else(|m| panic!("k={k}: {m}"));
            assert_eq!(on.node_values, off.node_values, "k={k}");
            assert_eq!(
                on.stats.events_delivered, off.stats.events_delivered,
                "k={k}"
            );
            assert_eq!(on.stats.nulls_sent, off.stats.nulls_sent, "k={k}");
        }
    }

    #[test]
    fn rebalance_runs_are_repeatable() {
        let c = kogge_stone_adder(16);
        let s = skewed(&c);
        let delays = DelayModel::standard();
        let engine = rebalancing(4);
        let a = engine.run(&c, &s, &delays);
        let b = engine.run(&c, &s, &delays);
        check_equivalent(&a, &b).expect("repeat runs agree on observables");
        assert_eq!(a.node_values, b.node_values);
        assert_eq!(a.stats.events_delivered, b.stats.events_delivered);
    }

    #[test]
    fn rebalance_single_shard_is_harmless() {
        // With k=1 every barrier is a telemetry no-op (the planner needs
        // two active shards); the run must still terminate cleanly.
        let c = c17();
        let s = Stimulus::random_vectors(&c, 20, 2, 9);
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
        let out = rebalancing(1).run(&c, &s, &delays);
        check_equivalent(&seq, &out).expect("equivalent at k=1");
        assert_eq!(out.stats.rebalances, 0);
        assert_eq!(out.stats.nodes_migrated, 0);
    }

    #[test]
    fn rebalance_with_tiny_mailboxes() {
        // Control traffic must survive the backpressure path too.
        let c = kogge_stone_adder(16);
        let s = skewed(&c);
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
        let engine = rebalancing(4).with_mailbox_capacity(1);
        let out = engine.run(&c, &s, &delays);
        check_equivalent(&seq, &out).expect("equivalent under backpressure");
    }

    #[test]
    fn rebalancing_engine_name_is_tagged() {
        let plain = sharded_k(4).name();
        let tagged = rebalancing(4).name();
        assert!(!plain.ends_with(",reb]"), "untagged: {plain}");
        assert_eq!(tagged, format!("{},reb]", &plain[..plain.len() - 1]));
    }
}
