//! The engine abstraction and its implementations.
//!
//! All engines simulate the same model (paper §4.1) and must agree on the
//! deterministic observables (see [`crate::validate`]):
//!
//! * [`seq::SeqWorksetEngine`] — Algorithm 1, the sequential workset
//!   implementation the HJ version derives from.
//! * [`seq_heap::SeqHeapEngine`] — a classic global-event-list sequential
//!   simulator; the simplest possible reference oracle.
//! * [`hj::HjEngine`] — Algorithm 2: the parallel HJlib implementation
//!   with the §4.5 optimizations (each individually toggleable).
//! * [`actor::ActorEngine`] — the paper's §6 future-work proposal: one
//!   actor per node on the HJ actor layer.
//! * [`timewarp::TimeWarpEngine`] — the optimistic family of §2.1
//!   (Jefferson's Time Warp): speculative execution with rollback and
//!   anti-messages.
//! * [`sharded::ShardedEngine`] — partitioned conservative simulation:
//!   one sequential Chandy–Misra core per shard on a dedicated thread,
//!   exchanging events and lookahead NULLs over bounded mailboxes
//!   (`sim-shard` crate).
//! * `galois-rt`'s `GaloisEngine` — the optimistic baseline (separate
//!   crate; implements the same [`Engine`] trait).

pub mod actor;
pub mod checkpoint;
pub mod config;
pub mod dist;
pub mod hj;
pub mod pin;
pub(crate) mod probe;
pub mod seq;
pub mod seq_heap;
pub mod sharded;
pub mod timewarp;

pub use config::{build, try_build, EngineConfig, ENGINE_NAMES};

use circuit::{Circuit, DelayModel, Logic, Stimulus};
use fault::SimError;

use crate::monitor::Waveform;
use crate::stats::SimStats;

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutput {
    /// Run counters; `stats.events_delivered` is Table 1's "# total events".
    pub stats: SimStats,
    /// One waveform per circuit output, in [`Circuit::outputs`] order.
    pub waveforms: Vec<Waveform>,
    /// Final settled output value of every node (indexed by
    /// `NodeId::index`): for inputs the last driven value, for gates the
    /// evaluation of the final latched inputs, for outputs the last
    /// received value. Deterministic across engines.
    pub node_values: Vec<Logic>,
}

/// A discrete event simulator for logic circuits.
pub trait Engine {
    /// Short name for reports ("hj", "galois", "seq", …).
    fn name(&self) -> String;

    /// Simulate `circuit` driven by `stimulus` under `delays`, to
    /// completion (all events processed, NULL messages propagated).
    ///
    /// This is the fallible entry point: a task panic, a watchdog-detected
    /// stall, or a broken internal invariant is returned as a structured
    /// [`SimError`] instead of aborting the process or hanging. Engines
    /// guarantee that on `Err` the run has fully drained — no simulation
    /// task is still executing, and every simulation lock has been
    /// released — so the engine (and any shared runtime) is reusable.
    fn try_run(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
    ) -> Result<SimOutput, SimError>;

    /// Infallible convenience wrapper around [`Engine::try_run`]: panics
    /// with the engine name and the structured error on failure. This is
    /// what benchmarks and the differential tests use — under a no-fault
    /// plan a correct engine never fails.
    fn run(&self, circuit: &Circuit, stimulus: &Stimulus, delays: &DelayModel) -> SimOutput {
        match self.try_run(circuit, stimulus, delays) {
            Ok(output) => output,
            Err(err) => panic!("engine '{}' failed: {err}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::generators::c17;

    #[test]
    fn engines_are_object_safe() {
        // Compile-time check: `dyn Engine` must be usable for the harness.
        fn _takes(_: &dyn Engine) {}
        let e = seq::SeqWorksetEngine::new();
        _takes(&e);
        assert_eq!(e.name(), "seq-workset");
        let _ = c17();
    }
}
