//! Algorithm 1: the sequential workset implementation.
//!
//! A workset holds the currently *active* nodes. Nodes are pulled out in
//! any order; running a node processes all its ready events in timestamp
//! order, delivers the generated events to the fanout, and re-checks the
//! activity of the node and its neighbours. This is the code structure the
//! paper's HJ version parallelizes, and (with per-port deques) also its
//! own "HJlib sequential" baseline of Table 2.
//!
//! The simulation core (`Sim`) is separated from the scheduling policy so
//! that [`crate::profile`] can drive the same semantics level-
//! synchronously to measure available parallelism (Figure 1).

use std::collections::VecDeque;
use std::time::Instant;

use circuit::{Circuit, DelayModel, Logic, NodeId, NodeKind, Stimulus};

use crate::engine::config::EngineConfig;
use crate::engine::probe::RunProbe;
use crate::engine::{Engine, SimOutput};
use fault::{RunPolicy, SimError};
use crate::event::{Event, NULL_TS};
use crate::arena::EventArena;
use crate::monitor::Waveform;
use crate::node::{drain_ready, is_active, local_clock, Latch, PortQueue};
use crate::stats::SimStats;

/// Per-node simulation state.
struct SeqNode {
    kind: NodeKind,
    delay: u64,
    ports: Vec<PortQueue>,
    latch: Latch,
    null_sent: bool,
    /// Circuit outputs: observed events.
    waveform: Waveform,
}

/// The Algorithm 1 engine.
#[derive(Debug, Default, Clone)]
pub struct SeqWorksetEngine {
    policy: RunPolicy,
    rank: Option<u64>,
}

impl SeqWorksetEngine {
    pub fn new() -> Self {
        SeqWorksetEngine::default()
    }

    /// Build the engine from the unified [`EngineConfig`] (only the run
    /// policy — faults are ignored here, observability is honored).
    pub fn from_config(cfg: &EngineConfig) -> Self {
        SeqWorksetEngine {
            policy: cfg.run_policy(),
            rank: cfg.rank(),
        }
    }
}

impl Engine for SeqWorksetEngine {
    fn name(&self) -> String {
        "seq-workset".to_string()
    }

    fn try_run(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
    ) -> Result<SimOutput, SimError> {
        let recorder = self.policy.recorder();
        let probe = RunProbe::with_rank(recorder, &self.name(), "seq-workset", self.rank);
        let wall_start = Instant::now();
        let mut sim = Sim::new(circuit, stimulus, delays);
        // FIFO workset without duplicates (Alg. 1; the paper notes
        // redundant entries are unnecessary).
        let mut workset: VecDeque<NodeId> = VecDeque::new();
        let mut queued = vec![false; circuit.num_nodes()];
        for id in sim.initially_active() {
            queued[id.index()] = true;
            workset.push_back(id);
        }
        while let Some(id) = workset.pop_front() {
            queued[id.index()] = false;
            let before = sim.stats().events_processed;
            let span = probe.begin(id.index());
            sim.run_node(id);
            probe.end(span, id.index(), sim.stats().events_processed - before);
            for m in sim.candidates(id) {
                if !queued[m.index()] && sim.node_is_active(m) {
                    queued[m.index()] = true;
                    workset.push_back(m);
                }
            }
        }
        let output = sim.into_output();
        output
            .stats
            .publish_ranked(recorder, &self.name(), self.rank, wall_start.elapsed());
        Ok(output)
    }
}

/// The sequential Chandy–Misra simulation core: state plus `run_node`,
/// with scheduling left to the caller.
pub(crate) struct Sim<'a> {
    circuit: &'a Circuit,
    stimulus: &'a Stimulus,
    nodes: Vec<SeqNode>,
    /// Slab holding every in-flight event; queues hold handles into it.
    arena: EventArena,
    stats: SimStats,
    /// Scratch for ready events, reused across runs (allocation hygiene).
    temp: Vec<(circuit::PortIx, Event)>,
}

impl<'a> Sim<'a> {
    pub(crate) fn new(circuit: &'a Circuit, stimulus: &'a Stimulus, delays: &'a DelayModel) -> Self {
        assert_eq!(stimulus.num_inputs(), circuit.inputs().len());
        let nodes = circuit
            .nodes()
            .iter()
            .map(|n| SeqNode {
                kind: n.kind,
                delay: match n.kind {
                    NodeKind::Input => delays.input,
                    NodeKind::Output => delays.output,
                    NodeKind::Gate(kind) => delays.of(kind),
                },
                ports: (0..n.kind.num_inputs()).map(|_| PortQueue::new()).collect(),
                latch: Latch::new(),
                null_sent: false,
                waveform: Waveform::new(),
            })
            .collect();
        Sim {
            circuit,
            stimulus,
            nodes,
            arena: EventArena::new(),
            stats: SimStats::default(),
            temp: Vec::new(),
        }
    }

    /// The nodes that are active before any event is processed: the
    /// circuit inputs (they hold the initial events).
    pub(crate) fn initially_active(&self) -> Vec<NodeId> {
        self.circuit.inputs().to_vec()
    }

    /// Nodes whose activity may have changed after `run_node(id)`: the
    /// node itself and its fanout.
    pub(crate) fn candidates(&self, id: NodeId) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(1 + self.circuit.node(id).fanout.len());
        v.push(id);
        v.extend(self.circuit.node(id).fanout.iter().map(|t| t.node));
        v
    }

    /// Is `id` active (has ready events, or owes its NULL forward)?
    pub(crate) fn node_is_active(&self, id: NodeId) -> bool {
        let node = &self.nodes[id.index()];
        match node.kind {
            NodeKind::Input => false, // inputs run exactly once, up front
            _ => is_active(&node.ports, node.null_sent),
        }
    }

    /// Process all of `id`'s ready events (the paper's `RUNNODE`).
    pub(crate) fn run_node(&mut self, id: NodeId) {
        self.stats.node_runs += 1;
        match self.nodes[id.index()].kind {
            NodeKind::Input => self.run_input(id),
            _ => self.run_gate_or_output(id),
        }
    }

    /// Deliver one payload event to an input port.
    fn deliver(&mut self, target: circuit::Target, event: Event) {
        self.stats.events_delivered += 1;
        self.nodes[target.node.index()].ports[target.port as usize].push(&mut self.arena, event);
    }

    /// An input node's run: emit the entire stimulus, then NULL (§4.1:
    /// "after an input node sends out all its initial events, it sends a
    /// NULL message with timestamp infinity").
    fn run_input(&mut self, id: NodeId) {
        let input_ix = self
            .circuit
            .inputs()
            .iter()
            .position(|&i| i == id)
            .expect("id is an input node");
        let delay = self.nodes[id.index()].delay;
        let fanout = self.circuit.node(id).fanout.clone();
        let stimulus = self.stimulus; // copy the reference out of `self`
        for tv in stimulus.input_events(input_ix) {
            // The initial event itself counts as delivered + processed.
            self.stats.events_delivered += 1;
            self.stats.events_processed += 1;
            let out = Event::new(tv.time + delay, tv.value);
            for &t in &fanout {
                self.deliver(t, out);
            }
        }
        for &t in &fanout {
            self.nodes[t.node.index()].ports[t.port as usize].push_null();
            self.stats.nulls_sent += 1;
        }
        self.nodes[id.index()].null_sent = true;
        // Remember the final driven value for `node_values`.
        if let Some(last) = stimulus.input_events(input_ix).last() {
            self.nodes[id.index()].latch.set(0, last.value);
        }
    }

    fn run_gate_or_output(&mut self, id: NodeId) {
        let clock = local_clock(&self.nodes[id.index()].ports);
        let mut temp = std::mem::take(&mut self.temp);
        temp.clear();
        drain_ready(&mut self.nodes[id.index()].ports, &mut self.arena, clock, &mut temp);

        let fanout = self.circuit.node(id).fanout.clone();
        for &(port, ev) in &temp {
            self.stats.events_processed += 1;
            // Scope the node borrow so `deliver` can re-borrow `self`.
            let emitted = {
                let node = &mut self.nodes[id.index()];
                node.latch.set(port, ev.value);
                match node.kind {
                    NodeKind::Output => {
                        node.waveform.record(ev);
                        None
                    }
                    NodeKind::Gate(kind) => {
                        let out_val = kind.eval(node.latch.values(kind.arity()));
                        Some(Event::new(ev.time + node.delay, out_val))
                    }
                    NodeKind::Input => unreachable!("inputs use run_input"),
                }
            };
            if let Some(out) = emitted {
                for &t in &fanout {
                    self.deliver(t, out);
                }
            }
        }
        self.temp = temp;

        // Forward NULL once every port is closed and drained.
        let node = &self.nodes[id.index()];
        if !node.null_sent
            && local_clock(&node.ports) == NULL_TS
            && node.ports.iter().all(|p| p.is_empty())
        {
            self.nodes[id.index()].null_sent = true;
            for &t in &fanout {
                self.nodes[t.node.index()].ports[t.port as usize].push_null();
                self.stats.nulls_sent += 1;
            }
        }
    }

    /// Accumulated counters so far.
    pub(crate) fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Finalize: check termination invariants and extract the output.
    pub(crate) fn into_output(mut self) -> SimOutput {
        // Termination invariants (Chandy–Misra): every queue drained and
        // every node has forwarded its NULL.
        for (i, node) in self.nodes.iter().enumerate() {
            debug_assert!(
                node.ports.iter().all(|p| p.is_empty()),
                "node {i} has undrained events"
            );
            debug_assert!(node.null_sent, "node {i} never forwarded NULL");
        }
        debug_assert_eq!(self.arena.live(), 0, "undrained events leaked in the arena");
        let node_values = extract_node_values(self.circuit, |id| {
            let node = &self.nodes[id.index()];
            match node.kind {
                NodeKind::Input | NodeKind::Output => node.latch.0[0],
                NodeKind::Gate(kind) => kind.eval(node.latch.values(kind.arity())),
            }
        });
        let waveforms = self
            .circuit
            .outputs()
            .iter()
            .map(|&o| std::mem::take(&mut self.nodes[o.index()].waveform))
            .collect();
        SimOutput {
            stats: self.stats,
            waveforms,
            node_values,
        }
    }
}

/// Shared helper: materialize the per-node final value vector.
pub(crate) fn extract_node_values(
    circuit: &Circuit,
    value_of: impl Fn(NodeId) -> Logic,
) -> Vec<Logic> {
    (0..circuit.num_nodes())
        .map(|i| value_of(NodeId(i as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::generators::{c17, full_adder, inverter_chain};
    use circuit::{evaluate, Logic, Stimulus, TimedValue};

    fn run(circuit: &Circuit, stimulus: &Stimulus) -> SimOutput {
        SeqWorksetEngine::new().run(circuit, stimulus, &DelayModel::standard())
    }

    #[test]
    fn single_vector_settles_to_functional_eval() {
        let c = full_adder();
        let vector = [Logic::One, Logic::One, Logic::Zero];
        let out = run(&c, &Stimulus::single_vector(&vector));
        let oracle = evaluate(&c, &vector);
        for (&o, wf) in c.outputs().iter().zip(&out.waveforms) {
            assert_eq!(wf.final_value(), Some(oracle.value(o)));
        }
        assert_eq!(out.stats.events_processed, out.stats.events_delivered);
    }

    #[test]
    fn all_final_node_values_match_oracle() {
        let c = c17();
        let vector = [Logic::One, Logic::Zero, Logic::One, Logic::One, Logic::Zero];
        let out = run(&c, &Stimulus::single_vector(&vector));
        let oracle = evaluate(&c, &vector);
        assert_eq!(out.node_values, oracle.values);
    }

    #[test]
    fn empty_stimulus_only_propagates_nulls() {
        let c = c17();
        let out = run(&c, &Stimulus::empty(c.inputs().len()));
        assert_eq!(out.stats.events_delivered, 0);
        assert_eq!(out.stats.events_processed, 0);
        assert_eq!(out.stats.nulls_sent as usize, c.num_edges());
        assert!(out.waveforms.iter().all(Waveform::is_empty));
    }

    #[test]
    fn event_conservation_in_a_chain() {
        // Chain of k inverters: every initial event crosses every edge
        // exactly once, so delivered = vectors * (1 initial + #edges).
        let k = 7;
        let c = inverter_chain(k);
        let vectors = 5;
        let s = Stimulus::random_vectors(&c, vectors, 1000, 1);
        let out = run(&c, &s);
        let edges = c.num_edges() as u64;
        assert_eq!(out.stats.events_delivered, vectors as u64 * (1 + edges));
        assert_eq!(out.stats.nulls_sent, edges);
    }

    #[test]
    fn waveform_toggles_through_inverter() {
        let c = inverter_chain(1);
        let s = Stimulus::from_events(vec![vec![
            TimedValue { time: 1, value: Logic::One },
            TimedValue { time: 10, value: Logic::Zero },
            TimedValue { time: 20, value: Logic::One },
        ]]);
        let out = run(&c, &s);
        let settled = out.waveforms[0].settled();
        // Inverter delay 1: edges at 2, 11, 21 with inverted values.
        assert_eq!(
            settled,
            vec![(2, Logic::Zero), (11, Logic::One), (21, Logic::Zero)]
        );
    }

    #[test]
    fn multi_vector_settles_per_vector() {
        // Vectors spaced beyond the critical path: at each sampling point
        // the outputs equal the functional evaluation of that vector.
        let c = full_adder();
        let period = circuit::critical_path_delay(&c, &DelayModel::standard()) + 1;
        let s = Stimulus::random_vectors(&c, 8, period, 42);
        let out = run(&c, &s);
        for k in 0..8 {
            let sample_t = 1 + (k as u64 + 1) * period - 1; // just before next vector
            let vector: Vec<Logic> = (0..3).map(|i| s.input_events(i)[k].value).collect();
            let oracle = evaluate(&c, &vector);
            for (ox, (&o, wf)) in c.outputs().iter().zip(&out.waveforms).enumerate() {
                if let Some(v) = wf.value_at(sample_t) {
                    assert_eq!(v, oracle.value(o), "vector {k}, output {ox}");
                }
            }
        }
    }
}
