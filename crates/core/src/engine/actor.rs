//! Actor-based DES — the paper's future-work proposal (§6: "the use of
//! \[the\] HJlib actor model for parallelizing DES applications").
//!
//! One actor per circuit node; events and NULL messages become actor
//! messages. The actor runtime's per-actor mailbox replaces the explicit
//! port locks: an actor processes messages one at a time, so its node
//! state needs no further synchronization, and per-sender FIFO delivery
//! preserves the per-port timestamp order that Chandy–Misra requires.
//! Termination is the actor system's message quiescence (the analogue of
//! the finish scope).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use circuit::{Circuit, DelayModel, Logic, NodeKind, PortIx, Stimulus, TimedValue};
use fault::{FaultPlan, RunCtl, RunPolicy, SimError, StallSnapshot, Watchdog, WorkerSnapshot};
use hj::actor::{Actor, ActorContext, ActorRef, ActorSystem};
use hj::HjRuntime;
use obs::SpanKind;
use parking_lot::Mutex;

use crate::engine::config::EngineConfig;
use crate::engine::probe::RunProbe;
use crate::engine::seq::extract_node_values;
use crate::engine::{Engine, SimOutput};
use crate::event::{Event, NULL_TS};
use crate::monitor::Waveform;
use crate::arena::EventArena;
use crate::node::{drain_ready, local_clock, Latch, PortQueue};
use crate::stats::SimStats;

/// Messages between node actors.
enum NodeMsg {
    /// A payload event arriving at an input port.
    Deliver { port: PortIx, event: Event },
    /// The NULL message: no more events on this port.
    Null { port: PortIx },
    /// Kick an input node into emitting its stimulus.
    Start,
}

/// Results shared between the actors and the engine epilogue.
struct Board {
    delivered: AtomicU64,
    processed: AtomicU64,
    nulls: AtomicU64,
    runs: AtomicU64,
    /// Final output value per node, written once when the node completes
    /// (0/1; 2 = never written).
    final_values: Vec<AtomicU8>,
    /// Completed output waveforms, deposited by output actors.
    waveforms: Mutex<Vec<Option<Waveform>>>,
    /// Run control: progress ticks per message, cancellation flag.
    ctl: Arc<RunCtl>,
    fault: Arc<FaultPlan>,
    /// Shared tracing/timing probe (actors migrate across pool threads,
    /// so one multi-producer ring is the honest attribution).
    probe: RunProbe,
}

struct NodeActor {
    node_ix: usize,
    kind: NodeKind,
    delay: u64,
    ports: Vec<PortQueue>,
    /// Per-actor event slab (actors migrate across pool threads, so the
    /// arena travels with the actor rather than the thread).
    arena: EventArena,
    latch: Latch,
    null_sent: bool,
    waveform: Waveform,
    /// Fanout as actor addresses (filled at wiring time).
    fanout: Vec<(ActorRef<NodeMsg>, PortIx)>,
    /// Input nodes: their stimulus.
    stimulus: Vec<TimedValue>,
    board: Arc<Board>,
    temp: Vec<(PortIx, Event)>,
}

impl NodeActor {
    fn emit(&self, event: Event) {
        for (target, port) in &self.fanout {
            self.board.delivered.fetch_add(1, Ordering::Relaxed);
            self.board
                .probe
                .hot_instant(SpanKind::EventDeliver, self.node_ix as u64, event.time);
            target.send(NodeMsg::Deliver { port: *port, event });
        }
    }

    fn emit_null(&self) {
        for (target, port) in &self.fanout {
            self.board.nulls.fetch_add(1, Ordering::Relaxed);
            self.board
                .probe
                .hot_instant(SpanKind::NullSend, self.node_ix as u64, 0);
            target.send(NodeMsg::Null { port: *port });
        }
    }

    /// Drain and process ready events, then forward NULL if fully drained.
    fn pump(&mut self) {
        self.board.runs.fetch_add(1, Ordering::Relaxed);
        let span = self.board.probe.begin(self.node_ix);
        let clock = local_clock(&self.ports);
        let mut temp = std::mem::take(&mut self.temp);
        temp.clear();
        drain_ready(&mut self.ports, &mut self.arena, clock, &mut temp);
        for &(port, ev) in &temp {
            self.board.processed.fetch_add(1, Ordering::Relaxed);
            self.latch.set(port, ev.value);
            match self.kind {
                NodeKind::Output => self.waveform.record(ev),
                NodeKind::Gate(kind) => {
                    let value = kind.eval(self.latch.values(kind.arity()));
                    self.emit(Event::new(ev.time + self.delay, value));
                }
                NodeKind::Input => unreachable!("inputs are driven by Start"),
            }
        }
        let drained_events = temp.len() as u64;
        self.temp = temp;
        self.board.probe.end(span, self.node_ix, drained_events);

        if !self.null_sent
            && local_clock(&self.ports) == NULL_TS
            && self.ports.iter().all(|p| p.is_empty())
        {
            self.null_sent = true;
            self.emit_null();
            self.complete();
        }
    }

    /// Deposit final state on the board (runs once, at NULL forwarding).
    fn complete(&mut self) {
        let value = match self.kind {
            NodeKind::Input | NodeKind::Output => self.latch.0[0],
            NodeKind::Gate(kind) => kind.eval(self.latch.values(kind.arity())),
        };
        self.board.final_values[self.node_ix].store(value.as_bit() as u8, Ordering::Release);
        if matches!(self.kind, NodeKind::Output) {
            self.board.waveforms.lock()[self.node_ix] = Some(std::mem::take(&mut self.waveform));
        }
    }
}

impl Actor for NodeActor {
    type Msg = NodeMsg;

    fn receive(&mut self, msg: NodeMsg, _ctx: &ActorContext) {
        if self.board.fault.is_active() {
            if self.board.fault.should_panic_spawn() {
                // The actor layer catches this at the message boundary
                // (keeping the pending count exact); the engine surfaces
                // it from `try_run` as `SimError::TaskPanicked`.
                self.board.ctl.record_error(SimError::TaskPanicked {
                    node: Some(self.node_ix),
                    payload: "injected actor panic".into(),
                });
                panic!("fault injection: actor panic at node {}", self.node_ix);
            }
            if self.board.fault.is_wedged() {
                // Deliberate wedge: stop processing until the watchdog
                // cancels the run, then swallow remaining messages so the
                // system still drains.
                while !self.board.ctl.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                return;
            }
            if let Some(delay) = self.board.fault.straggler_delay() {
                std::thread::sleep(delay);
            }
        }
        self.board.ctl.tick();
        if self.board.ctl.is_cancelled() {
            return; // run aborted: drain without processing
        }
        match msg {
            NodeMsg::Start => {
                debug_assert!(matches!(self.kind, NodeKind::Input));
                self.board.runs.fetch_add(1, Ordering::Relaxed);
                let stimulus = std::mem::take(&mut self.stimulus);
                for tv in &stimulus {
                    self.board.delivered.fetch_add(1, Ordering::Relaxed);
                    self.board.processed.fetch_add(1, Ordering::Relaxed);
                    self.latch.set(0, tv.value);
                    self.emit(Event::new(tv.time + self.delay, tv.value));
                }
                self.null_sent = true;
                self.emit_null();
                self.complete();
            }
            NodeMsg::Deliver { port, event } => {
                self.ports[port as usize].push(&mut self.arena, event);
                self.pump();
            }
            NodeMsg::Null { port } => {
                self.ports[port as usize].push_null();
                self.pump();
            }
        }
    }
}

/// The actor-model engine.
pub struct ActorEngine {
    runtime: Arc<HjRuntime>,
    policy: RunPolicy,
    rank: Option<u64>,
}

impl ActorEngine {
    /// Build the engine (on a fresh runtime) from the unified
    /// [`EngineConfig`].
    pub fn from_config(cfg: &EngineConfig) -> Self {
        let mut engine = Self::on_runtime(Arc::new(HjRuntime::new(cfg.workers())));
        engine.policy = cfg.run_policy();
        engine.rank = cfg.rank();
        engine
    }

    /// Engine on an existing runtime.
    pub fn on_runtime(runtime: Arc<HjRuntime>) -> Self {
        ActorEngine {
            runtime,
            policy: RunPolicy::new(),
            rank: None,
        }
    }

    /// Install a fault plan (decision counters reset on every run).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.policy = self.policy.with_fault_plan(plan);
        self
    }

    /// Set (or with `None` disable) the no-progress watchdog deadline.
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.policy = self.policy.with_watchdog(deadline);
        self
    }
}

impl Engine for ActorEngine {
    fn name(&self) -> String {
        format!("actor[w={}]", self.runtime.workers())
    }

    fn try_run(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
    ) -> Result<SimOutput, SimError> {
        assert_eq!(stimulus.num_inputs(), circuit.inputs().len());
        let fault = Arc::clone(self.policy.fault());
        fault.reset();
        let recorder = self.policy.recorder();
        let wall_start = Instant::now();
        let ctl = Arc::new(RunCtl::new());
        let n = circuit.num_nodes();
        let board = Arc::new(Board {
            delivered: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            nulls: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            final_values: (0..n).map(|_| AtomicU8::new(2)).collect(),
            waveforms: Mutex::new(vec![None; n]),
            ctl: Arc::clone(&ctl),
            fault: Arc::clone(&fault),
            probe: RunProbe::with_rank(recorder, &self.name(), "actors", self.rank),
        });
        let system = ActorSystem::new(&self.runtime);
        let watchdog = self.policy.watchdog().map(|deadline| {
            let runtime = Arc::clone(&self.runtime);
            let fault = Arc::clone(&fault);
            let observer = system.clone();
            let engine = self.name();
            let recorder = recorder.clone();
            Watchdog::arm(Arc::clone(&ctl), deadline, move |stalled_for, ticks| {
                let obs = runtime.observe_scheduler();
                let mut notes = vec![format!(
                    "{} of {} workers parked",
                    obs.sleeping_workers,
                    obs.worker_queue_depths.len()
                )];
                if fault.is_active() {
                    notes.push(format!("fault injection active: {:?}", fault.injected()));
                }
                StallSnapshot {
                    engine: engine.clone(),
                    stalled_for,
                    progress_ticks: ticks,
                    workers: obs
                        .worker_queue_depths
                        .iter()
                        .enumerate()
                        .map(|(id, &depth)| WorkerSnapshot {
                            id,
                            state: "running".into(),
                            queue_depth: Some(depth),
                            ..WorkerSnapshot::default()
                        })
                        .collect(),
                    held_locks: Vec::new(),
                    queue_depths: vec![obs.injector_depth],
                    links: Vec::new(),
                    workset_size: observer.pending_messages(),
                    notes,
                    traces: recorder.recent_traces(16),
                    null_waits: Vec::new(),
                }
            })
        });

        // Create actors in reverse topological order so each node's fanout
        // actors already exist when it is wired.
        let mut refs: Vec<Option<ActorRef<NodeMsg>>> = (0..n).map(|_| None).collect();
        for &id in circuit.topo_order().iter().rev() {
            let node = circuit.node(id);
            let input_ix = circuit.inputs().iter().position(|&i| i == id);
            let actor = NodeActor {
                node_ix: id.index(),
                kind: node.kind,
                delay: match node.kind {
                    NodeKind::Input => delays.input,
                    NodeKind::Output => delays.output,
                    NodeKind::Gate(kind) => delays.of(kind),
                },
                ports: (0..node.kind.num_inputs()).map(|_| PortQueue::new()).collect(),
                arena: EventArena::new(),
                latch: Latch::new(),
                null_sent: false,
                waveform: Waveform::new(),
                fanout: node
                    .fanout
                    .iter()
                    .map(|t| {
                        (
                            refs[t.node.index()]
                                .clone()
                                .expect("fanout created first (reverse topo)"),
                            t.port,
                        )
                    })
                    .collect(),
                stimulus: input_ix
                    .map(|ix| stimulus.input_events(ix).to_vec())
                    .unwrap_or_default(),
                board: Arc::clone(&board),
                temp: Vec::new(),
            };
            refs[id.index()] = Some(system.spawn(actor));
        }

        for &input in circuit.inputs() {
            refs[input.index()]
                .as_ref()
                .expect("all actors created")
                .send(NodeMsg::Start);
        }
        let quiesced = system.quiesce_or(|| ctl.is_cancelled());
        if !quiesced {
            // The run was cancelled (watchdog or injected failure). Wedged
            // actors observe the cancellation flag and drain their remaining
            // messages without processing, so a full quiesce now terminates;
            // it must complete before we return, since actors borrow
            // run-scoped state.
            system.quiesce();
        }
        if let Some(wd) = watchdog {
            wd.disarm();
        }

        if let Some(payload) = system.take_failure() {
            return Err(ctl
                .take_error()
                .unwrap_or_else(|| SimError::from_panic(None, payload.as_ref())));
        }
        if let Some(err) = ctl.take_error() {
            return Err(err);
        }

        let incomplete: Cell<Option<usize>> = Cell::new(None);
        let node_values = extract_node_values(circuit, |id| {
            match board.final_values[id.index()].load(Ordering::Acquire) {
                0 => Logic::Zero,
                1 => Logic::One,
                // A node that never completed would be a termination bug.
                _ => {
                    if incomplete.get().is_none() {
                        incomplete.set(Some(id.index()));
                    }
                    Logic::Zero
                }
            }
        });
        if let Some(node) = incomplete.get() {
            return Err(SimError::invariant(format!(
                "node {node} never completed despite quiescence"
            )));
        }
        let mut wf_slots = board.waveforms.lock();
        let waveforms = circuit
            .outputs()
            .iter()
            .map(|&o| wf_slots[o.index()].take().expect("output completed"))
            .collect();
        drop(wf_slots);
        let stats = SimStats {
            events_delivered: board.delivered.load(Ordering::Relaxed),
            events_processed: board.processed.load(Ordering::Relaxed),
            nulls_sent: board.nulls.load(Ordering::Relaxed),
            node_runs: board.runs.load(Ordering::Relaxed),
            ..SimStats::default()
        };
        stats.publish_ranked(recorder, &self.name(), self.rank, wall_start.elapsed());
        Ok(SimOutput {
            stats,
            waveforms,
            node_values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seq::SeqWorksetEngine;
    use crate::validate::{check_against_oracle, check_conservation, check_equivalent};
    use circuit::generators::{c17, full_adder, kogge_stone_adder};

    fn actor(workers: usize) -> ActorEngine {
        ActorEngine::from_config(&EngineConfig::default().with_workers(workers))
    }

    fn check(circuit: &Circuit, stimulus: &Stimulus, workers: usize) {
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(circuit, stimulus, &delays);
        let actor = actor(workers).run(circuit, stimulus, &delays);
        check_conservation(&actor).unwrap();
        check_equivalent(&seq, &actor).unwrap();
        check_against_oracle(circuit, stimulus, &actor).unwrap();
    }

    #[test]
    fn matches_seq_on_c17() {
        let c = c17();
        check(&c, &Stimulus::random_vectors(&c, 8, 3, 5), 2);
    }

    #[test]
    fn matches_seq_on_full_adder_with_ties() {
        let c = full_adder();
        check(&c, &Stimulus::random_vectors(&c, 20, 1, 9), 4);
    }

    #[test]
    fn matches_seq_on_kogge_stone() {
        let c = kogge_stone_adder(8);
        check(&c, &Stimulus::random_vectors(&c, 3, 4, 21), 4);
    }

    #[test]
    fn empty_stimulus_terminates() {
        let c = c17();
        let out = actor(2).run(&c, &Stimulus::empty(5), &DelayModel::standard());
        assert_eq!(out.stats.events_delivered, 0);
        assert_eq!(out.stats.nulls_sent as usize, c.num_edges());
    }
}
