//! A classic single-event-list sequential simulator.
//!
//! Processes *all* events in the system in global timestamp order from one
//! binary heap — the "sufficient but not necessary" global ordering the
//! paper contrasts with Chandy–Misra (§4.1). No local clocks, no NULL
//! messages. It is the simplest possible oracle, used to validate the
//! workset/parallel engines, and it also models the per-node
//! PriorityQueue cost profile the Galois version pays (§4.5.1).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use circuit::{Circuit, DelayModel, Logic, NodeKind, PortIx, Stimulus};

use crate::engine::config::EngineConfig;
use crate::engine::probe::RunProbe;
use crate::engine::seq::extract_node_values;
use crate::engine::{Engine, SimOutput};
use fault::{RunPolicy, SimError};
use crate::event::Timestamp;
use crate::monitor::Waveform;
use crate::node::Latch;
use crate::stats::SimStats;

/// A scheduled delivery: ordered by (time, sequence number) so that
/// same-port deliveries retain FIFO order (matching per-port deques).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapItem {
    time: Timestamp,
    seq: u64,
    dst: u32,
    port: PortIx,
    value: Logic,
}

/// The global-event-list engine.
#[derive(Debug, Default, Clone)]
pub struct SeqHeapEngine {
    policy: RunPolicy,
    rank: Option<u64>,
}

impl SeqHeapEngine {
    pub fn new() -> Self {
        SeqHeapEngine::default()
    }

    /// Build the engine from the unified [`EngineConfig`] (only the run
    /// policy — faults are ignored here, observability is honored).
    pub fn from_config(cfg: &EngineConfig) -> Self {
        SeqHeapEngine {
            policy: cfg.run_policy(),
            rank: cfg.rank(),
        }
    }
}

impl Engine for SeqHeapEngine {
    fn name(&self) -> String {
        "seq-heap".to_string()
    }

    fn try_run(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
    ) -> Result<SimOutput, SimError> {
        assert_eq!(stimulus.num_inputs(), circuit.inputs().len());
        let recorder = self.policy.recorder();
        let probe = RunProbe::with_rank(recorder, &self.name(), "seq-heap", self.rank);
        let wall_start = Instant::now();
        let n = circuit.num_nodes();
        let mut heap: BinaryHeap<Reverse<HeapItem>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut stats = SimStats::default();
        let mut latches = vec![Latch::new(); n];
        let mut waveform_of: Vec<Option<Waveform>> = circuit
            .nodes()
            .iter()
            .map(|node| matches!(node.kind, NodeKind::Output).then(Waveform::new))
            .collect();

        // Initial events address the input nodes themselves (port 0 is a
        // placeholder; inputs have no real ports).
        for (ix, &input) in circuit.inputs().iter().enumerate() {
            for tv in stimulus.input_events(ix) {
                heap.push(Reverse(HeapItem {
                    time: tv.time,
                    seq,
                    dst: input.0,
                    port: 0,
                    value: tv.value,
                }));
                seq += 1;
                stats.events_delivered += 1;
            }
        }

        while let Some(Reverse(item)) = heap.pop() {
            stats.events_processed += 1;
            let id = circuit::NodeId(item.dst);
            let span = probe.begin(id.index());
            let node = circuit.node(id);
            latches[id.index()].set(item.port, item.value);
            let emitted = match node.kind {
                NodeKind::Input => Some(crate::event::Event::new(
                    item.time + delays.input,
                    item.value,
                )),
                NodeKind::Output => {
                    waveform_of[id.index()]
                        .as_mut()
                        .expect("outputs have waveforms")
                        .record(crate::event::Event::new(item.time, item.value));
                    None
                }
                NodeKind::Gate(kind) => {
                    let out = kind.eval(latches[id.index()].values(kind.arity()));
                    Some(crate::event::Event::new(item.time + delays.of(kind), out))
                }
            };
            if let Some(out) = emitted {
                for &t in &node.fanout {
                    heap.push(Reverse(HeapItem {
                        time: out.time,
                        seq,
                        dst: t.node.0,
                        port: t.port,
                        value: out.value,
                    }));
                    seq += 1;
                    stats.events_delivered += 1;
                }
            }
            stats.node_runs += 1;
            probe.end(span, id.index(), 1);
        }

        let node_values = extract_node_values(circuit, |id| match circuit.node(id).kind {
            NodeKind::Input | NodeKind::Output => latches[id.index()].0[0],
            NodeKind::Gate(kind) => kind.eval(latches[id.index()].values(kind.arity())),
        });
        let waveforms = circuit
            .outputs()
            .iter()
            .map(|&o| waveform_of[o.index()].take().expect("output waveform"))
            .collect();
        stats.publish_ranked(recorder, &self.name(), self.rank, wall_start.elapsed());
        Ok(SimOutput {
            stats,
            waveforms,
            node_values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seq::SeqWorksetEngine;
    use circuit::generators::{c17, full_adder, kogge_stone_adder};
    use circuit::{evaluate, Stimulus};

    #[test]
    fn agrees_with_functional_oracle() {
        let c = full_adder();
        let vector = [Logic::One, Logic::Zero, Logic::One];
        let out = SeqHeapEngine::new().run(
            &c,
            &Stimulus::single_vector(&vector),
            &DelayModel::standard(),
        );
        let oracle = evaluate(&c, &vector);
        assert_eq!(out.node_values, oracle.values);
    }

    #[test]
    fn agrees_with_workset_engine_on_counts_and_values() {
        let delays = DelayModel::standard();
        for seed in 0..3 {
            let c = c17();
            let s = Stimulus::random_vectors(&c, 20, 3, seed);
            let heap = SeqHeapEngine::new().run(&c, &s, &delays);
            let work = SeqWorksetEngine::new().run(&c, &s, &delays);
            assert_eq!(heap.stats.events_delivered, work.stats.events_delivered);
            assert_eq!(heap.node_values, work.node_values);
            let heap_settled: Vec<_> = heap.waveforms.iter().map(Waveform::settled).collect();
            let work_settled: Vec<_> = work.waveforms.iter().map(Waveform::settled).collect();
            assert_eq!(heap_settled, work_settled, "seed {seed}");
        }
    }

    #[test]
    fn adder_computes_sums_through_des() {
        let c = kogge_stone_adder(8);
        // Drive a=77, b=93, cin=0 as one vector.
        let mut vector = circuit::from_word(77, 8);
        vector.extend(circuit::from_word(93, 8));
        vector.push(Logic::Zero);
        let out = SeqHeapEngine::new().run(
            &c,
            &Stimulus::single_vector(&vector),
            &DelayModel::standard(),
        );
        let sum: u64 = out
            .waveforms
            .iter()
            .enumerate()
            .map(|(i, wf)| wf.final_value().map_or(0, |v| v.as_bit() << i))
            .sum();
        assert_eq!(sum, 77 + 93);
    }

    #[test]
    fn empty_stimulus_is_a_no_op() {
        let c = c17();
        let out = SeqHeapEngine::new().run(
            &c,
            &Stimulus::empty(c.inputs().len()),
            &DelayModel::standard(),
        );
        assert_eq!(out.stats.events_delivered, 0);
        assert_eq!(out.stats.nulls_sent, 0);
    }
}
