//! Shared per-thread observability probe for engine hot loops.
//!
//! Every engine wraps its node-run body in the same way: time a
//! `NodeRun` span, record it as one duration-carrying complete record,
//! and feed the two standard histograms (`sim_node_run_ns`,
//! `sim_event_process_ns`). [`RunProbe`] is that pattern in one place.
//! With a disabled recorder every method is a handful of `Option`
//! branches — no clock reads, no allocation. A span is pushed only when
//! it closes, so the overwrite-oldest ring can never orphan a begin
//! from its end and every exported `NodeRun` carries its duration.
//!
//! Hot-path records are **sampled 1-in-64**: a node run can be tens of
//! nanoseconds, so unconditional clock reads and ring pushes per run
//! (and per event delivery) would multiply the runtime rather than
//! observe it. Sampling keeps the latency histograms and the trace
//! representative at a bounded cost. Rare-but-diagnostic records
//! (trylock retries, backoffs, mailbox stalls, rollbacks, migrations,
//! rebalance barriers) bypass sampling — engines emit those through
//! [`RunProbe::tracer`] directly so none are lost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use obs::{Counter, Gauge, Histogram, Recorder, SpanKind, Tracer};

/// Hot records keep 1 in `HOT_SAMPLE_MASK + 1`; must be `2^k - 1`.
pub(crate) const HOT_SAMPLE_MASK: u64 = 63;

/// One worker thread's tracing + timing handles, fetched once at setup.
pub(crate) struct RunProbe {
    tracer: Tracer,
    node_run_ns: Histogram,
    event_process_ns: Histogram,
    /// Live events in this thread's arena (`sim_arena_live`).
    arena_live: Gauge,
    /// High-water arena occupancy (`sim_arena_high_water`).
    arena_high: Gauge,
    /// Ready-batch size per node wakeup (`sim_drain_batch_events`).
    batch_events: Histogram,
    /// Node-run sampling clock (first run is always sampled).
    runs: AtomicU64,
    /// Per-event instant sampling clock, independent of `runs` so
    /// deliver instants don't phase-lock to span sampling.
    hot_ticks: AtomicU64,
    /// Recorder + base label set (engine, and rank for distributed
    /// ranks), kept so engines can mint extra metrics that carry the
    /// same identity (e.g. per-peer NULL-wait counters).
    recorder: Recorder,
    base: Vec<(String, String)>,
}

impl RunProbe {
    /// Register `thread` with `recorder` and fetch the standard
    /// histograms, labelled by engine — and by `rank` when given, the
    /// uniform identity scheme for distributed runs, where one
    /// Prometheus endpoint aggregates several processes. Inert when the
    /// recorder is off.
    pub(crate) fn with_rank(
        recorder: &Recorder,
        engine: &str,
        thread: &str,
        rank: Option<u64>,
    ) -> RunProbe {
        let rank_str = rank.map(|r| r.to_string());
        let mut labels: Vec<(&str, &str)> = vec![("engine", engine)];
        let mut thread_labels: Vec<(&str, &str)> = vec![("thread", thread)];
        if let Some(r) = rank_str.as_deref() {
            labels.push(("rank", r));
            thread_labels.push(("rank", r));
        }
        let base = labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        RunProbe {
            tracer: recorder.tracer(thread),
            node_run_ns: recorder.histogram("sim_node_run_ns", &labels),
            event_process_ns: recorder.histogram("sim_event_process_ns", &labels),
            arena_live: recorder.gauge(obs::ARENA_LIVE, &thread_labels),
            arena_high: recorder.gauge(obs::ARENA_HIGH_WATER, &thread_labels),
            batch_events: recorder.histogram(obs::DRAIN_BATCH_EVENTS, &labels),
            runs: AtomicU64::new(0),
            hot_ticks: AtomicU64::new(0),
            recorder: recorder.clone(),
            base,
        }
    }

    /// Mint a counter carrying this probe's base identity labels
    /// (engine, and rank when distributed) plus `extra`.
    pub(crate) fn counter(&self, name: &str, extra: &[(&str, &str)]) -> Counter {
        let mut labels: Vec<(&str, &str)> =
            self.base.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        labels.extend_from_slice(extra);
        self.recorder.counter(name, &labels)
    }

    /// The fully inert probe.
    #[allow(dead_code)]
    pub(crate) const fn off() -> RunProbe {
        RunProbe {
            tracer: Tracer::off(),
            node_run_ns: Histogram::off(),
            event_process_ns: Histogram::off(),
            arena_live: Gauge::off(),
            arena_high: Gauge::off(),
            batch_events: Histogram::off(),
            runs: AtomicU64::new(0),
            hot_ticks: AtomicU64::new(0),
            recorder: Recorder::off(),
            base: Vec::new(),
        }
    }

    /// A sampled instant for per-event hot paths (event deliveries,
    /// NULL sends/receives): 1 in 64 reaches the ring. Disabled path is
    /// one branch — no atomics, no clock.
    #[inline]
    pub(crate) fn hot_instant(&self, kind: SpanKind, a: u64, b: u64) {
        if !self.tracer.is_enabled() {
            return;
        }
        if self.hot_ticks.fetch_add(1, Ordering::Relaxed) & HOT_SAMPLE_MASK == 0 {
            self.tracer.instant(kind, a, b);
        }
    }

    /// Publish the thread's arena occupancy (live now + high water).
    /// One relaxed store each when enabled, one branch when not.
    #[inline]
    pub(crate) fn arena(&self, live: usize, high_water: usize) {
        self.arena_live.set(live as u64);
        self.arena_high.set_max(high_water as u64);
    }

    /// Record the size of one drained ready-batch (batched delivery
    /// telemetry: how many events each node wakeup amortizes over).
    #[inline]
    pub(crate) fn batch(&self, events: u64) {
        if events > 0 {
            self.batch_events.record(events);
        }
    }

    /// This thread's tracer, for engine-specific instants.
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether any record goes anywhere.
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Open a `NodeRun` span for `node` on sampled runs (1 in 64; the
    /// first run is always sampled). Returns the start time iff this
    /// run is recorded, so the disabled path never reads the clock and
    /// unsampled runs cost one relaxed `fetch_add`. Nothing reaches the
    /// ring until [`RunProbe::end`] emits the complete record.
    #[inline]
    pub(crate) fn begin(&self, _node: usize) -> Option<Instant> {
        if !self.tracer.is_enabled() {
            return None;
        }
        if self.runs.fetch_add(1, Ordering::Relaxed) & HOT_SAMPLE_MASK != 0 {
            return None;
        }
        Some(Instant::now())
    }

    /// Close the span opened by [`RunProbe::begin`]: one complete
    /// `NodeRun` record carrying the span's duration, plus the run's
    /// duration histogram (and per-event share, when `events > 0`).
    #[inline]
    pub(crate) fn end(&self, start: Option<Instant>, node: usize, events: u64) {
        let Some(start) = start else { return };
        let ns = start.elapsed().as_nanos() as u64;
        self.tracer.complete(SpanKind::NodeRun, node as u64, events, start);
        self.node_run_ns.record(ns);
        if let Some(per_event) = ns.checked_div(events) {
            self.event_process_ns.record(per_event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::ObsConfig;

    #[test]
    fn off_probe_never_reads_the_clock() {
        let probe = RunProbe::off();
        assert!(!probe.is_enabled());
        let start = probe.begin(3);
        assert!(start.is_none());
        probe.end(start, 3, 10); // no-op
    }

    #[test]
    fn hot_records_keep_one_in_sixty_four() {
        let rec = Recorder::new(&ObsConfig::enabled());
        let probe = RunProbe::with_rank(&rec, "test[s]", "w0", None);
        for _ in 0..128 {
            probe.hot_instant(SpanKind::EventDeliver, 1, 2);
        }
        let dump = &rec.recent_traces(usize::MAX)[0];
        assert_eq!(dump.records.len(), 2, "2 of 128 instants sampled");
        let sampled = (0..128).filter(|_| probe.begin(1).is_some()).count();
        assert_eq!(sampled, 2, "2 of 128 spans sampled");
    }

    #[test]
    fn live_probe_records_complete_span_and_histograms() {
        let rec = Recorder::new(&ObsConfig::enabled());
        let probe = RunProbe::with_rank(&rec, "test[x]", "w0", None);
        let start = probe.begin(5);
        assert!(start.is_some());
        std::thread::sleep(std::time::Duration::from_millis(1));
        probe.end(start, 5, 2);
        let dump = &rec.recent_traces(8)[0];
        // One record per span: the begin never reaches the ring, so a
        // wrapped ring cannot orphan a span from its duration.
        assert_eq!(dump.records.len(), 1);
        let span = &dump.records[0];
        assert_eq!(span.span_kind(), Some(SpanKind::NodeRun));
        assert_eq!(obs::Phase::from_u8(span.phase), obs::Phase::Complete);
        assert_eq!(span.b, 2);
        assert!(span.dur_ns >= 1_000_000, "span duration recorded");
        let hists = rec.histogram_values();
        assert_eq!(hists.len(), 3);
        let counted: Vec<_> = hists.iter().filter(|(_, _, h)| h.count == 1).collect();
        assert_eq!(counted.len(), 2, "node-run + per-event histograms recorded");
    }

    #[test]
    fn ranked_probe_labels_metrics_with_rank() {
        let rec = Recorder::new(&ObsConfig::enabled());
        let probe = RunProbe::with_rank(&rec, "dist[p=1/2]", "shard-3", Some(1));
        probe.end(probe.begin(0), 0, 1);
        probe.arena(1, 1);
        probe.counter("sim_null_wait_ns_total", &[("peer", "2")]).add(7);
        let hists = rec.histogram_values();
        let node_run = hists
            .iter()
            .find(|(n, _, _)| n == "sim_node_run_ns")
            .expect("node-run histogram registered");
        assert!(node_run.1.contains(r#"rank="1""#), "labels: {}", node_run.1);
        let gauges = rec.gauge_values();
        let arena = gauges
            .iter()
            .find(|(n, _, _)| n == obs::ARENA_LIVE)
            .expect("arena gauge registered");
        assert!(arena.1.contains(r#"rank="1""#), "labels: {}", arena.1);
        let counters = rec.counter_values();
        let wait = counters
            .iter()
            .find(|(n, _, _)| n == "sim_null_wait_ns_total")
            .expect("minted counter registered");
        assert!(
            wait.1.contains(r#"peer="2""#) && wait.1.contains(r#"engine="dist[p=1/2]""#),
            "labels: {}",
            wait.1
        );
        assert_eq!(wait.2, 7);
    }

    #[test]
    fn arena_and_batch_metrics_flow_through() {
        let rec = Recorder::new(&ObsConfig::enabled());
        let probe = RunProbe::with_rank(&rec, "test[a]", "w0", None);
        probe.arena(5, 9);
        probe.arena(2, 7); // high water is monotone, live tracks current
        probe.batch(4);
        probe.batch(0); // empty wakeups are not recorded
        let gauges = rec.gauge_values();
        let get = |name: &str| {
            gauges
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, _, v)| *v)
                .unwrap_or_else(|| panic!("{name} not registered"))
        };
        assert_eq!(get(obs::ARENA_LIVE), 2);
        assert_eq!(get(obs::ARENA_HIGH_WATER), 9);
        let hists = rec.histogram_values();
        let batch = hists
            .iter()
            .find(|(n, _, _)| n == obs::DRAIN_BATCH_EVENTS)
            .expect("batch histogram registered");
        assert_eq!(batch.2.count, 1);
    }
}
