//! Time Warp: optimistic DES with rollback (paper §2.1's other family).
//!
//! The paper's related work contrasts conservative algorithms (what it
//! builds) with optimistic ones — Jefferson's Time Warp \[15, 16\], where a
//! logical process executes events speculatively *without* waiting for
//! safety, detects stragglers (messages in its past), **rolls back** to a
//! saved state, and cancels previously sent messages with
//! **anti-messages**. This engine implements that mechanism for the logic
//! circuit model, completing the design-space coverage:
//!
//! | engine | family | progress guarantee |
//! |---|---|---|
//! | `HjEngine` | conservative (Chandy–Misra) | never blocks, never wrong |
//! | `GaloisEngine` | speculative isolation | conflicts abort before commit |
//! | `TimeWarpEngine` | optimistic (Time Warp) | wrong answers are undone |
//!
//! ## Structure
//!
//! Per node: an input queue (`iq`) of all received messages sorted by
//! (timestamp, message id) with a processed-prefix marker, a latch
//! snapshot per processed message, and an output history for
//! anti-message generation. A straggler or anti-message targeting the
//! processed prefix triggers a rollback: restore the snapshot, truncate
//! histories, emit anti-messages for every invalidated send (cascading
//! rollback at the receivers). Termination is plain quiescence — the
//! optimistic protocol needs no NULL messages; with a finite event
//! population, the committed prefix (events below the global minimum
//! unprocessed timestamp) only grows, so the run always completes.
//!
//! Aggressive optimism on tightly coupled circuits causes rollback
//! storms; that is a known property of unthrottled Time Warp (and one
//! reason the paper's conservative choice is sensible for this domain) —
//! the rollback counters in `SimStats::aborts` make it measurable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use circuit::{Circuit, DelayModel, NodeId, NodeKind, PortIx, Stimulus, Target};
use crossbeam_deque::{Injector, Steal};
use crossbeam_utils::Backoff;
use fault::{FaultPlan, RunCtl, RunPolicy, SimError, StallSnapshot, Watchdog, WorkerSnapshot};
use obs::{Recorder, SpanKind};
use parking_lot::Mutex;

use crate::engine::config::EngineConfig;
use crate::engine::probe::RunProbe;
use crate::engine::seq::extract_node_values;
use crate::engine::{Engine, SimOutput};
use crate::event::Event;
use crate::monitor::Waveform;
use crate::node::Latch;
use crate::stats::SimStats;

/// Unique id of one sent message; anti-messages carry the same id.
type MsgId = u64;

/// A positive message: an event for an input port.
#[derive(Debug, Clone, Copy)]
struct PMsg {
    id: MsgId,
    port: PortIx,
    event: Event,
}

impl PMsg {
    /// Sort key: timestamp-major, id as the stable tiebreak (re-sent
    /// messages keep their relative emission order because ids grow).
    #[inline]
    fn key(&self) -> (u64, MsgId) {
        (self.event.time, self.id)
    }
}

#[derive(Debug)]
enum Msg {
    Positive(PMsg),
    Anti(MsgId),
}

/// A send recorded in the output history (for cancellation).
#[derive(Debug, Clone, Copy)]
struct SentRecord {
    /// Index into `iq` of the input message whose processing caused this
    /// send.
    cause: usize,
    id: MsgId,
    target: Target,
}

/// Rollback-able per-node state (whole struct behind one mutex).
struct TwCore {
    kind: NodeKind,
    delay: u64,
    iq: Vec<PMsg>,
    /// `iq[..processed]` have been (speculatively) executed.
    processed: usize,
    /// `snapshots[i]` = latch state *before* executing `iq[i]`.
    snapshots: Vec<Latch>,
    latch: Latch,
    /// Sends attributed to processed inputs, ascending by `cause`.
    oq: Vec<SentRecord>,
    /// Anti-messages that arrived before their positives.
    pending_anti: Vec<MsgId>,
}

struct TwNode {
    /// Messages delivered but not yet integrated (separate lock so
    /// deliverers never take the core lock — no lock-ordering issues).
    inbox: Mutex<Vec<Msg>>,
    core: Mutex<TwCore>,
}

/// The Time Warp engine.
#[derive(Debug, Clone)]
pub struct TimeWarpEngine {
    workers: usize,
    policy: RunPolicy,
    rank: Option<u64>,
}

impl TimeWarpEngine {
    fn make(workers: usize) -> Self {
        assert!(workers >= 1);
        TimeWarpEngine {
            workers,
            policy: RunPolicy::new(),
            rank: None,
        }
    }

    /// Build the engine from the unified [`EngineConfig`].
    pub fn from_config(cfg: &EngineConfig) -> Self {
        let mut engine = Self::make(cfg.workers());
        engine.policy = cfg.run_policy();
        engine.rank = cfg.rank();
        engine
    }

    /// Install a fault plan (decision counters reset on every run).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.policy = self.policy.with_fault_plan(plan);
        self
    }

    /// Set (or with `None` disable) the no-progress watchdog deadline.
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.policy = self.policy.with_watchdog(deadline);
        self
    }
}

impl Engine for TimeWarpEngine {
    fn name(&self) -> String {
        format!("timewarp[w={}]", self.workers)
    }

    fn try_run(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
    ) -> Result<SimOutput, SimError> {
        assert_eq!(stimulus.num_inputs(), circuit.inputs().len());
        let fault = Arc::clone(self.policy.fault());
        fault.reset();
        let recorder = self.policy.recorder();
        let wall_start = Instant::now();
        let ctl = Arc::new(RunCtl::new());
        let sim = TwSim::new(
            circuit,
            delays,
            Arc::clone(&fault),
            Arc::clone(&ctl),
            recorder,
            &self.name(),
            self.rank,
        );

        // Inputs have no in-ports: commit their whole stimulus up front
        // (they can never roll back).
        let mut initial_events = 0u64;
        for (ix, &input) in circuit.inputs().iter().enumerate() {
            let delay = delays.input;
            for tv in stimulus.input_events(ix) {
                initial_events += 1;
                let out = Event::new(tv.time + delay, tv.value);
                for &t in &circuit.node(input).fanout {
                    sim.deliver_positive(t, out);
                }
            }
        }

        let watchdog = self.policy.watchdog().map(|deadline| {
            let fault = Arc::clone(&fault);
            let pending = Arc::clone(&sim.pending);
            let workset = Arc::clone(&sim.workset);
            let engine = self.name();
            let workers = self.workers;
            let recorder = recorder.clone();
            Watchdog::arm(Arc::clone(&ctl), deadline, move |stalled_for, ticks| {
                let mut notes = vec![format!(
                    "{} scheduled node runs outstanding",
                    pending.load(Ordering::Acquire)
                )];
                if fault.is_active() {
                    notes.push(format!("fault injection active: {:?}", fault.injected()));
                }
                StallSnapshot {
                    engine: engine.clone(),
                    stalled_for,
                    progress_ticks: ticks,
                    workers: (0..workers)
                        .map(|id| WorkerSnapshot {
                            id,
                            state: "running".into(),
                            queue_depth: None,
                            ..WorkerSnapshot::default()
                        })
                        .collect(),
                    held_locks: Vec::new(),
                    queue_depths: vec![workset.len()],
                    links: Vec::new(),
                    workset_size: workset.len(),
                    notes,
                    traces: recorder.recent_traces(16),
                    null_waits: Vec::new(),
                }
            })
        });

        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let sim = &sim;
                scope.spawn(move || sim.worker_loop());
            }
        });
        if let Some(wd) = watchdog {
            wd.disarm();
        }
        if let Some(err) = ctl.take_error() {
            return Err(err);
        }
        let output = sim.into_output(circuit, stimulus, initial_events);
        output
            .stats
            .publish_ranked(recorder, &self.name(), self.rank, wall_start.elapsed());
        Ok(output)
    }
}

struct TwSim<'a> {
    circuit: &'a Circuit,
    nodes: Vec<TwNode>,
    // Behind `Arc` so the watchdog's snapshot closure (which must be
    // `'static`) can observe them while the workers run.
    workset: Arc<Injector<NodeId>>,
    pending: Arc<AtomicUsize>,
    next_msg_id: AtomicU64,
    gross_processed: AtomicU64,
    rollbacks: AtomicU64,
    annihilations: AtomicU64,
    node_runs: AtomicU64,
    fault: Arc<FaultPlan>,
    ctl: Arc<RunCtl>,
    /// Shared tracing/timing probe (workers steal arbitrary nodes, so a
    /// single multi-producer ring is the honest attribution).
    probe: RunProbe,
}

impl<'a> TwSim<'a> {
    fn new(
        circuit: &'a Circuit,
        delays: &DelayModel,
        fault: Arc<FaultPlan>,
        ctl: Arc<RunCtl>,
        recorder: &Recorder,
        engine: &str,
        rank: Option<u64>,
    ) -> Self {
        let nodes = circuit
            .nodes()
            .iter()
            .map(|n| TwNode {
                inbox: Mutex::new(Vec::new()),
                core: Mutex::new(TwCore {
                    kind: n.kind,
                    delay: match n.kind {
                        NodeKind::Input => delays.input,
                        NodeKind::Output => delays.output,
                        NodeKind::Gate(kind) => delays.of(kind),
                    },
                    iq: Vec::new(),
                    processed: 0,
                    snapshots: Vec::new(),
                    latch: Latch::new(),
                    oq: Vec::new(),
                    pending_anti: Vec::new(),
                }),
            })
            .collect();
        TwSim {
            circuit,
            nodes,
            workset: Arc::new(Injector::new()),
            pending: Arc::new(AtomicUsize::new(0)),
            next_msg_id: AtomicU64::new(0),
            gross_processed: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            annihilations: AtomicU64::new(0),
            node_runs: AtomicU64::new(0),
            fault,
            ctl,
            probe: RunProbe::with_rank(recorder, engine, "tw-workers", rank),
        }
    }

    fn fresh_id(&self) -> MsgId {
        self.next_msg_id.fetch_add(1, Ordering::Relaxed)
    }

    fn schedule(&self, id: NodeId) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.workset.push(id);
    }

    fn deliver_positive(&self, target: Target, event: Event) {
        self.probe
            .hot_instant(SpanKind::EventDeliver, target.node.index() as u64, event.time);
        let msg = PMsg {
            id: self.fresh_id(),
            port: target.port,
            event,
        };
        self.nodes[target.node.index()]
            .inbox
            .lock()
            .push(Msg::Positive(msg));
        self.schedule(target.node);
    }

    fn deliver_anti(&self, target: Target, id: MsgId) {
        self.nodes[target.node.index()].inbox.lock().push(Msg::Anti(id));
        self.schedule(target.node);
    }

    fn worker_loop(&self) {
        let backoff = Backoff::new();
        loop {
            if self.ctl.is_cancelled() {
                return;
            }
            match self.workset.steal() {
                Steal::Success(id) => {
                    // A panicking node run (injected or genuine) must not
                    // abort the process or wedge termination detection:
                    // record it, cancel the run, and keep the counters
                    // exact. The poison-recovering mutexes make the
                    // post-panic locks usable; the cancelled run's state is
                    // discarded by `try_run` anyway.
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| self.run_node(id))) {
                        self.ctl
                            .record_error(SimError::from_panic(Some(id.index()), payload.as_ref()));
                        self.ctl.cancel();
                    }
                    if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Quiescent; peers will observe pending == 0.
                    }
                    backoff.reset();
                }
                Steal::Retry => continue,
                Steal::Empty => {
                    if self.pending.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    backoff.snooze();
                }
            }
        }
    }

    /// Integrate the inbox and (re)execute speculatively.
    fn run_node(&self, id: NodeId) {
        if self.fault.is_active() {
            if self.fault.should_panic_spawn() {
                panic!("fault injection: task panic at node {}", id.index());
            }
            if self.fault.is_wedged() {
                while !self.ctl.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                return;
            }
            if let Some(delay) = self.fault.straggler_delay() {
                std::thread::sleep(delay);
            }
        }
        self.ctl.tick();
        if self.ctl.is_cancelled() {
            return; // run aborted: stop integrating new work
        }
        self.node_runs.fetch_add(1, Ordering::Relaxed);
        let node = &self.nodes[id.index()];
        let msgs = std::mem::take(&mut *node.inbox.lock());
        if msgs.is_empty() {
            return; // superseded wakeup
        }
        let span = self.probe.begin(id.index());
        let integrated = msgs.len() as u64;
        let mut outbound: Vec<(Target, Msg)> = Vec::new();
        {
            let mut core = node.core.lock();
            for msg in msgs {
                match msg {
                    Msg::Positive(p) => self.integrate_positive(&mut core, p, &mut outbound),
                    Msg::Anti(mid) => self.integrate_anti(&mut core, mid, &mut outbound),
                }
            }
            self.execute_suffix(id, &mut core, &mut outbound);
        }
        self.probe.end(span, id.index(), integrated);
        for (target, msg) in outbound {
            match msg {
                Msg::Positive(p) => {
                    self.nodes[target.node.index()].inbox.lock().push(Msg::Positive(p));
                    self.schedule(target.node);
                }
                Msg::Anti(mid) => self.deliver_anti(target, mid),
            }
        }
    }

    fn integrate_positive(
        &self,
        core: &mut TwCore,
        p: PMsg,
        outbound: &mut Vec<(Target, Msg)>,
    ) {
        if let Some(pos) = core.pending_anti.iter().position(|&a| a == p.id) {
            // The cancellation overtook the message: annihilate on arrival.
            core.pending_anti.swap_remove(pos);
            self.annihilations.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let at = core.iq.partition_point(|m| m.key() <= p.key());
        if at < core.processed {
            self.rollback_to(core, at, outbound);
        }
        core.iq.insert(at, p);
    }

    fn integrate_anti(
        &self,
        core: &mut TwCore,
        mid: MsgId,
        outbound: &mut Vec<(Target, Msg)>,
    ) {
        match core.iq.iter().position(|m| m.id == mid) {
            Some(at) => {
                if at < core.processed {
                    self.rollback_to(core, at, outbound);
                }
                core.iq.remove(at);
                self.annihilations.fetch_add(1, Ordering::Relaxed);
            }
            None => core.pending_anti.push(mid),
        }
    }

    /// Undo the execution of `iq[pos..]`: restore the latch snapshot and
    /// cancel every send those executions caused.
    fn rollback_to(&self, core: &mut TwCore, pos: usize, outbound: &mut Vec<(Target, Msg)>) {
        debug_assert!(pos < core.processed);
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        self.probe.tracer().instant(
            SpanKind::Rollback,
            pos as u64,
            (core.processed - pos) as u64,
        );
        core.latch = core.snapshots[pos];
        core.snapshots.truncate(pos);
        // Output history is ascending by cause: split off the tail.
        let cut = core.oq.partition_point(|s| s.cause < pos);
        for sent in core.oq.split_off(cut) {
            outbound.push((sent.target, Msg::Anti(sent.id)));
        }
        core.processed = pos;
    }

    /// Execute every unprocessed message, optimistically.
    fn execute_suffix(
        &self,
        id: NodeId,
        core: &mut TwCore,
        outbound: &mut Vec<(Target, Msg)>,
    ) {
        let fanout = &self.circuit.node(id).fanout;
        while core.processed < core.iq.len() {
            let ix = core.processed;
            let p = core.iq[ix];
            core.snapshots.push(core.latch);
            core.latch.set(p.port, p.event.value);
            self.gross_processed.fetch_add(1, Ordering::Relaxed);
            if let NodeKind::Gate(kind) = core.kind {
                let value = kind.eval(core.latch.values(kind.arity()));
                let out = Event::new(p.event.time + core.delay, value);
                for &t in fanout {
                    let msg = PMsg {
                        id: self.fresh_id(),
                        port: t.port,
                        event: out,
                    };
                    core.oq.push(SentRecord {
                        cause: ix,
                        id: msg.id,
                        target: t,
                    });
                    outbound.push((t, Msg::Positive(msg)));
                }
            }
            core.processed += 1;
        }
    }

    fn into_output(
        self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        initial_events: u64,
    ) -> SimOutput {
        // Quiescent epilogue.
        let mut committed: u64 = initial_events;
        for (ix, node) in self.nodes.iter().enumerate() {
            let core = node.core.lock();
            debug_assert_eq!(core.processed, core.iq.len(), "node {ix} left work");
            debug_assert!(node.inbox.lock().is_empty(), "node {ix} inbox not drained");
            debug_assert!(
                core.pending_anti.is_empty(),
                "node {ix} has orphan anti-messages"
            );
            committed += core.iq.len() as u64;
        }
        let final_input_values = stimulus.final_values();
        let node_values = extract_node_values(circuit, |id| {
            let core = self.nodes[id.index()].core.lock();
            match core.kind {
                NodeKind::Input => {
                    let ix = circuit
                        .inputs()
                        .iter()
                        .position(|&i| i == id)
                        .expect("input id");
                    final_input_values[ix]
                }
                NodeKind::Output => core.latch.0[0],
                NodeKind::Gate(kind) => kind.eval(core.latch.values(kind.arity())),
            }
        });
        let waveforms = circuit
            .outputs()
            .iter()
            .map(|&o| {
                // The committed history *is* the waveform, already sorted.
                let core = self.nodes[o.index()].core.lock();
                core.iq.iter().map(|m| m.event).collect::<Waveform>()
            })
            .collect();
        // Wasted optimism: speculative executions that were later undone,
        // plus messages annihilated by anti-messages.
        let gross = self.gross_processed.load(Ordering::Relaxed);
        let net_gate_executions = committed - initial_events;
        debug_assert!(gross >= net_gate_executions);
        let wasted = (gross - net_gate_executions) + self.annihilations.load(Ordering::Relaxed);
        SimOutput {
            stats: SimStats {
                events_delivered: committed,
                events_processed: committed,
                nulls_sent: 0, // optimistic: no NULL protocol
                node_runs: self.node_runs.load(Ordering::Relaxed),
                wasted_activations: wasted,
                lock_failures: 0,
                aborts: self.rollbacks.load(Ordering::Relaxed),
                lock_retries: 0,
                backoff_waits: 0,
                ..SimStats::default()
            },
            waveforms,
            node_values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seq::SeqWorksetEngine;
    use crate::validate::{check_against_oracle, check_conservation, check_equivalent};
    use circuit::generators::{c17, fanout_tree, full_adder, inverter_chain, kogge_stone_adder};

    fn timewarp(workers: usize) -> TimeWarpEngine {
        TimeWarpEngine::from_config(&EngineConfig::default().with_workers(workers))
    }

    fn check(circuit: &Circuit, stimulus: &Stimulus, workers: usize) {
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(circuit, stimulus, &delays);
        let tw = timewarp(workers).run(circuit, stimulus, &delays);
        check_conservation(&tw).unwrap();
        // NULL counts legitimately differ (Time Warp sends none); compare
        // everything else.
        assert_eq!(seq.stats.events_delivered, tw.stats.events_delivered);
        check_equivalent(&seq, &tw).unwrap();
        check_against_oracle(circuit, stimulus, &tw).unwrap();
    }

    #[test]
    fn matches_seq_on_c17() {
        let c = c17();
        check(&c, &Stimulus::random_vectors(&c, 10, 3, 41), 2);
    }

    #[test]
    fn matches_seq_on_full_adder_with_ties() {
        let c = full_adder();
        check(&c, &Stimulus::random_vectors(&c, 20, 1, 43), 4);
    }

    #[test]
    fn matches_seq_on_kogge_stone() {
        let c = kogge_stone_adder(8);
        check(&c, &Stimulus::random_vectors(&c, 4, 4, 47), 4);
    }

    #[test]
    fn matches_seq_on_fanout_tree() {
        let c = fanout_tree(3, 3);
        check(&c, &Stimulus::random_vectors(&c, 6, 2, 53), 3);
    }

    #[test]
    fn straggler_rollback_happens_and_heals() {
        // Two-input gates + multiple workers + dense ties make stragglers
        // virtually certain; correctness must survive them.
        let c = kogge_stone_adder(6);
        let s = Stimulus::random_vectors(&c, 10, 1, 59);
        let delays = DelayModel::standard();
        let tw = timewarp(4).run(&c, &s, &delays);
        let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
        check_equivalent(&seq, &tw).unwrap();
        // Not asserting aborts > 0 (scheduling-dependent), but they are
        // recorded when they occur.
        let _ = tw.stats.aborts;
    }

    #[test]
    fn single_worker_is_rollback_free_on_chain() {
        // One worker + a chain: messages always arrive in causal order.
        let c = inverter_chain(20);
        let s = Stimulus::random_vectors(&c, 5, 3, 61);
        let tw = timewarp(1).run(&c, &s, &DelayModel::standard());
        assert_eq!(tw.stats.aborts, 0);
    }

    #[test]
    fn empty_stimulus_terminates() {
        let c = c17();
        let out = timewarp(2).run(&c, &Stimulus::empty(5), &DelayModel::standard());
        assert_eq!(out.stats.events_delivered, 0);
        assert_eq!(out.stats.nulls_sent, 0);
    }
}
