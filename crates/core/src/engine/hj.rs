//! Algorithm 2: the parallel HJlib implementation, with the §4.5
//! optimizations (each individually toggleable for the ablation benches).
//!
//! ## Structure (paper §4.3, §4.5)
//!
//! * One **task per active node**, spawned with `async` into a finish
//!   scope; the finish scope's quiescence is the simulation's termination.
//! * One **lock per input port** ([`hj::LockRegistry`]); a running node
//!   trylocks its own input-port locks plus the fanout ports it writes, in
//!   ascending lock-ID order (livelock avoidance). Any failure releases
//!   everything and the task retires (never blocks ⇒ no deadlock).
//! * Ready events are moved to a **temporary queue** under the own-port
//!   locks, which are then released early so upstream producers can keep
//!   delivering while this node processes (§4.5.1).
//! * **Spawn avoidance** (§4.5.3): a per-node claim flag deduplicates
//!   tasks; producers only spawn a task for a neighbour if they can claim
//!   it, and a retiring task re-checks activity after releasing its claim
//!   (the standard lost-wakeup-free handoff).
//!
//! ## Safety argument
//!
//! Shared mutable state is split by its guard:
//! * each per-port deque is accessed only while holding that port's
//!   registry lock;
//! * each node's core (latches, temp queue, waveform) is accessed only by
//!   the task holding the node's claim flag (at most one at a time);
//! * clocks/head timestamps/claim flags are atomics with SeqCst ordering
//!   where the producer↔retiring-consumer handoff needs it.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use circuit::{Circuit, DelayModel, NodeId, NodeKind, PortIx, Stimulus, Target};
use crossbeam_utils::Backoff;
use fault::{FaultPlan, RunCtl, RunPolicy, SimError, StallSnapshot, Watchdog, WorkerSnapshot};
use hj::{HjRuntime, LockId, LockRegistry, Locker, Scope};
use obs::{Recorder, SpanKind};

use crate::engine::config::EngineConfig;
use crate::engine::probe::RunProbe;
use crate::engine::seq::extract_node_values;
use crate::engine::{Engine, SimOutput};
use crate::event::{Event, Timestamp, NULL_TS};
use crate::monitor::Waveform;
use crate::node::Latch;
use crate::stats::SimStats;

/// Bounded retry budget around the paper's single TRYLOCK attempt: a
/// failed `try_lock_all` (real contention or injected) backs off and
/// retries a few times before the task retires to the claim/re-check
/// protocol. The loop never blocks on a lock, so the §4.3 deadlock-freedom
/// argument is unchanged — retries only trade a little latency for fewer
/// wasted respawns under contention.
const MAX_LOCK_RETRIES: u32 = 8;

/// Toggles for the paper's optimizations. Defaults enable everything (the
/// configuration the paper evaluates); the ablation benches flip one at a
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HjEngineConfig {
    /// §4.5.1 first half: one lock **per input port** instead of one lock
    /// per node. When false, a node's ports share one lock (the node lock),
    /// so two producers feeding different ports of one node conflict.
    pub per_port_locks: bool,
    /// §4.5.1 second half: move ready events to a temporary queue and
    /// release the own-port locks before processing. When false, own-port
    /// locks are held for the whole run.
    pub early_port_release: bool,
    /// §4.5.3: gate task spawns on a successful claim (no redundant
    /// tasks). When false, spawn whenever a node looks active; redundant
    /// tasks are dropped at claim time.
    pub avoid_redundant_spawns: bool,
}

impl Default for HjEngineConfig {
    fn default() -> Self {
        HjEngineConfig {
            per_port_locks: true,
            early_port_release: true,
            avoid_redundant_spawns: true,
        }
    }
}

/// The parallel engine. Holds (a handle to) the HJ runtime it executes on.
pub struct HjEngine {
    runtime: Arc<HjRuntime>,
    config: HjEngineConfig,
    policy: RunPolicy,
    rank: Option<u64>,
}

impl HjEngine {
    /// Build the engine (on a fresh runtime) from the unified
    /// [`EngineConfig`].
    pub fn from_config(cfg: &EngineConfig) -> Self {
        let mut engine =
            Self::with_config(Arc::new(HjRuntime::new(cfg.workers())), HjEngineConfig::default());
        engine.policy = cfg.run_policy();
        engine.rank = cfg.rank();
        engine
    }

    /// Engine on an existing runtime (lets benches reuse thread pools).
    pub fn with_config(runtime: Arc<HjRuntime>, config: HjEngineConfig) -> Self {
        HjEngine {
            runtime,
            config,
            policy: RunPolicy::new(),
            rank: None,
        }
    }

    /// Install a fault plan; its decision counters are reset at the start
    /// of every run so each run replays the same injection stream.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.policy = self.policy.with_fault_plan(plan);
        self
    }

    /// Set (or with `None` disable) the no-progress watchdog deadline.
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.policy = self.policy.with_watchdog(deadline);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> HjEngineConfig {
        self.config
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &Arc<HjRuntime> {
        &self.runtime
    }

    /// The engine's fault plan (for asserting on injection counts).
    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        self.policy.fault()
    }
}

impl Engine for HjEngine {
    fn name(&self) -> String {
        format!("hj[w={}]", self.runtime.workers())
    }

    fn try_run(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
    ) -> Result<SimOutput, SimError> {
        let fault = Arc::clone(self.policy.fault());
        fault.reset();
        let recorder = self.policy.recorder();
        let wall_start = Instant::now();
        let ctl = Arc::new(RunCtl::new());
        let sim = ParSim::new(
            circuit,
            stimulus,
            delays,
            self.config,
            Arc::clone(&fault),
            Arc::clone(&ctl),
            recorder,
            &self.name(),
            self.rank,
        );
        let watchdog = self.policy.watchdog().map(|deadline| {
            let runtime = Arc::clone(&self.runtime);
            let locks = Arc::clone(&sim.locks);
            let fault = Arc::clone(&fault);
            let engine = self.name();
            let recorder = recorder.clone();
            Watchdog::arm(Arc::clone(&ctl), deadline, move |stalled_for, ticks| {
                stall_snapshot(&engine, &runtime, &locks, &fault, &recorder, stalled_for, ticks)
            })
        });
        // `finish` drains the scope to quiescence even when a task panics,
        // then rethrows the first panic; catching it here is what turns a
        // task panic into an `Err` with no task left running.
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.runtime.finish(|scope| {
                for &input in circuit.inputs() {
                    let sim = &sim;
                    if sim.ctl.is_cancelled() {
                        break;
                    }
                    // Input nodes are unconditionally active at start; claim
                    // them up front so the task runs the claimed fast path.
                    let claimed = sim.claim(input);
                    debug_assert!(claimed, "nothing else runs before the scope");
                    scope.spawn(move || pump(sim, scope, input, true));
                }
            })
        }));
        if let Some(dog) = watchdog {
            dog.disarm();
        }
        let error = match result {
            Ok(()) => ctl.take_error(),
            Err(payload) => Some(
                ctl.take_error()
                    .unwrap_or_else(|| SimError::from_panic(None, payload.as_ref())),
            ),
        };
        match error {
            None => {
                let output = sim.into_output();
                output
                    .stats
                    .publish_ranked(recorder, &self.name(), self.rank, wall_start.elapsed());
                Ok(output)
            }
            Some(err) => {
                // The scope has drained, so every RAII locker has dropped;
                // a lock still held now would be a leak — report it as its
                // own invariant breach rather than masking it.
                let leaked: Vec<LockId> = (0..sim.locks.len() as LockId)
                    .filter(|&l| sim.locks.is_locked(l))
                    .collect();
                if leaked.is_empty() {
                    Err(err)
                } else {
                    Err(SimError::invariant(format!(
                        "locks {leaked:?} left held after failed run (original error: {err})"
                    )))
                }
            }
        }
    }
}

/// Build the watchdog's diagnostic snapshot. Runs on the watchdog thread;
/// reads only atomics and racy queue-depth counters, never blocks on
/// simulation state.
fn stall_snapshot(
    engine: &str,
    runtime: &HjRuntime,
    locks: &LockRegistry,
    fault: &FaultPlan,
    recorder: &Recorder,
    stalled_for: Duration,
    ticks: u64,
) -> StallSnapshot {
    let obs = runtime.observe_scheduler();
    let workers: Vec<WorkerSnapshot> = obs
        .worker_queue_depths
        .iter()
        .enumerate()
        .map(|(id, &depth)| WorkerSnapshot {
            id,
            state: "running".into(),
            queue_depth: Some(depth),
            ..WorkerSnapshot::default()
        })
        .collect();
    let workset_size =
        obs.injector_depth + obs.worker_queue_depths.iter().sum::<usize>();
    let held_locks: Vec<usize> = (0..locks.len() as LockId)
        .filter(|&l| locks.is_locked(l))
        .map(|l| l as usize)
        .collect();
    let mut notes = vec![format!(
        "{} of {} workers parked",
        obs.sleeping_workers,
        obs.worker_queue_depths.len()
    )];
    if fault.is_active() {
        notes.push(format!("fault injection active: {:?}", fault.injected()));
    }
    StallSnapshot {
        engine: engine.to_string(),
        stalled_for,
        progress_ticks: ticks,
        workers,
        held_locks,
        queue_depths: vec![obs.injector_depth],
        links: Vec::new(),
        workset_size,
        notes,
        traces: recorder.recent_traces(16),
        null_waits: Vec::new(),
    }
}

/// Value stored in the `head_ts`/`last_ts` mirrors for "empty"/"initial".
const EMPTY: u64 = NULL_TS;

/// One input port of the parallel state.
struct PPort {
    /// Guarded by this port's registry lock.
    queue: UnsafeCell<VecDeque<Event>>,
    /// Mirror of the last received timestamp (lock-free readers).
    last_ts: AtomicU64,
    /// Mirror of the head-of-queue timestamp ([`EMPTY`] when empty).
    head_ts: AtomicU64,
}

/// Claim-guarded per-node state.
struct PCore {
    latch: Latch,
    temp: Vec<(PortIx, Event)>,
    null_sent: bool,
    waveform: Waveform,
}

struct PNode {
    kind: NodeKind,
    delay: u64,
    ports: Box<[PPort]>,
    /// Task-deduplication flag: at most one task runs this node at a time.
    claimed: AtomicBool,
    /// Mirror of `core.null_sent` for lock-free activity checks.
    null_sent: AtomicBool,
    core: UnsafeCell<PCore>,
    /// Lock IDs of this node's own input ports, ascending.
    own_locks: Box<[LockId]>,
    /// Lock IDs of own ports + fed fanout ports, ascending, deduplicated.
    lock_plan: Box<[LockId]>,
    /// Fanout with precomputed lock IDs.
    fanout: Box<[(Target, LockId)]>,
}

struct ParSim<'a> {
    circuit: &'a Circuit,
    stimulus: &'a Stimulus,
    config: HjEngineConfig,
    nodes: Box<[PNode]>,
    /// Behind an `Arc` so the watchdog's snapshot closure (which must be
    /// `'static`) can scan held locks while tasks run.
    locks: Arc<LockRegistry>,
    fault: Arc<FaultPlan>,
    ctl: Arc<RunCtl>,
    // Run-wide counters (relaxed; aggregated into SimStats at the end).
    events_delivered: AtomicU64,
    events_processed: AtomicU64,
    nulls_sent: AtomicU64,
    node_runs: AtomicU64,
    wasted: AtomicU64,
    lock_retries: AtomicU64,
    backoff_waits: AtomicU64,
    /// Shared by all tasks (they migrate freely across pool threads, so
    /// a single multi-producer ring is the honest attribution).
    probe: RunProbe,
}

// SAFETY: the UnsafeCell fields are guarded as documented on `PPort`
// (port lock) and `PCore` (claim flag); everything else is atomics or
// immutable topology.
unsafe impl Sync for ParSim<'_> {}

impl<'a> ParSim<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        circuit: &'a Circuit,
        stimulus: &'a Stimulus,
        delays: &'a DelayModel,
        config: HjEngineConfig,
        fault: Arc<FaultPlan>,
        ctl: Arc<RunCtl>,
        recorder: &Recorder,
        engine: &str,
        rank: Option<u64>,
    ) -> Self {
        assert_eq!(stimulus.num_inputs(), circuit.inputs().len());
        // Assign lock IDs: with per-port locks each (node, port) gets its
        // own; otherwise all ports of a node share the node's base ID.
        let mut port_base = Vec::with_capacity(circuit.num_nodes());
        let mut next: LockId = 0;
        for node in circuit.nodes() {
            port_base.push(next);
            let span = if config.per_port_locks {
                node.kind.num_inputs().max(1)
            } else {
                1
            };
            next += span as LockId;
        }
        let lock_of = |target: &Target| -> LockId {
            if config.per_port_locks {
                port_base[target.node.index()] + target.port as LockId
            } else {
                port_base[target.node.index()]
            }
        };

        let nodes: Box<[PNode]> = circuit
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let num_ports = node.kind.num_inputs();
                let own_locks: Vec<LockId> = if config.per_port_locks {
                    (0..num_ports as LockId).map(|p| port_base[i] + p).collect()
                } else if num_ports > 0 {
                    vec![port_base[i]]
                } else {
                    Vec::new()
                };
                let fanout: Box<[(Target, LockId)]> = node
                    .fanout
                    .iter()
                    .map(|t| (*t, lock_of(t)))
                    .collect();
                let mut plan: Vec<LockId> = own_locks
                    .iter()
                    .copied()
                    .chain(fanout.iter().map(|&(_, l)| l))
                    .collect();
                plan.sort_unstable();
                plan.dedup();
                PNode {
                    kind: node.kind,
                    delay: match node.kind {
                        NodeKind::Input => delays.input,
                        NodeKind::Output => delays.output,
                        NodeKind::Gate(kind) => delays.of(kind),
                    },
                    ports: (0..num_ports)
                        .map(|_| PPort {
                            queue: UnsafeCell::new(VecDeque::new()),
                            last_ts: AtomicU64::new(0),
                            head_ts: AtomicU64::new(EMPTY),
                        })
                        .collect(),
                    claimed: AtomicBool::new(false),
                    null_sent: AtomicBool::new(false),
                    core: UnsafeCell::new(PCore {
                        latch: Latch::new(),
                        temp: Vec::new(),
                        null_sent: false,
                        waveform: Waveform::new(),
                    }),
                    own_locks: own_locks.into_boxed_slice(),
                    lock_plan: plan.into_boxed_slice(),
                    fanout,
                }
            })
            .collect();

        ParSim {
            circuit,
            stimulus,
            config,
            nodes,
            locks: Arc::new(LockRegistry::new(next as usize)),
            fault,
            ctl,
            events_delivered: AtomicU64::new(0),
            events_processed: AtomicU64::new(0),
            nulls_sent: AtomicU64::new(0),
            node_runs: AtomicU64::new(0),
            wasted: AtomicU64::new(0),
            lock_retries: AtomicU64::new(0),
            backoff_waits: AtomicU64::new(0),
            probe: RunProbe::with_rank(recorder, engine, "hj-tasks", rank),
        }
    }

    /// Try to claim exclusive run rights for a node.
    #[inline]
    fn claim(&self, id: NodeId) -> bool {
        self.nodes[id.index()]
            .claimed
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Release the claim. SeqCst so the release is globally ordered
    /// against producers' `head_ts` publishes (lost-wakeup handoff).
    #[inline]
    fn unclaim(&self, id: NodeId) {
        self.nodes[id.index()].claimed.store(false, Ordering::SeqCst);
    }

    /// Lock-free activity check (exact when quiescent; producers and the
    /// retiring claim holder between them never let an active node go
    /// unscheduled).
    fn is_active(&self, id: NodeId) -> bool {
        let node = &self.nodes[id.index()];
        if matches!(node.kind, NodeKind::Input) {
            // Input nodes complete their whole run (stimulus + NULL) once.
            return !node.null_sent.load(Ordering::SeqCst);
        }
        let mut clock = u64::MAX;
        let mut min_head = u64::MAX;
        for port in node.ports.iter() {
            clock = clock.min(port.last_ts.load(Ordering::SeqCst));
            min_head = min_head.min(port.head_ts.load(Ordering::SeqCst));
        }
        if min_head != EMPTY && min_head <= clock {
            return true;
        }
        clock == NULL_TS && min_head == EMPTY && !node.null_sent.load(Ordering::SeqCst)
    }

    fn into_output(self) -> SimOutput {
        // The finish scope has quiesced: we have exclusive access again.
        let stats = SimStats {
            events_delivered: self.events_delivered.load(Ordering::Relaxed),
            events_processed: self.events_processed.load(Ordering::Relaxed),
            nulls_sent: self.nulls_sent.load(Ordering::Relaxed),
            node_runs: self.node_runs.load(Ordering::Relaxed),
            wasted_activations: self.wasted.load(Ordering::Relaxed),
            lock_failures: self.locks.stats().failed + self.fault.injected().lock_failures,
            aborts: 0,
            lock_retries: self.lock_retries.load(Ordering::Relaxed),
            backoff_waits: self.backoff_waits.load(Ordering::Relaxed),
            ..SimStats::default()
        };
        let nodes = self.nodes;
        for (i, node) in nodes.iter().enumerate() {
            debug_assert!(!node.claimed.load(Ordering::SeqCst), "node {i} still claimed");
            debug_assert!(
                node.null_sent.load(Ordering::SeqCst),
                "node {i} never forwarded NULL"
            );
            for port in node.ports.iter() {
                debug_assert_eq!(
                    port.head_ts.load(Ordering::SeqCst),
                    EMPTY,
                    "node {i} has undrained events"
                );
            }
        }
        let core_of = |id: NodeId| -> &PCore {
            // SAFETY: quiescent, single-threaded epilogue.
            unsafe { &*nodes[id.index()].core.get() }
        };
        let node_values = extract_node_values(self.circuit, |id| {
            let core = core_of(id);
            match nodes[id.index()].kind {
                NodeKind::Input | NodeKind::Output => core.latch.0[0],
                NodeKind::Gate(kind) => kind.eval(core.latch.values(kind.arity())),
            }
        });
        let waveforms = self
            .circuit
            .outputs()
            .iter()
            .map(|&o| {
                // SAFETY: quiescent epilogue; clone out of the cell.
                unsafe { (*nodes[o.index()].core.get()).waveform.clone() }
            })
            .collect();
        SimOutput {
            stats,
            waveforms,
            node_values,
        }
    }
}

/// Spawn-or-not decision for a possibly-active node (producer side and
/// retiring-task side both come through here).
fn schedule<'s, 'e>(sim: &'e ParSim<'e>, scope: &'s Scope<'s, 'e>, id: NodeId) {
    if sim.ctl.is_cancelled() {
        // Cancellation point: stop respawning so the finish scope drains.
        return;
    }
    if sim.config.avoid_redundant_spawns {
        // §4.5.3: spawn only when we can claim — no redundant tasks. (A
        // node that turns inactive between the check and the task running
        // just performs a cheap empty run; correctness is unaffected.)
        if sim.is_active(id) && sim.claim(id) {
            scope.spawn(move || pump(sim, scope, id, true));
        }
    } else if sim.is_active(id) {
        scope.spawn(move || pump(sim, scope, id, false));
    }
}

/// The task body (paper's `RUNNODE`). `pre_claimed` tells whether the
/// spawner already claimed the node for us.
fn pump<'s, 'e>(sim: &'e ParSim<'e>, scope: &'s Scope<'s, 'e>, id: NodeId, pre_claimed: bool) {
    if !pre_claimed && !sim.claim(id) {
        // Another task is running this node; its exit re-check covers us.
        sim.wasted.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if sim.fault.is_active() {
        if sim.fault.should_panic_spawn() {
            // Record the structured error first so `try_run` can attribute
            // the panic to this node, then panic for real: the unwind path
            // through the scope's catch (and the RAII locker, had we held
            // locks) is exactly what this injection exercises.
            sim.ctl.record_error(SimError::TaskPanicked {
                node: Some(id.index()),
                payload: "injected task panic".into(),
            });
            panic!("fault injection: task panic at node {}", id.index());
        }
        if let Some(delay) = sim.fault.straggler_delay() {
            std::thread::sleep(delay);
        }
    }
    run_claimed(sim, scope, id);
    sim.unclaim(id);
    // Exit re-check: events may have arrived while we were running (their
    // producers saw our claim and left responsibility with us).
    schedule(sim, scope, id);
}

/// Acquire a node's full lock plan with bounded retry + backoff. Each
/// attempt is the paper's non-blocking `try_lock_all`; between attempts
/// the task backs off instead of immediately retiring, which cuts wasted
/// respawns under contention. Injected failures (fault plan) count like
/// real contention. Returns false if the budget is exhausted or the run
/// was cancelled — the caller retires to the claim/re-check protocol.
fn acquire_locks(sim: &ParSim<'_>, locker: &mut Locker<'_>, plan: &[LockId]) -> bool {
    let backoff = Backoff::new();
    for attempt in 0..=MAX_LOCK_RETRIES {
        if sim.ctl.is_cancelled() {
            return false;
        }
        if attempt > 0 {
            sim.lock_retries.fetch_add(1, Ordering::Relaxed);
            sim.probe
                .tracer()
                .instant(SpanKind::TrylockRetry, plan.len() as u64, attempt as u64);
        } else {
            sim.probe
                .hot_instant(SpanKind::TrylockAttempt, plan.len() as u64, 0);
        }
        let injected = sim.fault.is_active() && sim.fault.should_fail_trylock();
        if !injected && locker.try_lock_all(plan.iter().copied()).is_ok() {
            return true;
        }
        if attempt < MAX_LOCK_RETRIES {
            sim.backoff_waits.fetch_add(1, Ordering::Relaxed);
            sim.probe
                .tracer()
                .instant(SpanKind::Backoff, plan.len() as u64, attempt as u64);
            backoff.snooze();
        }
    }
    false
}

/// Run one claimed node: trylock, drain, process, emit, release.
fn run_claimed<'s, 'e>(sim: &'e ParSim<'e>, scope: &'s Scope<'s, 'e>, id: NodeId) {
    if sim.fault.is_wedged() {
        // Deliberate wedge (watchdog tests): hold the claim and make no
        // progress until the watchdog cancels the run.
        while !sim.ctl.is_cancelled() {
            std::thread::sleep(Duration::from_millis(1));
        }
        return;
    }
    if sim.ctl.is_cancelled() {
        return;
    }
    let node = &sim.nodes[id.index()];
    let mut locker = sim.locks.locker();

    if matches!(node.kind, NodeKind::Input) {
        // Inputs own no input-port locks; they only lock the fanout ports.
        if !acquire_locks(sim, &mut locker, &node.lock_plan) {
            sim.wasted.fetch_add(1, Ordering::Relaxed);
            return; // exit re-check in `pump` retries us
        }
        sim.node_runs.fetch_add(1, Ordering::Relaxed);
        let span = sim.probe.begin(id.index());
        let emitted = run_input(sim, id, &node.fanout);
        sim.probe.end(span, id.index(), emitted);
        locker.release_all();
        sim.ctl.tick();
        for &(t, _) in node.fanout.iter() {
            schedule(sim, scope, t.node);
        }
        return;
    }

    // Ascending-ID acquisition over own ports + fanout ports (§4.3).
    if !acquire_locks(sim, &mut locker, &node.lock_plan) {
        sim.wasted.fetch_add(1, Ordering::Relaxed);
        return; // never block; exit re-check retries if still active
    }
    sim.node_runs.fetch_add(1, Ordering::Relaxed);
    let span = sim.probe.begin(id.index());

    // SAFETY: we hold the claim.
    let core = unsafe { &mut *node.core.get() };

    // Drain ready events into the temporary queue (§4.5.1) while holding
    // the own-port locks.
    let mut clock = u64::MAX;
    for port in node.ports.iter() {
        clock = clock.min(port.last_ts.load(Ordering::SeqCst));
    }
    core.temp.clear();
    loop {
        let mut best: Option<(usize, Timestamp)> = None;
        for (i, port) in node.ports.iter().enumerate() {
            let h = port.head_ts.load(Ordering::SeqCst);
            if h != EMPTY && h <= clock && best.is_none_or(|(_, bh)| h < bh) {
                best = Some((i, h));
            }
        }
        let Some((i, _)) = best else { break };
        // SAFETY: we hold port i's lock (it is in `lock_plan`).
        let queue = unsafe { &mut *node.ports[i].queue.get() };
        let Some(ev) = queue.pop_front() else {
            // A desynced head mirror is unrecoverable state corruption:
            // surface it as a structured error and retire. The locker's
            // RAII drop releases every held lock, cancellation stops the
            // respawn protocol, and `try_run` reports the violation.
            sim.ctl.record_error(SimError::invariant(format!(
                "node {}: port {i} head mirror says non-empty but queue is empty",
                id.index()
            )));
            return;
        };
        node.ports[i]
            .head_ts
            .store(queue.front().map_or(EMPTY, |e| e.time), Ordering::SeqCst);
        core.temp.push((i as PortIx, ev));
    }

    // Early release of own-port locks so producers can deliver while we
    // process (§4.5.1). Fanout-port locks stay held — we write those.
    if sim.config.early_port_release {
        for &l in node.own_locks.iter() {
            // A lock may be shared with the fanout plan (self-loop ports
            // cannot occur — the graph is acyclic — but with per-node
            // locks a fanout target may share a lock id with our own).
            if locker.holds(l) && !node.fanout.iter().any(|&(_, fl)| fl == l) {
                locker.release(l);
            }
        }
    }

    // Process the temporary queue (the paper's SIMULATE).
    let temp = std::mem::take(&mut core.temp);
    let drained_events = temp.len() as u64;
    for &(port, ev) in &temp {
        sim.events_processed.fetch_add(1, Ordering::Relaxed);
        core.latch.set(port, ev.value);
        match node.kind {
            NodeKind::Output => core.waveform.record(ev),
            NodeKind::Gate(kind) => {
                let value = kind.eval(core.latch.values(kind.arity()));
                let out = Event::new(ev.time + node.delay, value);
                for &(t, _) in node.fanout.iter() {
                    deliver(sim, t, out);
                }
            }
            NodeKind::Input => unreachable!(),
        }
    }
    core.temp = temp;
    core.temp.clear();

    // NULL forwarding: all ports closed and drained.
    let drained = node.ports.iter().all(|p| {
        p.last_ts.load(Ordering::SeqCst) == NULL_TS && p.head_ts.load(Ordering::SeqCst) == EMPTY
    });
    if drained && !core.null_sent {
        core.null_sent = true;
        node.null_sent.store(true, Ordering::SeqCst);
        for &(t, _) in node.fanout.iter() {
            deliver_null(sim, t);
        }
    }

    locker.release_all();
    sim.probe.end(span, id.index(), drained_events);
    sim.ctl.tick();

    // Activity checks for the fanout (Alg. 2 l. 18-27). The exit re-check
    // in `pump` covers `id` itself.
    for &(t, _) in node.fanout.iter() {
        schedule(sim, scope, t.node);
    }
}

/// Emit an input node's whole stimulus, then NULL (paper §4.1). Fanout
/// port locks are held by the caller. Returns the stimulus event count.
fn run_input(sim: &ParSim<'_>, id: NodeId, fanout: &[(Target, LockId)]) -> u64 {
    let node = &sim.nodes[id.index()];
    let input_ix = sim
        .circuit
        .inputs()
        .iter()
        .position(|&i| i == id)
        .expect("id is an input node");
    let mut emitted = 0u64;
    for tv in sim.stimulus.input_events(input_ix) {
        emitted += 1;
        sim.events_delivered.fetch_add(1, Ordering::Relaxed);
        sim.events_processed.fetch_add(1, Ordering::Relaxed);
        let out = Event::new(tv.time + node.delay, tv.value);
        for &(t, _) in fanout {
            deliver(sim, t, out);
        }
    }
    for &(t, _) in fanout {
        deliver_null(sim, t);
    }
    // SAFETY: we hold the claim of `id`.
    let core = unsafe { &mut *node.core.get() };
    if let Some(last) = sim.stimulus.input_events(input_ix).last() {
        core.latch.set(0, last.value);
    }
    core.null_sent = true;
    node.null_sent.store(true, Ordering::SeqCst);
    emitted
}

/// Deliver one payload event to `target`'s port. Caller holds the port's
/// lock.
#[inline]
fn deliver(sim: &ParSim<'_>, target: Target, event: Event) {
    sim.events_delivered.fetch_add(1, Ordering::Relaxed);
    sim.probe
        .hot_instant(SpanKind::EventDeliver, target.node.index() as u64, event.time);
    sim.ctl.tick();
    let port = &sim.nodes[target.node.index()].ports[target.port as usize];
    debug_assert!(port.last_ts.load(Ordering::SeqCst) != NULL_TS, "event after NULL");
    // SAFETY: caller holds this port's registry lock.
    let queue = unsafe { &mut *port.queue.get() };
    let was_empty = queue.is_empty();
    debug_assert!(queue.back().is_none_or(|b| b.time <= event.time));
    queue.push_back(event);
    if was_empty {
        port.head_ts.store(event.time, Ordering::SeqCst);
    }
    port.last_ts.store(event.time, Ordering::SeqCst);
}

/// Deliver the NULL message to `target`'s port. Caller holds the port's
/// lock.
#[inline]
fn deliver_null(sim: &ParSim<'_>, target: Target) {
    sim.nulls_sent.fetch_add(1, Ordering::Relaxed);
    sim.probe
        .hot_instant(SpanKind::NullSend, target.node.index() as u64, 0);
    sim.ctl.tick();
    let port = &sim.nodes[target.node.index()].ports[target.port as usize];
    debug_assert!(port.last_ts.load(Ordering::SeqCst) != NULL_TS, "duplicate NULL");
    port.last_ts.store(NULL_TS, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seq::SeqWorksetEngine;
    use circuit::generators::{c17, fanout_tree, full_adder, kogge_stone_adder, wallace_multiplier};
    use circuit::Stimulus;

    fn all_configs() -> Vec<HjEngineConfig> {
        let mut configs = Vec::new();
        for per_port in [true, false] {
            for early in [true, false] {
                for avoid in [true, false] {
                    configs.push(HjEngineConfig {
                        per_port_locks: per_port,
                        early_port_release: early,
                        avoid_redundant_spawns: avoid,
                    });
                }
            }
        }
        configs
    }

    fn check_against_seq(circuit: &Circuit, stimulus: &Stimulus, workers: usize) {
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(circuit, stimulus, &delays);
        let rt = Arc::new(HjRuntime::new(workers));
        for config in all_configs() {
            let engine = HjEngine::with_config(Arc::clone(&rt), config);
            let par = engine.run(circuit, stimulus, &delays);
            assert_eq!(
                par.stats.events_delivered, seq.stats.events_delivered,
                "delivered mismatch, {config:?}"
            );
            assert_eq!(
                par.stats.events_processed, par.stats.events_delivered,
                "unprocessed events, {config:?}"
            );
            assert_eq!(par.node_values, seq.node_values, "final values, {config:?}");
            let par_settled: Vec<_> = par.waveforms.iter().map(Waveform::settled).collect();
            let seq_settled: Vec<_> = seq.waveforms.iter().map(Waveform::settled).collect();
            assert_eq!(par_settled, seq_settled, "settled waveforms, {config:?}");
        }
    }

    #[test]
    fn matches_seq_on_c17() {
        let c = c17();
        let s = Stimulus::random_vectors(&c, 10, 3, 7);
        check_against_seq(&c, &s, 2);
    }

    #[test]
    fn matches_seq_on_full_adder_dense_ties() {
        let c = full_adder();
        // period 1 → maximal equal-timestamp contention.
        let s = Stimulus::random_vectors(&c, 25, 1, 3);
        check_against_seq(&c, &s, 4);
    }

    #[test]
    fn matches_seq_on_fanout_tree() {
        let c = fanout_tree(4, 3);
        let s = Stimulus::random_vectors(&c, 6, 2, 11);
        check_against_seq(&c, &s, 4);
    }

    #[test]
    fn matches_seq_on_kogge_stone() {
        let c = kogge_stone_adder(16);
        let s = Stimulus::random_vectors(&c, 4, 5, 13);
        check_against_seq(&c, &s, 4);
    }

    #[test]
    fn matches_seq_on_multiplier() {
        let c = wallace_multiplier(6);
        let s = Stimulus::random_vectors(&c, 4, 5, 17);
        check_against_seq(&c, &s, 4);
    }

    #[test]
    fn single_worker_works() {
        let c = c17();
        let s = Stimulus::random_vectors(&c, 5, 4, 23);
        check_against_seq(&c, &s, 1);
    }

    #[test]
    fn empty_stimulus_terminates() {
        let c = c17();
        let engine = HjEngine::from_config(&EngineConfig::default().with_workers(2));
        let out = engine.run(&c, &Stimulus::empty(5), &DelayModel::standard());
        assert_eq!(out.stats.events_delivered, 0);
        assert_eq!(out.stats.nulls_sent as usize, c.num_edges());
    }

    #[test]
    fn engine_is_reusable() {
        let c = full_adder();
        let engine = HjEngine::from_config(&EngineConfig::default().with_workers(2));
        let delays = DelayModel::standard();
        let s1 = Stimulus::random_vectors(&c, 3, 10, 1);
        let s2 = Stimulus::random_vectors(&c, 3, 10, 2);
        let a1 = engine.run(&c, &s1, &delays);
        let a2 = engine.run(&c, &s2, &delays);
        let b1 = engine.run(&c, &s1, &delays);
        assert_eq!(a1.node_values, b1.node_values);
        assert_eq!(a1.stats.events_delivered, b1.stats.events_delivered);
        let _ = a2;
    }
}
