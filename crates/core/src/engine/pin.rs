//! Core-pinning policies for shard threads (PARSIR-style per-CPU
//! worker binding).
//!
//! A [`PinPolicy`] maps shard indices to CPU cores; the sharded engines
//! pin each shard thread *before* constructing its `ShardCore`, so the
//! arena and port queues are first-touched — and therefore page-homed —
//! on the core that will run them. Pinning uses a raw
//! `sched_setaffinity` syscall on x86_64 Linux (the workspace
//! deliberately has no libc binding); everywhere else the call is a
//! no-op and shards simply run unpinned.
//!
//! Policies degrade gracefully on small machines: `compact` and
//! `spread` wrap modulo the online core count, so a 2-core laptop runs
//! an 8-shard simulation with shards stacked 4-per-core rather than
//! failing. Only an [`PinPolicy::Explicit`] list naming a core the
//! machine does not have is rejected, with a structured
//! [`SimError::Config`].

use fault::SimError;

/// How shard threads are bound to CPU cores.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// No affinity calls; the OS scheduler places threads freely.
    #[default]
    None,
    /// Shard `i` → core `i % cores`: fill cores densely from 0, keeping
    /// communicating shards on neighbouring cores (same socket first).
    Compact,
    /// Shard `i` → core `(i * cores / shards) % cores`: space shards
    /// evenly across the online cores, spreading load (and memory
    /// bandwidth) across sockets.
    Spread,
    /// Shard `i` → `cores[i % cores.len()]`: an explicit core list, for
    /// machines where the right mapping is known (e.g. one core per
    /// NUMA node). Rejected at build time if any id is not online.
    Explicit(Vec<usize>),
}

impl PinPolicy {
    /// Parse a des-node config value: `none`, `compact`, `spread`, or a
    /// comma-separated core list like `0,2,4,6`.
    pub fn parse(s: &str) -> Result<PinPolicy, String> {
        match s.trim() {
            "none" => Ok(PinPolicy::None),
            "compact" => Ok(PinPolicy::Compact),
            "spread" => Ok(PinPolicy::Spread),
            list => {
                let cores: Result<Vec<usize>, _> =
                    list.split(',').map(|c| c.trim().parse::<usize>()).collect();
                match cores {
                    Ok(cores) if !cores.is_empty() => Ok(PinPolicy::Explicit(cores)),
                    _ => Err(format!(
                        "pin policy must be none|compact|spread|<core,list>, got '{s}'"
                    )),
                }
            }
        }
    }

    /// The config-file spelling of this policy (inverse of `parse`).
    pub fn label(&self) -> String {
        match self {
            PinPolicy::None => "none".into(),
            PinPolicy::Compact => "compact".into(),
            PinPolicy::Spread => "spread".into(),
            PinPolicy::Explicit(cores) => cores
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
        }
    }

    /// Per-shard core assignment for `shards` shard threads, or a
    /// [`SimError::Config`] when an explicit list is empty or names an
    /// offline core. `None` entries mean "leave unpinned".
    pub fn plan(&self, shards: usize) -> Result<Vec<Option<usize>>, SimError> {
        let cores = online_cores();
        match self {
            PinPolicy::None => Ok(vec![None; shards]),
            PinPolicy::Compact => Ok((0..shards).map(|i| Some(i % cores)).collect()),
            PinPolicy::Spread => Ok((0..shards)
                .map(|i| Some(i * cores / shards.max(1) % cores))
                .collect()),
            PinPolicy::Explicit(list) => {
                if list.is_empty() {
                    return Err(SimError::config("pin: explicit core list is empty"));
                }
                if let Some(bad) = list.iter().find(|&&c| c >= cores) {
                    return Err(SimError::config(format!(
                        "pin: core {bad} requested but only {cores} cores online (valid ids 0..{})",
                        cores - 1
                    )));
                }
                Ok((0..shards).map(|i| Some(list[i % list.len()])).collect())
            }
        }
    }
}

/// Cores the scheduler will give us (≥ 1).
pub fn online_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Bind the calling thread to `core`. Returns the core actually pinned
/// to, or `None` when pinning is unsupported on this target or the
/// kernel refused (the run proceeds unpinned — placement is a
/// performance hint, never a correctness requirement).
pub fn pin_current_thread(core: usize) -> Option<usize> {
    if core >= 1024 {
        return None; // beyond our fixed-size cpu mask
    }
    sched_setaffinity_self(core).then_some(core)
}

/// `sched_setaffinity(0, …)` via a raw syscall: the workspace carries
/// no libc binding, and the two-instruction wrapper is cheaper than
/// growing one for a single call site.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sched_setaffinity_self(core: usize) -> bool {
    // cpu_set_t as a 1024-bit mask (the kernel ABI size).
    let mut mask = [0u64; 16];
    mask[core / 64] = 1u64 << (core % 64);
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret, // SYS_sched_setaffinity
            in("rdi") 0,                    // pid 0 = calling thread
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn sched_setaffinity_self(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(PinPolicy::parse("none").unwrap(), PinPolicy::None);
        assert_eq!(PinPolicy::parse("compact").unwrap(), PinPolicy::Compact);
        assert_eq!(PinPolicy::parse(" spread ").unwrap(), PinPolicy::Spread);
        assert_eq!(
            PinPolicy::parse("0, 2,4").unwrap(),
            PinPolicy::Explicit(vec![0, 2, 4])
        );
        for p in ["none", "compact", "spread", "0,2,4"] {
            assert_eq!(PinPolicy::parse(p).unwrap().label(), p.replace(", ", ","));
        }
        assert!(PinPolicy::parse("sideways").is_err());
        assert!(PinPolicy::parse("").is_err());
        assert!(PinPolicy::parse("1,x").is_err());
    }

    #[test]
    fn compact_wraps_when_shards_exceed_cores() {
        // The fallback path: more shards than cores must still produce a
        // full assignment (wrapping), never an error — this is what a
        // laptop running a 8-shard config relies on.
        let plan = PinPolicy::Compact.plan(2 * online_cores() + 1).unwrap();
        assert_eq!(plan.len(), 2 * online_cores() + 1);
        for (i, core) in plan.iter().enumerate() {
            assert_eq!(*core, Some(i % online_cores()));
        }
    }

    #[test]
    fn spread_spaces_across_cores_and_wraps() {
        let cores = online_cores();
        let plan = PinPolicy::Spread.plan(cores + 1).unwrap();
        for core in &plan {
            assert!(core.unwrap() < cores);
        }
        let none = PinPolicy::None.plan(3).unwrap();
        assert_eq!(none, vec![None, None, None]);
    }

    #[test]
    fn explicit_list_validates_core_ids() {
        let bad = PinPolicy::Explicit(vec![0, 4096]).plan(2);
        match bad {
            Err(SimError::Config { context }) => {
                assert!(context.contains("core 4096"), "{context}");
            }
            other => panic!("expected Config error, got {other:?}"),
        }
        assert!(matches!(
            PinPolicy::Explicit(vec![]).plan(1),
            Err(SimError::Config { .. })
        ));
        let ok = PinPolicy::Explicit(vec![0]).plan(3).unwrap();
        assert_eq!(ok, vec![Some(0), Some(0), Some(0)]);
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn pinning_to_core_zero_succeeds_on_linux() {
        // Core 0 is always online; the raw syscall must land. Pin a
        // throwaway thread, not the shared test-harness thread.
        std::thread::spawn(|| {
            assert_eq!(pin_current_thread(0), Some(0));
            assert_eq!(pin_current_thread(100_000), None);
        })
        .join()
        .unwrap();
    }
}
