//! Deterministic epoch checkpoints for the sharded conservative engines
//! (DESIGN.md §12).
//!
//! At an epoch barrier every shard's channels are *logically empty*: a
//! shard snapshots itself only after it holds the current epoch's marker
//! from every live peer, and FIFO delivery guarantees every pre-marker
//! message has been applied by then. Any payload a peer applies after
//! its own snapshot was necessarily sent after the sender's snapshot
//! too, so it is regenerated deterministically on restore — no resend
//! log is needed (the resend-log bound is exactly zero). A rank's
//! checkpoint is therefore just the per-shard Chandy–Misra core state:
//! node latches, pending per-port event queues, NULL horizons
//! (`last_ts` clocks), output waveforms, and the shard's `SimStats`.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/epoch-<E>/rank-<R>.ckpt   one file per rank per checkpoint epoch
//! <dir>/rank-<R>.done             terminal snapshot once rank R retired
//! ```
//!
//! Every file is varint-packed with a CRC32 trailer (same primitives as
//! the wire codec) and written *two-phase*: to `<name>.tmp`, then
//! atomically renamed into place. A crash at any instant leaves either
//! no file, a `.tmp` that is never read, or a complete file whose CRC
//! proves it — a torn snapshot can never load. An epoch `E` is
//! *consistent* iff every rank either has `epoch-E/rank-R.ckpt` or
//! retired at an epoch ≤ `E` (proved by its `.done` file); restore picks
//! the newest consistent epoch.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use circuit::Logic;
use net::wire::{crc32, get_u8, get_uvarint, put_uvarint};

use crate::event::{Event, Timestamp};
use crate::stats::NUM_STAT_FIELDS;

/// First four bytes of every checkpoint file ("SCPK", little-endian).
pub const CKPT_MAGIC: u32 = 0x4B50_4353;

/// Checkpoint format version; readers reject anything else.
pub const CKPT_VERSION: u8 = 1;

/// Checkpointing knobs for an engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Take a checkpoint every time a shard has processed this many
    /// events since the last epoch (drives the same counter the
    /// rebalancer's `epoch_events` does).
    pub every_events: u64,
    /// Directory holding the checkpoint files.
    pub dir: PathBuf,
}

/// One input port's persisted state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSnapshot {
    /// Receive clock ([`crate::event::NULL_TS`] once the port closed).
    pub last_ts: Timestamp,
    /// Pending events in arrival order.
    pub events: Vec<Event>,
}

/// One node's persisted state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// `NodeId::index` of the node.
    pub id: u64,
    /// Whether the node already forwarded its terminal NULL.
    pub null_sent: bool,
    /// Latched input values.
    pub latch: [Logic; 2],
    /// Per input port, in port order.
    pub ports: Vec<PortSnapshot>,
    /// Recorded output waveform (outputs only; empty otherwise).
    pub waveform: Vec<Event>,
}

/// One shard core's persisted state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Global shard id.
    pub shard: u64,
    /// The shard's counters at the cut.
    pub stats: [u64; NUM_STAT_FIELDS],
    /// Every node the shard owns.
    pub nodes: Vec<NodeSnapshot>,
}

fn put_logic(buf: &mut Vec<u8>, v: Logic) {
    buf.push(match v {
        Logic::Zero => 0,
        Logic::One => 1,
    });
}

fn get_logic(buf: &[u8], pos: &mut usize) -> Result<Logic, String> {
    match get_u8(buf, pos).map_err(|e| e.to_string())? {
        0 => Ok(Logic::Zero),
        1 => Ok(Logic::One),
        other => Err(format!("bad logic byte {other}")),
    }
}

fn put_events(buf: &mut Vec<u8>, events: &[Event]) {
    put_uvarint(buf, events.len() as u64);
    for ev in events {
        put_uvarint(buf, ev.time);
        put_logic(buf, ev.value);
    }
}

fn get_events(buf: &[u8], pos: &mut usize) -> Result<Vec<Event>, String> {
    let n = get_uvarint(buf, pos).map_err(|e| e.to_string())?;
    if n > buf.len() as u64 {
        return Err(format!("event count {n} exceeds payload"));
    }
    let mut events = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let time = get_uvarint(buf, pos).map_err(|e| e.to_string())?;
        let value = get_logic(buf, pos)?;
        events.push(Event { time, value });
    }
    Ok(events)
}

fn put_shard(buf: &mut Vec<u8>, snap: &ShardSnapshot) {
    put_uvarint(buf, snap.shard);
    put_uvarint(buf, NUM_STAT_FIELDS as u64);
    for &s in &snap.stats {
        put_uvarint(buf, s);
    }
    put_uvarint(buf, snap.nodes.len() as u64);
    for node in &snap.nodes {
        put_uvarint(buf, node.id);
        buf.push(u8::from(node.null_sent));
        put_logic(buf, node.latch[0]);
        put_logic(buf, node.latch[1]);
        put_uvarint(buf, node.ports.len() as u64);
        for port in &node.ports {
            put_uvarint(buf, port.last_ts);
            put_events(buf, &port.events);
        }
        put_events(buf, &node.waveform);
    }
}

fn get_shard(buf: &[u8], pos: &mut usize) -> Result<ShardSnapshot, String> {
    let err = |e: net::wire::WireError| e.to_string();
    let shard = get_uvarint(buf, pos).map_err(err)?;
    let nstats = get_uvarint(buf, pos).map_err(err)?;
    if nstats != NUM_STAT_FIELDS as u64 {
        return Err(format!(
            "stat field count mismatch: file has {nstats}, expected {NUM_STAT_FIELDS}"
        ));
    }
    let mut stats = [0u64; NUM_STAT_FIELDS];
    for s in stats.iter_mut() {
        *s = get_uvarint(buf, pos).map_err(err)?;
    }
    let nnodes = get_uvarint(buf, pos).map_err(err)?;
    if nnodes > buf.len() as u64 {
        return Err(format!("node count {nnodes} exceeds payload"));
    }
    let mut nodes = Vec::with_capacity(nnodes as usize);
    for _ in 0..nnodes {
        let id = get_uvarint(buf, pos).map_err(err)?;
        let null_sent = match get_u8(buf, pos).map_err(err)? {
            0 => false,
            1 => true,
            other => return Err(format!("bad null_sent byte {other}")),
        };
        let latch = [get_logic(buf, pos)?, get_logic(buf, pos)?];
        let nports = get_uvarint(buf, pos).map_err(err)?;
        if nports > buf.len() as u64 {
            return Err(format!("port count {nports} exceeds payload"));
        }
        let mut ports = Vec::with_capacity(nports as usize);
        for _ in 0..nports {
            let last_ts = get_uvarint(buf, pos).map_err(err)?;
            let events = get_events(buf, pos)?;
            ports.push(PortSnapshot { last_ts, events });
        }
        let waveform = get_events(buf, pos)?;
        nodes.push(NodeSnapshot {
            id,
            null_sent,
            latch,
            ports,
            waveform,
        });
    }
    Ok(ShardSnapshot { shard, stats, nodes })
}

/// Encode one rank's checkpoint (all its shards at one epoch) into a
/// self-validating byte string.
pub fn encode_rank(rank: u64, epoch: u64, shards: &[&ShardSnapshot]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    buf.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    buf.push(CKPT_VERSION);
    put_uvarint(&mut buf, rank);
    put_uvarint(&mut buf, epoch);
    put_uvarint(&mut buf, shards.len() as u64);
    for snap in shards {
        put_shard(&mut buf, snap);
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decode and validate a rank checkpoint: `(rank, epoch, shards)`.
pub fn decode_rank(bytes: &[u8]) -> Result<(u64, u64, Vec<ShardSnapshot>), String> {
    if bytes.len() < 9 {
        return Err("truncated checkpoint".into());
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let found = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    let expected = crc32(body);
    if found != expected {
        return Err(format!(
            "checksum mismatch: expected {expected:#010x}, found {found:#010x}"
        ));
    }
    let magic = u32::from_le_bytes(body[..4].try_into().expect("4-byte magic"));
    if magic != CKPT_MAGIC {
        return Err(format!("bad magic {magic:#010x}"));
    }
    if body[4] != CKPT_VERSION {
        return Err(format!("unsupported checkpoint version {}", body[4]));
    }
    let mut pos = 5;
    let err = |e: net::wire::WireError| e.to_string();
    let rank = get_uvarint(body, &mut pos).map_err(err)?;
    let epoch = get_uvarint(body, &mut pos).map_err(err)?;
    let nshards = get_uvarint(body, &mut pos).map_err(err)?;
    if nshards > body.len() as u64 {
        return Err(format!("shard count {nshards} exceeds payload"));
    }
    let mut shards = Vec::with_capacity(nshards as usize);
    for _ in 0..nshards {
        shards.push(get_shard(body, &mut pos)?);
    }
    if pos != body.len() {
        return Err("trailing bytes after checkpoint payload".into());
    }
    Ok((rank, epoch, shards))
}

fn epoch_dir(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("epoch-{epoch}"))
}

fn rank_file(dir: &Path, epoch: u64, rank: u64) -> PathBuf {
    epoch_dir(dir, epoch).join(format!("rank-{rank}.ckpt"))
}

fn done_file(dir: &Path, rank: u64) -> PathBuf {
    dir.join(format!("rank-{rank}.done"))
}

/// Write `bytes` two-phase: to `<path>.tmp`, fsync'd, then renamed into
/// place. Readers never observe a torn file.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let name = path.file_name().expect("checkpoint paths have file names");
    let tmp = path.with_file_name(format!("{}.tmp", name.to_string_lossy()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[derive(Default)]
struct SinkState {
    /// Live submissions per epoch, keyed by shard id.
    epochs: BTreeMap<u64, BTreeMap<u64, ShardSnapshot>>,
    /// Terminal snapshots of retired shards (stand in for every later
    /// epoch — a retired shard's state is a fixed point).
    finals: BTreeMap<u64, ShardSnapshot>,
    /// Highest epoch this rank has submitted to (recorded in the done
    /// marker: the done file only proves epochs at or beyond it).
    max_epoch: u64,
    done_written: bool,
}

/// Per-rank checkpoint collector: shard cores submit their snapshots at
/// each barrier; once every local shard has reported for an epoch the
/// sink writes the rank's file atomically. Shared behind an `Arc` by
/// all shard threads of one rank.
pub struct CheckpointSink {
    dir: PathBuf,
    rank: u64,
    /// Global ids of the shards this rank owns.
    local: Vec<u64>,
    state: Mutex<SinkState>,
    ckpt_total: obs::Counter,
    write_ns: obs::Histogram,
}

impl CheckpointSink {
    /// Create the sink (and the checkpoint directory).
    pub fn new(
        dir: PathBuf,
        rank: u64,
        local: Vec<u64>,
        recorder: &obs::Recorder,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        let labels = [("rank", rank.to_string())];
        let labels: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
        Ok(CheckpointSink {
            dir,
            rank,
            local,
            state: Mutex::new(SinkState::default()),
            ckpt_total: recorder.counter("sim_checkpoints_total", &labels),
            write_ns: recorder.histogram("sim_checkpoint_write_ns", &labels),
        })
    }

    /// Number of completed checkpoints written so far.
    pub fn checkpoints_written(&self) -> u64 {
        self.ckpt_total.get()
    }

    /// A shard core reports its snapshot for `epoch`. Write failures
    /// degrade the run to "no checkpoint at this epoch" instead of
    /// killing it: recovery falls back to the previous consistent epoch.
    pub fn submit(&self, epoch: u64, snap: ShardSnapshot) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.max_epoch = st.max_epoch.max(epoch);
        st.epochs.entry(epoch).or_default().insert(snap.shard, snap);
        self.flush_ready(&mut st);
    }

    /// A shard core retired: record its terminal snapshot. Once every
    /// local shard is terminal the rank's done marker is written and any
    /// still-open epochs complete through the finals.
    pub fn submit_final(&self, snap: ShardSnapshot) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.finals.insert(snap.shard, snap);
        self.flush_ready(&mut st);
        if st.finals.len() == self.local.len() && !st.done_written {
            st.done_written = true;
            let shards: Vec<&ShardSnapshot> = st.finals.values().collect();
            let bytes = encode_rank(self.rank, st.max_epoch, &shards);
            if let Err(e) = write_atomic(&done_file(&self.dir, self.rank), &bytes) {
                eprintln!(
                    "warning: rank {} failed to write done marker: {e}",
                    self.rank
                );
            }
        }
    }

    fn flush_ready(&self, st: &mut SinkState) {
        let ready: Vec<u64> = st
            .epochs
            .keys()
            .copied()
            .filter(|e| {
                self.local.iter().all(|s| {
                    st.epochs[e].contains_key(s) || st.finals.contains_key(s)
                })
            })
            .collect();
        for epoch in ready {
            let submitted = st.epochs.remove(&epoch).expect("key just listed");
            let shards: Vec<&ShardSnapshot> = self
                .local
                .iter()
                .map(|s| submitted.get(s).unwrap_or_else(|| &st.finals[s]))
                .collect();
            let bytes = encode_rank(self.rank, epoch, &shards);
            let start = Instant::now();
            let dir = epoch_dir(&self.dir, epoch);
            let write = std::fs::create_dir_all(&dir)
                .and_then(|()| write_atomic(&rank_file(&self.dir, epoch, self.rank), &bytes));
            match write {
                Ok(()) => {
                    self.ckpt_total.inc();
                    self.write_ns.record(start.elapsed().as_nanos() as u64);
                }
                Err(e) => eprintln!(
                    "warning: rank {} failed to write checkpoint epoch {epoch}: {e}",
                    self.rank
                ),
            }
        }
    }
}

/// Load one rank's state for `epoch`: the epoch's own file, or — for a
/// rank that retired at or before `epoch` — its done marker. Returns
/// the shard snapshots, or why they are unavailable.
pub fn load_rank(dir: &Path, epoch: u64, rank: u64) -> Result<Vec<ShardSnapshot>, String> {
    let path = rank_file(dir, epoch, rank);
    if let Ok(bytes) = std::fs::read(&path) {
        let (r, e, shards) = decode_rank(&bytes).map_err(|m| format!("{}: {m}", path.display()))?;
        if r != rank || e != epoch {
            return Err(format!("{}: header says rank {r} epoch {e}", path.display()));
        }
        return Ok(shards);
    }
    let done = done_file(dir, rank);
    let bytes = std::fs::read(&done)
        .map_err(|e| format!("rank {rank} has neither epoch-{epoch} file nor done marker: {e}"))?;
    let (r, retired_at, shards) =
        decode_rank(&bytes).map_err(|m| format!("{}: {m}", done.display()))?;
    if r != rank {
        return Err(format!("{}: header says rank {r}", done.display()));
    }
    if retired_at > epoch {
        // The rank was still live at `epoch`; its terminal state is
        // from the future and must not stand in for the missing file.
        return Err(format!(
            "rank {rank} retired at epoch {retired_at}, after requested epoch {epoch}"
        ));
    }
    Ok(shards)
}

/// Newest epoch for which *every* rank's state is loadable (and
/// CRC-valid). `None` when no consistent checkpoint exists yet.
pub fn latest_consistent_epoch(dir: &Path, num_ranks: usize) -> Option<u64> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut epochs: Vec<u64> = entries
        .flatten()
        .filter_map(|e| {
            e.file_name()
                .to_str()?
                .strip_prefix("epoch-")?
                .parse::<u64>()
                .ok()
        })
        .collect();
    epochs.sort_unstable();
    epochs
        .into_iter()
        .rev()
        .find(|&epoch| (0..num_ranks as u64).all(|r| load_rank(dir, epoch, r).is_ok()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NULL_TS;

    fn snap(shard: u64, marker: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            stats: std::array::from_fn(|i| marker + i as u64),
            nodes: vec![NodeSnapshot {
                id: 40 + shard,
                null_sent: shard.is_multiple_of(2),
                latch: [Logic::One, Logic::Zero],
                ports: vec![
                    PortSnapshot {
                        last_ts: 17 + marker,
                        events: vec![Event { time: 18 + marker, value: Logic::One }],
                    },
                    PortSnapshot {
                        last_ts: NULL_TS,
                        events: vec![],
                    },
                ],
                waveform: vec![Event { time: 3, value: Logic::Zero }],
            }],
        }
    }

    #[test]
    fn rank_files_round_trip_bit_exactly() {
        let a = snap(0, 100);
        let b = snap(1, 200);
        let bytes = encode_rank(3, 7, &[&a, &b]);
        let (rank, epoch, shards) = decode_rank(&bytes).unwrap();
        assert_eq!((rank, epoch), (3, 7));
        assert_eq!(shards, vec![a, b]);
    }

    #[test]
    fn corruption_and_truncation_never_load() {
        let bytes = encode_rank(0, 1, &[&snap(0, 5)]);
        for cut in 0..bytes.len() {
            assert!(decode_rank(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
        for ix in 0..bytes.len() {
            let mut b = bytes.clone();
            b[ix] ^= 0x40;
            assert!(decode_rank(&b).is_err(), "flip at {ix} accepted");
        }
    }

    #[test]
    fn sink_writes_only_complete_epochs_atomically() {
        let dir = std::env::temp_dir().join(format!("ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = obs::Recorder::new(&obs::ObsConfig { enabled: true, ring_capacity: 16 });
        let sink = CheckpointSink::new(dir.clone(), 0, vec![0, 1], &rec).unwrap();

        sink.submit(1, snap(0, 10));
        // Half an epoch: nothing on disk, nothing consistent.
        assert_eq!(latest_consistent_epoch(&dir, 1), None);
        sink.submit(1, snap(1, 11));
        assert_eq!(latest_consistent_epoch(&dir, 1), Some(1));
        assert_eq!(sink.checkpoints_written(), 1);

        // Epoch 2 completes through a retired shard's final snapshot.
        sink.submit_final(snap(1, 99));
        sink.submit(2, snap(0, 20));
        assert_eq!(latest_consistent_epoch(&dir, 1), Some(2));
        let shards = load_rank(&dir, 2, 0).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0], snap(0, 20));
        assert_eq!(shards[1], snap(1, 99));

        // Both shards retired: the done marker stands in for later
        // epochs but never for earlier ones it wasn't part of.
        sink.submit_final(snap(0, 98));
        assert!(load_rank(&dir, 2, 0).is_ok());
        // No tmp files survive.
        let leftovers: Vec<_> = walk(&dir)
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn walk(dir: &Path) -> Vec<PathBuf> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return out;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                out.extend(walk(&p));
            } else {
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn done_marker_covers_only_later_epochs() {
        let dir = std::env::temp_dir().join(format!("ckpt-done-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = obs::Recorder::off();
        // Rank 0 checkpoints epochs 1..=2; rank 1 retires after epoch 2
        // without a file for epoch 3.
        let s0 = CheckpointSink::new(dir.clone(), 0, vec![0], &rec).unwrap();
        let s1 = CheckpointSink::new(dir.clone(), 1, vec![1], &rec).unwrap();
        for e in [1, 2] {
            s0.submit(e, snap(0, e));
            s1.submit(e, snap(1, e));
        }
        s1.submit_final(snap(1, 50));
        s0.submit(3, snap(0, 3));
        // Epoch 3 is consistent: rank 1's done marker (retired at 2)
        // proves its terminal state for every epoch ≥ 2.
        assert_eq!(latest_consistent_epoch(&dir, 2), Some(3));
        // But a done marker recorded at epoch 2 can never prove epoch 1:
        // delete rank 1's epoch-1 file and epoch 1 becomes inconsistent.
        std::fs::remove_file(dir.join("epoch-1").join("rank-1.ckpt")).unwrap();
        assert!(load_rank(&dir, 1, 1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
