//! The unified engine configuration and factory.
//!
//! Every engine used to grow its own constructor vocabulary —
//! `HjEngine::new(workers)`, `ShardedEngine::with_strategy(k, s)`,
//! `TcpShardedEngine::new(k, p)` — which made harnesses (the repro
//! binary, the benches, the differential tests) repeat the same
//! plumbing per engine and made cross-engine sweeps awkward.
//! [`EngineConfig`] is the superset of every engine's knobs in one
//! builder; [`build`] (or the fallible [`try_build`]) turns a config
//! plus an engine name into a ready `Box<dyn Engine>`.
//!
//! Engines read only the fields that apply to them (the `hj` engine
//! ignores `shards`, the sharded engines ignore `workers`, only
//! `sharded` honors `rebalance`, …); unused fields are simply inert, so
//! one config can drive a sweep across all engines.
//!
//! `galois-rt`'s `GaloisEngine` is deliberately absent: that crate
//! depends on `des-core` for the [`Engine`] trait, so this factory
//! cannot name it without a dependency cycle. Harnesses that want it
//! add it next to the factory output.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use fault::{FaultPlan, RunPolicy};
use obs::{ObsConfig, Recorder};
use shard::{PartitionStrategy, RebalancePolicy};

use crate::engine::actor::ActorEngine;
use crate::engine::checkpoint::CheckpointConfig;
use crate::engine::dist::TcpShardedEngine;
use crate::engine::hj::HjEngine;
use crate::engine::pin::PinPolicy;
use crate::engine::seq::SeqWorksetEngine;
use crate::engine::seq_heap::SeqHeapEngine;
use crate::engine::sharded::{ShardedEngine, DEFAULT_MAILBOX_CAPACITY};
use crate::engine::timewarp::TimeWarpEngine;
use crate::engine::Engine;

/// Every engine name [`build`] accepts, in reporting order.
pub const ENGINE_NAMES: [&str; 7] = [
    "seq-workset",
    "seq-heap",
    "hj",
    "actor",
    "timewarp",
    "sharded",
    "tcp-sharded",
];

/// One configuration for every engine family: thread counts, sharding,
/// transport sizing, fault/watchdog policy, and rebalancing. See the
/// module docs for which engines read which fields.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    workers: usize,
    shards: usize,
    processes: usize,
    strategy: PartitionStrategy,
    mailbox_capacity: usize,
    batch_msgs: usize,
    policy: RunPolicy,
    rebalance: Option<RebalancePolicy>,
    checkpoint: Option<CheckpointConfig>,
    restore: bool,
    recovery_attempts: usize,
    pinning: PinPolicy,
    arena_capacity: usize,
    rank: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            shards: 2,
            processes: 2,
            strategy: PartitionStrategy::default(),
            mailbox_capacity: DEFAULT_MAILBOX_CAPACITY,
            batch_msgs: net::DEFAULT_BATCH_MSGS,
            policy: RunPolicy::new(),
            rebalance: None,
            checkpoint: None,
            restore: false,
            recovery_attempts: 0,
            pinning: PinPolicy::None,
            arena_capacity: 0,
            rank: None,
        }
    }
}

impl EngineConfig {
    /// The default configuration (2 workers, 2 shards, 2 processes, no
    /// faults, default watchdog, rebalancing off).
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker threads for the shared-memory parallel engines
    /// (`hj`, `actor`, `timewarp`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1);
        self.workers = workers;
        self
    }

    /// Shard count for the sharded engines.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1);
        self.shards = shards;
        self
    }

    /// Process (rank) count for the distributed engine.
    pub fn with_processes(mut self, processes: usize) -> Self {
        assert!(processes >= 1);
        self.processes = processes;
        self
    }

    /// Partition strategy for the sharded engines.
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Per-shard inbox capacity for the sharded engines.
    pub fn with_mailbox_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1);
        self.mailbox_capacity = capacity;
        self
    }

    /// Cross-process message batching threshold (1 disables coalescing;
    /// distributed engine only).
    pub fn with_batch_msgs(mut self, batch: usize) -> Self {
        assert!(batch >= 1);
        self.batch_msgs = batch;
        self
    }

    /// Install a fault plan (decision counters reset on every run).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.policy = self.policy.with_fault_plan(plan);
        self
    }

    /// Set (or with `None` disable) the no-progress watchdog deadline.
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.policy = self.policy.with_watchdog(deadline);
        self
    }

    /// Replace the whole fault/watchdog policy at once (e.g. to share an
    /// already-counting fault plan between an engine and its harness).
    pub fn with_run_policy(mut self, policy: RunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Configure observability (tracing + metrics). A disabled config —
    /// the default — installs the no-op recorder: engines then pay one
    /// branch per instrumentation point and allocate nothing.
    pub fn with_obs(mut self, cfg: &ObsConfig) -> Self {
        self.policy = self.policy.with_obs(cfg);
        self
    }

    /// Share an existing recorder (a harness keeps its own clone to read
    /// metrics, traces, and exports after the run).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.policy = self.policy.with_recorder(recorder);
        self
    }

    /// Enable (or with `None` disable) dynamic repartitioning. Honored
    /// by the in-process `sharded` engine only; the distributed engine
    /// always keeps its static partition.
    pub fn with_rebalance(mut self, policy: Option<RebalancePolicy>) -> Self {
        self.rebalance = policy;
        self
    }

    /// Write a deterministic checkpoint to `dir` every `every_events`
    /// delivered events per shard (DESIGN.md §12). Honored by the
    /// `sharded` and `tcp-sharded` engines; mutually exclusive with
    /// rebalancing on `sharded`.
    pub fn with_checkpoints(mut self, every_events: u64, dir: impl Into<PathBuf>) -> Self {
        assert!(every_events >= 1);
        self.checkpoint = Some(CheckpointConfig {
            every_events,
            dir: dir.into(),
        });
        self
    }

    /// Start from the newest consistent checkpoint in the configured
    /// directory instead of from the stimulus.
    pub fn with_restore(mut self, restore: bool) -> Self {
        self.restore = restore;
        self
    }

    /// How many times the `tcp-sharded` in-process harness restarts a
    /// failed run from the newest checkpoint (0 disables recovery).
    pub fn with_recovery_attempts(mut self, attempts: usize) -> Self {
        self.recovery_attempts = attempts;
        self
    }

    /// Pin shard threads to cores (PARSIR-style per-CPU binding).
    /// Honored by the `sharded`/`tcp-sharded` circuit engines and the
    /// sharded model engine; an `Explicit` list naming an offline core
    /// fails the run's `try_run` with [`fault::SimError::Config`].
    pub fn with_pinning(mut self, policy: PinPolicy) -> Self {
        self.pinning = policy;
        self
    }

    /// Pre-size each execution context's event arena to `capacity` live
    /// events (0 = grow on demand). The arena is allocated on the shard
    /// thread after pinning, so the pages are first-touched locally.
    pub fn with_arena(mut self, capacity: usize) -> Self {
        self.arena_capacity = capacity;
        self
    }

    /// Tag every `sim_*` metric this config's runs emit with a `rank`
    /// label — the uniform identity scheme for fleets where several
    /// processes' metrics are aggregated side by side (`des-node`
    /// ranks, `des-svc` worker ranks). `None` (the default) omits the
    /// label, keeping single-process exports unchanged.
    pub fn with_rank(mut self, rank: Option<u64>) -> Self {
        self.rank = rank;
        self
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Process (rank) count.
    pub fn processes(&self) -> usize {
        self.processes
    }

    /// Partition strategy.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Per-shard inbox capacity.
    pub fn mailbox_capacity(&self) -> usize {
        self.mailbox_capacity
    }

    /// Cross-process batching threshold.
    pub fn batch_msgs(&self) -> usize {
        self.batch_msgs
    }

    /// The fault/watchdog policy (clones share the fault plan).
    pub fn run_policy(&self) -> RunPolicy {
        self.policy.clone()
    }

    /// The configured fault plan.
    pub fn fault(&self) -> &Arc<FaultPlan> {
        self.policy.fault()
    }

    /// The watchdog deadline, if armed.
    pub fn watchdog(&self) -> Option<Duration> {
        self.policy.watchdog()
    }

    /// The rebalance policy, if dynamic repartitioning is on.
    pub fn rebalance(&self) -> Option<RebalancePolicy> {
        self.rebalance
    }

    /// The checkpoint configuration, if checkpointing is on.
    pub fn checkpoint(&self) -> Option<CheckpointConfig> {
        self.checkpoint.clone()
    }

    /// Whether the run starts from the newest consistent checkpoint.
    pub fn restore(&self) -> bool {
        self.restore
    }

    /// Checkpoint-recovery retry budget for the in-process harness.
    pub fn recovery_attempts(&self) -> usize {
        self.recovery_attempts
    }

    /// The shard-thread pin policy.
    pub fn pinning(&self) -> &PinPolicy {
        &self.pinning
    }

    /// The event-arena pre-size (0 = grow on demand).
    pub fn arena_capacity(&self) -> usize {
        self.arena_capacity
    }

    /// The observability recorder (a clone; all clones share storage).
    pub fn recorder(&self) -> Recorder {
        self.policy.recorder().clone()
    }

    /// The metric `rank` label, if one is configured.
    pub fn rank(&self) -> Option<u64> {
        self.rank
    }
}

/// Build the engine named `name` (one of [`ENGINE_NAMES`]) from `cfg`.
/// Returns an error string listing the valid names on an unknown name.
pub fn try_build(name: &str, cfg: &EngineConfig) -> Result<Box<dyn Engine>, String> {
    match name {
        "seq-workset" => Ok(Box::new(SeqWorksetEngine::from_config(cfg))),
        "seq-heap" => Ok(Box::new(SeqHeapEngine::from_config(cfg))),
        "hj" => Ok(Box::new(HjEngine::from_config(cfg))),
        "actor" => Ok(Box::new(ActorEngine::from_config(cfg))),
        "timewarp" => Ok(Box::new(TimeWarpEngine::from_config(cfg))),
        "sharded" => Ok(Box::new(ShardedEngine::from_config(cfg))),
        "tcp-sharded" => Ok(Box::new(TcpShardedEngine::from_config(cfg))),
        other => Err(format!(
            "unknown engine '{other}' (expected one of {})",
            ENGINE_NAMES.join(", ")
        )),
    }
}

/// Infallible [`try_build`]: panics on an unknown engine name.
pub fn build(name: &str, cfg: &EngineConfig) -> Box<dyn Engine> {
    try_build(name, cfg).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_equivalent;
    use circuit::generators::c17;
    use circuit::{DelayModel, Stimulus};

    #[test]
    fn every_name_builds_and_reports_itself() {
        let cfg = EngineConfig::default();
        for name in ENGINE_NAMES {
            let engine = build(name, &cfg);
            assert!(
                engine.name().starts_with(name),
                "factory name '{name}' vs engine name '{}'",
                engine.name()
            );
        }
        assert!(try_build("no-such-engine", &cfg).is_err());
    }

    #[test]
    fn factory_engines_agree_on_observables() {
        let c = c17();
        let s = Stimulus::random_vectors(&c, 6, 4, 3);
        let delays = DelayModel::standard();
        let cfg = EngineConfig::default();
        let reference = build("seq-workset", &cfg).run(&c, &s, &delays);
        for name in ENGINE_NAMES {
            let out = build(name, &cfg).run(&c, &s, &delays);
            check_equivalent(&reference, &out).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn config_round_trips_every_knob() {
        let reb = RebalancePolicy {
            epoch_events: 100,
            min_imbalance_pct: 10,
            max_moves: 8,
        };
        let cfg = EngineConfig::new()
            .with_workers(4)
            .with_shards(8)
            .with_processes(2)
            .with_strategy(PartitionStrategy::RoundRobin)
            .with_mailbox_capacity(32)
            .with_batch_msgs(16)
            .with_watchdog(Some(Duration::from_millis(750)))
            .with_rebalance(Some(reb))
            .with_checkpoints(5_000, "/tmp/ckpt")
            .with_restore(true)
            .with_recovery_attempts(3)
            .with_pinning(PinPolicy::Compact)
            .with_arena(4096)
            .with_rank(Some(3));
        assert_eq!(cfg.workers(), 4);
        assert_eq!(cfg.shards(), 8);
        assert_eq!(cfg.processes(), 2);
        assert_eq!(cfg.strategy(), PartitionStrategy::RoundRobin);
        assert_eq!(cfg.mailbox_capacity(), 32);
        assert_eq!(cfg.batch_msgs(), 16);
        assert_eq!(cfg.watchdog(), Some(Duration::from_millis(750)));
        assert_eq!(cfg.rebalance(), Some(reb));
        let ckpt = cfg.checkpoint().expect("checkpoints configured");
        assert_eq!(ckpt.every_events, 5_000);
        assert_eq!(ckpt.dir, PathBuf::from("/tmp/ckpt"));
        assert!(cfg.restore());
        assert_eq!(cfg.recovery_attempts(), 3);
        assert_eq!(*cfg.pinning(), PinPolicy::Compact);
        assert_eq!(cfg.arena_capacity(), 4096);
        assert_eq!(cfg.rank(), Some(3));
        assert!(!cfg.fault().is_active());
    }

    #[test]
    fn factory_honors_fault_plan_and_watchdog() {
        let c = c17();
        let s = Stimulus::random_vectors(&c, 4, 5, 11);
        let delays = DelayModel::standard();
        let cfg = EngineConfig::default()
            .with_fault_plan(FaultPlan::seeded(3).wedged())
            .with_watchdog(Some(Duration::from_millis(200)));
        // A wedged run must be cut short by the watchdog, not hang: the
        // factory threaded both knobs through.
        let engine = build("sharded", &cfg);
        let err = engine
            .try_run(&c, &s, &delays)
            .expect_err("wedged run must fail");
        assert!(
            matches!(err, fault::SimError::NoProgress { .. }),
            "expected NoProgress, got {err:?}"
        );
    }

    #[test]
    fn factory_names_cover_the_engine_list() {
        // Guard against the factory and the constant drifting apart.
        let cfg = EngineConfig::default();
        for name in ENGINE_NAMES {
            try_build(name, &cfg).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
