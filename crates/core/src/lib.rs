//! # des-core — conservative parallel discrete event simulation
//!
//! The primary contribution of the reproduced paper: Chandy–Misra logic
//! circuit simulation with several interchangeable engines.
//!
//! * [`engine::seq::SeqWorksetEngine`] — Algorithm 1 (sequential workset);
//! * [`engine::seq_heap::SeqHeapEngine`] — global-event-list reference;
//! * [`engine::hj::HjEngine`] — Algorithm 2: parallel async/finish tasks +
//!   fine-grained trylock locks, with the §4.5 optimizations toggleable
//!   via [`engine::hj::HjEngineConfig`];
//! * [`engine::actor::ActorEngine`] — the §6 future-work actor version;
//! * [`engine::sharded::ShardedEngine`] — partitioned conservative
//!   simulation: the `sim-shard` crate splits the netlist into K shards,
//!   each running a sequential Chandy–Misra core on its own thread, with
//!   events and lookahead NULLs crossing the cut over bounded mailboxes;
//! * `galois-rt`'s `GaloisEngine` — the optimistic baseline (sibling
//!   crate).
//!
//! Supporting modules: [`event`] (events/timestamps/NULL), [`node`]
//! (per-port deques, local clocks, ready-event draining), [`monitor`]
//! (output waveforms and the deterministic settled view), [`stats`]
//! (run counters incl. Table 1's "# total events"), [`profile`]
//! (Figure 1's available-parallelism curve), [`validate`]
//! (cross-engine equivalence checking) and [`vcd`] (waveform export for
//! standard viewers).
//!
//! Engines are built through the unified [`engine::EngineConfig`] and
//! the [`engine::build`] factory:
//!
//! ```
//! use circuit::{generators, DelayModel, Stimulus};
//! use des::engine::{build, EngineConfig};
//! use des::validate::check_equivalent;
//!
//! let circuit = generators::kogge_stone_adder(8);
//! let stimulus = Stimulus::random_vectors(&circuit, 10, 5, 42);
//! let delays = DelayModel::standard();
//!
//! let cfg = EngineConfig::default().with_workers(2);
//! let seq = build("seq-workset", &cfg).run(&circuit, &stimulus, &delays);
//! let par = build("hj", &cfg).run(&circuit, &stimulus, &delays);
//! check_equivalent(&seq, &par).expect("engines agree");
//! ```

pub mod arena;
pub mod engine;
pub mod event;
pub mod monitor;
pub mod node;
pub mod profile;
pub mod stats;
pub mod validate;
pub mod vcd;

pub use arena::{EventArena, EventRef};
pub use engine::checkpoint::{latest_consistent_epoch, CheckpointConfig};
pub use engine::pin::PinPolicy;
pub use engine::dist::{config_digest, run_node, DistConfig, TcpShardedEngine};
pub use engine::{build, try_build, Engine, EngineConfig, SimOutput, ENGINE_NAMES};
pub use fault::{
    FaultPlan, InjectionCounts, LinkSnapshot, RunCtl, RunPolicy, SimError, StallSnapshot,
    Watchdog, WorkerSnapshot,
};
pub use event::{Event, Timestamp, NULL_TS};
// Observability vocabulary, re-exported so harnesses configure tracing
// and read metrics without a direct `sim-obs` dependency.
pub use obs::{ObsConfig, Recorder, SpanKind, ThreadTraceDump, TraceRecord, Tracer};
pub use monitor::Waveform;
pub use profile::{available_parallelism, ParallelismProfile};
// Partitioning and rebalancing vocabulary of the sharded engine,
// re-exported so engine users don't need a direct `sim-shard` dependency.
pub use shard::{Partition, PartitionMetrics, PartitionStrategy, RebalancePolicy};
pub use stats::SimStats;
