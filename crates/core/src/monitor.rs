//! Output waveforms and the deterministic settled view.
//!
//! A [`Waveform`] records every event arriving at one circuit output, in
//! arrival (= timestamp) order. With simultaneous events on different
//! ports of an upstream gate, the *intermediate* values at a timestamp may
//! legally differ between runs (paper §4.1: equal-timestamp events may be
//! processed in any order); the **last** value per timestamp is
//! deterministic. [`Waveform::settled`] extracts that deterministic view,
//! which the cross-engine differential tests compare.

use circuit::Logic;

use crate::event::{Event, Timestamp};

/// The sequence of events observed at one circuit output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Waveform {
    events: Vec<Event>,
}

impl Waveform {
    /// An empty waveform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observed event. Times must be nondecreasing.
    pub fn record(&mut self, event: Event) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.time <= event.time),
            "waveform times must be nondecreasing"
        );
        self.events.push(event);
    }

    /// All observed events, including same-timestamp glitches.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of observed events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The deterministic settled view: the last value at each distinct
    /// timestamp.
    pub fn settled(&self) -> Vec<(Timestamp, Logic)> {
        let mut out: Vec<(Timestamp, Logic)> = Vec::new();
        for e in &self.events {
            match out.last_mut() {
                Some((t, v)) if *t == e.time => *v = e.value,
                _ => out.push((e.time, e.value)),
            }
        }
        out
    }

    /// The final value (last event), if any event arrived.
    pub fn final_value(&self) -> Option<Logic> {
        self.events.last().map(|e| e.value)
    }

    /// Truncate to the first `len` events (used by speculative engines to
    /// roll back observations).
    pub fn truncate(&mut self, len: usize) {
        self.events.truncate(len);
    }

    /// The value as of time `t` (last event with `time <= t`).
    pub fn value_at(&self, t: Timestamp) -> Option<Logic> {
        match self.events.partition_point(|e| e.time <= t) {
            0 => None,
            k => Some(self.events[k - 1].value),
        }
    }
}

impl FromIterator<Event> for Waveform {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        let mut w = Waveform::new();
        for e in iter {
            w.record(e);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Timestamp, v: u64) -> Event {
        Event::new(t, Logic::from_bit(v))
    }

    #[test]
    fn settled_keeps_last_per_timestamp() {
        let w: Waveform = [ev(1, 0), ev(3, 1), ev(3, 0), ev(5, 1)].into_iter().collect();
        assert_eq!(
            w.settled(),
            vec![
                (1, Logic::Zero),
                (3, Logic::Zero),
                (5, Logic::One)
            ]
        );
    }

    #[test]
    fn final_value_and_emptiness() {
        let w = Waveform::new();
        assert!(w.is_empty());
        assert_eq!(w.final_value(), None);
        let w: Waveform = [ev(2, 1)].into_iter().collect();
        assert_eq!(w.final_value(), Some(Logic::One));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn value_at_interpolates() {
        let w: Waveform = [ev(10, 1), ev(20, 0)].into_iter().collect();
        assert_eq!(w.value_at(5), None);
        assert_eq!(w.value_at(10), Some(Logic::One));
        assert_eq!(w.value_at(15), Some(Logic::One));
        assert_eq!(w.value_at(20), Some(Logic::Zero));
        assert_eq!(w.value_at(100), Some(Logic::Zero));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "nondecreasing")]
    fn decreasing_times_rejected_in_debug() {
        let mut w = Waveform::new();
        w.record(ev(5, 0));
        w.record(ev(4, 1));
    }
}
