//! Arena-backed event storage for the hot path.
//!
//! Every queue-based engine used to shuffle owned `Event` values through
//! per-port `VecDeque`s: each cross-port move was a copy, and the deques
//! themselves grew and shrank on whatever thread happened to touch them.
//! [`EventArena`] replaces that with one slab per execution context
//! (shard thread, actor, component): events live in a contiguous slot
//! vector allocated on the owning thread (first touch pins the pages to
//! that thread's NUMA node when the thread itself is pinned), queues
//! hold 8-byte [`EventRef`] handles, and freed slots are recycled
//! through a LIFO free list so steady-state simulation allocates
//! nothing.
//!
//! Handles are *generational*: each slot carries a generation counter
//! that is bumped when the slot is freed, and a ref minted for an
//! earlier generation panics on access instead of silently reading
//! whatever event was recycled into the slot. That turns
//! use-after-free — the classic slab bug — into a deterministic,
//! testable failure.

use crate::event::Event;
use circuit::Logic;

/// Generational handle into an [`EventArena`].
///
/// 8 bytes, `Copy`, and meaningless without the arena that minted it.
/// A ref is invalidated by [`EventArena::take`]; any later use panics
/// with a "stale EventRef" message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventRef {
    ix: u32,
    gen: u32,
}

impl EventRef {
    /// Slot index, for diagnostics only.
    #[inline]
    pub fn index(&self) -> u32 {
        self.ix
    }
}

#[derive(Debug, Clone)]
struct Slot<V> {
    /// Bumped every free; a handle is valid iff its generation matches.
    gen: u32,
    ev: Option<Event<V>>,
}

/// A slab of in-flight events with free-list reuse and generational
/// handles. One arena per shard/actor/component — never shared across
/// threads, so no interior mutability and no contention.
#[derive(Debug, Clone)]
pub struct EventArena<V = Logic> {
    slots: Vec<Slot<V>>,
    /// Freed slot indices, reused LIFO (the hottest slot first).
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl<V> EventArena<V> {
    /// An empty arena that grows on demand.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An arena with room for `capacity` live events before any slot
    /// vector growth. Call this on the thread that will own the arena:
    /// the slots are written here, so first-touch places them locally.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.min(u32::MAX as usize);
        let mut slots = Vec::with_capacity(capacity);
        let mut free = Vec::with_capacity(capacity);
        for i in 0..capacity {
            slots.push(Slot { gen: 0, ev: None });
            // LIFO pops hand out slot 0 first: lowest addresses stay hot.
            free.push((capacity - 1 - i) as u32);
        }
        EventArena {
            slots,
            free,
            live: 0,
            high_water: 0,
        }
    }

    /// Store `ev`, returning its handle. Reuses a freed slot when one
    /// exists; grows the slab otherwise.
    #[inline]
    pub fn alloc(&mut self, ev: Event<V>) -> EventRef {
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        if let Some(ix) = self.free.pop() {
            let slot = &mut self.slots[ix as usize];
            debug_assert!(slot.ev.is_none(), "free-listed slot still occupied");
            slot.ev = Some(ev);
            EventRef { ix, gen: slot.gen }
        } else {
            let ix = self.slots.len();
            assert!(ix <= u32::MAX as usize, "event arena exceeded 2^32 slots");
            self.slots.push(Slot { gen: 0, ev: Some(ev) });
            EventRef {
                ix: ix as u32,
                gen: 0,
            }
        }
    }

    /// Move the event out, freeing its slot for reuse and invalidating
    /// every copy of `r` (the slot's generation is bumped).
    ///
    /// # Panics
    /// On a stale handle: the slot was already freed (and possibly
    /// recycled). This is the reuse-after-free detector.
    #[inline]
    pub fn take(&mut self, r: EventRef) -> Event<V> {
        let slot = &mut self.slots[r.ix as usize];
        let ev = match slot.ev.take() {
            Some(ev) if slot.gen == r.gen => ev,
            got => {
                slot.ev = got; // put a recycled occupant back before dying
                panic!(
                    "stale EventRef: slot {} gen {} (arena gen {}) — reuse after free",
                    r.ix, r.gen, slot.gen
                );
            }
        };
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.ix);
        self.live -= 1;
        ev
    }

    /// Read the event behind a live handle.
    ///
    /// # Panics
    /// On a stale handle, like [`EventArena::take`].
    #[inline]
    pub fn get(&self, r: EventRef) -> &Event<V> {
        let slot = &self.slots[r.ix as usize];
        match &slot.ev {
            Some(ev) if slot.gen == r.gen => ev,
            _ => panic!(
                "stale EventRef: slot {} gen {} (arena gen {}) — reuse after free",
                r.ix, r.gen, slot.gen
            ),
        }
    }

    /// Events currently stored.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Most events ever live at once — the working-set size a
    /// pre-sized arena should use.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total slots (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<V> Default for EventArena<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Timestamp;

    fn ev(t: Timestamp) -> Event {
        Event::new(t, Logic::One)
    }

    #[test]
    fn alloc_take_round_trips() {
        let mut a = EventArena::new();
        let r1 = a.alloc(ev(3));
        let r2 = a.alloc(ev(7));
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(r1).time, 3);
        assert_eq!(a.take(r2).time, 7);
        assert_eq!(a.take(r1).time, 3);
        assert_eq!(a.live(), 0);
        assert_eq!(a.high_water(), 2);
    }

    #[test]
    fn free_slots_are_reused_lifo() {
        let mut a = EventArena::new();
        let r1 = a.alloc(ev(1));
        let _r2 = a.alloc(ev(2));
        a.take(r1);
        let r3 = a.alloc(ev(3));
        assert_eq!(r3.index(), r1.index(), "freed slot recycled");
        assert_eq!(a.capacity(), 2, "no growth while the free list serves");
        assert_eq!(a.get(r3).time, 3);
    }

    #[test]
    fn with_capacity_presizes_and_hands_out_low_slots_first() {
        let mut a = EventArena::<Logic>::with_capacity(4);
        assert_eq!(a.capacity(), 4);
        let r = a.alloc(ev(1));
        assert_eq!(r.index(), 0);
        assert_eq!(a.capacity(), 4, "no growth before capacity is exceeded");
    }

    #[test]
    #[should_panic(expected = "stale EventRef")]
    fn double_take_panics() {
        let mut a = EventArena::new();
        let r = a.alloc(ev(5));
        a.take(r);
        a.take(r);
    }

    #[test]
    #[should_panic(expected = "reuse after free")]
    fn stale_ref_into_recycled_slot_panics() {
        let mut a = EventArena::new();
        let r_old = a.alloc(ev(5));
        a.take(r_old);
        let r_new = a.alloc(ev(9)); // same slot, new generation
        assert_eq!(r_new.index(), r_old.index());
        a.get(r_old); // must not silently read the recycled event
    }

    #[test]
    fn recycled_slot_survives_failed_stale_take() {
        let mut a = EventArena::new();
        let r_old = a.alloc(ev(5));
        a.take(r_old);
        let r_new = a.alloc(ev(9));
        let died =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.take(r_old))).is_err();
        assert!(died);
        assert_eq!(a.get(r_new).time, 9, "occupant restored after stale take");
    }
}
