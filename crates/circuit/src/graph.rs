//! The circuit graph (paper §4.1).
//!
//! A circuit is a DAG: gates are internal nodes, circuit inputs/outputs are
//! dedicated *input nodes* / *output nodes*. Directed edges connect a
//! node's single output port to one input port of a downstream node. Each
//! input port is fed by exactly one edge; an output port may fan out to any
//! number of input ports. There are no cycles.

use crate::gate::GateKind;

/// Index of a node in its [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Input-port index within a node (0 or 1 for gates; 0 for output nodes).
pub type PortIx = u8;

/// One fanout edge: the destination node and which of its input ports this
/// edge feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Target {
    pub node: NodeId,
    pub port: PortIx,
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Circuit input: no input ports, only fanout.
    Input,
    /// Circuit output: one input port, no fanout.
    Output,
    /// A logic gate.
    Gate(GateKind),
}

impl NodeKind {
    /// Number of input ports.
    #[inline]
    pub fn num_inputs(self) -> usize {
        match self {
            NodeKind::Input => 0,
            NodeKind::Output => 1,
            NodeKind::Gate(kind) => kind.arity(),
        }
    }
}

/// One node of the circuit graph.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    /// For each input port, the node feeding it (filled by the builder).
    pub fanin: Vec<NodeId>,
    /// Outgoing edges, in creation order.
    pub fanout: Vec<Target>,
    /// Name (always set for inputs/outputs; optional for gates).
    pub name: Option<String>,
}

/// An immutable, validated circuit graph.
#[derive(Debug, Clone)]
pub struct Circuit {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    num_edges: usize,
    /// Nodes in topological order (sources first).
    topo: Vec<NodeId>,
}

impl Circuit {
    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Borrow one node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes (gates + input nodes + output nodes) — Table 1's
    /// "# nodes".
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges — Table 1's "# edges".
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Circuit input nodes, in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Circuit output nodes, in creation order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Nodes in topological order (every edge goes forward in this order).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Iterate over `(source, target)` pairs of every edge.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Target)> + '_ {
        self.nodes.iter().enumerate().flat_map(|(i, n)| {
            n.fanout
                .iter()
                .map(move |&t| (NodeId(i as u32), t))
        })
    }

    /// Look a node up by name (linear scan; for tests and netlist tools).
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name.as_deref() == Some(name))
            .map(|i| NodeId(i as u32))
    }

    /// Largest fanout degree in the circuit.
    pub fn max_fanout(&self) -> usize {
        self.nodes.iter().map(|n| n.fanout.len()).max().unwrap_or(0)
    }
}

/// Errors detected while assembling a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A gate input port was never connected.
    UnconnectedPort { node: NodeId, port: PortIx },
    /// The graph contains a cycle (paper assumes none).
    Cycle,
    /// An input node with no fanout, or an output node never driven.
    Dangling(NodeId),
    /// Duplicate node name.
    DuplicateName(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnconnectedPort { node, port } => {
                write!(f, "input port {port} of {node} is not connected")
            }
            BuildError::Cycle => write!(f, "circuit graph contains a cycle"),
            BuildError::Dangling(n) => write!(f, "node {n} is dangling"),
            BuildError::DuplicateName(name) => write!(f, "duplicate node name {name:?}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental circuit constructor.
///
/// ```
/// use circuit::{CircuitBuilder, GateKind};
/// let mut b = CircuitBuilder::new();
/// let a = b.add_input("a");
/// let c = b.add_input("b");
/// let g = b.add_gate(GateKind::And, &[a, c]);
/// b.add_output("y", g);
/// let circuit = b.build().unwrap();
/// assert_eq!(circuit.num_nodes(), 4);
/// assert_eq!(circuit.num_edges(), 3);
/// ```
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

impl CircuitBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(node);
        id
    }

    /// Add a circuit input node.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(Node {
            kind: NodeKind::Input,
            fanin: Vec::new(),
            fanout: Vec::new(),
            name: Some(name.into()),
        });
        self.inputs.push(id);
        id
    }

    /// Add a gate fed by `sources` (one per input port, in port order).
    ///
    /// # Panics
    /// If `sources.len()` does not match the gate's arity, or a source is an
    /// output node.
    pub fn add_gate(&mut self, kind: GateKind, sources: &[NodeId]) -> NodeId {
        assert_eq!(
            sources.len(),
            kind.arity(),
            "gate {kind} takes {} inputs",
            kind.arity()
        );
        let id = self.push(Node {
            kind: NodeKind::Gate(kind),
            fanin: sources.to_vec(),
            fanout: Vec::new(),
            name: None,
        });
        for (port, &src) in sources.iter().enumerate() {
            self.connect(src, id, port as PortIx);
        }
        id
    }

    /// Add a named gate.
    pub fn add_named_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        sources: &[NodeId],
    ) -> NodeId {
        let id = self.add_gate(kind, sources);
        self.nodes[id.index()].name = Some(name.into());
        id
    }

    /// Add a circuit output node driven by `source`.
    pub fn add_output(&mut self, name: impl Into<String>, source: NodeId) -> NodeId {
        let id = self.push(Node {
            kind: NodeKind::Output,
            fanin: vec![source],
            fanout: Vec::new(),
            name: Some(name.into()),
        });
        self.connect(source, id, 0);
        self.outputs.push(id);
        id
    }

    fn connect(&mut self, from: NodeId, to: NodeId, port: PortIx) {
        assert!(
            !matches!(self.nodes[from.index()].kind, NodeKind::Output),
            "output nodes have no fanout"
        );
        self.nodes[from.index()].fanout.push(Target { node: to, port });
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// IDs of all non-output nodes currently without fanout. Generators use
    /// this to tie off dead ends with output nodes before building.
    pub fn fanout_free_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.fanout.is_empty() && !matches!(n.kind, NodeKind::Output))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// True if no nodes were added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Validate and freeze the circuit.
    pub fn build(self) -> Result<Circuit, BuildError> {
        let nodes = self.nodes;

        // Unique names.
        let mut names: Vec<&str> = nodes.iter().filter_map(|n| n.name.as_deref()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(BuildError::DuplicateName(w[0].to_string()));
        }

        // Every input port connected exactly once; count edges.
        let mut indegree = vec![0usize; nodes.len()];
        let mut num_edges = 0usize;
        for node in &nodes {
            for &Target { node: to, port } in &node.fanout {
                indegree[to.index()] += 1;
                num_edges += 1;
                let want = nodes[to.index()].kind.num_inputs();
                if (port as usize) >= want {
                    return Err(BuildError::UnconnectedPort { node: to, port });
                }
            }
        }
        for (i, node) in nodes.iter().enumerate() {
            let want = node.kind.num_inputs();
            if indegree[i] != want {
                return Err(BuildError::UnconnectedPort {
                    node: NodeId(i as u32),
                    port: indegree[i].min(want) as PortIx,
                });
            }
            match node.kind {
                NodeKind::Input if node.fanout.is_empty() => {
                    return Err(BuildError::Dangling(NodeId(i as u32)));
                }
                _ => {}
            }
        }

        // Topological sort (Kahn); also detects cycles.
        let mut remaining = indegree.clone();
        let mut topo = Vec::with_capacity(nodes.len());
        let mut queue: Vec<NodeId> = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        while let Some(id) = queue.pop() {
            topo.push(id);
            for &Target { node: to, .. } in &nodes[id.index()].fanout {
                remaining[to.index()] -= 1;
                if remaining[to.index()] == 0 {
                    queue.push(to);
                }
            }
        }
        if topo.len() != nodes.len() {
            return Err(BuildError::Cycle);
        }

        Ok(Circuit {
            inputs: self.inputs,
            outputs: self.outputs,
            nodes,
            num_edges,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_circuit() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let c = b.add_input("b");
        let g = b.add_gate(GateKind::And, &[a, c]);
        b.add_output("y", g);
        b.build().unwrap()
    }

    #[test]
    fn counts_nodes_and_edges() {
        let c = and_circuit();
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.num_edges(), 3);
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn fanin_and_fanout_are_consistent() {
        let c = and_circuit();
        for (src, t) in c.edges() {
            assert_eq!(c.node(t.node).fanin[t.port as usize], src);
        }
    }

    #[test]
    fn topo_order_respects_edges() {
        let c = and_circuit();
        let pos: Vec<usize> = {
            let mut p = vec![0; c.num_nodes()];
            for (i, id) in c.topo_order().iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for (src, t) in c.edges() {
            assert!(pos[src.index()] < pos[t.node.index()]);
        }
    }

    #[test]
    fn find_by_name() {
        let c = and_circuit();
        assert_eq!(c.find("a"), Some(NodeId(0)));
        assert_eq!(c.find("nope"), None);
    }

    #[test]
    fn fanout_sharing_is_allowed() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Not, &[a]);
        let n2 = b.add_gate(GateKind::Not, &[a]);
        let g = b.add_gate(GateKind::And, &[n1, n2]);
        b.add_output("y", g);
        let c = b.build().unwrap();
        assert_eq!(c.node(a).fanout.len(), 2);
        assert_eq!(c.max_fanout(), 2);
    }

    #[test]
    fn unconnected_port_is_rejected() {
        // An output node referencing itself is impossible through the
        // builder API, but a dangling input is easy to produce.
        let mut b = CircuitBuilder::new();
        b.add_input("a");
        let err = b.build().unwrap_err();
        assert!(matches!(err, BuildError::Dangling(_)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("x");
        let a2 = b.add_input("x");
        let g = b.add_gate(GateKind::Or, &[a, a2]);
        b.add_output("y", g);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateName("x".to_string())
        );
    }

    #[test]
    #[should_panic(expected = "takes 2 inputs")]
    fn wrong_arity_panics() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        b.add_gate(GateKind::And, &[a]);
    }

    #[test]
    fn gate_feeding_two_ports_of_same_node() {
        // A gate output may feed both input ports of one downstream gate.
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let g = b.add_gate(GateKind::Xor, &[a, a]);
        b.add_output("y", g);
        let c = b.build().unwrap();
        assert_eq!(c.node(a).fanout.len(), 2);
        assert_eq!(c.node(g).fanin, vec![a, a]);
    }
}
