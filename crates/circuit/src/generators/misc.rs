//! Additional combinational circuit families: parity trees, equality
//! comparators, 2:1 muxes, carry-select adders, and barrel shifters.
//! They diversify the benchmark/test workloads beyond the paper's trio
//! (different fanout/depth profiles exercise the engines differently).

use crate::gate::GateKind;
use crate::graph::{Circuit, CircuitBuilder, NodeId};

/// 2:1 multiplexer: `sel ? hi : lo` (4 gates).
pub(crate) fn mux2(b: &mut CircuitBuilder, lo: NodeId, hi: NodeId, sel: NodeId) -> NodeId {
    let nsel = b.add_gate(GateKind::Not, &[sel]);
    let pick_hi = b.add_gate(GateKind::And, &[hi, sel]);
    let pick_lo = b.add_gate(GateKind::And, &[lo, nsel]);
    b.add_gate(GateKind::Or, &[pick_hi, pick_lo])
}

/// Balanced XOR reduction over `leaves` (parity).
pub(crate) fn xor_tree(b: &mut CircuitBuilder, leaves: &[NodeId]) -> NodeId {
    reduce_tree(b, GateKind::Xor, leaves)
}

/// Balanced AND reduction over `leaves`.
pub(crate) fn and_tree(b: &mut CircuitBuilder, leaves: &[NodeId]) -> NodeId {
    reduce_tree(b, GateKind::And, leaves)
}

fn reduce_tree(b: &mut CircuitBuilder, kind: GateKind, leaves: &[NodeId]) -> NodeId {
    assert!(!leaves.is_empty());
    let mut level: Vec<NodeId> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match *pair {
                [x, y] => next.push(b.add_gate(kind, &[x, y])),
                [x] => next.push(x),
                _ => unreachable!(),
            }
        }
        level = next;
    }
    level[0]
}

/// An `n`-input parity tree: output is the XOR of all inputs.
/// Logarithmic depth, no reconvergence — a clean scaling workload.
pub fn parity_tree(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut b = CircuitBuilder::new();
    let inputs: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("x{i}"))).collect();
    let root = if n == 1 {
        b.add_gate(GateKind::Buf, &[inputs[0]])
    } else {
        xor_tree(&mut b, &inputs)
    };
    b.add_output("parity", root);
    b.build().expect("parity tree is well-formed")
}

/// An `n`-bit equality comparator: `eq = AND_i XNOR(a_i, b_i)`.
pub fn equality_comparator(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut b = CircuitBuilder::new();
    let a: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("a{i}"))).collect();
    let bb: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("b{i}"))).collect();
    let bits: Vec<NodeId> = (0..n)
        .map(|i| b.add_gate(GateKind::Xnor, &[a[i], bb[i]]))
        .collect();
    let eq = and_tree(&mut b, &bits);
    b.add_output("eq", eq);
    b.build().expect("comparator is well-formed")
}

/// An `n`-bit carry-select adder with block size `block`: each block
/// computes both carry cases with ripple chains and muxes on the real
/// carry. Between ripple and Kogge–Stone in depth; heavy mux fanout.
///
/// Inputs: `a0..`, `b0..`, `cin`. Outputs: `s0..`, `cout`.
pub fn carry_select_adder(n: usize, block: usize) -> Circuit {
    assert!(n >= 1 && block >= 1 && block <= n);
    let mut b = CircuitBuilder::new();
    let a: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("a{i}"))).collect();
    let bb: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("b{i}"))).collect();
    let cin = b.add_input("cin");

    /// One ripple chain over bits [lo, hi) with a *wire* carry-in.
    fn ripple(
        b: &mut CircuitBuilder,
        a: &[NodeId],
        bb: &[NodeId],
        lo: usize,
        hi: usize,
        mut carry: NodeId,
    ) -> (Vec<NodeId>, NodeId) {
        let mut sums = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            let (s, c) = super::full_adder_cell(b, a[i], bb[i], carry);
            sums.push(s);
            carry = c;
        }
        (sums, carry)
    }

    let mut sums: Vec<NodeId> = Vec::with_capacity(n);
    let mut carry = cin;
    let mut lo = 0;
    // Constant 0/1 carry seeds for the speculative chains.
    let zero = {
        let inv = b.add_gate(GateKind::Not, &[cin]);
        b.add_gate(GateKind::And, &[cin, inv])
    };
    let one = b.add_gate(GateKind::Not, &[zero]);
    while lo < n {
        let hi = (lo + block).min(n);
        if lo == 0 {
            // First block: the real carry is available immediately.
            let (s, c) = ripple(&mut b, &a, &bb, lo, hi, carry);
            sums.extend(s);
            carry = c;
        } else {
            // Speculative block: compute with carry 0 and carry 1, then
            // select with the incoming carry.
            let (s0, c0) = ripple(&mut b, &a, &bb, lo, hi, zero);
            let (s1, c1) = ripple(&mut b, &a, &bb, lo, hi, one);
            for (x0, x1) in s0.into_iter().zip(s1) {
                sums.push(mux2(&mut b, x0, x1, carry));
            }
            carry = mux2(&mut b, c0, c1, carry);
        }
        lo = hi;
    }
    for (i, &s) in sums.iter().enumerate() {
        b.add_output(format!("s{i}"), s);
    }
    b.add_output("cout", carry);
    b.build().expect("carry-select adder is well-formed")
}

/// An `n`-bit logical-left barrel shifter (`n` a power of two):
/// `log2(n)` mux stages, shifting by `2^k` when shift bit `k` is set.
/// Vacated low bits fill with zero.
///
/// Inputs: `d0..d(n-1)`, `sh0..sh(log2 n - 1)`. Outputs: `y0..y(n-1)`.
pub fn barrel_shifter(n: usize) -> Circuit {
    assert!(n.is_power_of_two() && n >= 2, "width must be a power of two ≥ 2");
    let stages = n.trailing_zeros() as usize;
    let mut b = CircuitBuilder::new();
    let data: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("d{i}"))).collect();
    let shift: Vec<NodeId> = (0..stages).map(|k| b.add_input(format!("sh{k}"))).collect();

    // Constant zero for the fill (derived from sh0).
    let zero = {
        let inv = b.add_gate(GateKind::Not, &[shift[0]]);
        b.add_gate(GateKind::And, &[shift[0], inv])
    };

    let mut wires = data;
    for (k, &sel) in shift.iter().enumerate() {
        let amount = 1usize << k;
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let shifted = if i >= amount { wires[i - amount] } else { zero };
            next.push(mux2(&mut b, wires[i], shifted, sel));
        }
        wires = next;
    }
    for (i, &w) in wires.iter().enumerate() {
        b.add_output(format!("y{i}"), w);
    }
    b.build().expect("barrel shifter is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::logic::{from_word, Logic};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn out_word(c: &Circuit, inputs: &[Logic]) -> u64 {
        evaluate(c, inputs)
            .output_values(c)
            .iter()
            .enumerate()
            .map(|(i, v)| v.as_bit() << i)
            .sum()
    }

    #[test]
    fn parity_matches_popcount() {
        for n in [1, 2, 3, 7, 16] {
            let c = parity_tree(n);
            let mut rng = StdRng::seed_from_u64(n as u64);
            for _ in 0..20 {
                let word: u64 = rng.gen::<u64>() & ((1u64 << n) - 1).max(1);
                let inputs = from_word(word, n);
                let expected = (word.count_ones() % 2) as u64;
                assert_eq!(out_word(&c, &inputs), expected, "n={n} word={word:b}");
            }
        }
    }

    #[test]
    fn comparator_detects_equality() {
        let c = equality_comparator(8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let a: u64 = rng.gen_range(0..256);
            let b_val: u64 = if rng.gen() { a } else { rng.gen_range(0..256) };
            let mut inputs = from_word(a, 8);
            inputs.extend(from_word(b_val, 8));
            assert_eq!(out_word(&c, &inputs) == 1, a == b_val, "{a} vs {b_val}");
        }
    }

    #[test]
    fn carry_select_adds() {
        for (n, block) in [(8, 2), (8, 3), (16, 4), (12, 5)] {
            let c = carry_select_adder(n, block);
            let mut rng = StdRng::seed_from_u64((n * 31 + block) as u64);
            for _ in 0..25 {
                let a = rng.gen_range(0..1u64 << n);
                let b_val = rng.gen_range(0..1u64 << n);
                let cin = rng.gen::<bool>();
                let mut inputs = from_word(a, n);
                inputs.extend(from_word(b_val, n));
                inputs.push(Logic::from_bool(cin));
                let got = out_word(&c, &inputs);
                assert_eq!(got, a + b_val + cin as u64, "{n}/{block}: {a}+{b_val}+{cin}");
            }
        }
    }

    #[test]
    fn carry_select_matches_kogge_stone_structure_counts() {
        use crate::generators::kogge_stone_adder;
        let cs = carry_select_adder(16, 4);
        let ks = kogge_stone_adder(16);
        assert_eq!(cs.inputs().len(), ks.inputs().len());
        assert_eq!(cs.outputs().len(), ks.outputs().len());
    }

    #[test]
    fn barrel_shifter_shifts() {
        let n = 8;
        let c = barrel_shifter(n);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let word: u64 = rng.gen_range(0..256);
            let sh: u64 = rng.gen_range(0..8);
            let mut inputs = from_word(word, n);
            inputs.extend(from_word(sh, 3));
            let got = out_word(&c, &inputs);
            assert_eq!(got, (word << sh) & 0xFF, "{word} << {sh}");
        }
    }

    #[test]
    fn barrel_shifter_zero_shift_is_identity() {
        let c = barrel_shifter(16);
        let mut inputs = from_word(0xBEEF, 16);
        inputs.extend(from_word(0, 4));
        assert_eq!(out_word(&c, &inputs), 0xBEEF);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn barrel_shifter_rejects_non_power_of_two() {
        let _ = barrel_shifter(12);
    }
}
