//! Random layered DAG circuits, for property-based differential testing of
//! the DES engines (every engine must agree on any circuit, not just the
//! evaluation trio).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gate::ALL_GATE_KINDS;
use crate::graph::{Circuit, CircuitBuilder, NodeId};

/// Shape parameters for [`random_layered`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomCircuitConfig {
    /// Number of circuit inputs (≥ 1).
    pub inputs: usize,
    /// Number of gate layers (≥ 1).
    pub layers: usize,
    /// Gates per layer (≥ 1).
    pub width: usize,
    /// RNG seed; equal seeds produce identical circuits.
    pub seed: u64,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            inputs: 4,
            layers: 5,
            width: 8,
            seed: 0,
        }
    }
}

/// Generate a random layered circuit: each gate draws its operands from
/// any earlier layer (or the inputs), then every node without fanout is
/// tied off to an output node so the graph is fully alive.
pub fn random_layered(config: RandomCircuitConfig) -> Circuit {
    assert!(config.inputs >= 1 && config.layers >= 1 && config.width >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = CircuitBuilder::new();

    let mut pool: Vec<NodeId> = (0..config.inputs)
        .map(|i| b.add_input(format!("in{i}")))
        .collect();

    let mut layer_start = 0;
    for _ in 0..config.layers {
        let layer_end = pool.len();
        let mut new_layer = Vec::with_capacity(config.width);
        for _ in 0..config.width {
            let kind = ALL_GATE_KINDS[rng.gen_range(0..ALL_GATE_KINDS.len())];
            // Bias one operand toward the most recent layer so depth grows.
            let recent = rng.gen_range(layer_start..layer_end);
            let gate = if kind.arity() == 1 {
                b.add_gate(kind, &[pool[recent]])
            } else {
                let other = rng.gen_range(0..layer_end);
                b.add_gate(kind, &[pool[recent], pool[other]])
            };
            new_layer.push(gate);
        }
        layer_start = layer_end;
        pool.extend(new_layer);
    }

    // Tie off every node that ended up without fanout so all events flow
    // somewhere observable.
    for (k, id) in b.fanout_free_nodes().into_iter().enumerate() {
        b.add_output(format!("out{k}"), id);
    }
    b.build().expect("random circuit is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::graph::NodeKind;
    use crate::logic::Logic;

    #[test]
    fn deterministic_by_seed() {
        let cfg = RandomCircuitConfig::default();
        let a = random_layered(cfg);
        let b = random_layered(cfg);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        let c = random_layered(RandomCircuitConfig { seed: 1, ..cfg });
        // Different seed virtually always changes the edge structure.
        assert!(a.num_edges() != c.num_edges() || a.num_nodes() != c.num_nodes() || {
            // Same counts can coincide; compare actual edges then.
            let ea: Vec<_> = a.edges().collect();
            let ec: Vec<_> = c.edges().collect();
            ea != ec
        });
    }

    #[test]
    fn all_nodes_alive() {
        let c = random_layered(RandomCircuitConfig {
            inputs: 3,
            layers: 4,
            width: 6,
            seed: 99,
        });
        for (i, node) in c.nodes().iter().enumerate() {
            match node.kind {
                NodeKind::Output => assert!(node.fanout.is_empty()),
                _ => assert!(!node.fanout.is_empty(), "node {i} is a dead end"),
            }
        }
    }

    #[test]
    fn evaluates_without_panicking() {
        let c = random_layered(RandomCircuitConfig {
            inputs: 5,
            layers: 6,
            width: 10,
            seed: 12345,
        });
        let inputs = vec![Logic::One; c.inputs().len()];
        let eval = evaluate(&c, &inputs);
        assert_eq!(eval.values.len(), c.num_nodes());
    }

    #[test]
    fn respects_shape_parameters() {
        let cfg = RandomCircuitConfig {
            inputs: 7,
            layers: 3,
            width: 5,
            seed: 3,
        };
        let c = random_layered(cfg);
        assert_eq!(c.inputs().len(), 7);
        // nodes = inputs + layers*width + outputs(sinks)
        assert!(c.num_nodes() >= 7 + 15);
    }
}
