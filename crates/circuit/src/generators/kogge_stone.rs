//! Kogge–Stone parallel-prefix tree adder (Kogge & Stone 1973), the
//! 64/128-bit evaluation circuits of the paper (Table 1).
//!
//! Structure: a generate/propagate stage (`g_i = a_i·b_i`,
//! `p_i = a_i⊕b_i`), `⌈log₂ n⌉` parallel-prefix levels of *black cells*
//! combining `(G, P)` windows, a carry-in incorporation stage, and a final
//! sum stage. The prefix levels have large fanout mid-circuit, which is
//! exactly the "parallelism builds up due to large fanouts in the middle"
//! behaviour Figure 1 describes.

use crate::gate::GateKind;
use crate::graph::{Circuit, CircuitBuilder, NodeId};

/// Build an `n`-bit Kogge–Stone adder with carry-in.
///
/// Inputs (in order): `a0..a(n-1)`, `b0..b(n-1)`, `cin` — `2n + 1` inputs.
/// Outputs (in order): `s0..s(n-1)`, `cout` — `n + 1` outputs.
///
/// # Panics
/// If `n` is 0 or greater than 128.
pub fn kogge_stone_adder(n: usize) -> Circuit {
    assert!((1..=128).contains(&n), "supported widths: 1..=128 bits");
    let mut b = CircuitBuilder::new();

    let a_in: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("a{i}"))).collect();
    let b_in: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("b{i}"))).collect();
    let cin = b.add_input("cin");

    // Generate / propagate per bit.
    let mut g: Vec<NodeId> = Vec::with_capacity(n);
    let mut p: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        p.push(b.add_gate(GateKind::Xor, &[a_in[i], b_in[i]]));
        g.push(b.add_gate(GateKind::And, &[a_in[i], b_in[i]]));
    }
    // `p` is consumed twice (prefix network and sum stage); keep the
    // originals for the sum stage.
    let p0 = p.clone();

    // Parallel-prefix levels: after processing distance d, (g[i], p[i])
    // covers the window [i-2d+1 ..= i] … i.e. grows to cover [0..=i] once
    // 2^levels ≥ i+1.
    let mut d = 1;
    while d < n {
        let mut new_g = g.clone();
        let mut new_p = p.clone();
        for i in d..n {
            // Black cell: G' = G_hi + P_hi·G_lo ; P' = P_hi·P_lo.
            let t = b.add_gate(GateKind::And, &[p[i], g[i - d]]);
            new_g[i] = b.add_gate(GateKind::Or, &[g[i], t]);
            new_p[i] = b.add_gate(GateKind::And, &[p[i], p[i - d]]);
        }
        g = new_g;
        p = new_p;
        d *= 2;
    }

    // Carries: c_0 = cin; c_{i+1} = G_i + P_i·cin  (G/P now span [0..=i]).
    let mut carries: Vec<NodeId> = Vec::with_capacity(n + 1);
    carries.push(cin);
    for i in 0..n {
        let t = b.add_gate(GateKind::And, &[p[i], cin]);
        carries.push(b.add_gate(GateKind::Or, &[g[i], t]));
    }

    // Sums: s_i = p_i ⊕ c_i.
    for i in 0..n {
        let s = b.add_gate(GateKind::Xor, &[p0[i], carries[i]]);
        b.add_output(format!("s{i}"), s);
    }
    b.add_output("cout", carries[n]);

    b.build().expect("kogge-stone adder is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::logic::{from_word, Logic};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_add(circuit: &Circuit, n: usize, a: u128, b: u128, cin: bool) {
        let mut inputs: Vec<Logic> = Vec::with_capacity(2 * n + 1);
        for i in 0..n {
            inputs.push(Logic::from_bit((a >> i) as u64));
        }
        for i in 0..n {
            inputs.push(Logic::from_bit((b >> i) as u64));
        }
        inputs.push(Logic::from_bool(cin));
        let eval = evaluate(circuit, &inputs);
        let out = eval.output_values(circuit);
        let expected = a + b + cin as u128;
        for (i, bit) in out.iter().enumerate().take(n) {
            assert_eq!(
                bit.as_bit() as u128,
                (expected >> i) & 1,
                "sum bit {i} of {a} + {b} + {cin}"
            );
        }
        assert_eq!(
            out[n].as_bit() as u128,
            (expected >> n) & 1,
            "carry out of {a} + {b} + {cin}"
        );
    }

    #[test]
    fn four_bit_exhaustive() {
        let c = kogge_stone_adder(4);
        for a in 0..16u128 {
            for b in 0..16u128 {
                for cin in [false, true] {
                    check_add(&c, 4, a, b, cin);
                }
            }
        }
    }

    #[test]
    fn one_bit_is_a_full_adder() {
        let c = kogge_stone_adder(1);
        for a in 0..2u128 {
            for b in 0..2u128 {
                for cin in [false, true] {
                    check_add(&c, 1, a, b, cin);
                }
            }
        }
    }

    #[test]
    fn sixty_four_bit_random() {
        let c = kogge_stone_adder(64);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..20 {
            let a: u64 = rng.gen();
            let b: u64 = rng.gen();
            check_add(&c, 64, a as u128, b as u128, rng.gen());
        }
        // Carry chain stress: all ones + 1.
        check_add(&c, 64, u64::MAX as u128, 0, true);
        check_add(&c, 64, u64::MAX as u128, 1, false);
    }

    #[test]
    fn profile_matches_paper_family() {
        // Table 1 reports 1,306 nodes / 2,289 edges for the 64-bit adder
        // and 2,973 / 5,303 for the 128-bit one. Our generator lands in
        // the same regime (exact netlists were never published).
        let c64 = kogge_stone_adder(64);
        assert_eq!(c64.inputs().len(), 129);
        assert_eq!(c64.outputs().len(), 65);
        assert!(
            (1_000..2_200).contains(&c64.num_nodes()),
            "ks64 nodes = {}",
            c64.num_nodes()
        );
        let c128 = kogge_stone_adder(128);
        assert_eq!(c128.inputs().len(), 257);
        assert_eq!(c128.outputs().len(), 129);
        assert!(
            (2_300..5_000).contains(&c128.num_nodes()),
            "ks128 nodes = {}",
            c128.num_nodes()
        );
        assert!(c128.num_nodes() > c64.num_nodes());
    }

    #[test]
    fn word_helper_consistency() {
        // from_word helper builds the same input layout as check_add.
        let c = kogge_stone_adder(8);
        let mut inputs = from_word(200, 8);
        inputs.extend(from_word(55, 8));
        inputs.push(Logic::Zero);
        let out = evaluate(&c, &inputs).output_values(&c);
        let got: u64 = out
            .iter()
            .enumerate()
            .map(|(i, v)| v.as_bit() << i)
            .sum();
        assert_eq!(got, 255);
    }
}
