//! Circuit families used in the paper's evaluation plus supporting
//! test/benchmark circuits.
//!
//! The evaluation circuits (Table 1):
//! * [`kogge_stone_adder`] — 64- and 128-bit Kogge–Stone tree adders;
//! * [`wallace_multiplier`] — the 12-bit tree multiplier.
//!
//! Exact gate-level netlists of the Galois input files were never
//! published; these generators produce the same circuit families with
//! comparable node/edge counts (reported side by side in EXPERIMENTS.md).

mod kogge_stone;
mod misc;
mod multiplier;
mod random;
mod ripple;

pub use kogge_stone::kogge_stone_adder;
pub use misc::{barrel_shifter, carry_select_adder, equality_comparator, parity_tree};
pub use multiplier::wallace_multiplier;
pub use random::{random_layered, RandomCircuitConfig};
pub use ripple::ripple_carry_adder;

use crate::gate::GateKind;
use crate::graph::{Circuit, CircuitBuilder, NodeId};

/// A single full adder cell: `(sum, carry)` from `(a, b, cin)`.
///
/// Five gates: 2 XOR, 2 AND, 1 OR — the canonical tree-multiplier cell.
pub(crate) fn full_adder_cell(
    b: &mut CircuitBuilder,
    a: NodeId,
    bb: NodeId,
    cin: NodeId,
) -> (NodeId, NodeId) {
    let axb = b.add_gate(GateKind::Xor, &[a, bb]);
    let sum = b.add_gate(GateKind::Xor, &[axb, cin]);
    let ab = b.add_gate(GateKind::And, &[a, bb]);
    let cab = b.add_gate(GateKind::And, &[axb, cin]);
    let carry = b.add_gate(GateKind::Or, &[ab, cab]);
    (sum, carry)
}

/// A half adder cell: `(sum, carry)` from `(a, b)`. Two gates.
pub(crate) fn half_adder_cell(b: &mut CircuitBuilder, a: NodeId, bb: NodeId) -> (NodeId, NodeId) {
    let sum = b.add_gate(GateKind::Xor, &[a, bb]);
    let carry = b.add_gate(GateKind::And, &[a, bb]);
    (sum, carry)
}

/// A standalone full adder circuit (3 inputs, 2 outputs). Handy for tests.
pub fn full_adder() -> Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.add_input("a");
    let bb = b.add_input("b");
    let cin = b.add_input("cin");
    let (s, c) = full_adder_cell(&mut b, a, bb, cin);
    b.add_output("sum", s);
    b.add_output("cout", c);
    b.build().expect("full adder is well-formed")
}

/// The ISCAS-85 C17 benchmark: 5 inputs, 6 NAND gates, 2 outputs. The
/// smallest standard benchmark circuit; useful as a smoke test.
pub fn c17() -> Circuit {
    let mut b = CircuitBuilder::new();
    let n1 = b.add_input("1");
    let n2 = b.add_input("2");
    let n3 = b.add_input("3");
    let n6 = b.add_input("6");
    let n7 = b.add_input("7");
    let n10 = b.add_named_gate("10", GateKind::Nand, &[n1, n3]);
    let n11 = b.add_named_gate("11", GateKind::Nand, &[n3, n6]);
    let n16 = b.add_named_gate("16", GateKind::Nand, &[n2, n11]);
    let n19 = b.add_named_gate("19", GateKind::Nand, &[n11, n7]);
    let n22 = b.add_named_gate("g22", GateKind::Nand, &[n10, n16]);
    let n23 = b.add_named_gate("g23", GateKind::Nand, &[n16, n19]);
    b.add_output("22", n22);
    b.add_output("23", n23);
    b.build().expect("c17 is well-formed")
}

/// A chain of `len` inverters: 1 input, 1 output. Zero available
/// parallelism — the degenerate case of Figure 1's profile.
pub fn inverter_chain(len: usize) -> Circuit {
    assert!(len >= 1);
    let mut b = CircuitBuilder::new();
    let a = b.add_input("a");
    let mut cur = a;
    for _ in 0..len {
        cur = b.add_gate(GateKind::Not, &[cur]);
    }
    b.add_output("y", cur);
    b.build().expect("chain is well-formed")
}

/// A complete buffer tree of the given `depth` and `fanout`: 1 input,
/// `fanout^depth` outputs. Maximal available parallelism growth — the
/// other extreme of Figure 1's profile.
pub fn fanout_tree(depth: usize, fanout: usize) -> Circuit {
    assert!(fanout >= 1);
    let mut b = CircuitBuilder::new();
    let root = b.add_input("a");
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for &node in &frontier {
            for _ in 0..fanout {
                next.push(b.add_gate(GateKind::Buf, &[node]));
            }
        }
        frontier = next;
    }
    for (i, &leaf) in frontier.iter().enumerate() {
        b.add_output(format!("y{i}"), leaf);
    }
    b.build().expect("tree is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::logic::Logic;

    #[test]
    fn c17_shape() {
        let c = c17();
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.num_nodes(), 13);
    }

    #[test]
    fn c17_functional_spot_checks() {
        let c = c17();
        // All-zero inputs: n10 = nand(0,0)=1, n11=1, n16=nand(0,1)=1,
        // n19=nand(1,0)=1, 22=nand(1,1)=0, 23=nand(1,1)=0.
        let eval = evaluate(&c, &[Logic::Zero; 5]);
        assert_eq!(eval.output_values(&c), vec![Logic::Zero, Logic::Zero]);
        // All-one inputs: n10=0, n11=0, n16=1, n19=1, 22=nand(0,1)=1, 23=0.
        let eval = evaluate(&c, &[Logic::One; 5]);
        assert_eq!(eval.output_values(&c), vec![Logic::One, Logic::Zero]);
    }

    #[test]
    fn inverter_chain_parity() {
        for len in 1..6 {
            let c = inverter_chain(len);
            let out = evaluate(&c, &[Logic::Zero]).output_values(&c)[0];
            assert_eq!(out.as_bool(), len % 2 == 1, "len={len}");
        }
    }

    #[test]
    fn fanout_tree_counts() {
        let c = fanout_tree(3, 2);
        assert_eq!(c.outputs().len(), 8);
        // 1 input + (2+4+8) buffers + 8 outputs.
        assert_eq!(c.num_nodes(), 1 + 14 + 8);
        let eval = evaluate(&c, &[Logic::One]);
        assert!(eval.output_values(&c).iter().all(|v| v.as_bool()));
    }

    #[test]
    fn full_adder_circuit_adds() {
        let c = full_adder();
        for bits in 0..8u64 {
            let vals = [
                Logic::from_bit(bits),
                Logic::from_bit(bits >> 1),
                Logic::from_bit(bits >> 2),
            ];
            let out = evaluate(&c, &vals).output_values(&c);
            let total = (bits & 1) + ((bits >> 1) & 1) + ((bits >> 2) & 1);
            assert_eq!(out[0].as_bit(), total & 1);
            assert_eq!(out[1].as_bit(), total >> 1);
        }
    }
}
