//! Ripple-carry adder — the serial-depth counterpart to the Kogge–Stone
//! tree adder. Same interface, linear critical path: useful as an ablation
//! workload with *low* available parallelism.

use crate::graph::{Circuit, CircuitBuilder, NodeId};

use super::full_adder_cell;

/// Build an `n`-bit ripple-carry adder with carry-in.
///
/// Inputs (in order): `a0..a(n-1)`, `b0..b(n-1)`, `cin`.
/// Outputs (in order): `s0..s(n-1)`, `cout`.
pub fn ripple_carry_adder(n: usize) -> Circuit {
    assert!((1..=128).contains(&n), "supported widths: 1..=128 bits");
    let mut b = CircuitBuilder::new();
    let a_in: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("a{i}"))).collect();
    let b_in: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("b{i}"))).collect();
    let mut carry = b.add_input("cin");
    for i in 0..n {
        let (s, c) = full_adder_cell(&mut b, a_in[i], b_in[i], carry);
        b.add_output(format!("s{i}"), s);
        carry = c;
    }
    b.add_output("cout", carry);
    b.build().expect("ripple adder is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{critical_path_delay, evaluate};
    use crate::gate::DelayModel;
    use crate::generators::kogge_stone_adder;
    use crate::logic::Logic;

    fn add(circuit: &Circuit, n: usize, a: u64, b: u64, cin: bool) -> u128 {
        let mut inputs: Vec<Logic> = Vec::new();
        for i in 0..n {
            inputs.push(Logic::from_bit(a >> i));
        }
        for i in 0..n {
            inputs.push(Logic::from_bit(b >> i));
        }
        inputs.push(Logic::from_bool(cin));
        let out = evaluate(circuit, &inputs).output_values(circuit);
        out.iter()
            .enumerate()
            .map(|(i, v)| (v.as_bit() as u128) << i)
            .sum()
    }

    #[test]
    fn eight_bit_exhaustive_diagonal() {
        let c = ripple_carry_adder(8);
        for a in (0..256).step_by(7) {
            for b in (0..256).step_by(11) {
                assert_eq!(add(&c, 8, a, b, false), (a + b) as u128);
                assert_eq!(add(&c, 8, a, b, true), (a + b + 1) as u128);
            }
        }
    }

    #[test]
    fn ripple_is_deeper_than_kogge_stone() {
        let d = DelayModel::standard();
        let ripple = critical_path_delay(&ripple_carry_adder(32), &d);
        let ks = critical_path_delay(&kogge_stone_adder(32), &d);
        assert!(
            ripple > 2 * ks,
            "ripple depth {ripple} should far exceed KS depth {ks}"
        );
    }
}
