//! Wallace-tree multiplier — the paper's "tree multiplier" evaluation
//! circuit (Table 1 uses a 12-bit instance).
//!
//! Structure: an `n×n` partial-product plane of AND gates, logarithmic
//! column compression with full/half adder cells, and a final ripple
//! combination of the remaining two rows. The small number of primary
//! inputs and wide middle is what produces Figure 1's parallelism profile
//! (low at the ports, high in the middle).

use crate::graph::{Circuit, CircuitBuilder, NodeId};

use super::{full_adder_cell, half_adder_cell};

/// Build an `n`-bit × `n`-bit Wallace tree multiplier.
///
/// Inputs (in order): `a0..a(n-1)`, `b0..b(n-1)` — `2n` inputs.
/// Outputs (in order): `p0..p(2n-1)` — the `2n`-bit product.
///
/// # Panics
/// If `n` is 0 or greater than 32.
pub fn wallace_multiplier(n: usize) -> Circuit {
    assert!((1..=32).contains(&n), "supported widths: 1..=32 bits");
    let mut b = CircuitBuilder::new();

    let a_in: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("a{i}"))).collect();
    let b_in: Vec<NodeId> = (0..n).map(|i| b.add_input(format!("b{i}"))).collect();

    // Partial products: column c collects a_i·b_j for i + j = c.
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); 2 * n];
    for i in 0..n {
        for j in 0..n {
            let pp = b.add_gate(crate::gate::GateKind::And, &[a_in[i], b_in[j]]);
            columns[i + j].push(pp);
        }
    }

    // Wallace compression: repeatedly replace 3 bits of a column with a
    // full adder (sum stays, carry moves one column left), pairs with a
    // half adder, until every column has at most 2 bits.
    loop {
        let needs_work = columns.iter().any(|c| c.len() > 2);
        if !needs_work {
            break;
        }
        let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); columns.len() + 1];
        for (c, bits) in columns.iter().enumerate() {
            let mut iter = bits.chunks(3);
            for chunk in &mut iter {
                match *chunk {
                    [x, y, z] => {
                        let (s, carry) = full_adder_cell(&mut b, x, y, z);
                        next[c].push(s);
                        next[c + 1].push(carry);
                    }
                    [x, y] => {
                        let (s, carry) = half_adder_cell(&mut b, x, y);
                        next[c].push(s);
                        next[c + 1].push(carry);
                    }
                    [x] => next[c].push(x),
                    _ => unreachable!("chunks(3) yields 1..=3 items"),
                }
            }
        }
        // Drop a trailing empty column created speculatively.
        while next.len() > 2 * n && next.last().is_some_and(Vec::is_empty) {
            next.pop();
        }
        columns = next;
    }

    // Final stage: at most two bits per column → ripple full/half adders.
    let mut carry: Option<NodeId> = None;
    let mut product: Vec<NodeId> = Vec::with_capacity(2 * n);
    for bits in columns.iter().take(2 * n) {
        let node = match (bits.as_slice(), carry) {
            ([], None) => None,
            ([], Some(c)) => {
                carry = None;
                Some(c)
            }
            ([x], None) => Some(*x),
            ([x], Some(c)) => {
                let (s, co) = half_adder_cell(&mut b, *x, c);
                carry = Some(co);
                Some(s)
            }
            ([x, y], None) => {
                let (s, co) = half_adder_cell(&mut b, *x, *y);
                carry = Some(co);
                Some(s)
            }
            ([x, y], Some(c)) => {
                let (s, co) = full_adder_cell(&mut b, *x, *y, c);
                carry = Some(co);
                Some(s)
            }
            _ => unreachable!("columns are compressed to ≤ 2 bits"),
        };
        product.push(node.unwrap_or_else(|| {
            // Column with no contribution (only for n = 1's top bit):
            // synthesize constant zero as x AND NOT x is overkill; reuse
            // a0 XOR a0 — but that adds fanout. Simplest: a zero via
            // AND of a0 with its inverse.
            let inv = b.add_gate(crate::gate::GateKind::Not, &[a_in[0]]);
            b.add_gate(crate::gate::GateKind::And, &[a_in[0], inv])
        }));
    }

    for (i, &bit) in product.iter().enumerate() {
        b.add_output(format!("p{i}"), bit);
    }
    b.build().expect("wallace multiplier is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::logic::Logic;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_mul(circuit: &Circuit, n: usize, a: u64, bb: u64) {
        let mut inputs: Vec<Logic> = Vec::with_capacity(2 * n);
        for i in 0..n {
            inputs.push(Logic::from_bit(a >> i));
        }
        for i in 0..n {
            inputs.push(Logic::from_bit(bb >> i));
        }
        let out = evaluate(circuit, &inputs).output_values(circuit);
        let expected = (a as u128) * (bb as u128);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(
                v.as_bit() as u128,
                (expected >> i) & 1,
                "bit {i} of {a} * {bb}"
            );
        }
    }

    #[test]
    fn four_bit_exhaustive() {
        let c = wallace_multiplier(4);
        for a in 0..16 {
            for b in 0..16 {
                check_mul(&c, 4, a, b);
            }
        }
    }

    #[test]
    fn two_bit_exhaustive() {
        let c = wallace_multiplier(2);
        for a in 0..4 {
            for b in 0..4 {
                check_mul(&c, 2, a, b);
            }
        }
    }

    #[test]
    fn one_bit_is_an_and() {
        let c = wallace_multiplier(1);
        for a in 0..2 {
            for b in 0..2 {
                check_mul(&c, 1, a, b);
            }
        }
    }

    #[test]
    fn twelve_bit_random() {
        let c = wallace_multiplier(12);
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..20 {
            let a = rng.gen_range(0..1u64 << 12);
            let b = rng.gen_range(0..1u64 << 12);
            check_mul(&c, 12, a, b);
        }
        check_mul(&c, 12, (1 << 12) - 1, (1 << 12) - 1);
        check_mul(&c, 12, 0, (1 << 12) - 1);
    }

    #[test]
    fn profile_matches_paper_family() {
        // Table 1 reports 2,731 nodes / 5,100 edges for the 12-bit tree
        // multiplier; a plain Wallace tree lands below that (the Galois
        // netlist likely decomposes cells further) but in the same regime.
        let c = wallace_multiplier(12);
        assert_eq!(c.inputs().len(), 24);
        assert_eq!(c.outputs().len(), 24);
        assert!(
            (700..3_000).contains(&c.num_nodes()),
            "mult12 nodes = {}",
            c.num_nodes()
        );
        assert!(c.num_edges() > c.num_nodes()); // 2-input gates dominate
    }
}
