//! Gate library: kinds, truth tables, and the per-type delay model.
//!
//! Per paper §4.1: a logic gate has one output port and one or two input
//! ports depending on its type; each gate type carries a constant
//! processing delay, and signal propagation time is a constant folded into
//! the same number.

use crate::logic::Logic;

/// The kind of a logic gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
    /// Inverter (single input).
    Not,
    /// Buffer (single input); also used to model wires with delay.
    Buf,
}

/// All gate kinds, e.g. for random circuit generation.
pub const ALL_GATE_KINDS: [GateKind; 8] = [
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Not,
    GateKind::Buf,
];

/// Two-input gate kinds.
pub const BINARY_GATE_KINDS: [GateKind; 6] = [
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
];

impl GateKind {
    /// Number of input ports (1 or 2).
    #[inline]
    pub fn arity(self) -> usize {
        match self {
            GateKind::Not | GateKind::Buf => 1,
            _ => 2,
        }
    }

    /// Evaluate the gate on its current input values.
    ///
    /// `inputs` must have exactly [`GateKind::arity`] elements.
    #[inline]
    pub fn eval(self, inputs: &[Logic]) -> Logic {
        debug_assert_eq!(inputs.len(), self.arity(), "wrong arity for {self:?}");
        let a = inputs[0].as_bool();
        match self {
            GateKind::Not => Logic::from_bool(!a),
            GateKind::Buf => Logic::from_bool(a),
            _ => {
                let b = inputs[1].as_bool();
                Logic::from_bool(match self {
                    GateKind::And => a && b,
                    GateKind::Or => a || b,
                    GateKind::Nand => !(a && b),
                    GateKind::Nor => !(a || b),
                    GateKind::Xor => a != b,
                    GateKind::Xnor => a == b,
                    GateKind::Not | GateKind::Buf => unreachable!(),
                })
            }
        }
    }

    /// Canonical lower-case name, used by the netlist text format.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
        }
    }

    /// Parse a gate kind from its canonical name.
    pub fn from_name(name: &str) -> Option<GateKind> {
        Some(match name {
            "and" => GateKind::And,
            "or" => GateKind::Or,
            "nand" => GateKind::Nand,
            "nor" => GateKind::Nor,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "not" | "inv" => GateKind::Not,
            "buf" => GateKind::Buf,
            _ => return None,
        })
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Constant per-gate-type delays (processing + propagation), in simulated
/// time units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayModel {
    pub and: u64,
    pub or: u64,
    pub nand: u64,
    pub nor: u64,
    pub xor: u64,
    pub xnor: u64,
    pub not: u64,
    pub buf: u64,
    /// Delay applied by circuit input nodes when forwarding stimulus
    /// events (usually 0: stimulus times are absolute).
    pub input: u64,
    /// Delay applied by circuit output nodes (usually 0).
    pub output: u64,
}

impl DelayModel {
    /// The default technology-flavoured delays: inverters/buffers fastest,
    /// XOR family slowest.
    pub fn standard() -> Self {
        DelayModel {
            and: 2,
            or: 2,
            nand: 2,
            nor: 2,
            xor: 3,
            xnor: 3,
            not: 1,
            buf: 1,
            input: 0,
            output: 0,
        }
    }

    /// Every gate has delay 1 (useful for tests with predictable timing).
    pub fn unit() -> Self {
        DelayModel {
            and: 1,
            or: 1,
            nand: 1,
            nor: 1,
            xor: 1,
            xnor: 1,
            not: 1,
            buf: 1,
            input: 0,
            output: 0,
        }
    }

    /// Delay of one gate kind.
    #[inline]
    pub fn of(&self, kind: GateKind) -> u64 {
        match kind {
            GateKind::And => self.and,
            GateKind::Or => self.or,
            GateKind::Nand => self.nand,
            GateKind::Nor => self.nor,
            GateKind::Xor => self.xor,
            GateKind::Xnor => self.xnor,
            GateKind::Not => self.not,
            GateKind::Buf => self.buf,
        }
    }

    /// The largest per-gate delay in the model.
    pub fn max_gate_delay(&self) -> u64 {
        [
            self.and, self.or, self.nand, self.nor, self.xor, self.xnor, self.not, self.buf,
        ]
        .into_iter()
        .max()
        .unwrap()
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::{One, Zero};

    #[test]
    fn truth_tables() {
        // (kind, [(a, b, expected)...]) for binary gates.
        let cases: [(GateKind, [Logic; 4]); 6] = [
            (GateKind::And, [Zero, Zero, Zero, One]),
            (GateKind::Or, [Zero, One, One, One]),
            (GateKind::Nand, [One, One, One, Zero]),
            (GateKind::Nor, [One, Zero, Zero, Zero]),
            (GateKind::Xor, [Zero, One, One, Zero]),
            (GateKind::Xnor, [One, Zero, Zero, One]),
        ];
        for (kind, expected) in cases {
            for (i, &want) in expected.iter().enumerate() {
                let a = Logic::from_bit(i as u64 & 1);
                let b = Logic::from_bit((i as u64 >> 1) & 1);
                // Index i = b*2 + a.
                assert_eq!(kind.eval(&[a, b]), want, "{kind:?}({a},{b})");
            }
        }
    }

    #[test]
    fn unary_gates() {
        assert_eq!(GateKind::Not.eval(&[Zero]), One);
        assert_eq!(GateKind::Not.eval(&[One]), Zero);
        assert_eq!(GateKind::Buf.eval(&[Zero]), Zero);
        assert_eq!(GateKind::Buf.eval(&[One]), One);
    }

    #[test]
    fn arity_matches_kind() {
        for kind in ALL_GATE_KINDS {
            let expected = if matches!(kind, GateKind::Not | GateKind::Buf) {
                1
            } else {
                2
            };
            assert_eq!(kind.arity(), expected);
        }
    }

    #[test]
    fn name_round_trip() {
        for kind in ALL_GATE_KINDS {
            assert_eq!(GateKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(GateKind::from_name("inv"), Some(GateKind::Not));
        assert_eq!(GateKind::from_name("zzz"), None);
    }

    #[test]
    fn delay_model_lookup() {
        let d = DelayModel::standard();
        assert_eq!(d.of(GateKind::Not), 1);
        assert_eq!(d.of(GateKind::Xor), 3);
        assert_eq!(d.max_gate_delay(), 3);
        assert_eq!(DelayModel::unit().max_gate_delay(), 1);
    }
}
