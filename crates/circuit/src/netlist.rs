//! A plain-text netlist format, so circuits can be saved, diffed, and fed
//! to the example binaries (the role the Galois distribution's `.net`
//! input files played for the paper).
//!
//! Grammar (one statement per line, `#` starts a comment):
//!
//! ```text
//! input  <name>
//! gate   <name> <kind> <src> [<src2>]
//! output <name> <src>
//! ```
//!
//! Sources refer to earlier `input`/`gate` names; gates are therefore
//! declared in topological order, which the serializer guarantees.

use std::collections::HashMap;

use crate::gate::GateKind;
use crate::graph::{BuildError, Circuit, CircuitBuilder, NodeId, NodeKind};

/// Netlist parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Line number and description of a syntax problem.
    Syntax { line: usize, message: String },
    /// Reference to a name not yet declared.
    UnknownName { line: usize, name: String },
    /// A name declared twice.
    Redeclared { line: usize, name: String },
    /// The assembled graph failed validation.
    Build(BuildError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::UnknownName { line, name } => {
                write!(f, "line {line}: unknown source {name:?}")
            }
            ParseError::Redeclared { line, name } => {
                write!(f, "line {line}: name {name:?} already declared")
            }
            ParseError::Build(e) => write!(f, "invalid circuit: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a netlist from text.
pub fn parse(text: &str) -> Result<Circuit, ParseError> {
    let mut builder = CircuitBuilder::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();

    let declare =
        |names: &mut HashMap<String, NodeId>, line: usize, name: &str, id: NodeId| {
            if names.insert(name.to_string(), id).is_some() {
                Err(ParseError::Redeclared {
                    line,
                    name: name.to_string(),
                })
            } else {
                Ok(())
            }
        };

    for (ix, raw) in text.lines().enumerate() {
        let line = ix + 1;
        let stmt = raw.split('#').next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        let mut tokens = stmt.split_whitespace();
        let keyword = tokens.next().expect("non-empty statement");
        let rest: Vec<&str> = tokens.collect();
        let resolve = |name: &str| -> Result<NodeId, ParseError> {
            names.get(name).copied().ok_or_else(|| ParseError::UnknownName {
                line,
                name: name.to_string(),
            })
        };
        match keyword {
            "input" => {
                let [name] = rest.as_slice() else {
                    return Err(ParseError::Syntax {
                        line,
                        message: "expected: input <name>".into(),
                    });
                };
                let id = builder.add_input(*name);
                declare(&mut names, line, name, id)?;
            }
            "gate" => {
                let (name, kind_name, sources) = match rest.as_slice() {
                    [name, kind, srcs @ ..] if !srcs.is_empty() => (*name, *kind, srcs),
                    _ => {
                        return Err(ParseError::Syntax {
                            line,
                            message: "expected: gate <name> <kind> <src> [<src2>]".into(),
                        })
                    }
                };
                let kind = GateKind::from_name(kind_name).ok_or_else(|| ParseError::Syntax {
                    line,
                    message: format!("unknown gate kind {kind_name:?}"),
                })?;
                if sources.len() != kind.arity() {
                    return Err(ParseError::Syntax {
                        line,
                        message: format!(
                            "gate {kind} takes {} source(s), got {}",
                            kind.arity(),
                            sources.len()
                        ),
                    });
                }
                let src_ids: Vec<NodeId> = sources
                    .iter()
                    .map(|s| resolve(s))
                    .collect::<Result<_, _>>()?;
                let id = builder.add_named_gate(name, kind, &src_ids);
                declare(&mut names, line, name, id)?;
            }
            "output" => {
                let [name, src] = rest.as_slice() else {
                    return Err(ParseError::Syntax {
                        line,
                        message: "expected: output <name> <src>".into(),
                    });
                };
                let src_id = resolve(src)?;
                let id = builder.add_output(*name, src_id);
                declare(&mut names, line, name, id)?;
            }
            other => {
                return Err(ParseError::Syntax {
                    line,
                    message: format!("unknown keyword {other:?}"),
                })
            }
        }
    }
    builder.build().map_err(ParseError::Build)
}

/// Serialize a circuit to the text format. Gates are emitted in
/// topological order; unnamed gates get synthetic `g<N>` names.
pub fn serialize(circuit: &Circuit) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut names: Vec<String> = Vec::with_capacity(circuit.num_nodes());
    for (i, node) in circuit.nodes().iter().enumerate() {
        names.push(node.name.clone().unwrap_or_else(|| format!("g{i}")));
    }
    // Inputs first (they are topologically minimal anyway), then gates in
    // topo order, then outputs.
    for &id in circuit.inputs() {
        writeln!(out, "input {}", names[id.index()]).unwrap();
    }
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        if let NodeKind::Gate(kind) = node.kind {
            write!(out, "gate {} {}", names[id.index()], kind).unwrap();
            for src in &node.fanin {
                write!(out, " {}", names[src.index()]).unwrap();
            }
            out.push('\n');
        }
    }
    for &id in circuit.outputs() {
        let node = circuit.node(id);
        writeln!(
            out,
            "output {} {}",
            names[id.index()],
            names[node.fanin[0].index()]
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::generators::{c17, kogge_stone_adder};
    use crate::logic::Logic;

    const SAMPLE: &str = "\
# a tiny mux-ish circuit
input a
input b

gate na not a        # inverter
gate g1 and na b
output y g1
";

    #[test]
    fn parses_sample() {
        let c = parse(SAMPLE).unwrap();
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.num_nodes(), 5);
        let out = evaluate(&c, &[Logic::Zero, Logic::One]).output_values(&c);
        assert_eq!(out, vec![Logic::One]);
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let original = c17();
        let text = serialize(&original);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.num_nodes(), original.num_nodes());
        assert_eq!(reparsed.num_edges(), original.num_edges());
        for bits in 0..32u64 {
            let inputs: Vec<Logic> = (0..5).map(|i| Logic::from_bit(bits >> i)).collect();
            assert_eq!(
                evaluate(&original, &inputs).output_values(&original),
                evaluate(&reparsed, &inputs).output_values(&reparsed),
                "inputs {bits:05b}"
            );
        }
    }

    #[test]
    fn round_trip_large_circuit() {
        let original = kogge_stone_adder(16);
        let text = serialize(&original);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.num_nodes(), original.num_nodes());
        assert_eq!(reparsed.num_edges(), original.num_edges());
    }

    #[test]
    fn unknown_source_is_reported() {
        let err = parse("input a\ngate g and a ghost\noutput y g\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::UnknownName {
                line: 2,
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn wrong_arity_is_reported() {
        let err = parse("input a\ngate g and a\noutput y g\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
    }

    #[test]
    fn redeclaration_is_reported() {
        let err = parse("input a\ninput a\n").unwrap_err();
        assert!(matches!(err, ParseError::Redeclared { line: 2, .. }));
    }

    #[test]
    fn unknown_keyword_is_reported() {
        let err = parse("wire a b\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
    }

    #[test]
    fn unknown_kind_is_reported() {
        let err = parse("input a\ngate g frob a\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
    }
}
