//! Functional (zero-delay) reference evaluation.
//!
//! Evaluates the circuit combinationally for a given input assignment by a
//! single topological sweep. The DES engines must agree with this oracle on
//! *settled* values: after all events of a stimulus vector have propagated,
//! every node's value equals the functional evaluation of that vector.
//! The differential tests in `des-core` rely on this.

use crate::gate::DelayModel;
use crate::graph::{Circuit, NodeId, NodeKind};
use crate::logic::Logic;

/// Settled value of every node for one input assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evaluation {
    /// Indexed by [`NodeId::index`].
    pub values: Vec<Logic>,
}

impl Evaluation {
    /// Value of one node.
    pub fn value(&self, id: NodeId) -> Logic {
        self.values[id.index()]
    }

    /// Values of the circuit outputs, in output order.
    pub fn output_values(&self, circuit: &Circuit) -> Vec<Logic> {
        circuit.outputs().iter().map(|&o| self.value(o)).collect()
    }
}

/// Evaluate `circuit` with `input_values` applied to the circuit inputs (in
/// [`Circuit::inputs`] order).
///
/// # Panics
/// If `input_values.len()` differs from the number of inputs.
pub fn evaluate(circuit: &Circuit, input_values: &[Logic]) -> Evaluation {
    assert_eq!(
        input_values.len(),
        circuit.inputs().len(),
        "one value per circuit input required"
    );
    let mut values = vec![Logic::Zero; circuit.num_nodes()];
    for (&input, &v) in circuit.inputs().iter().zip(input_values) {
        values[input.index()] = v;
    }
    let mut scratch = [Logic::Zero; 2];
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        match node.kind {
            NodeKind::Input => {}
            NodeKind::Output => {
                values[id.index()] = values[node.fanin[0].index()];
            }
            NodeKind::Gate(kind) => {
                for (i, &src) in node.fanin.iter().enumerate() {
                    scratch[i] = values[src.index()];
                }
                values[id.index()] = kind.eval(&scratch[..kind.arity()]);
            }
        }
    }
    Evaluation { values }
}

/// Length (in simulated time) of the longest delay path from any input to
/// any node. Stimulus vectors separated by more than this are guaranteed to
/// settle before the next vector arrives.
pub fn critical_path_delay(circuit: &Circuit, delays: &DelayModel) -> u64 {
    let mut dist = vec![0u64; circuit.num_nodes()];
    let mut worst = 0;
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        let own = match node.kind {
            NodeKind::Input => delays.input,
            NodeKind::Output => delays.output,
            NodeKind::Gate(kind) => delays.of(kind),
        };
        let arrive = node
            .fanin
            .iter()
            .map(|&src| dist[src.index()])
            .max()
            .unwrap_or(0);
        dist[id.index()] = arrive + own;
        worst = worst.max(dist[id.index()]);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::graph::CircuitBuilder;
    use Logic::{One, Zero};

    fn full_adder() -> Circuit {
        // s = a ^ b ^ cin; cout = ab | cin(a ^ b)
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let bb = b.add_input("b");
        let cin = b.add_input("cin");
        let axb = b.add_gate(GateKind::Xor, &[a, bb]);
        let s = b.add_gate(GateKind::Xor, &[axb, cin]);
        let ab = b.add_gate(GateKind::And, &[a, bb]);
        let c_axb = b.add_gate(GateKind::And, &[axb, cin]);
        let cout = b.add_gate(GateKind::Or, &[ab, c_axb]);
        b.add_output("s", s);
        b.add_output("cout", cout);
        b.build().unwrap()
    }

    #[test]
    fn full_adder_truth_table() {
        let c = full_adder();
        for bits in 0..8u64 {
            let a = bits & 1;
            let b = (bits >> 1) & 1;
            let cin = (bits >> 2) & 1;
            let eval = evaluate(
                &c,
                &[Logic::from_bit(a), Logic::from_bit(b), Logic::from_bit(cin)],
            );
            let out = eval.output_values(&c);
            let sum = a + b + cin;
            assert_eq!(out[0].as_bit(), sum & 1, "sum for {bits:03b}");
            assert_eq!(out[1].as_bit(), sum >> 1, "carry for {bits:03b}");
        }
    }

    #[test]
    fn inverter_chain() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let mut cur = a;
        for _ in 0..5 {
            cur = b.add_gate(GateKind::Not, &[cur]);
        }
        b.add_output("y", cur);
        let c = b.build().unwrap();
        assert_eq!(evaluate(&c, &[Zero]).output_values(&c), vec![One]);
        assert_eq!(evaluate(&c, &[One]).output_values(&c), vec![Zero]);
    }

    #[test]
    fn critical_path_of_chain() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let mut cur = a;
        for _ in 0..4 {
            cur = b.add_gate(GateKind::Not, &[cur]); // delay 1 each
        }
        b.add_output("y", cur);
        let c = b.build().unwrap();
        assert_eq!(critical_path_delay(&c, &DelayModel::standard()), 4);
        let mut slow = DelayModel::standard();
        slow.not = 10;
        assert_eq!(critical_path_delay(&c, &slow), 40);
    }

    #[test]
    #[should_panic(expected = "one value per circuit input")]
    fn wrong_input_count_panics() {
        let c = full_adder();
        evaluate(&c, &[Zero]);
    }
}
