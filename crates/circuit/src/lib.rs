//! # logic-circuit — the circuit substrate for the PMAM'15 DES reproduction
//!
//! Everything static about the simulated system lives here:
//!
//! * [`logic`] — binary signal values;
//! * [`gate`] — the gate library and the constant per-type [`DelayModel`]
//!   (paper §4.1);
//! * [`graph`] — the circuit DAG: gates plus dedicated input/output nodes,
//!   single-driver input ports, arbitrary fanout, no cycles;
//! * [`generators`] — the evaluation circuit families (Kogge–Stone adders,
//!   Wallace tree multiplier) and supporting test circuits;
//! * [`netlist`] — a text format for saving/loading circuits;
//! * [`stimulus`] — initial-event generation (Table 1's "# initial events");
//! * [`eval`] — a zero-delay functional oracle the DES engines are checked
//!   against;
//! * [`stats`] — the static Table 1 profile columns.
//!
//! ```
//! use circuit::{generators, evaluate, Logic};
//!
//! let adder = generators::kogge_stone_adder(8);
//! let eval = evaluate(&adder, &{
//!     let mut v = circuit::from_word(20, 8);
//!     v.extend(circuit::from_word(22, 8));
//!     v.push(Logic::Zero);
//!     v
//! });
//! let sum: u64 = eval
//!     .output_values(&adder)
//!     .iter()
//!     .enumerate()
//!     .map(|(i, b)| b.as_bit() << i)
//!     .sum();
//! assert_eq!(sum, 42);
//! ```

pub mod eval;
pub mod gate;
pub mod generators;
pub mod graph;
pub mod logic;
pub mod netlist;
pub mod stats;
pub mod stimulus;
pub mod time;

pub use eval::{critical_path_delay, evaluate, Evaluation};
pub use gate::{DelayModel, GateKind};
pub use graph::{BuildError, Circuit, CircuitBuilder, Node, NodeId, NodeKind, PortIx, Target};
pub use logic::{from_word, to_word, Logic};
pub use stats::{profile, CircuitProfile};
pub use stimulus::{Stimulus, TimedValue};
pub use time::{Timestamp, NULL_TS};
