//! Two-valued logic signals.
//!
//! The Galois DES benchmark (and therefore the paper) simulates binary
//! signals; every event carries one [`Logic`] value.

/// A binary logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Logic {
    /// Logic low.
    Zero = 0,
    /// Logic high.
    One = 1,
}

impl Logic {
    /// From a boolean (`true` ⇒ [`Logic::One`]).
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// To a boolean (`One` ⇒ `true`).
    #[inline]
    pub fn as_bool(self) -> bool {
        matches!(self, Logic::One)
    }

    /// From the low bit of an integer.
    #[inline]
    pub fn from_bit(bit: u64) -> Self {
        Logic::from_bool(bit & 1 == 1)
    }

    /// 0 or 1.
    #[inline]
    pub fn as_bit(self) -> u64 {
        self as u64
    }

    /// Logical negation (also available via the `!` operator).
    #[allow(clippy::should_implement_trait)] // std::ops::Not is implemented below
    #[inline]
    pub fn not(self) -> Self {
        Logic::from_bool(!self.as_bool())
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;
    fn not(self) -> Logic {
        Logic::not(self)
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl std::fmt::Display for Logic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_bit())
    }
}

/// Pack a slice of logic levels (LSB first) into an integer.
pub fn to_word(bits: &[Logic]) -> u64 {
    assert!(bits.len() <= 64, "to_word supports at most 64 bits");
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (b.as_bit() << i))
}

/// Unpack the low `n` bits of `word` into logic levels (LSB first).
pub fn from_word(word: u64, n: usize) -> Vec<Logic> {
    assert!(n <= 64, "from_word supports at most 64 bits");
    (0..n).map(|i| Logic::from_bit(word >> i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::from_bool(false), Logic::Zero);
        assert!(Logic::One.as_bool());
        assert!(!Logic::Zero.as_bool());
    }

    #[test]
    fn negation() {
        assert_eq!(!Logic::One, Logic::Zero);
        assert_eq!(!Logic::Zero, Logic::One);
    }

    #[test]
    fn bit_round_trip() {
        assert_eq!(Logic::from_bit(3), Logic::One); // low bit only
        assert_eq!(Logic::from_bit(2), Logic::Zero);
        assert_eq!(Logic::One.as_bit(), 1);
    }

    #[test]
    fn word_round_trip() {
        let word = 0b1011_0101u64;
        let bits = from_word(word, 8);
        assert_eq!(to_word(&bits), word);
        assert_eq!(bits[0], Logic::One);
        assert_eq!(bits[1], Logic::Zero);
    }

    #[test]
    fn word_truncates_to_n() {
        let bits = from_word(u64::MAX, 3);
        assert_eq!(bits.len(), 3);
        assert_eq!(to_word(&bits), 0b111);
    }

    #[test]
    fn display_prints_bit() {
        assert_eq!(Logic::One.to_string(), "1");
        assert_eq!(Logic::Zero.to_string(), "0");
    }
}
