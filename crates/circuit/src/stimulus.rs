//! Stimuli — the "initial events" of paper §4.1 / Table 1.
//!
//! A [`Stimulus`] assigns each circuit input a time-ordered list of
//! `(time, value)` events. Table 1's "# initial events" is
//! [`Stimulus::num_events`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Circuit;
use crate::logic::Logic;

/// One signal edge applied to a circuit input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedValue {
    pub time: u64,
    pub value: Logic,
}

/// Initial events for every circuit input (indexed like
/// [`Circuit::inputs`]). Times per input must be strictly increasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stimulus {
    per_input: Vec<Vec<TimedValue>>,
}

impl Stimulus {
    /// An empty stimulus for `num_inputs` inputs.
    pub fn empty(num_inputs: usize) -> Self {
        Stimulus {
            per_input: vec![Vec::new(); num_inputs],
        }
    }

    /// Build from explicit per-input event lists.
    ///
    /// # Panics
    /// If any input's events are not strictly increasing in time, or any
    /// time is `u64::MAX` (reserved for NULL messages).
    pub fn from_events(per_input: Vec<Vec<TimedValue>>) -> Self {
        for (i, events) in per_input.iter().enumerate() {
            for pair in events.windows(2) {
                assert!(
                    pair[0].time < pair[1].time,
                    "input {i}: stimulus times must be strictly increasing"
                );
            }
            if let Some(last) = events.last() {
                assert!(last.time < u64::MAX, "u64::MAX is reserved for NULL messages");
            }
        }
        Stimulus { per_input }
    }

    /// Number of circuit inputs this stimulus covers.
    pub fn num_inputs(&self) -> usize {
        self.per_input.len()
    }

    /// Events for one input.
    pub fn input_events(&self, input_ix: usize) -> &[TimedValue] {
        &self.per_input[input_ix]
    }

    /// Total number of initial events (Table 1's "# initial events").
    pub fn num_events(&self) -> usize {
        self.per_input.iter().map(Vec::len).sum()
    }

    /// Latest event time across all inputs (0 when empty).
    pub fn horizon(&self) -> u64 {
        self.per_input
            .iter()
            .filter_map(|e| e.last())
            .map(|tv| tv.time)
            .max()
            .unwrap_or(0)
    }

    /// The last value each input is driven to (defaults to `Zero` for
    /// inputs with no events) — the vector whose functional evaluation the
    /// DES settled state must match.
    pub fn final_values(&self) -> Vec<Logic> {
        self.per_input
            .iter()
            .map(|e| e.last().map(|tv| tv.value).unwrap_or(Logic::Zero))
            .collect()
    }

    /// `num_vectors` random input vectors applied at times
    /// `1, 1 + period, 1 + 2·period, …` — one event per input per vector,
    /// matching how the paper's initial-event counts scale
    /// (`#inputs × #vectors`).
    pub fn random_vectors(circuit: &Circuit, num_vectors: usize, period: u64, seed: u64) -> Self {
        assert!(period >= 1, "period must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = circuit.inputs().len();
        let mut per_input = vec![Vec::with_capacity(num_vectors); n];
        for k in 0..num_vectors {
            let t = 1 + k as u64 * period;
            for events in per_input.iter_mut() {
                events.push(TimedValue {
                    time: t,
                    value: Logic::from_bool(rng.gen()),
                });
            }
        }
        Stimulus { per_input }
    }

    /// A deliberately skewed workload: the first `hot_inputs` inputs
    /// receive all `num_vectors` random vectors (at times
    /// `1, 1 + period, …`), the rest receive only the first. Circuit
    /// regions fed by the hot inputs process many times more events than
    /// the cold regions, so a partition balanced by node count is badly
    /// imbalanced by observed load — the scenario dynamic repartitioning
    /// exists for.
    pub fn skewed_vectors(
        circuit: &Circuit,
        num_vectors: usize,
        period: u64,
        seed: u64,
        hot_inputs: usize,
    ) -> Self {
        assert!(period >= 1, "period must be at least 1");
        assert!(num_vectors >= 1, "need at least one vector");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = circuit.inputs().len();
        let hot = hot_inputs.min(n);
        let mut per_input = vec![Vec::new(); n];
        for k in 0..num_vectors {
            let t = 1 + k as u64 * period;
            for (i, events) in per_input.iter_mut().enumerate() {
                if k == 0 || i < hot {
                    events.push(TimedValue {
                        time: t,
                        value: Logic::from_bool(rng.gen()),
                    });
                } else {
                    // Still draw, so hot-input streams are unchanged by
                    // how many cold inputs trail them.
                    let _ = rng.gen::<bool>();
                }
            }
        }
        Stimulus { per_input }
    }

    /// A single vector applied at time 1.
    pub fn single_vector(values: &[Logic]) -> Self {
        Stimulus {
            per_input: values
                .iter()
                .map(|&v| vec![TimedValue { time: 1, value: v }])
                .collect(),
        }
    }

    /// Explicit word-valued vectors applied every `period`: each element of
    /// `words` supplies one bit per input (LSB → input 0). Useful for
    /// driving adders/multipliers with known operands.
    pub fn from_words(num_inputs: usize, words: &[u64], period: u64) -> Self {
        assert!(num_inputs <= 64);
        assert!(period >= 1);
        let mut per_input = vec![Vec::with_capacity(words.len()); num_inputs];
        for (k, &w) in words.iter().enumerate() {
            let t = 1 + k as u64 * period;
            for (i, events) in per_input.iter_mut().enumerate() {
                events.push(TimedValue {
                    time: t,
                    value: Logic::from_bit(w >> i),
                });
            }
        }
        Stimulus { per_input }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::graph::CircuitBuilder;

    fn two_input_circuit() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let c = b.add_input("b");
        let g = b.add_gate(GateKind::And, &[a, c]);
        b.add_output("y", g);
        b.build().unwrap()
    }

    #[test]
    fn random_vectors_counts() {
        let c = two_input_circuit();
        let s = Stimulus::random_vectors(&c, 10, 100, 42);
        assert_eq!(s.num_events(), 20);
        assert_eq!(s.num_inputs(), 2);
        assert_eq!(s.horizon(), 1 + 9 * 100);
    }

    #[test]
    fn random_vectors_deterministic_by_seed() {
        let c = two_input_circuit();
        let s1 = Stimulus::random_vectors(&c, 50, 10, 7);
        let s2 = Stimulus::random_vectors(&c, 50, 10, 7);
        let s3 = Stimulus::random_vectors(&c, 50, 10, 8);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn times_strictly_increase_per_input() {
        let c = two_input_circuit();
        let s = Stimulus::random_vectors(&c, 20, 5, 1);
        for i in 0..2 {
            let ev = s.input_events(i);
            for w in ev.windows(2) {
                assert!(w[0].time < w[1].time);
            }
        }
    }

    #[test]
    fn final_values_track_last_event() {
        let s = Stimulus::from_events(vec![
            vec![
                TimedValue { time: 1, value: Logic::One },
                TimedValue { time: 5, value: Logic::Zero },
            ],
            vec![],
        ]);
        assert_eq!(s.final_values(), vec![Logic::Zero, Logic::Zero]);
        assert_eq!(s.num_events(), 2);
        assert_eq!(s.horizon(), 5);
    }

    #[test]
    fn from_words_drives_bits() {
        let s = Stimulus::from_words(3, &[0b101, 0b010], 10);
        assert_eq!(s.input_events(0)[0].value, Logic::One);
        assert_eq!(s.input_events(1)[0].value, Logic::Zero);
        assert_eq!(s.input_events(2)[0].value, Logic::One);
        assert_eq!(s.input_events(0)[1].value, Logic::Zero);
        assert_eq!(s.input_events(1)[1].time, 11);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_times_rejected() {
        Stimulus::from_events(vec![vec![
            TimedValue { time: 5, value: Logic::One },
            TimedValue { time: 5, value: Logic::Zero },
        ]]);
    }

    #[test]
    fn skewed_vectors_concentrate_events() {
        let c = two_input_circuit();
        let s = Stimulus::skewed_vectors(&c, 10, 5, 3, 1);
        assert_eq!(s.input_events(0).len(), 10, "hot input gets every vector");
        assert_eq!(s.input_events(1).len(), 1, "cold input gets only the first");
        assert_eq!(s.input_events(1)[0].time, 1);
        // Deterministic by seed, like random_vectors.
        assert_eq!(s, Stimulus::skewed_vectors(&c, 10, 5, 3, 1));
        // hot_inputs above the input count just means all-hot.
        let all_hot = Stimulus::skewed_vectors(&c, 4, 5, 3, 99);
        assert_eq!(all_hot.num_events(), 8);
    }

    #[test]
    fn single_vector_applies_at_time_one() {
        let s = Stimulus::single_vector(&[Logic::One, Logic::Zero]);
        assert_eq!(s.num_events(), 2);
        assert_eq!(s.input_events(0)[0].time, 1);
    }
}
