//! Simulated time — the one canonical definition.
//!
//! Every layer of the workspace (events in `des-core`, cross-shard
//! messages in `sim-shard`, wire frames in `sim-net`, stimuli here) speaks
//! the same clock. Historically `des::event` and `shard::comm` each
//! declared their own `Timestamp`/`NULL_TS` "matching" the other — a
//! copy-drift hazard once timestamps started crossing process boundaries.
//! This module is the single home; the other crates re-export it.

/// Simulated time. Events are processed in nondecreasing timestamp order
/// per node (the local causality constraint).
pub type Timestamp = u64;

/// The "timestamp infinity" of a terminal Chandy–Misra NULL message: a
/// promise that no further event will ever arrive on the port.
pub const NULL_TS: Timestamp = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_ts_is_the_maximum() {
        assert_eq!(NULL_TS, Timestamp::MAX);
    }
}
