//! Circuit profile statistics — the static columns of the paper's Table 1.
//!
//! The dynamic column ("# total events") depends on the stimulus and is
//! computed by running a DES engine; see `des-core`'s `SimStats`.

use crate::graph::{Circuit, NodeKind};
use crate::stimulus::Stimulus;

/// Static profile of a circuit plus its stimulus (Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitProfile {
    /// "# nodes": gates + input nodes + output nodes.
    pub nodes: usize,
    /// "# edges": directed connections.
    pub edges: usize,
    /// Gate count only.
    pub gates: usize,
    /// Circuit input count.
    pub inputs: usize,
    /// Circuit output count.
    pub outputs: usize,
    /// "# initial events" of the paired stimulus.
    pub initial_events: usize,
    /// Largest fanout degree.
    pub max_fanout: usize,
}

/// Compute the static profile of `circuit` driven by `stimulus`.
pub fn profile(circuit: &Circuit, stimulus: &Stimulus) -> CircuitProfile {
    assert_eq!(
        stimulus.num_inputs(),
        circuit.inputs().len(),
        "stimulus shape must match the circuit"
    );
    let gates = circuit
        .nodes()
        .iter()
        .filter(|n| matches!(n.kind, NodeKind::Gate(_)))
        .count();
    CircuitProfile {
        nodes: circuit.num_nodes(),
        edges: circuit.num_edges(),
        gates,
        inputs: circuit.inputs().len(),
        outputs: circuit.outputs().len(),
        initial_events: stimulus.num_events(),
        max_fanout: circuit.max_fanout(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{c17, kogge_stone_adder};

    #[test]
    fn c17_profile() {
        let c = c17();
        let s = Stimulus::random_vectors(&c, 3, 10, 0);
        let p = profile(&c, &s);
        assert_eq!(p.nodes, 13);
        assert_eq!(p.gates, 6);
        assert_eq!(p.inputs, 5);
        assert_eq!(p.outputs, 2);
        assert_eq!(p.initial_events, 15);
    }

    #[test]
    fn edges_consistent_with_graph() {
        let c = kogge_stone_adder(8);
        let s = Stimulus::empty(c.inputs().len());
        let p = profile(&c, &s);
        assert_eq!(p.edges, c.num_edges());
        assert_eq!(p.initial_events, 0);
        assert!(p.max_fanout >= 2);
    }

    #[test]
    #[should_panic(expected = "stimulus shape")]
    fn mismatched_stimulus_panics() {
        let c = c17();
        let s = Stimulus::empty(3);
        profile(&c, &s);
    }
}
