//! Stress tests for the runtime: large task counts, deep recursion,
//! nesting, cross-runtime interaction, and reuse.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hj::prelude::*;

#[test]
fn hundred_thousand_tasks_complete() {
    let rt = HjRuntime::new(4);
    let counter = AtomicUsize::new(0);
    rt.finish(|scope| {
        for _ in 0..100_000 {
            scope.spawn(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 100_000);
}

#[test]
fn deep_spawn_chain() {
    // Each task spawns the next: 10_000-long dependency-free chain.
    let rt = HjRuntime::new(2);
    let counter = AtomicUsize::new(0);
    rt.finish(|scope| {
        fn step<'s>(scope: &'s hj::Scope<'s, '_>, counter: &'s AtomicUsize, left: usize) {
            counter.fetch_add(1, Ordering::Relaxed);
            if left > 0 {
                scope.spawn(move || step(scope, counter, left - 1));
            }
        }
        scope.spawn(|| step(scope, &counter, 9_999));
    });
    assert_eq!(counter.load(Ordering::Relaxed), 10_000);
}

#[test]
fn binary_spawn_tree() {
    let rt = HjRuntime::new(4);
    let counter = AtomicUsize::new(0);
    rt.finish(|scope| {
        fn node<'s>(scope: &'s hj::Scope<'s, '_>, counter: &'s AtomicUsize, depth: usize) {
            counter.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                scope.spawn(move || node(scope, counter, depth - 1));
                scope.spawn(move || node(scope, counter, depth - 1));
            }
        }
        node(scope, &counter, 14);
    });
    assert_eq!(counter.load(Ordering::Relaxed), (1 << 15) - 1);
}

#[test]
fn deeply_nested_finish_scopes() {
    // finish inside finish inside finish … on worker threads (helping).
    let rt = HjRuntime::new(2);
    fn nest(rt: &HjRuntime, depth: usize) -> usize {
        if depth == 0 {
            return 1;
        }
        let total = AtomicUsize::new(0);
        rt.finish(|scope| {
            let total = &total;
            scope.spawn(move || {
                let inner = nest(rt, depth - 1);
                total.fetch_add(inner, Ordering::Relaxed);
            });
            scope.spawn(move || {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        total.load(Ordering::Relaxed) + 1
    }
    // nest(0) = 1 and each level adds 2 → nest(20) = 41.
    assert_eq!(nest(&rt, 20), 41);
}

#[test]
fn two_runtimes_do_not_interfere() {
    let rt_a = Arc::new(HjRuntime::new(2));
    let rt_b = Arc::new(HjRuntime::new(2));
    let count_a = AtomicUsize::new(0);
    let count_b = AtomicUsize::new(0);
    // Tasks on A spawn work into B (cross-runtime submission goes through
    // B's injector, never A's local deques).
    rt_a.finish(|scope| {
        let rt_b = &rt_b;
        let count_a = &count_a;
        let count_b = &count_b;
        for _ in 0..50 {
            scope.spawn(move || {
                count_a.fetch_add(1, Ordering::Relaxed);
                rt_b.finish(|inner| {
                    for _ in 0..10 {
                        inner.spawn(|| {
                            count_b.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });
    assert_eq!(count_a.load(Ordering::Relaxed), 50);
    assert_eq!(count_b.load(Ordering::Relaxed), 500);
}

#[test]
fn runtime_survives_many_scope_generations() {
    let rt = HjRuntime::new(3);
    for generation in 0..500 {
        let count = AtomicUsize::new(0);
        rt.finish(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16, "generation {generation}");
    }
    let m = rt.metrics();
    assert_eq!(m.tasks_spawned, 500 * 16);
    assert_eq!(m.tasks_executed, 500 * 16);
}

#[test]
fn futures_fan_in_under_load() {
    let rt = Arc::new(HjRuntime::new(4));
    let futures: Vec<HjFuture<u64>> = (0..200)
        .map(|i| HjFuture::spawn(&rt, move || (i as u64) * 3))
        .collect();
    let total: u64 = futures.iter().map(|f| f.get()).sum();
    assert_eq!(total, 3 * (199 * 200 / 2));
}

#[test]
fn actors_under_task_pressure() {
    // Actors and plain finish tasks share the pool without starvation.
    let rt = HjRuntime::new(4);
    let system = ActorSystem::new(&rt);
    struct Acc(Arc<AtomicUsize>);
    impl Actor for Acc {
        type Msg = usize;
        fn receive(&mut self, n: usize, _ctx: &ActorContext) {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }
    let sum = Arc::new(AtomicUsize::new(0));
    let actor = system.spawn(Acc(Arc::clone(&sum)));
    let finished_tasks = AtomicUsize::new(0);
    rt.finish(|scope| {
        let actor = &actor;
        let finished_tasks = &finished_tasks;
        for i in 0..1_000 {
            scope.spawn(move || {
                actor.send(i % 7);
                finished_tasks.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    system.quiesce();
    assert_eq!(finished_tasks.load(Ordering::Relaxed), 1_000);
    let expected: usize = (0..1_000).map(|i| i % 7).sum();
    assert_eq!(sum.load(Ordering::Relaxed), expected);
}
