//! Phasers — Habanero's unified barrier / point-to-point synchronization
//! construct (mentioned in paper §3.2 as preserving deadlock freedom).
//!
//! A [`Phaser`] advances through numbered *phases*. Parties register in one
//! of three modes:
//!
//! * [`PhaserMode::Sig`] — a producer: its `signal` contributes to phase
//!   advance, it never waits.
//! * [`PhaserMode::Wait`] — a consumer: it waits for phases to advance but
//!   does not gate them.
//! * [`PhaserMode::SigWait`] — full barrier participant.
//!
//! The phase advances when every `Sig`-capable registration has signalled.
//!
//! **Worker-count requirement**: `wait` blocks its worker thread (it must
//! not *help* execute other tasks — a helped task could itself be a party
//! of this phaser and would then starve the parties trapped beneath it on
//! the stack). As in HJlib, a program whose barrier parties all run as
//! tasks needs at least as many workers as simultaneously-waiting
//! parties.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Registration mode of one party on a phaser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaserMode {
    /// Signal-only (producer).
    Sig,
    /// Wait-only (consumer).
    Wait,
    /// Signal and wait (barrier participant).
    SigWait,
}

impl PhaserMode {
    fn signals(self) -> bool {
        matches!(self, PhaserMode::Sig | PhaserMode::SigWait)
    }
}

#[derive(Debug)]
struct PhaserState {
    /// Number of registered signalling parties.
    signallers: usize,
    /// Signals received in the current phase.
    arrived: usize,
    /// Completed phases.
    generation: u64,
}

struct PhaserInner {
    state: Mutex<PhaserState>,
    cv: Condvar,
}

impl PhaserInner {
    fn advance_if_complete(&self, state: &mut PhaserState) {
        if state.signallers > 0 && state.arrived >= state.signallers {
            state.arrived = 0;
            state.generation += 1;
            self.cv.notify_all();
        }
    }
}

/// A phaser; create registrations with [`Phaser::register`].
pub struct Phaser {
    inner: Arc<PhaserInner>,
}

impl Phaser {
    /// A phaser with no parties registered yet.
    pub fn new() -> Self {
        Phaser {
            inner: Arc::new(PhaserInner {
                state: Mutex::new(PhaserState {
                    signallers: 0,
                    arrived: 0,
                    generation: 0,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Register a party in `mode`. The returned handle is `Send`, so it can
    /// be moved into the task that will participate.
    pub fn register(&self, mode: PhaserMode) -> PhaserRegistration {
        let mut state = self.inner.state.lock();
        if mode.signals() {
            state.signallers += 1;
        }
        let phase = state.generation;
        drop(state);
        PhaserRegistration {
            inner: Arc::clone(&self.inner),
            mode,
            phase,
        }
    }

    /// The current phase number (racy; for tests and diagnostics).
    pub fn phase(&self) -> u64 {
        self.inner.state.lock().generation
    }
}

impl Default for Phaser {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Phaser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("Phaser")
            .field("signallers", &state.signallers)
            .field("arrived", &state.arrived)
            .field("generation", &state.generation)
            .finish()
    }
}

/// One party's registration on a [`Phaser`]. Dropping it deregisters the
/// party (a departing signaller can complete the current phase).
pub struct PhaserRegistration {
    inner: Arc<PhaserInner>,
    mode: PhaserMode,
    /// The last phase this party has fully participated in.
    phase: u64,
}

impl PhaserRegistration {
    /// Signal arrival at the end of the current phase (no wait).
    ///
    /// # Panics
    /// If this registration cannot signal ([`PhaserMode::Wait`]), or if it
    /// signals twice in one phase.
    pub fn signal(&mut self) {
        assert!(self.mode.signals(), "Wait-mode registration cannot signal");
        let mut state = self.inner.state.lock();
        assert!(
            state.generation == self.phase,
            "double signal in one phase (signalled at {}, now {})",
            self.phase,
            state.generation
        );
        state.arrived += 1;
        self.phase += 1; // we've signalled for this phase
        self.inner.advance_if_complete(&mut state);
    }

    /// Wait until the phase this party last signalled for (or, for
    /// `Wait`-mode, the next phase) completes. Blocks the calling thread
    /// (see the module docs for the worker-count requirement).
    pub fn wait(&mut self) {
        let target = match self.mode {
            PhaserMode::Wait => {
                // Wait for the next phase boundary after our local marker.
                self.phase + 1
            }
            _ => self.phase,
        };
        let mut state = self.inner.state.lock();
        while state.generation < target {
            // Timeout bounds the cost of any missed notification.
            self.inner.cv.wait_for(&mut state, Duration::from_millis(1));
        }
        drop(state);
        if self.mode == PhaserMode::Wait {
            self.phase = target;
        }
    }

    /// Barrier step: `signal` then `wait` (HJ's `next()`).
    pub fn next(&mut self) {
        if self.mode.signals() {
            self.signal();
        }
        self.wait();
    }

    /// This party's registration mode.
    pub fn mode(&self) -> PhaserMode {
        self.mode
    }
}

impl Drop for PhaserRegistration {
    fn drop(&mut self) {
        if self.mode.signals() {
            let mut state = self.inner.state.lock();
            state.signallers -= 1;
            // If this party had not yet signalled in the current phase, its
            // departure may complete the phase for the remaining parties.
            if state.generation == self.phase {
                self.inner.advance_if_complete(&mut state);
            } else {
                // It had signalled already; remove its contribution.
                state.arrived = state.arrived.saturating_sub(1);
            }
        }
    }
}

impl std::fmt::Debug for PhaserRegistration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaserRegistration")
            .field("mode", &self.mode)
            .field("phase", &self.phase)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HjRuntime;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn single_party_barrier_advances() {
        let ph = Phaser::new();
        let mut reg = ph.register(PhaserMode::SigWait);
        for expected in 1..=5 {
            reg.next();
            assert_eq!(ph.phase(), expected);
        }
    }

    #[test]
    fn barrier_synchronizes_parties() {
        // Classic lockstep test: N parties each bump a per-phase counter;
        // after next(), all bumps of the phase must be visible.
        let rt = HjRuntime::new(4);
        let ph = Phaser::new();
        const PARTIES: usize = 4;
        const PHASES: usize = 10;
        let counters: Vec<AtomicUsize> = (0..PHASES).map(|_| AtomicUsize::new(0)).collect();
        let failures = AtomicUsize::new(0);
        let regs: Vec<_> = (0..PARTIES).map(|_| ph.register(PhaserMode::SigWait)).collect();
        rt.finish(|scope| {
            for mut reg in regs {
                let counters = &counters;
                let failures = &failures;
                scope.spawn(move || {
                    for counter in counters.iter().take(PHASES) {
                        counter.fetch_add(1, Ordering::SeqCst);
                        reg.next();
                        if counter.load(Ordering::SeqCst) != PARTIES {
                            failures.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(failures.load(Ordering::SeqCst), 0);
        assert_eq!(ph.phase(), PHASES as u64);
    }

    #[test]
    fn producer_consumer_with_sig_and_wait() {
        let rt = HjRuntime::new(2);
        let ph = Phaser::new();
        let mut producer = ph.register(PhaserMode::Sig);
        let mut consumer = ph.register(PhaserMode::Wait);
        let value = AtomicU64::new(0);
        rt.finish(|scope| {
            let value = &value;
            scope.spawn(move || {
                value.store(99, Ordering::SeqCst);
                producer.signal();
            });
            scope.spawn(move || {
                consumer.wait();
                assert_eq!(value.load(Ordering::SeqCst), 99);
            });
        });
    }

    #[test]
    #[should_panic(expected = "cannot signal")]
    fn wait_mode_cannot_signal() {
        let ph = Phaser::new();
        let mut reg = ph.register(PhaserMode::Wait);
        reg.signal();
    }

    #[test]
    fn dropping_a_party_unblocks_the_rest() {
        let rt = HjRuntime::new(2);
        let ph = Phaser::new();
        let mut stay = ph.register(PhaserMode::SigWait);
        let leave = ph.register(PhaserMode::SigWait);
        rt.finish(|scope| {
            scope.spawn(move || {
                // Departs without ever signalling.
                drop(leave);
            });
            scope.spawn(move || {
                stay.next(); // must not hang
            });
        });
        assert_eq!(ph.phase(), 1);
    }
}
