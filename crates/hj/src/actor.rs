//! Actors on the HJ runtime.
//!
//! The paper's future-work section (§6) proposes using the HJlib actor
//! model (Imam & Sarkar, "Integrating task parallelism with actors") to
//! parallelize DES. This module provides that model, and `des-core`'s
//! `ActorEngine` implements the proposal: one actor per circuit node,
//! events as messages.
//!
//! Scheduling follows the standard task-parallel actor design: each actor
//! has a lock-free mailbox and a `scheduled` flag. Sending to an idle actor
//! CAS-claims the flag and spawns a *drain task* that processes a batch of
//! messages; the flag guarantees at most one drain task per actor runs at a
//! time, which is what makes `&mut self` access to actor state sound.
//! Messages from one sender are delivered in send order.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex};

use crate::runtime::HjRuntime;
use crate::scheduler::{try_help_one, Shared};

/// Maximum messages one drain task processes before re-queueing itself,
/// bounding per-task latency and giving the scheduler a steal opportunity.
const DRAIN_BATCH: usize = 64;

/// Behaviour of an actor: sequential message processing over private state.
pub trait Actor: Send + 'static {
    /// Message type this actor consumes.
    type Msg: Send + 'static;

    /// Handle one message. Runs with exclusive access to `self`; messages
    /// to this actor are processed one at a time.
    fn receive(&mut self, msg: Self::Msg, ctx: &ActorContext);
}

/// Handed to [`Actor::receive`]; lets behaviours reach the system (e.g. to
/// spawn further actors).
pub struct ActorContext {
    system: ActorSystem,
}

impl ActorContext {
    /// The actor system executing this actor.
    pub fn system(&self) -> &ActorSystem {
        &self.system
    }
}

struct Pending {
    /// Messages sent but not yet processed, across all actors.
    count: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    /// First panic payload thrown by any actor behaviour. Panics are
    /// caught at the message boundary so the pending count stays exact and
    /// quiescence still terminates; the payload is surfaced here instead.
    failure: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Pending {
    fn inc(&self) {
        self.count.fetch_add(1, Ordering::AcqRel);
    }

    fn dec(&self) {
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock();
            self.cv.notify_all();
        }
    }

    fn is_zero(&self) -> bool {
        self.count.load(Ordering::Acquire) == 0
    }
}

/// A group of actors sharing an [`HjRuntime`]. Cheap to clone.
///
/// [`ActorSystem::quiesce`] waits until every sent message has been
/// processed — the actor-model analogue of a finish scope, and exactly the
/// termination detection a Chandy–Misra DES needs.
#[derive(Clone)]
pub struct ActorSystem {
    shared: Arc<Shared>,
    pending: Arc<Pending>,
}

impl ActorSystem {
    /// Create an actor system executing on `rt`'s workers.
    pub fn new(rt: &HjRuntime) -> Self {
        ActorSystem {
            shared: Arc::clone(rt.shared()),
            pending: Arc::new(Pending {
                count: AtomicUsize::new(0),
                lock: Mutex::new(()),
                cv: Condvar::new(),
                failure: Mutex::new(None),
            }),
        }
    }

    /// Start an actor; returns its address.
    pub fn spawn<A: Actor>(&self, actor: A) -> ActorRef<A::Msg> {
        let mut behaviour = actor;
        let cell = Arc::new(ActorCell {
            mailbox: SegQueue::new(),
            scheduled: AtomicBool::new(false),
            behaviour: UnsafeCell::new(Box::new(move |msg: A::Msg, ctx: &ActorContext| {
                behaviour.receive(msg, ctx);
            })),
            system: self.clone(),
        });
        ActorRef { cell }
    }

    /// Block until no undelivered messages remain in the system.
    ///
    /// Worker threads help process tasks while waiting. Quiescence is
    /// permanent only if no external thread keeps sending.
    pub fn quiesce(&self) {
        loop {
            if self.pending.is_zero() {
                return;
            }
            if try_help_one() {
                continue;
            }
            let mut guard = self.pending.lock.lock();
            if !self.pending.is_zero() {
                self.pending.cv.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
    }

    /// Like [`ActorSystem::quiesce`], but gives up as soon as `abort()`
    /// returns true. Returns `true` if quiescence was reached, `false` if
    /// the wait was aborted (messages may still be in flight).
    pub fn quiesce_or(&self, abort: impl Fn() -> bool) -> bool {
        loop {
            if self.pending.is_zero() {
                return true;
            }
            if abort() {
                return false;
            }
            if try_help_one() {
                continue;
            }
            let mut guard = self.pending.lock.lock();
            if !self.pending.is_zero() {
                self.pending.cv.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
    }

    /// Number of sent-but-unprocessed messages (racy; diagnostics only).
    pub fn pending_messages(&self) -> usize {
        self.pending.count.load(Ordering::Relaxed)
    }

    /// Take the first panic payload thrown by any actor behaviour, if one
    /// panicked since the last call. The actor that panicked keeps
    /// processing subsequent messages (its state is whatever the partial
    /// `receive` left behind), so callers that care about integrity should
    /// treat a `Some` as fatal for the whole system's results.
    pub fn take_failure(&self) -> Option<Box<dyn Any + Send>> {
        self.pending.failure.lock().take()
    }
}

impl std::fmt::Debug for ActorSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorSystem")
            .field("pending_messages", &self.pending_messages())
            .finish()
    }
}

type Behaviour<M> = Box<dyn FnMut(M, &ActorContext) + Send>;

struct ActorCell<M> {
    mailbox: SegQueue<M>,
    scheduled: AtomicBool,
    behaviour: UnsafeCell<Behaviour<M>>,
    system: ActorSystem,
}

// SAFETY: `behaviour` is only ever accessed by the unique drain task that
// holds the `scheduled` claim (CAS false→true), so there is no concurrent
// access despite the shared Arc.
unsafe impl<M: Send> Sync for ActorCell<M> {}

impl<M: Send + 'static> ActorCell<M> {
    /// Spawn a drain task if this actor is not already scheduled.
    fn schedule(self: &Arc<Self>) {
        if self
            .scheduled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.spawn_drain();
        }
    }

    fn spawn_drain(self: &Arc<Self>) {
        let cell = Arc::clone(self);
        self.system.shared.spawn_job(Box::new(move || cell.drain()));
    }

    /// Process up to [`DRAIN_BATCH`] messages, then either re-queue or
    /// release the claim (with the standard lost-wakeup re-check).
    fn drain(self: Arc<Self>) {
        debug_assert!(self.scheduled.load(Ordering::Relaxed));
        let ctx = ActorContext {
            system: self.system.clone(),
        };
        // SAFETY: we hold the `scheduled` claim (see Sync impl).
        let behaviour = unsafe { &mut *self.behaviour.get() };
        for _ in 0..DRAIN_BATCH {
            match self.mailbox.pop() {
                Some(msg) => {
                    // Catch behaviour panics at the message boundary: the
                    // pending count must be decremented either way or
                    // `quiesce` would hang, and the panic must not unwind
                    // through the worker loop (which would kill the worker
                    // thread). The first payload is kept for the caller.
                    let result = catch_unwind(AssertUnwindSafe(|| behaviour(msg, &ctx)));
                    self.system.pending.dec();
                    if let Err(payload) = result {
                        let mut slot = self.system.pending.failure.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                }
                None => break,
            }
        }
        if !self.mailbox.is_empty() {
            // Keep the claim and continue in a fresh task.
            self.spawn_drain();
            return;
        }
        self.scheduled.store(false, Ordering::Release);
        // Re-check: a message may have raced in between the last pop and the
        // release above; whoever wins this CAS owns the new drain.
        if !self.mailbox.is_empty() {
            self.schedule();
        }
    }
}

/// Address of an actor. Clone freely; sends are lock-free.
pub struct ActorRef<M> {
    cell: Arc<ActorCell<M>>,
}

impl<M> Clone for ActorRef<M> {
    fn clone(&self) -> Self {
        ActorRef {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<M: Send + 'static> ActorRef<M> {
    /// Send a message. Messages from one sender arrive in send order.
    pub fn send(&self, msg: M) {
        self.cell.system.pending.inc();
        self.cell.mailbox.push(msg);
        self.cell.schedule();
    }
}

impl<M> std::fmt::Debug for ActorRef<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorRef")
            .field("queued", &self.cell.mailbox.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Counter {
        total: Arc<AtomicU64>,
    }

    impl Actor for Counter {
        type Msg = u64;
        fn receive(&mut self, msg: u64, _ctx: &ActorContext) {
            self.total.fetch_add(msg, Ordering::Relaxed);
        }
    }

    #[test]
    fn actor_processes_all_messages() {
        let rt = HjRuntime::new(2);
        let system = ActorSystem::new(&rt);
        let total = Arc::new(AtomicU64::new(0));
        let actor = system.spawn(Counter {
            total: Arc::clone(&total),
        });
        for i in 1..=100 {
            actor.send(i);
        }
        system.quiesce();
        assert_eq!(total.load(Ordering::Relaxed), 5050);
        assert_eq!(system.pending_messages(), 0);
    }

    struct OrderChecker {
        last: u64,
        violations: Arc<AtomicU64>,
    }

    impl Actor for OrderChecker {
        type Msg = u64;
        fn receive(&mut self, msg: u64, _ctx: &ActorContext) {
            if msg <= self.last && !(self.last == 0 && msg == 0) {
                self.violations.fetch_add(1, Ordering::Relaxed);
            }
            self.last = msg;
        }
    }

    #[test]
    fn single_sender_order_is_preserved() {
        let rt = HjRuntime::new(2);
        let system = ActorSystem::new(&rt);
        let violations = Arc::new(AtomicU64::new(0));
        let actor = system.spawn(OrderChecker {
            last: 0,
            violations: Arc::clone(&violations),
        });
        for i in 1..=10_000u64 {
            actor.send(i);
        }
        system.quiesce();
        assert_eq!(violations.load(Ordering::Relaxed), 0);
    }

    struct Pong {
        hits: Arc<AtomicU64>,
    }

    impl Actor for Pong {
        type Msg = (u64, ActorRef<u64>);
        fn receive(&mut self, (n, reply): Self::Msg, _ctx: &ActorContext) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if n > 0 {
                reply.send(n - 1);
            }
        }
    }

    struct Ping {
        pong: ActorRef<(u64, ActorRef<u64>)>,
        me: Option<ActorRef<u64>>,
        hits: Arc<AtomicU64>,
    }

    impl Actor for Ping {
        type Msg = u64;
        fn receive(&mut self, n: u64, _ctx: &ActorContext) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if n > 0 {
                self.pong.send((n, self.me.clone().expect("self ref set")));
            }
        }
    }

    #[test]
    fn ping_pong_converges() {
        let rt = HjRuntime::new(2);
        let system = ActorSystem::new(&rt);
        let ping_hits = Arc::new(AtomicU64::new(0));
        let pong_hits = Arc::new(AtomicU64::new(0));
        let pong = system.spawn(Pong {
            hits: Arc::clone(&pong_hits),
        });
        // Two-phase init to give ping its own address.
        let ping_cell = system.spawn(Ping {
            pong,
            me: None,
            hits: Arc::clone(&ping_hits),
        });
        // Rebuild ping with self-reference by sending through a fresh actor
        // is awkward; instead exercise the pong->ping path directly:
        for _ in 0..10 {
            ping_cell.send(0);
        }
        system.quiesce();
        assert_eq!(ping_hits.load(Ordering::Relaxed), 10);
    }

    struct Spawner;

    impl Actor for Spawner {
        type Msg = (u64, Arc<AtomicU64>);
        fn receive(&mut self, (n, acc): Self::Msg, ctx: &ActorContext) {
            acc.fetch_add(1, Ordering::Relaxed);
            if n > 0 {
                // Actors can spawn actors via the context.
                let child = ctx.system().spawn(Spawner);
                child.send((n - 1, acc));
            }
        }
    }

    #[test]
    fn actors_spawn_actors() {
        let rt = HjRuntime::new(2);
        let system = ActorSystem::new(&rt);
        let acc = Arc::new(AtomicU64::new(0));
        let root = system.spawn(Spawner);
        root.send((20, Arc::clone(&acc)));
        system.quiesce();
        assert_eq!(acc.load(Ordering::Relaxed), 21);
    }

    struct Bomb {
        processed: Arc<AtomicU64>,
    }

    impl Actor for Bomb {
        type Msg = u64;
        fn receive(&mut self, msg: u64, _ctx: &ActorContext) {
            if msg == 3 {
                panic!("bomb actor detonated on {msg}");
            }
            self.processed.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn panicking_actor_does_not_wedge_quiesce() {
        let rt = HjRuntime::new(2);
        let system = ActorSystem::new(&rt);
        let processed = Arc::new(AtomicU64::new(0));
        let actor = system.spawn(Bomb {
            processed: Arc::clone(&processed),
        });
        for i in 0..10 {
            actor.send(i);
        }
        // Must terminate despite the panic mid-stream...
        system.quiesce();
        assert_eq!(system.pending_messages(), 0);
        // ...with the messages around the bomb still processed,
        assert_eq!(processed.load(Ordering::Relaxed), 9);
        // and the payload surfaced exactly once.
        let payload = system.take_failure().expect("panic payload recorded");
        let text = payload.downcast_ref::<String>().expect("string payload");
        assert!(text.contains("detonated on 3"), "{text}");
        assert!(system.take_failure().is_none());
        // The system stays usable after a failure.
        actor.send(100);
        system.quiesce();
        assert_eq!(processed.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn quiesce_or_aborts_on_request() {
        let rt = HjRuntime::new(1);
        let system = ActorSystem::new(&rt);
        // Nothing pending: quiesces immediately regardless of abort.
        assert!(system.quiesce_or(|| true));
    }

    #[test]
    fn messages_between_many_actors() {
        let rt = HjRuntime::new(4);
        let system = ActorSystem::new(&rt);
        let total = Arc::new(AtomicU64::new(0));
        let actors: Vec<_> = (0..32)
            .map(|_| {
                system.spawn(Counter {
                    total: Arc::clone(&total),
                })
            })
            .collect();
        for (i, a) in actors.iter().enumerate() {
            for k in 0..50 {
                a.send((i + k) as u64 % 7);
            }
        }
        system.quiesce();
        let expected: u64 = (0..32usize)
            .flat_map(|i| (0..50usize).map(move |k| ((i + k) % 7) as u64))
            .sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }
}
