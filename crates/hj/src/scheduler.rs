//! Work-stealing scheduler internals.
//!
//! One OS thread per worker. Each worker owns a [`crossbeam_deque::Worker`]
//! deque (LIFO for its own pops — Habanero's *work-first* local policy — and
//! FIFO for thieves), plus there is one global [`Injector`] for submissions
//! from threads outside the pool. Idle workers park on a condition variable
//! with a short timeout, so a missed notification costs at most one timeout
//! period rather than a hang.
//!
//! This module is `pub` so that the scheduling machinery can be inspected by
//! benchmarks, but the types it exposes are not part of the stable API
//! surface; use [`crate::HjRuntime`] instead.

use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_deque::{Injector, Steal, Stealer, Worker};
use crossbeam_utils::Backoff;
use parking_lot::{Condvar, Mutex};

use crate::metrics::Metrics;

/// A unit of work: a boxed run-to-completion closure.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle worker sleeps before re-polling for work.
///
/// Short enough that a lost wakeup is invisible in benchmarks, long enough
/// that an idle pool does not burn a core (important on the single-core
/// evaluation host).
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// State shared by all workers of one runtime.
pub(crate) struct Shared {
    injector: Injector<Job>,
    stealers: Box<[Stealer<Job>]>,
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    pub(crate) metrics: Metrics,
}

impl Shared {
    pub(crate) fn num_workers(&self) -> usize {
        self.stealers.len()
    }

    /// Racy snapshot of the queue state for diagnostics: the global
    /// injector depth, each worker's local deque depth, and how many
    /// workers are currently parked. Reads are unsynchronized — the
    /// numbers are a best-effort picture for watchdog stall reports, not
    /// a consistent cut.
    pub(crate) fn queue_snapshot(&self) -> (usize, Vec<usize>, usize) {
        let locals = self.stealers.iter().map(|s| s.len()).collect();
        (
            self.injector.len(),
            locals,
            self.sleepers.load(Ordering::Relaxed),
        )
    }

    /// Submit a job from any thread. Jobs from worker threads go to the
    /// worker's own deque; others to the global injector.
    pub(crate) fn spawn_job(&self, job: Job) {
        Metrics::bump(&self.metrics.tasks_spawned);
        let mut job = Some(job);
        WorkerCtx::with_current(|ctx| {
            // Only use the local deque if the current worker belongs to
            // *this* runtime; a task running on another runtime's worker
            // must not capture the job in a foreign deque.
            if ptr::eq(Arc::as_ptr(&ctx.shared), self) {
                ctx.local.push(job.take().expect("job taken twice"));
            }
        });
        if let Some(job) = job {
            self.injector.push(job);
        }
        self.notify_one();
    }

    pub(crate) fn notify_one(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.sleep_lock.lock();
            self.wake.notify_one();
        }
    }

    pub(crate) fn notify_all(&self) {
        let _guard = self.sleep_lock.lock();
        self.wake.notify_all();
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.notify_all();
    }

    /// Run jobs on the calling (worker) thread until `done()` is true.
    ///
    /// This is Habanero's *help-first* join: a worker waiting for a finish
    /// scope executes other tasks instead of blocking its thread, so nested
    /// `finish` cannot starve the pool.
    pub(crate) fn help_until(&self, done: &dyn Fn() -> bool) {
        let backoff = Backoff::new();
        loop {
            if done() {
                return;
            }
            let job = WorkerCtx::with_current(|ctx| ctx.find_job()).flatten();
            match job {
                Some(job) => {
                    self.run_job(job);
                    backoff.reset();
                }
                None => {
                    if backoff.is_completed() {
                        // No runnable work: sleep briefly instead of
                        // spinning. `done()` is re-checked on wake.
                        let mut guard = self.sleep_lock.lock();
                        if done() {
                            return;
                        }
                        self.sleepers.fetch_add(1, Ordering::Relaxed);
                        self.wake.wait_for(&mut guard, PARK_TIMEOUT);
                        self.sleepers.fetch_sub(1, Ordering::Relaxed);
                    } else {
                        backoff.snooze();
                    }
                }
            }
        }
    }

    fn run_job(&self, job: Job) {
        // Count before running: a finish scope is released from *inside*
        // the job (its completion wrapper), so counting afterwards would
        // let an observer see quiescence with the counter still lagging.
        Metrics::bump(&self.metrics.tasks_executed);
        job();
    }

    fn steal_external(&self, local: &Worker<Job>, start: usize) -> Option<Job> {
        // First drain the injector, then try the other workers round-robin
        // starting from a per-worker offset to spread contention.
        loop {
            match self.injector.steal_batch_and_pop(local) {
                Steal::Success(job) => {
                    Metrics::bump(&self.metrics.tasks_injected);
                    return Some(job);
                }
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        let n = self.stealers.len();
        let mut retry = true;
        while retry {
            retry = false;
            for k in 0..n {
                let victim = (start + k) % n;
                match self.stealers[victim].steal_batch_and_pop(local) {
                    Steal::Success(job) => {
                        Metrics::bump(&self.metrics.tasks_stolen);
                        return Some(job);
                    }
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
        }
        None
    }
}

/// Per-worker context, reachable via thread-local storage while the worker
/// loop (or a task it runs) is on the stack.
pub(crate) struct WorkerCtx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) local: Worker<Job>,
    pub(crate) index: usize,
}

thread_local! {
    static CURRENT: Cell<*const WorkerCtx> = const { Cell::new(ptr::null()) };
}

impl WorkerCtx {
    /// Run `f` with the current worker context, if the calling thread is a
    /// pool worker.
    pub(crate) fn with_current<R>(f: impl FnOnce(&WorkerCtx) -> R) -> Option<R> {
        CURRENT.with(|cell| {
            let p = cell.get();
            if p.is_null() {
                None
            } else {
                // SAFETY: the pointer is installed by `worker_main` for the
                // duration of the worker loop and cleared (via guard) before
                // the referent is dropped.
                Some(f(unsafe { &*p }))
            }
        })
    }

    /// True if the calling thread is a worker of `shared`'s pool.
    pub(crate) fn on_pool(shared: &Shared) -> bool {
        Self::with_current(|ctx| ptr::eq(Arc::as_ptr(&ctx.shared), shared)).unwrap_or(false)
    }

    pub(crate) fn find_job(&self) -> Option<Job> {
        if let Some(job) = self.local.pop() {
            return Some(job);
        }
        self.shared.steal_external(&self.local, self.index + 1)
    }
}

/// If the calling thread is a pool worker, try to find and run one job.
/// Returns true if a job was executed.
///
/// Used by blocking constructs (futures, phasers) so that a worker thread
/// waiting on a condition keeps the pool productive instead of stalling.
pub(crate) fn try_help_one() -> bool {
    WorkerCtx::with_current(|ctx| match ctx.find_job() {
        Some(job) => {
            ctx.shared.run_job(job);
            true
        }
        None => false,
    })
    .unwrap_or(false)
}

struct CtxGuard;

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|cell| cell.set(ptr::null()));
    }
}

fn worker_main(shared: Arc<Shared>, local: Worker<Job>, index: usize) {
    let ctx = WorkerCtx {
        shared,
        local,
        index,
    };
    CURRENT.with(|cell| cell.set(&ctx as *const WorkerCtx));
    let _guard = CtxGuard;

    let backoff = Backoff::new();
    loop {
        match ctx.find_job() {
            Some(job) => {
                ctx.shared.run_job(job);
                backoff.reset();
            }
            None => {
                if ctx.shared.is_shutdown() {
                    break;
                }
                if backoff.is_completed() {
                    Metrics::bump(&ctx.shared.metrics.parks);
                    let mut guard = ctx.shared.sleep_lock.lock();
                    ctx.shared.sleepers.fetch_add(1, Ordering::Relaxed);
                    ctx.shared.wake.wait_for(&mut guard, PARK_TIMEOUT);
                    ctx.shared.sleepers.fetch_sub(1, Ordering::Relaxed);
                } else {
                    backoff.snooze();
                }
            }
        }
    }
}

/// Build a pool: the shared state plus its worker thread handles.
pub(crate) fn build_pool(
    workers: usize,
    thread_name: &str,
) -> (Arc<Shared>, Vec<std::thread::JoinHandle<()>>) {
    assert!(workers >= 1, "an HjRuntime needs at least one worker");
    let worker_deques: Vec<Worker<Job>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Box<[Stealer<Job>]> = worker_deques.iter().map(|w| w.stealer()).collect();
    let shared = Arc::new(Shared {
        injector: Injector::new(),
        stealers,
        sleepers: AtomicUsize::new(0),
        sleep_lock: Mutex::new(()),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        metrics: Metrics::new(),
    });
    let handles = worker_deques
        .into_iter()
        .enumerate()
        .map(|(index, local)| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("{thread_name}-{index}"))
                .spawn(move || worker_main(shared, local, index))
                .expect("failed to spawn worker thread")
        })
        .collect();
    (shared, handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_executes_injected_jobs() {
        let (shared, handles) = build_pool(2, "test");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let c = Arc::clone(&counter);
            shared.spawn_job(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        // Wait for completion (tests only; real code uses finish scopes).
        while counter.load(Ordering::Relaxed) < 64 {
            std::thread::sleep(Duration::from_millis(1));
        }
        shared.begin_shutdown();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        let snap = shared.metrics.snapshot();
        assert_eq!(snap.tasks_spawned, 64);
        assert_eq!(snap.tasks_executed, 64);
    }

    #[test]
    fn shutdown_drains_then_exits() {
        let (shared, handles) = build_pool(1, "test");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let c = Arc::clone(&counter);
            shared.spawn_job(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        while counter.load(Ordering::Relaxed) < 16 {
            std::thread::sleep(Duration::from_millis(1));
        }
        shared.begin_shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = build_pool(0, "test");
    }
}
