//! # hj-runtime — a Habanero-style task-parallel runtime for Rust
//!
//! This crate reimplements the execution model of the Habanero-Java library
//! (HJlib) that the PMAM'15 paper *"Parallelizing a Discrete Event Simulation
//! Application Using the Habanero-Java Multicore Library"* builds on:
//!
//! * **async/finish** — lightweight tasks spawned into a work-stealing
//!   scheduler ([`HjRuntime::finish`], [`Scope::spawn`]). A `finish` scope is
//!   a generalized join: it returns only after every task transitively
//!   spawned inside it has completed.
//! * **isolated** — weak isolation: global mutual exclusion
//!   ([`HjRuntime::isolated`]) and object-keyed mutual exclusion
//!   ([`IsolatedRegistry`]).
//! * **fine-grained locking extension** (paper §3.2) — [`LockRegistry`] with
//!   `TRYLOCK(var)` / `RELEASEALLLOCKS()` semantics: compare-and-swap
//!   `AtomicBool` locks that are *never* blocked on, preserving Habanero's
//!   deadlock-freedom guarantee. Ascending-ID acquisition order
//!   ([`Locker::try_lock_all`]) provides the paper's livelock
//!   avoidance.
//! * **forasync/forall** ([`mod@forasync`]) — HJlib parallel loops.
//! * **futures** ([`future::HjFuture`]), **phasers** ([`phaser::Phaser`]) and
//!   **actors** ([`actor`]) — the additional HJlib constructs the paper
//!   mentions (§3.2, §6); the actor model is the paper's stated future-work
//!   direction for DES and is exercised by `des-core`'s `ActorEngine`.
//!
//! The scheduler follows the classic Habanero/Cilk design: one worker thread
//! per core, a per-worker [`crossbeam_deque::Worker`] deque (LIFO pops, FIFO
//! steals), a global injector for external submissions, and *help-first*
//! joins — a worker waiting on a `finish` scope executes other tasks instead
//! of blocking its thread.
//!
//! ## Example
//!
//! ```
//! use hj::HjRuntime;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let rt = HjRuntime::new(4);
//! let counter = AtomicUsize::new(0);
//! rt.finish(|scope| {
//!     for _ in 0..100 {
//!         scope.spawn(|| {
//!             counter.fetch_add(1, Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(counter.load(Ordering::Relaxed), 100);
//! ```

pub mod actor;
pub mod forasync;
pub mod future;
pub mod isolated;
pub mod locks;
pub mod metrics;
pub mod phaser;
pub mod runtime;
pub mod scheduler;
pub mod scope;

pub use forasync::{forall, forall_chunked, forasync, forasync_chunked};
pub use isolated::IsolatedRegistry;
pub use locks::{LockId, LockRegistry, Locker};
pub use metrics::{Metrics, MetricsSnapshot};
pub use runtime::{HjConfig, HjRuntime, SchedulerObservation};
pub use scope::Scope;

/// Commonly used items.
pub mod prelude {
    pub use crate::actor::{Actor, ActorContext, ActorRef, ActorSystem};
    pub use crate::forasync::{forall, forall_chunked, forasync, forasync_chunked};
    pub use crate::future::HjFuture;
    pub use crate::isolated::IsolatedRegistry;
    pub use crate::locks::{LockId, LockRegistry, Locker};
    pub use crate::phaser::{Phaser, PhaserMode};
    pub use crate::runtime::{HjConfig, HjRuntime};
    pub use crate::scope::Scope;
}
