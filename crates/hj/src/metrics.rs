//! Runtime counters.
//!
//! The paper attributes part of HJlib's win over Galois to lower task
//! management overhead (§5). These counters make that overhead observable:
//! the bench harness reports spawned/executed/stolen task counts per run.
//! Lock acquisition statistics live in [`crate::locks::LockStats`].

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Monotonic counters maintained by the scheduler and lock registry.
///
/// All counters are updated with relaxed ordering: they are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Tasks pushed into the runtime (local deque or injector).
    pub tasks_spawned: CachePadded<AtomicU64>,
    /// Tasks picked up and run by a worker.
    pub tasks_executed: CachePadded<AtomicU64>,
    /// Tasks obtained by stealing from another worker's deque.
    pub tasks_stolen: CachePadded<AtomicU64>,
    /// Tasks obtained from the global injector.
    pub tasks_injected: CachePadded<AtomicU64>,
    /// Times a worker went to sleep for lack of work.
    pub parks: CachePadded<AtomicU64>,
}

impl Metrics {
    /// Create a zeroed set of counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg_attr(not(test), allow(dead_code))] // used by unit tests
    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            tasks_injected: self.tasks_injected.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub tasks_spawned: u64,
    pub tasks_executed: u64,
    pub tasks_stolen: u64,
    pub tasks_injected: u64,
    pub parks: u64,
}

impl MetricsSnapshot {
    /// Counter deltas between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_spawned: self.tasks_spawned - earlier.tasks_spawned,
            tasks_executed: self.tasks_executed - earlier.tasks_executed,
            tasks_stolen: self.tasks_stolen - earlier.tasks_stolen,
            tasks_injected: self.tasks_injected - earlier.tasks_injected,
            parks: self.parks - earlier.parks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let m = Metrics::new();
        Metrics::bump(&m.tasks_spawned);
        Metrics::add(&m.tasks_executed, 5);
        let s = m.snapshot();
        assert_eq!(s.tasks_spawned, 1);
        assert_eq!(s.tasks_executed, 5);
        assert_eq!(s.tasks_stolen, 0);
    }

    #[test]
    fn since_computes_deltas() {
        let m = Metrics::new();
        Metrics::add(&m.tasks_spawned, 10);
        let before = m.snapshot();
        Metrics::add(&m.tasks_spawned, 7);
        let after = m.snapshot();
        assert_eq!(after.since(&before).tasks_spawned, 7);
    }

}
