//! The [`HjRuntime`] — entry point to the Habanero-style execution model.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::metrics::MetricsSnapshot;
use crate::scheduler::{build_pool, Shared};
use crate::scope::Scope;

/// Configuration for an [`HjRuntime`].
#[derive(Debug, Clone)]
pub struct HjConfig {
    /// Number of worker threads (HJlib's "number of workers").
    pub workers: usize,
    /// Name prefix for worker threads.
    pub thread_name: String,
}

impl HjConfig {
    /// `workers` worker threads with default naming.
    pub fn with_workers(workers: usize) -> Self {
        HjConfig {
            workers,
            thread_name: "hj-worker".to_string(),
        }
    }
}

impl Default for HjConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        HjConfig::with_workers(workers)
    }
}

/// A racy, best-effort observation of the scheduler's queues, taken by
/// [`HjRuntime::observe_scheduler`]. Intended for diagnostics (watchdog
/// stall snapshots); the fields are sampled independently and do not form
/// a consistent cut of the scheduler state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerObservation {
    /// Jobs waiting in the global injector queue.
    pub injector_depth: usize,
    /// Depth of each worker's local deque, in worker order.
    pub worker_queue_depths: Vec<usize>,
    /// Workers currently parked waiting for work.
    pub sleeping_workers: usize,
}

/// A fixed pool of worker threads executing HJ tasks with work stealing and
/// load balancing (paper §3).
///
/// Dropping the runtime shuts the workers down after draining queued tasks.
/// Runtimes are independent: multiple may coexist in one process.
pub struct HjRuntime {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Global `isolated` lock (weak isolation across *all* isolated blocks).
    isolated_global: Mutex<()>,
}

impl HjRuntime {
    /// Create a runtime with `workers` worker threads.
    pub fn new(workers: usize) -> Self {
        Self::with_config(HjConfig::with_workers(workers))
    }

    /// Create a runtime from an explicit configuration.
    pub fn with_config(config: HjConfig) -> Self {
        let (shared, handles) = build_pool(config.workers, &config.thread_name);
        HjRuntime {
            shared,
            handles: Mutex::new(handles),
            isolated_global: Mutex::new(()),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.num_workers()
    }

    /// Execute `body` inside a finish scope: returns only after every task
    /// transitively spawned via [`Scope::spawn`] has completed (paper §3.1).
    ///
    /// If a task panics, the scope still drains completely and the first
    /// panic is then re-raised here. If `body` itself panics, quiescence is
    /// likewise awaited before the panic resumes — this is what makes
    /// environment borrows in tasks sound.
    pub fn finish<'env, F, R>(&self, body: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let scope = Scope::new(Arc::clone(&self.shared));
        let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));
        scope.wait_quiescent();
        match result {
            Ok(value) => {
                scope.rethrow_task_panic();
                value
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Run `f` in mutual exclusion with every other global `isolated` block
    /// of this runtime (paper §3.2, the zero-variable form of `isolated`).
    ///
    /// Never call this while holding [`crate::LockRegistry`] locks from the
    /// same code path in opposite order — the registry itself never blocks,
    /// so lock-then-isolate is safe, but consistent ordering keeps intent
    /// clear.
    pub fn isolated<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.isolated_global.lock();
        f()
    }

    /// Spawn a free-standing (`'static`) task outside any finish scope.
    ///
    /// Used by the actor layer; ordinary code should prefer
    /// [`HjRuntime::finish`] + [`Scope::spawn`] so completion is awaited.
    pub fn spawn_detached(&self, f: impl FnOnce() + Send + 'static) {
        self.shared.spawn_job(Box::new(f));
    }

    /// Snapshot of the runtime counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Racy snapshot of the scheduler queues, for stall diagnostics.
    pub fn observe_scheduler(&self) -> SchedulerObservation {
        let (injector_depth, worker_queue_depths, sleeping_workers) =
            self.shared.queue_snapshot();
        SchedulerObservation {
            injector_depth,
            worker_queue_depths,
            sleeping_workers,
        }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

impl Drop for HjRuntime {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for HjRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HjRuntime")
            .field("workers", &self.workers())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn default_config_uses_available_parallelism() {
        let cfg = HjConfig::default();
        assert!(cfg.workers >= 1);
    }

    #[test]
    fn isolated_is_mutually_exclusive() {
        let rt = HjRuntime::new(4);
        let counter = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        rt.finish(|scope| {
            for _ in 0..200 {
                scope.spawn(|| {
                    rt.isolated(|| {
                        let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(inside, Ordering::SeqCst);
                        counter.fetch_sub(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn metrics_count_spawned_tasks() {
        let rt = HjRuntime::new(2);
        let before = rt.metrics();
        rt.finish(|scope| {
            for _ in 0..32 {
                scope.spawn(|| {});
            }
        });
        let delta = rt.metrics().since(&before);
        assert_eq!(delta.tasks_spawned, 32);
        assert_eq!(delta.tasks_executed, 32);
    }

    #[test]
    fn runtime_debug_is_printable() {
        let rt = HjRuntime::new(1);
        let s = format!("{rt:?}");
        assert!(s.contains("workers"));
    }

    #[test]
    fn drop_joins_workers() {
        // Just ensure Drop terminates promptly with queued-then-drained work.
        let rt = HjRuntime::new(3);
        rt.finish(|scope| {
            for _ in 0..100 {
                scope.spawn(|| std::hint::black_box(()));
            }
        });
        drop(rt);
    }
}
