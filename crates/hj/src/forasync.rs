//! `forasync` / `forall` — HJlib's parallel loop constructs.
//!
//! `forasync` spawns one task per (chunk of) iteration inside an existing
//! finish scope; `forall` is the common `finish { forasync }` pairing.
//! These are conveniences over [`crate::Scope::spawn`]; the DES engines do
//! not need them, but HJlib programs use them pervasively, so the runtime
//! reproduction provides them (with chunking, which HJlib exposes as
//! *grouped* forasync).

use crate::runtime::HjRuntime;
use crate::scope::Scope;

/// Spawn one task per index in `range` (no chunking).
///
/// The body runs in parallel with the caller; the enclosing finish scope
/// joins it.
pub fn forasync<'s, F>(scope: &'s Scope<'s, '_>, range: std::ops::Range<usize>, body: F)
where
    F: Fn(usize) + Send + Sync + 's,
{
    forasync_chunked(scope, range, 1, body)
}

/// Spawn tasks over `range` in chunks of `grain` consecutive indices —
/// HJlib's grouped forasync. A larger grain amortizes task overhead for
/// cheap bodies.
pub fn forasync_chunked<'s, F>(
    scope: &'s Scope<'s, '_>,
    range: std::ops::Range<usize>,
    grain: usize,
    body: F,
) where
    F: Fn(usize) + Send + Sync + 's,
{
    assert!(grain >= 1, "grain must be at least 1");
    // Tasks need shared access to `body`: park it in the scope via a
    // reference-counted allocation (tasks may outlive this stack frame,
    // but not the scope).
    let body = std::sync::Arc::new(body);
    let mut lo = range.start;
    while lo < range.end {
        let hi = (lo + grain).min(range.end);
        let body = std::sync::Arc::clone(&body);
        scope.spawn(move || {
            for i in lo..hi {
                body(i);
            }
        });
        lo = hi;
    }
}

/// `finish { forasync }`: run `body` for every index in `range`, in
/// parallel, and return when all iterations are done.
pub fn forall<F>(rt: &HjRuntime, range: std::ops::Range<usize>, body: F)
where
    F: Fn(usize) + Send + Sync,
{
    rt.finish(|scope| forasync(scope, range, body));
}

/// Chunked [`forall`].
pub fn forall_chunked<F>(rt: &HjRuntime, range: std::ops::Range<usize>, grain: usize, body: F)
where
    F: Fn(usize) + Send + Sync,
{
    rt.finish(|scope| forasync_chunked(scope, range, grain, body));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn forall_covers_every_index_exactly_once() {
        let rt = HjRuntime::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        forall(&rt, 0..1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunked_forall_matches_unchunked() {
        let rt = HjRuntime::new(3);
        for grain in [1, 2, 7, 100, 10_000] {
            let sum = AtomicUsize::new(0);
            forall_chunked(&rt, 0..500, grain, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 499 * 500 / 2, "grain {grain}");
        }
    }

    #[test]
    fn empty_range_is_a_no_op() {
        let rt = HjRuntime::new(1);
        forall(&rt, 5..5, |_| panic!("must not run"));
    }

    #[test]
    fn forasync_composes_with_other_tasks() {
        let rt = HjRuntime::new(2);
        let total = AtomicUsize::new(0);
        rt.finish(|scope| {
            forasync(scope, 0..64, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
            scope.spawn(|| {
                total.fetch_add(100, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 164);
    }

    #[test]
    fn nested_forall() {
        let rt = HjRuntime::new(2);
        let total = AtomicUsize::new(0);
        forall(&rt, 0..8, |_| {
            forall(&rt, 0..8, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn grain_larger_than_range_spawns_one_task() {
        let rt = HjRuntime::new(2);
        let before = rt.metrics();
        forall_chunked(&rt, 0..10, 1_000, |_| {});
        let delta = rt.metrics().since(&before);
        assert_eq!(delta.tasks_spawned, 1);
    }
}
