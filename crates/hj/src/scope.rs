//! `finish` scopes and `async` task spawning.
//!
//! [`Scope`] mirrors HJlib's async/finish model (paper §3.1): `finish`
//! executes a body and then waits until every task transitively spawned
//! within it has completed; `async` (here [`Scope::spawn`]) creates a
//! lightweight child task that may run before, after, or in parallel with
//! the remainder of its parent.
//!
//! Like [`std::thread::scope`], a `Scope` lets tasks borrow from the
//! enclosing environment (`'env`): soundness follows from `finish` never
//! returning — even on panic — before the scope is quiescent.

use std::any::Any;
use std::marker::PhantomData;
use std::mem;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::scheduler::{Job, Shared, WorkerCtx};

/// Synchronization state of one finish scope.
pub(crate) struct ScopeInner {
    /// Number of spawned-but-not-finished tasks in this scope.
    pending: AtomicUsize,
    /// First panic payload raised by a task of this scope, if any.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl ScopeInner {
    fn new() -> Self {
        ScopeInner {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    fn task_done(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last task: wake any external waiter. Taking the lock orders
            // the notify after the waiter's predicate check.
            let _guard = self.done_lock.lock();
            self.done_cv.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn is_quiescent(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }
}

/// A live finish scope. Obtained from [`crate::HjRuntime::finish`]; spawn
/// tasks with [`Scope::spawn`].
///
/// The two lifetimes follow [`std::thread::scope`]: `'scope` is the period
/// during which tasks may run, `'env` the environment borrowed by tasks.
pub struct Scope<'scope, 'env: 'scope> {
    inner: ScopeInner,
    pool: Arc<Shared>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub(crate) fn new(pool: Arc<Shared>) -> Self {
        Scope {
            inner: ScopeInner::new(),
            pool,
            _scope: PhantomData,
            _env: PhantomData,
        }
    }

    /// Spawn an `async` task in this scope.
    ///
    /// The task is pushed onto the current worker's deque (or the global
    /// injector when called from outside the pool) and is eligible to be
    /// stolen by any idle worker. The enclosing `finish` will not return
    /// until the task — and any tasks it spawns — completes.
    ///
    /// A panicking task does not abort the process: the scope drains and
    /// the first panic is re-raised from `finish`.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.pending.fetch_add(1, Ordering::Relaxed);
        // The wrapper needs a stable pointer to `ScopeInner`. The Scope
        // lives on the stack frame of `finish`, which does not return until
        // `pending == 0`, so the pointer outlives every wrapper execution.
        let inner_ptr = &self.inner as *const ScopeInner as usize;
        let wrapper = move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            // SAFETY: see above — `finish` keeps the ScopeInner alive until
            // this task (counted in `pending`) has run `task_done`.
            let inner = unsafe { &*(inner_ptr as *const ScopeInner) };
            if let Err(payload) = result {
                inner.record_panic(payload);
            }
            inner.task_done();
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(wrapper);
        // SAFETY: extending the closure lifetime to 'static is sound because
        // `finish` blocks until the scope is quiescent before any borrow in
        // `'scope`/`'env` can end (the same argument as std::thread::scope).
        let job: Job = unsafe { mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.pool.spawn_job(job);
    }

    /// Alias for [`Scope::spawn`] matching the paper's `async` statement.
    pub fn async_task<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.spawn(f)
    }

    /// Number of tasks currently pending in this scope (racy; for tests and
    /// diagnostics only).
    pub fn pending_tasks(&self) -> usize {
        self.inner.pending.load(Ordering::Relaxed)
    }

    /// Block until the scope is quiescent. Worker threads help execute
    /// tasks; external threads wait on a condition variable.
    pub(crate) fn wait_quiescent(&self) {
        if self.inner.is_quiescent() {
            return;
        }
        if WorkerCtx::on_pool(&self.pool) {
            self.pool.help_until(&|| self.inner.is_quiescent());
        } else {
            let mut guard = self.inner.done_lock.lock();
            while !self.inner.is_quiescent() {
                // The timeout guards against the (benign) race where the
                // last task_done fires between our predicate check and wait.
                self.inner
                    .done_cv
                    .wait_for(&mut guard, Duration::from_millis(1));
            }
        }
    }

    /// Re-raise the first panic recorded by a task of this scope, if any.
    pub(crate) fn rethrow_task_panic(&self) {
        if let Some(payload) = self.inner.panic.lock().take() {
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::HjRuntime;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn finish_waits_for_all_tasks() {
        let rt = HjRuntime::new(2);
        let counter = AtomicUsize::new(0);
        rt.finish(|scope| {
            for _ in 0..1000 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn tasks_can_spawn_recursively() {
        // Parallel fib via recursive spawning: every level re-spawns.
        fn fib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                fib(n - 1) + fib(n - 2)
            }
        }
        let rt = HjRuntime::new(2);
        let total = AtomicUsize::new(0);
        rt.finish(|scope| {
            fn go<'s>(scope: &'s crate::Scope<'s, '_>, n: u64, total: &'s AtomicUsize) {
                if n < 2 {
                    total.fetch_add(n as usize, Ordering::Relaxed);
                } else {
                    scope.spawn(move || go(scope, n - 1, total));
                    scope.spawn(move || go(scope, n - 2, total));
                }
            }
            go(scope, 12, &total);
        });
        assert_eq!(total.load(Ordering::Relaxed) as u64, fib(12));
    }

    #[test]
    fn tasks_borrow_environment() {
        let rt = HjRuntime::new(2);
        let data = [1u64, 2, 3, 4, 5];
        let sum = AtomicUsize::new(0);
        rt.finish(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|| {
                    let s: u64 = chunk.iter().sum();
                    sum.fetch_add(s as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn nested_finish_from_within_task() {
        let rt = HjRuntime::new(2);
        let counter = AtomicUsize::new(0);
        rt.finish(|scope| {
            let rt_ref = &rt;
            let counter_ref = &counter;
            scope.spawn(move || {
                rt_ref.finish(|inner| {
                    for _ in 0..10 {
                        inner.spawn(|| {
                            counter_ref.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                // All 10 inner tasks are done before this line.
                assert!(counter_ref.load(Ordering::Relaxed) >= 10);
                counter_ref.fetch_add(100, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 110);
    }

    #[test]
    fn empty_finish_returns_immediately() {
        let rt = HjRuntime::new(1);
        let r = rt.finish(|_| 42);
        assert_eq!(r, 42);
    }

    #[test]
    fn task_panic_propagates_after_quiescence() {
        let rt = HjRuntime::new(2);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let c = std::sync::Arc::clone(&counter);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.finish(|scope| {
                let c = &c;
                scope.spawn(|| panic!("task boom"));
                for _ in 0..50 {
                    scope.spawn(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // The scope still drained every healthy task before re-raising.
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        // Runtime is reusable after a panicked scope.
        let ok = rt.finish(|_| true);
        assert!(ok);
    }

    #[test]
    fn many_small_scopes() {
        let rt = HjRuntime::new(2);
        for round in 0..100 {
            let counter = AtomicUsize::new(0);
            rt.finish(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 8, "round {round}");
        }
    }
}
