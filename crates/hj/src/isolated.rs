//! Object-keyed `isolated` sections (paper §3.2).
//!
//! `isolated(var_1 … var_i, () -> stmt)` guarantees mutual exclusion between
//! any two isolated blocks whose variable sets intersect. We render the
//! "variables" as `u64` object keys and back the construct with a striped
//! table of mutexes: each key hashes to a stripe, stripes are acquired in
//! ascending index order, so any two blocks sharing a key share a stripe and
//! exclude each other, and two blocks acquiring multiple stripes always do
//! so in the same global order, so they cannot deadlock. As in HJlib,
//! isolated blocks must not nest.
//!
//! False conflicts (two distinct keys landing in one stripe) reduce
//! parallelism but never correctness, mirroring HJlib's weak-isolation
//! contract.

use parking_lot::Mutex;

/// Default number of stripes; a power of two for cheap masking.
const DEFAULT_STRIPES: usize = 256;

/// Striped mutex table implementing object-keyed `isolated`.
pub struct IsolatedRegistry {
    stripes: Box<[Mutex<()>]>,
}

impl IsolatedRegistry {
    /// A registry with the default stripe count.
    pub fn new() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }

    /// A registry with `stripes` stripes (rounded up to a power of two).
    pub fn with_stripes(stripes: usize) -> Self {
        let n = stripes.next_power_of_two().max(1);
        IsolatedRegistry {
            stripes: (0..n).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    #[inline]
    fn stripe_of(&self, key: u64) -> usize {
        // Fibonacci hashing spreads sequential object IDs across stripes.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.stripes.len() - 1)
    }

    /// Run `f` in mutual exclusion with every other isolated block whose key
    /// set intersects `keys`.
    pub fn isolated<R>(&self, keys: &[u64], f: impl FnOnce() -> R) -> R {
        // Map keys to stripes, deduplicate, and lock in ascending order.
        let mut idx: Vec<usize> = keys.iter().map(|&k| self.stripe_of(k)).collect();
        idx.sort_unstable();
        idx.dedup();
        let guards: Vec<_> = idx.iter().map(|&i| self.stripes[i].lock()).collect();
        let result = f();
        drop(guards);
        result
    }
}

impl Default for IsolatedRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for IsolatedRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IsolatedRegistry")
            .field("stripes", &self.stripes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HjRuntime;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(IsolatedRegistry::with_stripes(100).stripes(), 128);
        assert_eq!(IsolatedRegistry::with_stripes(1).stripes(), 1);
    }

    #[test]
    fn intersecting_key_sets_exclude_each_other() {
        let rt = HjRuntime::new(4);
        let iso = IsolatedRegistry::new();
        let inside = AtomicUsize::new(0);
        let max_inside = AtomicUsize::new(0);
        rt.finish(|scope| {
            for i in 0..100u64 {
                let iso = &iso;
                let inside = &inside;
                let max_inside = &max_inside;
                scope.spawn(move || {
                    // Every block shares key 7 with every other block.
                    iso.isolated(&[7, i + 100], || {
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        max_inside.fetch_max(now, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(max_inside.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn duplicate_keys_do_not_self_deadlock() {
        let iso = IsolatedRegistry::new();
        let r = iso.isolated(&[3, 3, 3], || 7);
        assert_eq!(r, 7);
    }

    #[test]
    fn empty_key_set_runs() {
        let iso = IsolatedRegistry::new();
        assert_eq!(iso.isolated(&[], || 1), 1);
    }

    #[test]
    fn disjoint_blocks_all_complete() {
        // Sorted stripe acquisition gives a global order across
        // multi-stripe blocks, so no interleaving can deadlock.
        let rt = HjRuntime::new(2);
        let iso = IsolatedRegistry::with_stripes(1024);
        let hits = AtomicUsize::new(0);
        rt.finish(|scope| {
            for i in 0..50u64 {
                let iso = &iso;
                let hits = &hits;
                scope.spawn(move || {
                    iso.isolated(&[i], || {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 50);
    }
}
