//! HJ futures — asynchronous tasks with a retrievable result (paper §3.2
//! lists futures among the constructs that keep HJlib deadlock-free).
//!
//! An [`HjFuture`] is created with [`HjFuture::spawn`]. `get`
//! blocks until the producing task finishes; when the calling thread is a
//! pool worker it *helps* (executes other tasks) instead of stalling a
//! worker, so `get` cannot starve the pool.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::runtime::HjRuntime;
use crate::scheduler::try_help_one;

enum FutureState<T> {
    Pending,
    Ready(T),
    Panicked,
    Taken,
}

struct FutureShared<T> {
    state: Mutex<FutureState<T>>,
    cv: Condvar,
}

/// Handle to the eventual result of an async task.
///
/// Cloning the handle is cheap; any clone may wait, and the value can be
/// retrieved once with [`HjFuture::join`] or repeatedly (for `T: Clone`)
/// with [`HjFuture::get`].
pub struct HjFuture<T> {
    shared: Arc<FutureShared<T>>,
}

impl<T> Clone for HjFuture<T> {
    fn clone(&self) -> Self {
        HjFuture {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + 'static> HjFuture<T> {
    /// Spawn `f` as a detached task on `rt` and return the future for its
    /// result.
    pub fn spawn(rt: &HjRuntime, f: impl FnOnce() -> T + Send + 'static) -> Self {
        let shared = Arc::new(FutureShared {
            state: Mutex::new(FutureState::Pending),
            cv: Condvar::new(),
        });
        let producer = Arc::clone(&shared);
        rt.spawn_detached(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let mut state = producer.state.lock();
            *state = match result {
                Ok(value) => FutureState::Ready(value),
                Err(_) => FutureState::Panicked,
            };
            producer.cv.notify_all();
        });
        HjFuture { shared }
    }

    /// True once the producing task has finished (successfully or not).
    pub fn is_done(&self) -> bool {
        !matches!(*self.shared.state.lock(), FutureState::Pending)
    }

    /// Block until done. Worker threads help run other tasks while waiting.
    pub fn wait(&self) {
        loop {
            if self.is_done() {
                return;
            }
            if try_help_one() {
                continue;
            }
            let mut state = self.shared.state.lock();
            if matches!(*state, FutureState::Pending) {
                // Timeout bounds the cost of a wakeup lost to the helping
                // fast path above.
                self.shared.cv.wait_for(&mut state, Duration::from_millis(1));
            }
        }
    }

    /// Wait and take the value out of the future.
    ///
    /// # Panics
    /// If the producing task panicked, or if the value was already taken.
    pub fn join(self) -> T {
        self.wait();
        let mut state = self.shared.state.lock();
        match std::mem::replace(&mut *state, FutureState::Taken) {
            FutureState::Ready(v) => v,
            FutureState::Panicked => panic!("future task panicked"),
            FutureState::Taken => panic!("future value already taken"),
            FutureState::Pending => unreachable!("wait() returned while pending"),
        }
    }

    /// The value if already available (does not block or take).
    pub fn try_get(&self) -> Option<T>
    where
        T: Clone,
    {
        match &*self.shared.state.lock() {
            FutureState::Ready(v) => Some(v.clone()),
            _ => None,
        }
    }

    /// Wait for and clone the value (HJ's `future.get()`, repeatable).
    ///
    /// # Panics
    /// If the producing task panicked or the value was taken by `join`.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.wait();
        match &*self.shared.state.lock() {
            FutureState::Ready(v) => v.clone(),
            FutureState::Panicked => panic!("future task panicked"),
            FutureState::Taken => panic!("future value already taken"),
            FutureState::Pending => unreachable!("wait() returned while pending"),
        }
    }
}

impl<T> std::fmt::Debug for HjFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &*self.shared.state.lock() {
            FutureState::Pending => "pending",
            FutureState::Ready(_) => "ready",
            FutureState::Panicked => "panicked",
            FutureState::Taken => "taken",
        };
        f.debug_struct("HjFuture").field("state", &state).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_produces_value() {
        let rt = HjRuntime::new(2);
        let fut = HjFuture::spawn(&rt, || 6 * 7);
        assert_eq!(fut.get(), 42);
        assert_eq!(fut.get(), 42); // repeatable
        assert_eq!(fut.join(), 42);
    }

    #[test]
    fn futures_compose() {
        let rt = HjRuntime::new(2);
        let a = HjFuture::spawn(&rt, || 10u64);
        let b = HjFuture::spawn(&rt, || 32u64);
        // A dependent task waiting on both — exercises helping on workers.
        let a2 = a.clone();
        let b2 = b.clone();
        let c = HjFuture::spawn(&rt, move || a2.get() + b2.get());
        assert_eq!(c.get(), 42);
    }

    #[test]
    #[should_panic(expected = "future task panicked")]
    fn panicked_future_propagates_on_get() {
        let rt = HjRuntime::new(1);
        let fut: HjFuture<u32> = HjFuture::spawn(&rt, || panic!("producer failed"));
        let _ = fut.get();
    }

    #[test]
    fn try_get_before_and_after() {
        let rt = HjRuntime::new(1);
        let fut = HjFuture::spawn(&rt, || {
            std::thread::sleep(Duration::from_millis(5));
            7u32
        });
        // May or may not be ready yet, but eventually is.
        fut.wait();
        assert_eq!(fut.try_get(), Some(7));
    }

    #[test]
    fn many_futures_all_resolve() {
        let rt = HjRuntime::new(4);
        let futs: Vec<_> = (0..100u64).map(|i| HjFuture::spawn(&rt, move || i * i)).collect();
        let total: u64 = futs.into_iter().map(|f| f.join()).sum();
        let expected: u64 = (0..100u64).map(|i| i * i).sum();
        assert_eq!(total, expected);
    }
}
