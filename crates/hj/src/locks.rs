//! The fine-grained locking extension (paper §3.2, §4.5.2).
//!
//! The paper extends the Habanero execution model with two APIs:
//!
//! * `TRYLOCK(var)` — attempt to acquire a runtime-managed lock, returning
//!   whether the acquisition succeeded. It **never blocks**.
//! * `RELEASEALLLOCKS()` — release every lock the current task holds.
//!
//! Because acquisition never blocks and a failed attempt releases
//! everything, these APIs cannot introduce deadlock, preserving Habanero's
//! deadlock-freedom guarantee. Livelock is avoided by acquiring locks in
//! ascending ID order ([`Locker::try_lock_all`]), which guarantees that one
//! contender always wins (paper §4.3).
//!
//! The implementation matches the paper's §4.5.2 choice: each lock is a
//! plain CAS-driven `AtomicBool` (the Rust equivalent of
//! `java.util.concurrent.atomic.AtomicBoolean`), cache-padded to avoid
//! false sharing between neighbouring port locks.
//!
//! In HJlib the "current task" is ambient; in Rust we reify it as a
//! [`Locker`], a per-task handle that tracks the held set. The engine
//! creates one `Locker` per executing task; dropping it releases every held
//! lock (RAII backstop).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Identifier of one lock in a [`LockRegistry`]; in the DES application
/// there is one lock per (node, input port) pair.
pub type LockId = u32;

/// Acquisition statistics for a registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Successful `TRYLOCK` acquisitions.
    pub acquired: u64,
    /// Failed `TRYLOCK` attempts (lock already held by another task).
    pub failed: u64,
    /// `RELEASEALLLOCKS` invocations.
    pub release_all_calls: u64,
}

impl LockStats {
    /// Deltas between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &LockStats) -> LockStats {
        LockStats {
            acquired: self.acquired - earlier.acquired,
            failed: self.failed - earlier.failed,
            release_all_calls: self.release_all_calls - earlier.release_all_calls,
        }
    }

    /// Fraction of trylock attempts that failed, in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        let total = self.acquired + self.failed;
        if total == 0 {
            0.0
        } else {
            self.failed as f64 / total as f64
        }
    }
}

/// A fixed-size table of never-blocking CAS locks.
pub struct LockRegistry {
    locks: Box<[CachePadded<AtomicBool>]>,
    acquired: CachePadded<AtomicU64>,
    failed: CachePadded<AtomicU64>,
    release_all_calls: CachePadded<AtomicU64>,
}

impl LockRegistry {
    /// A registry of `n` locks, all initially free.
    pub fn new(n: usize) -> Self {
        assert!(n <= LockId::MAX as usize, "too many locks for LockId");
        LockRegistry {
            locks: (0..n).map(|_| CachePadded::new(AtomicBool::new(false))).collect(),
            acquired: CachePadded::new(AtomicU64::new(0)),
            failed: CachePadded::new(AtomicU64::new(0)),
            release_all_calls: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Number of locks in the registry.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True if the registry has no locks.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Racy peek: is `id` currently held by *someone*?
    ///
    /// Used by the §4.5.3 spawn-avoidance optimization ("if the node has one
    /// or more locks held by others, the new task does not need to be
    /// spawned"); the protocol tolerates staleness.
    pub fn is_locked(&self, id: LockId) -> bool {
        self.locks[id as usize].load(Ordering::Relaxed)
    }

    /// Create a per-task lock handle.
    pub fn locker(&self) -> Locker<'_> {
        Locker {
            registry: self,
            held: Vec::with_capacity(8),
        }
    }

    /// Current acquisition statistics.
    pub fn stats(&self) -> LockStats {
        LockStats {
            acquired: self.acquired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            release_all_calls: self.release_all_calls.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn try_acquire_raw(&self, id: LockId) -> bool {
        let ok = self.locks[id as usize]
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            self.acquired.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    #[inline]
    fn unlock_raw(&self, id: LockId) {
        debug_assert!(self.locks[id as usize].load(Ordering::Relaxed), "unlocking a free lock");
        self.locks[id as usize].store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for LockRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockRegistry")
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Per-task lock handle: the Rust rendering of HJlib's ambient
/// `TRYLOCK` / `RELEASEALLLOCKS` pair.
///
/// Dropping a `Locker` releases every lock it still holds, so a panicking
/// task cannot leak locks.
pub struct Locker<'r> {
    registry: &'r LockRegistry,
    held: Vec<LockId>,
}

impl<'r> Locker<'r> {
    /// `TRYLOCK(id)`: non-blocking acquisition attempt. On success the lock
    /// joins this task's held set.
    ///
    /// # Panics
    /// In debug builds, if this locker already holds `id` (re-entrant
    /// acquisition is a bug in the caller's lock ordering).
    #[inline]
    pub fn try_lock(&mut self, id: LockId) -> bool {
        debug_assert!(!self.holds(id), "re-entrant try_lock of {id}");
        if self.registry.try_acquire_raw(id) {
            self.held.push(id);
            true
        } else {
            false
        }
    }

    /// Acquire every lock in `ids` in the order given, which **must** be
    /// ascending (debug-asserted) — the paper's livelock-avoidance rule.
    ///
    /// On the first failure, releases everything acquired in this call *and
    /// everything else this locker held* (the paper's `RELEASEALLLOCKS()`
    /// failure path) and returns `Err(failed_id)`.
    pub fn try_lock_all(&mut self, ids: impl IntoIterator<Item = LockId>) -> Result<(), LockId> {
        let mut prev: Option<LockId> = None;
        for id in ids {
            if let Some(p) = prev {
                debug_assert!(id > p, "try_lock_all ids must be strictly ascending");
            }
            prev = Some(id);
            if !self.try_lock(id) {
                self.release_all();
                return Err(id);
            }
        }
        Ok(())
    }

    /// Release one held lock (used by §4.5.1's early release of a node's
    /// own input-port locks while fanout locks stay held).
    ///
    /// # Panics
    /// If this locker does not hold `id`.
    pub fn release(&mut self, id: LockId) {
        let pos = self
            .held
            .iter()
            .position(|&h| h == id)
            .expect("releasing a lock this task does not hold");
        self.held.swap_remove(pos);
        self.registry.unlock_raw(id);
    }

    /// `RELEASEALLLOCKS()`: release every lock this task holds.
    pub fn release_all(&mut self) {
        self.registry.release_all_calls.fetch_add(1, Ordering::Relaxed);
        for id in self.held.drain(..) {
            self.registry.unlock_raw(id);
        }
    }

    /// Does this locker hold `id`?
    pub fn holds(&self, id: LockId) -> bool {
        self.held.contains(&id)
    }

    /// The currently held lock IDs (unordered).
    pub fn held(&self) -> &[LockId] {
        &self.held
    }
}

impl Drop for Locker<'_> {
    fn drop(&mut self) {
        if !self.held.is_empty() {
            self.release_all();
        }
    }
}

impl std::fmt::Debug for Locker<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Locker").field("held", &self.held).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HjRuntime;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn try_lock_succeeds_then_fails() {
        let reg = LockRegistry::new(4);
        let mut a = reg.locker();
        let mut b = reg.locker();
        assert!(a.try_lock(2));
        assert!(!b.try_lock(2));
        assert!(a.holds(2));
        assert!(!b.holds(2));
        a.release_all();
        assert!(b.try_lock(2));
    }

    #[test]
    fn try_lock_all_releases_everything_on_failure() {
        let reg = LockRegistry::new(8);
        let mut a = reg.locker();
        let mut b = reg.locker();
        assert!(b.try_lock(5));
        // a grabs 1 and 3, then fails on 5 → must end up holding nothing.
        assert_eq!(a.try_lock_all([1, 3, 5]), Err(5));
        assert!(a.held().is_empty());
        assert!(!reg.is_locked(1));
        assert!(!reg.is_locked(3));
        assert!(reg.is_locked(5));
    }

    #[test]
    fn release_single_lock_keeps_others() {
        let reg = LockRegistry::new(8);
        let mut a = reg.locker();
        assert_eq!(a.try_lock_all([0, 1, 2]), Ok(()));
        a.release(1);
        assert!(a.holds(0) && !a.holds(1) && a.holds(2));
        assert!(!reg.is_locked(1));
        assert!(reg.is_locked(0) && reg.is_locked(2));
    }

    #[test]
    fn drop_releases_held_locks() {
        let reg = LockRegistry::new(4);
        {
            let mut a = reg.locker();
            assert!(a.try_lock(0));
            assert!(a.try_lock(1));
        }
        assert!(!reg.is_locked(0));
        assert!(!reg.is_locked(1));
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn releasing_unheld_lock_panics() {
        let reg = LockRegistry::new(4);
        let mut a = reg.locker();
        a.release(3);
    }

    #[test]
    fn stats_track_acquisitions() {
        let reg = LockRegistry::new(4);
        let mut a = reg.locker();
        let mut b = reg.locker();
        assert!(a.try_lock(0));
        assert!(!b.try_lock(0));
        a.release_all();
        let s = reg.stats();
        assert_eq!(s.acquired, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.release_all_calls, 1);
        assert!((s.failure_rate() - 0.5).abs() < 1e-12);
    }

    /// Locks provide real mutual exclusion under parallel contention.
    #[test]
    fn mutual_exclusion_under_contention() {
        let rt = HjRuntime::new(4);
        let reg = LockRegistry::new(1);
        let inside = AtomicUsize::new(0);
        let max_inside = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        rt.finish(|scope| {
            for _ in 0..64 {
                scope.spawn(|| {
                    let mut locker = reg.locker();
                    // Spin with trylock (never blocks), as the DES engine does.
                    loop {
                        if locker.try_lock(0) {
                            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                            max_inside.fetch_max(now, Ordering::SeqCst);
                            inside.fetch_sub(1, Ordering::SeqCst);
                            locker.release_all();
                            done.fetch_add(1, Ordering::SeqCst);
                            break;
                        }
                        std::hint::spin_loop();
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 64);
        assert_eq!(max_inside.load(Ordering::SeqCst), 1);
        assert!(!reg.is_locked(0));
    }

    /// Ascending-order acquisition guarantees global progress: with several
    /// tasks contending for overlapping lock sets, all of them eventually
    /// complete (the paper's livelock-avoidance argument).
    #[test]
    fn sorted_acquisition_makes_progress() {
        let rt = HjRuntime::new(4);
        let reg = LockRegistry::new(16);
        let done = AtomicUsize::new(0);
        rt.finish(|scope| {
            for t in 0..32u32 {
                let reg = &reg;
                let done = &done;
                scope.spawn(move || {
                    // Overlapping windows of 4 locks each.
                    let base = t % 12;
                    let ids = [base, base + 1, base + 2, base + 3];
                    let mut locker = reg.locker();
                    loop {
                        if locker.try_lock_all(ids.iter().copied()).is_ok() {
                            locker.release_all();
                            done.fetch_add(1, Ordering::SeqCst);
                            break;
                        }
                        std::hint::spin_loop();
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 32);
        for id in 0..16 {
            assert!(!reg.is_locked(id));
        }
    }
}
