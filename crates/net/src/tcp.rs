//! TCP fabric: the cross-process implementation of [`Link`].
//!
//! ## Topology
//!
//! Every process runs one contiguous block of shards (see
//! [`shards_of_process`]) and keeps exactly one multiplexed TCP
//! connection per peer process: process `i` dials every `j < i` and
//! accepts from every `j > i`, so each pair connects exactly once. Both
//! sides exchange a `Hello` frame carrying their process id, shard
//! count, and a digest of the run configuration; any mismatch aborts
//! setup instead of desynchronizing the simulation mid-run.
//!
//! ## Threads per peer
//!
//! * a **reader** decodes frames off the socket. Batch messages are
//!   routed by destination node into the owning local shard's bounded
//!   inbox with a *blocking* send — a full inbox exerts backpressure on
//!   the socket, exactly as a full mailbox does in-process. Terminal
//!   NULLs are counted per peer for the distributed termination check.
//!   Control frames go to the fabric-wide control channel. An EOF or a
//!   decode error before shutdown was announced records a structured
//!   [`SimError::Transport`] on the [`RunCtl`] (cancelling the run
//!   promptly) and emits [`ControlEvent::PeerLost`].
//! * a **writer** drains a bounded queue of pre-encoded frames with
//!   `write_all`. The queue bound is the outbox cap: when it is full,
//!   [`TcpEndpoint::try_send`] reports `Full` and the engine falls into
//!   its usual drain-own-inbox retry loop, so the deadlock-avoidance
//!   argument is unchanged from the in-process fabric.
//!
//! ## Batching
//!
//! Each endpoint coalesces outbound messages per peer and emits one
//! `Batch` frame when `batch_msgs` accumulate. NULL messages force an
//! immediate flush regardless of batch fill: a NULL is a clock promise
//! another shard may be stalled waiting on, so it is never held back
//! for throughput. The engine additionally flushes before idling and at
//! termination, which bounds how long any payload event can sit in a
//! batch buffer.
//!
//! FIFO per cut edge is preserved end to end: a message takes exactly
//! one path (pending buffer → writer queue → socket → reader → inbox),
//! every stage of which is order-preserving, and each input port has a
//! single driving node in a single source shard.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use fault::{FaultPlan, LinkDirection, LinkSnapshot, RunCtl, SimError};
use shard::comm::{ShardMsg, NULL_TS};
use shard::partition::{Partition, ShardId};

use crate::retry::BackoffSchedule;
use crate::transport::{
    FabricProbe, Link, LinkClosed, LinkStats, RecvTimeoutError, TryRecvError, TrySendError,
};
use crate::wire::{self, Frame};

/// Default number of coalesced messages that triggers a batch flush.
pub const DEFAULT_BATCH_MSGS: usize = 64;

/// Default cap on encoded frames queued toward one peer's writer.
pub const DEFAULT_OUTBOX_FRAMES: usize = 1024;

/// Everything a process needs to join the fabric.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This process's rank in `addrs`.
    pub process: usize,
    /// Listen address of every process, indexed by rank.
    pub addrs: Vec<SocketAddr>,
    /// Total shard count across all processes.
    pub num_shards: usize,
    /// Capacity of each local shard inbox (messages).
    pub mailbox_capacity: usize,
    /// Coalesce up to this many messages per peer before framing.
    pub batch_msgs: usize,
    /// Cap on encoded frames queued toward one peer.
    pub max_outbox_frames: usize,
    /// Digest of the run configuration; peers must agree.
    pub digest: u64,
    /// How long to keep redialing / waiting for peers during setup.
    pub connect_deadline: Duration,
    /// Session epoch carried in the handshake: the checkpoint epoch a
    /// restarted rank resumed from, 0 for a fresh run. Peers whose
    /// session epochs differ refuse to connect, which fences off stale
    /// writers from a pre-restart incarnation of a rank.
    pub session_epoch: u64,
    /// Seed for the deterministic dial-retry backoff jitter (normally
    /// the run's `FaultPlan` seed).
    pub retry_seed: u64,
    /// Metrics sink for `sim_reconnects_total`; use `Recorder::off()`
    /// when observability is disabled.
    pub recorder: obs::Recorder,
    /// Fault plan consulted by the per-peer readers (`drop_link`).
    pub fault: Arc<FaultPlan>,
    /// Advertise [`wire::FEATURE_TELEMETRY`] in the handshake and accept
    /// the telemetry frame kinds. When false the handshake bytes and
    /// every frame on the wire are identical to the pre-telemetry
    /// protocol, regardless of what peers advertise.
    pub telemetry: bool,
}

impl TcpConfig {
    /// Number of processes in the fabric.
    pub fn num_processes(&self) -> usize {
        self.addrs.len()
    }
}

/// The contiguous block of shards process `process` owns: shards are
/// dealt out in balanced blocks, earlier processes taking the remainder.
pub fn shards_of_process(num_shards: usize, num_processes: usize, process: usize) -> Range<usize> {
    assert!(process < num_processes, "process rank out of range");
    assert!(
        num_processes <= num_shards,
        "more processes than shards: {num_processes} > {num_shards}"
    );
    let base = num_shards / num_processes;
    let rem = num_shards % num_processes;
    let start = process * base + process.min(rem);
    let len = base + usize::from(process < rem);
    start..start + len
}

/// Inverse of [`shards_of_process`]: which process owns `shard`.
pub fn process_of_shard(num_shards: usize, num_processes: usize, shard: ShardId) -> usize {
    assert!(shard < num_shards, "shard id out of range");
    let base = num_shards / num_processes;
    let rem = num_shards % num_processes;
    let boundary = rem * (base + 1);
    if shard < boundary {
        shard / (base + 1)
    } else {
        rem + (shard - boundary) / base
    }
}

/// Per-peer counters shared with the reader/writer threads and the
/// probe. Deliberately does NOT hold the writer queue sender: if the
/// threads kept a sender alive, the writer could never observe the
/// fabric being dropped and would block forever.
struct PeerCounters {
    peer: usize,
    /// Encoded frames enqueued but not yet written to the socket.
    outq_frames: AtomicUsize,
    /// Bytes in those frames.
    outq_bytes: AtomicUsize,
    /// Messages coalesced in endpoint pending buffers, not yet framed.
    pending_msgs: AtomicUsize,
    /// Terminal NULLs received from this peer (termination accounting).
    terminal_nulls_rx: AtomicUsize,
    /// Cleared when the link is observed dead in either direction.
    alive: AtomicBool,
    /// Feature bits the peer's `Hello` advertised (fixed at handshake).
    features: u64,
}

/// What endpoints and the control plane hold per peer: the shared
/// counters plus a sender into the writer queue. All handles dropping
/// is what lets the writer thread exit and close the socket.
#[derive(Clone)]
struct PeerHandle {
    counters: Arc<PeerCounters>,
    out_tx: Sender<Vec<u8>>,
}

fn transport_err(peer: Option<usize>, context: impl Into<String>) -> SimError {
    SimError::transport(peer, context)
}

/// A failure attributable to one direction of a live link, carrying the
/// last barrier epoch observed on it (recovery picks its restore point
/// from this).
fn link_err(
    peer: usize,
    direction: LinkDirection,
    epoch: Option<u64>,
    context: impl Into<String>,
) -> SimError {
    SimError::Transport {
        peer: Some(peer),
        direction: Some(direction),
        epoch,
        context: context.into(),
    }
}

enum FlushResult {
    Flushed,
    Full,
    Closed,
}

/// Fleet-unique id for one batch frame, used to pair the sender's
/// `WireSpan` Begin with the receiver's End across rank boundaries:
/// both ends can compute it from what they already know (the frame
/// carries `src` shard and `seq`; the receiver is `dst_rank`). Batch
/// seqs are per (source endpoint, destination peer), so folding the
/// destination rank in keeps ids from colliding when one shard feeds
/// several peers.
pub fn wire_span_id(src_shard: u64, dst_rank: u64, seq: u64) -> u64 {
    (src_shard << 40) | ((dst_rank & 0xff) << 32) | (seq & 0xffff_ffff)
}

/// One local shard's handle on the TCP fabric. Local-destination
/// traffic takes in-process bounded channels and never touches a
/// socket; remote traffic is coalesced per peer process.
pub struct TcpEndpoint {
    shard: ShardId,
    num_shards: usize,
    num_processes: usize,
    batch_msgs: usize,
    rx: Receiver<ShardMsg>,
    /// Senders to local shard inboxes, indexed by shard id (None for
    /// shards owned by other processes).
    local_txs: Vec<Option<Sender<ShardMsg>>>,
    /// Per peer process (None at our own rank).
    peers: Vec<Option<PeerHandle>>,
    /// Outbound coalescing buffer per peer process: (destination shard,
    /// message) pairs, framed together.
    pending: Vec<Vec<(u64, ShardMsg)>>,
    /// Last batch sequence number sent to each peer (1-based on the
    /// wire; receivers drop replays whose seq is not beyond the last
    /// applied).
    seqs: Vec<u64>,
    stats: LinkStats,
    /// Observability hook for wire flushes; inert unless installed via
    /// [`TcpEndpoint::set_tracer`].
    tracer: obs::Tracer,
    /// Our side of the telemetry negotiation ([`TcpConfig::telemetry`]);
    /// `WireSpan` begins are emitted only toward peers that advertised
    /// the feature too.
    telemetry: bool,
}

impl TcpEndpoint {
    /// Install a trace hook: every frame handed to a writer queue emits
    /// a `NetFlush` instant (`a` = peer rank, `b` = frame bytes).
    pub fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }

    fn flush_peer(&mut self, peer: usize) -> FlushResult {
        if self.pending[peer].is_empty() {
            return FlushResult::Flushed;
        }
        let ps = self.peers[peer].as_ref().expect("pending only for real peers");
        if !ps.counters.alive.load(Ordering::Acquire) {
            return FlushResult::Closed;
        }
        // ShardMsg is Copy; cloning the batch is cheaper than an
        // encode-from-owned dance that must restore it on Full. The seq
        // only advances on successful enqueue, so a Full retry re-frames
        // with the same number.
        let bytes = wire::encode_frame(&Frame::Batch {
            src: self.shard as u64,
            seq: self.seqs[peer] + 1,
            msgs: self.pending[peer].clone(),
        });
        let nbytes = bytes.len();
        ps.counters.outq_frames.fetch_add(1, Ordering::Relaxed);
        ps.counters.outq_bytes.fetch_add(nbytes, Ordering::Relaxed);
        match ps.out_tx.try_send(bytes) {
            Ok(()) => {
                self.seqs[peer] += 1;
                let n = self.pending[peer].len();
                self.pending[peer].clear();
                ps.counters.pending_msgs.fetch_sub(n, Ordering::Relaxed);
                self.stats.frames_sent += 1;
                self.stats.bytes_sent += nbytes as u64;
                self.stats.msgs_batched += n as u64;
                self.tracer
                    .instant(obs::SpanKind::NetFlush, peer as u64, nbytes as u64);
                if self.telemetry && ps.counters.features & wire::FEATURE_TELEMETRY != 0 {
                    // Open the cross-rank wire span; the receiving
                    // rank's reader closes it when it decodes this
                    // frame, letting `pair_spans` stitch the two rings
                    // together after clock-offset correction.
                    self.tracer.begin(
                        obs::SpanKind::WireSpan,
                        wire_span_id(self.shard as u64, peer as u64, self.seqs[peer]),
                    );
                }
                FlushResult::Flushed
            }
            Err(crossbeam::channel::TrySendError::Full(_)) => {
                ps.counters.outq_frames.fetch_sub(1, Ordering::Relaxed);
                ps.counters.outq_bytes.fetch_sub(nbytes, Ordering::Relaxed);
                FlushResult::Full
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                ps.counters.outq_frames.fetch_sub(1, Ordering::Relaxed);
                ps.counters.outq_bytes.fetch_sub(nbytes, Ordering::Relaxed);
                ps.counters.alive.store(false, Ordering::Release);
                FlushResult::Closed
            }
        }
    }
}

impl Link for TcpEndpoint {
    fn shard(&self) -> ShardId {
        self.shard
    }

    fn try_send(&mut self, dst: ShardId, msg: ShardMsg) -> Result<(), TrySendError> {
        if let Some(tx) = &self.local_txs[dst] {
            return match tx.try_send(msg) {
                Ok(()) => Ok(()),
                Err(crossbeam::channel::TrySendError::Full(m)) => Err(TrySendError::Full(m)),
                Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                    Err(TrySendError::Disconnected)
                }
            };
        }
        let peer = process_of_shard(self.num_shards, self.num_processes, dst);
        let ps = self.peers[peer]
            .as_ref()
            .expect("remote shard maps to a peer process");
        if !ps.counters.alive.load(Ordering::Acquire) {
            return Err(TrySendError::Disconnected);
        }
        // NULLs are clock promises a downstream shard may be blocked
        // on, and control messages (barriers, retirement) gate peers at
        // a barrier wait with no payload traffic to piggyback on: flush
        // both immediately instead of batching.
        let urgent = !matches!(msg, ShardMsg::Event { .. });
        self.pending[peer].push((dst as u64, msg));
        ps.counters.pending_msgs.fetch_add(1, Ordering::Relaxed);
        let filled = self.pending[peer].len();
        if filled < self.batch_msgs && !urgent {
            return Ok(());
        }
        match self.flush_peer(peer) {
            FlushResult::Flushed => {
                if urgent && filled < self.batch_msgs {
                    self.stats.forced_flushes += 1;
                }
                Ok(())
            }
            FlushResult::Full => {
                // Hand the triggering message back (it was last in) so
                // the caller retries it after draining its own inbox.
                let (_, m) = self.pending[peer].pop().expect("just pushed");
                let ps = self.peers[peer].as_ref().expect("checked above");
                ps.counters.pending_msgs.fetch_sub(1, Ordering::Relaxed);
                Err(TrySendError::Full(m))
            }
            FlushResult::Closed => Err(TrySendError::Disconnected),
        }
    }

    fn try_recv(&mut self) -> Result<ShardMsg, TryRecvError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(m),
            Err(crossbeam::channel::TryRecvError::Empty) => Err(TryRecvError::Empty),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<ShardMsg, RecvTimeoutError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(RecvTimeoutError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(RecvTimeoutError::Disconnected)
            }
        }
    }

    fn inbox_len(&self) -> usize {
        self.rx.len()
    }

    fn flush(&mut self) -> Result<bool, LinkClosed> {
        let mut all_clear = true;
        for peer in 0..self.peers.len() {
            if self.peers[peer].is_none() {
                continue;
            }
            match self.flush_peer(peer) {
                FlushResult::Flushed => {}
                FlushResult::Full => all_clear = false,
                FlushResult::Closed => return Err(LinkClosed),
            }
        }
        if all_clear {
            // Pending buffers are empty; report clear only once the
            // writer queues have drained to the sockets too.
            for ps in self.peers.iter().flatten() {
                if ps.counters.outq_frames.load(Ordering::Relaxed) > 0 {
                    all_clear = false;
                    break;
                }
            }
        }
        Ok(all_clear)
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

/// Control-plane traffic surfaced to the engine layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlEvent {
    /// A worker process reported all of its shards finished.
    Done { process: usize },
    /// The coordinator announced fabric-wide teardown.
    Shutdown,
    /// A worker delivered one shard's encoded outcome.
    Outcome { shard: ShardId, blob: Vec<u8> },
    /// A peer connection died before shutdown was announced.
    PeerLost { peer: usize },
    /// A clock-offset probe arrived from `peer`; `t_rx_ns` is our
    /// recorder clock when the reader saw it. Answer with
    /// [`TcpControl::send_clock_pong`], echoing both stamps — the
    /// responder's processing delay cancels out of the NTP arithmetic,
    /// so replying from a polling loop costs no accuracy.
    ClockPing { peer: usize, echo_ns: u64, t_rx_ns: u64 },
    /// A reply to our [`TcpControl::send_clock_ping`]: `echo_ns` is our
    /// original send stamp, `t_rx_ns`/`t_tx_ns` the peer's clock on
    /// receipt/reply, and `t_recv_ns` our recorder clock when the pong
    /// arrived — the four NTP timestamps.
    ClockPong {
        peer: usize,
        echo_ns: u64,
        t_rx_ns: u64,
        t_tx_ns: u64,
        t_recv_ns: u64,
    },
    /// A rank-tagged telemetry snapshot (opaque `obs::fleet` blob).
    Telemetry { peer: usize, seq: u64, blob: Vec<u8> },
}

/// Control-plane handle: receive [`ControlEvent`]s, send termination
/// frames, and read the per-peer terminal-NULL counters.
pub struct TcpControl {
    process: usize,
    events: Receiver<ControlEvent>,
    peers: Vec<Option<PeerHandle>>,
    shutdown: Arc<AtomicBool>,
    /// Feature bits we advertised in our own `Hello`.
    features: u64,
}

impl TcpControl {
    /// Wait up to `timeout` for the next control event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<ControlEvent> {
        match self.events.recv_timeout(timeout) {
            Ok(ev) => Some(ev),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                // Every reader thread is gone: nothing will ever arrive.
                // Sleep out the timeout so a caller polling in a loop
                // paces itself while the run's error/deadline handling
                // catches up, instead of spinning hot.
                std::thread::sleep(timeout);
                None
            }
        }
    }

    fn send_frame(&self, to: usize, frame: &Frame) -> Result<(), SimError> {
        let ps = self.peers[to]
            .as_ref()
            .ok_or_else(|| transport_err(Some(to), "no link to own process"))?;
        if !ps.counters.alive.load(Ordering::Acquire) {
            return Err(transport_err(Some(to), "peer link is down"));
        }
        let bytes = wire::encode_frame(frame);
        let nbytes = bytes.len();
        ps.counters.outq_frames.fetch_add(1, Ordering::Relaxed);
        ps.counters.outq_bytes.fetch_add(nbytes, Ordering::Relaxed);
        ps.out_tx.send(bytes).map_err(|_| {
            ps.counters.outq_frames.fetch_sub(1, Ordering::Relaxed);
            ps.counters.outq_bytes.fetch_sub(nbytes, Ordering::Relaxed);
            transport_err(Some(to), "writer queue disconnected")
        })
    }

    /// Worker → coordinator: all local shards finished cleanly.
    pub fn send_done(&self, to: usize) -> Result<(), SimError> {
        self.send_frame(
            to,
            &Frame::Done {
                process: self.process as u64,
            },
        )
    }

    /// Worker → coordinator: one shard's encoded outcome blob.
    pub fn send_outcome(&self, to: usize, shard: ShardId, blob: Vec<u8>) -> Result<(), SimError> {
        self.send_frame(
            to,
            &Frame::Outcome {
                shard: shard as u64,
                blob,
            },
        )
    }

    /// Coordinator → everyone: tear down. The local shutdown flag is
    /// raised first so the resulting EOFs are treated as expected.
    /// Best-effort toward peers that already died.
    pub fn broadcast_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for peer in 0..self.peers.len() {
            if self.peers[peer].is_some() {
                let _ = self.send_frame(peer, &Frame::Shutdown);
            }
        }
    }

    /// Raise the local shutdown flag without sending anything (workers
    /// call this once they have decided to exit, so teardown EOFs from
    /// peers are not misread as failures).
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Terminal NULLs received from `peer` so far.
    pub fn terminal_nulls_from(&self, peer: usize) -> usize {
        self.peers[peer]
            .as_ref()
            .map_or(0, |ps| ps.counters.terminal_nulls_rx.load(Ordering::Acquire))
    }

    /// Whether the link to `peer` is still believed healthy.
    pub fn peer_alive(&self, peer: usize) -> bool {
        self.peers[peer]
            .as_ref()
            .is_some_and(|ps| ps.counters.alive.load(Ordering::Acquire))
    }

    /// Whether telemetry frames may flow to `peer`: both sides must
    /// have advertised [`wire::FEATURE_TELEMETRY`] in their hellos.
    pub fn peer_telemetry(&self, peer: usize) -> bool {
        self.features & wire::FEATURE_TELEMETRY != 0
            && self.peers[peer]
                .as_ref()
                .is_some_and(|ps| ps.counters.features & wire::FEATURE_TELEMETRY != 0)
    }

    /// Best-effort enqueue of a telemetry-class frame. Telemetry must
    /// never perturb the simulation, so unlike [`Self::send_frame`] this
    /// drops the frame (reporting whether it was enqueued) when the
    /// writer queue is full or the peer never negotiated the feature.
    fn send_frame_lossy(&self, to: usize, frame: &Frame) -> bool {
        if !self.peer_telemetry(to) {
            return false;
        }
        let Some(ps) = self.peers[to].as_ref() else {
            return false;
        };
        if !ps.counters.alive.load(Ordering::Acquire) {
            return false;
        }
        let bytes = wire::encode_frame(frame);
        let nbytes = bytes.len();
        ps.counters.outq_frames.fetch_add(1, Ordering::Relaxed);
        ps.counters.outq_bytes.fetch_add(nbytes, Ordering::Relaxed);
        match ps.out_tx.try_send(bytes) {
            Ok(()) => true,
            Err(_) => {
                ps.counters.outq_frames.fetch_sub(1, Ordering::Relaxed);
                ps.counters.outq_bytes.fetch_sub(nbytes, Ordering::Relaxed);
                false
            }
        }
    }

    /// Launch a clock-offset probe toward `peer`; `t_send_ns` is the
    /// caller's recorder clock, echoed back in the eventual
    /// [`ControlEvent::ClockPong`]. Returns whether the ping was
    /// enqueued (false: feature not negotiated, link down/full).
    pub fn send_clock_ping(&self, peer: usize, t_send_ns: u64) -> bool {
        self.send_frame_lossy(
            peer,
            &Frame::ClockPing {
                from: self.process as u64,
                t_send_ns,
            },
        )
    }

    /// Answer a [`ControlEvent::ClockPing`]: echo its stamps plus our
    /// recorder clock `t_tx_ns` at the moment of this call.
    pub fn send_clock_pong(&self, peer: usize, echo_ns: u64, t_rx_ns: u64, t_tx_ns: u64) -> bool {
        self.send_frame_lossy(
            peer,
            &Frame::ClockPong {
                from: self.process as u64,
                echo_ns,
                t_rx_ns,
                t_tx_ns,
            },
        )
    }

    /// Ship an opaque `obs::fleet` telemetry blob toward `peer`
    /// (normally the coordinator). Lossy by design: a full writer queue
    /// drops the snapshot rather than backpressuring the simulation.
    pub fn send_telemetry(&self, peer: usize, seq: u64, blob: Vec<u8>) -> bool {
        self.send_frame_lossy(
            peer,
            &Frame::Telemetry {
                from: self.process as u64,
                seq,
                blob,
            },
        )
    }
}

/// Watchdog probe over the TCP fabric: local inbox depths plus per-peer
/// outbox/writer-queue depths.
#[derive(Clone)]
pub struct TcpProbe {
    inbox_probes: Vec<Sender<ShardMsg>>,
    peers: Vec<Option<Arc<PeerCounters>>>,
}

impl FabricProbe for TcpProbe {
    fn inbox_depths(&self) -> Vec<usize> {
        self.inbox_probes.iter().map(|p| p.len()).collect()
    }

    fn link_depths(&self) -> Vec<LinkSnapshot> {
        self.peers
            .iter()
            .flatten()
            .map(|ps| LinkSnapshot {
                peer: ps.peer,
                outbox_msgs: ps.pending_msgs.load(Ordering::Relaxed),
                outbox_bytes: ps.outq_bytes.load(Ordering::Relaxed),
                inflight_frames: ps.outq_frames.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// The assembled fabric for one process.
pub struct TcpFabric {
    /// One link per local shard, in `shards_of_process` order.
    pub endpoints: Vec<TcpEndpoint>,
    /// Control plane (termination protocol, peer health).
    pub control: TcpControl,
    /// Watchdog probe.
    pub probe: TcpProbe,
}

fn dial(
    addr: SocketAddr,
    peer: usize,
    deadline: Instant,
    cfg: &TcpConfig,
) -> Result<TcpStream, SimError> {
    let mut backoff = BackoffSchedule::new(cfg.retry_seed, peer as u64);
    let reconnects = cfg
        .recorder
        .counter("sim_reconnects_total", &[("peer", &peer.to_string())]);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(transport_err(
                        Some(peer),
                        format!(
                            "dial {addr} failed after {} attempts: {e}",
                            backoff.attempts() + 1
                        ),
                    ));
                }
                reconnects.inc();
                std::thread::sleep(backoff.next_delay());
            }
        }
    }
}

fn local_features(cfg: &TcpConfig) -> u64 {
    if cfg.telemetry {
        wire::FEATURE_TELEMETRY
    } else {
        0
    }
}

/// Exchange hellos; returns the peer's rank and advertised features.
fn handshake(
    stream: &mut TcpStream,
    cfg: &TcpConfig,
    expected_peer: Option<usize>,
) -> Result<(usize, u64), SimError> {
    let hello = wire::encode_frame(&Frame::Hello {
        process: cfg.process as u64,
        num_shards: cfg.num_shards as u64,
        digest: cfg.digest,
        session_epoch: cfg.session_epoch,
        features: local_features(cfg),
    });
    stream
        .write_all(&hello)
        .map_err(|e| transport_err(expected_peer, format!("hello write failed: {e}")))?;
    let frame = wire::read_frame(stream)
        .map_err(|e| transport_err(expected_peer, format!("hello read failed: {e}")))?
        .ok_or_else(|| transport_err(expected_peer, "peer closed during handshake"))?;
    let Frame::Hello {
        process,
        num_shards,
        digest,
        session_epoch,
        features,
    } = frame
    else {
        return Err(transport_err(expected_peer, "expected hello frame"));
    };
    let process = process as usize;
    if let Some(expected) = expected_peer {
        if process != expected {
            return Err(transport_err(
                Some(expected),
                format!("peer identified as process {process}"),
            ));
        }
    }
    if num_shards != cfg.num_shards as u64 {
        return Err(transport_err(
            Some(process),
            format!(
                "shard count mismatch: peer has {num_shards}, we have {}",
                cfg.num_shards
            ),
        ));
    }
    if digest != cfg.digest {
        return Err(transport_err(
            Some(process),
            format!(
                "configuration digest mismatch: peer {digest:#x}, ours {:#x}",
                cfg.digest
            ),
        ));
    }
    if session_epoch != cfg.session_epoch {
        // A peer from a previous incarnation of the run (or one that
        // restored from a different checkpoint epoch) must not be
        // allowed to feed us stale traffic.
        return Err(SimError::Transport {
            peer: Some(process),
            direction: None,
            epoch: Some(cfg.session_epoch),
            context: format!(
                "session epoch mismatch: peer resumed from {session_epoch}, we from {}",
                cfg.session_epoch
            ),
        });
    }
    Ok((process, features))
}

#[allow(clippy::too_many_arguments)]
fn reader_loop(
    mut stream: TcpStream,
    peer: usize,
    self_process: usize,
    partition: Arc<Partition>,
    local: Range<usize>,
    inbox_txs: Vec<Sender<ShardMsg>>,
    events: Sender<ControlEvent>,
    counters: Arc<PeerCounters>,
    ctl: Arc<RunCtl>,
    shutdown: Arc<AtomicBool>,
    fault: Arc<FaultPlan>,
    recorder: obs::Recorder,
    tracer: obs::Tracer,
    accept_telemetry: bool,
) {
    let num_shards = partition.num_shards();
    // Last applied batch seq per source shard on the peer (each of the
    // peer's endpoints runs its own 1-based counter over this socket).
    // A frame replayed after a reconnect arrives with a seq we have
    // already applied and is dropped whole.
    let mut last_seqs = vec![0u64; num_shards];
    // Highest barrier epoch observed in control traffic from this peer:
    // the link's "last-known epoch" for error attribution.
    let mut last_epoch: Option<u64> = None;
    let fail = |context: String, epoch: Option<u64>| {
        if !shutdown.load(Ordering::Acquire) {
            counters.alive.store(false, Ordering::Release);
            ctl.record_error(link_err(peer, LinkDirection::Inbound, epoch, context));
            let _ = events.send(ControlEvent::PeerLost { peer });
        }
    };
    loop {
        let frame = wire::read_frame(&mut stream);
        if fault.is_active() && fault.should_drop_link(peer as u64) {
            fail("fault injection: link dropped".into(), last_epoch);
            return;
        }
        match frame {
            Ok(Some(Frame::Batch { src, seq, msgs })) => {
                let Ok(src) = usize::try_from(src) else {
                    fail(format!("batch src {src} out of range"), last_epoch);
                    return;
                };
                if src >= num_shards {
                    fail(format!("batch src shard {src} out of range"), last_epoch);
                    return;
                }
                if seq <= last_seqs[src] {
                    // Duplicate delivery (replay after reconnect): the
                    // whole frame was already applied.
                    continue;
                }
                last_seqs[src] = seq;
                // Close the sender's cross-rank wire span (no-op tracer
                // unless telemetry was negotiated and tracing is on).
                tracer.end(
                    obs::SpanKind::WireSpan,
                    wire_span_id(src as u64, self_process as u64, seq),
                    msgs.len() as u64,
                );
                for (dst, msg) in msgs {
                    if matches!(msg, ShardMsg::Null { time: NULL_TS, .. }) {
                        counters.terminal_nulls_rx.fetch_add(1, Ordering::Release);
                    }
                    if let ShardMsg::BarrierRequest { epoch, .. }
                    | ShardMsg::Barrier { epoch, .. }
                    | ShardMsg::Transferred { epoch, .. } = msg
                    {
                        last_epoch = Some(last_epoch.map_or(epoch, |e| e.max(epoch)));
                    }
                    let dst = dst as usize;
                    // Payload traffic must agree with the partition map;
                    // control messages address the shard directly.
                    if let Some(target) = msg.target() {
                        if partition.shard_of(target.node) != dst {
                            fail(
                                format!("message for node {} misrouted to shard {dst}", target.node.0),
                                last_epoch,
                            );
                            return;
                        }
                    }
                    if !local.contains(&dst) {
                        fail(format!("misrouted message for shard {dst}"), last_epoch);
                        return;
                    }
                    // Blocking send: a full inbox backpressures the
                    // socket. A send error means the target shard has
                    // already finished and dropped its inbox — normal
                    // when shards retire at different times (late
                    // barrier markers, retires, or terminal NULLs keep
                    // flowing). Drop the message but keep reading: this
                    // thread is also the link's failure detector, and
                    // exiting here would turn a later peer death into a
                    // silent stall instead of a transport error.
                    let _ = inbox_txs[dst - local.start].send(msg);
                }
            }
            Ok(Some(Frame::Done { process })) => {
                let _ = events.send(ControlEvent::Done {
                    process: process as usize,
                });
            }
            Ok(Some(Frame::Shutdown)) => {
                shutdown.store(true, Ordering::Release);
                let _ = events.send(ControlEvent::Shutdown);
            }
            Ok(Some(Frame::Outcome { shard, blob })) => {
                let _ = events.send(ControlEvent::Outcome {
                    shard: shard as usize,
                    blob,
                });
            }
            Ok(Some(Frame::Hello { .. })) => {
                fail("unexpected hello after handshake".into(), last_epoch);
                return;
            }
            Ok(Some(Frame::ClockPing { from, t_send_ns })) => {
                if !accept_telemetry {
                    fail("telemetry frame without negotiation".into(), last_epoch);
                    return;
                }
                // Stamp receipt here so queueing in the events channel
                // does not skew the peer's estimate; the reply is sent
                // from whatever loop drains control events. try_send:
                // telemetry must never backpressure the socket, a full
                // channel just loses this probe.
                let _ = events.try_send(ControlEvent::ClockPing {
                    peer: from as usize,
                    echo_ns: t_send_ns,
                    t_rx_ns: recorder.now_ns(),
                });
            }
            Ok(Some(Frame::ClockPong {
                from,
                echo_ns,
                t_rx_ns,
                t_tx_ns,
            })) => {
                if !accept_telemetry {
                    fail("telemetry frame without negotiation".into(), last_epoch);
                    return;
                }
                let _ = events.try_send(ControlEvent::ClockPong {
                    peer: from as usize,
                    echo_ns,
                    t_rx_ns,
                    t_tx_ns,
                    t_recv_ns: recorder.now_ns(),
                });
            }
            Ok(Some(Frame::Telemetry { from, seq, blob })) => {
                if !accept_telemetry {
                    fail("telemetry frame without negotiation".into(), last_epoch);
                    return;
                }
                let _ = events.try_send(ControlEvent::Telemetry {
                    peer: from as usize,
                    seq,
                    blob,
                });
            }
            Ok(None) => {
                fail("peer closed connection mid-run".into(), last_epoch);
                return;
            }
            Err(e) => {
                fail(format!("frame decode failed: {e}"), last_epoch);
                return;
            }
        }
    }
}

fn writer_loop(
    mut stream: TcpStream,
    out_rx: Receiver<Vec<u8>>,
    peer: usize,
    counters: Arc<PeerCounters>,
    ctl: Arc<RunCtl>,
    shutdown: Arc<AtomicBool>,
) {
    let mut dead = false;
    while let Ok(bytes) = out_rx.recv() {
        let nbytes = bytes.len();
        if !dead {
            if let Err(e) = stream.write_all(&bytes) {
                // Keep draining the queue so senders never block on a
                // dead link; just stop writing.
                dead = true;
                if !shutdown.load(Ordering::Acquire) {
                    counters.alive.store(false, Ordering::Release);
                    ctl.record_error(link_err(
                        peer,
                        LinkDirection::Outbound,
                        None,
                        format!("write failed: {e}"),
                    ));
                }
            }
        }
        counters.outq_frames.fetch_sub(1, Ordering::Relaxed);
        counters.outq_bytes.fetch_sub(nbytes, Ordering::Relaxed);
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// Connect to every peer, exchange hellos, and spawn the per-peer
/// reader/writer threads. The caller provides the already-bound
/// listener for this process's own address (so ephemeral ports work in
/// tests: bind first, share the resolved address, then establish).
///
/// The returned threads are detached; they exit when the sockets close
/// or the engine drops its endpoints.
pub fn establish(
    listener: TcpListener,
    cfg: &TcpConfig,
    partition: Arc<Partition>,
    ctl: Arc<RunCtl>,
) -> Result<TcpFabric, SimError> {
    let nproc = cfg.num_processes();
    assert!(cfg.process < nproc, "process rank out of range");
    assert!(cfg.num_shards >= nproc, "need at least one shard per process");
    assert!(cfg.batch_msgs > 0 && cfg.mailbox_capacity > 0 && cfg.max_outbox_frames > 0);
    let deadline = Instant::now() + cfg.connect_deadline;

    let mut streams: Vec<Option<(TcpStream, u64)>> = (0..nproc).map(|_| None).collect();
    // Dial lower ranks; they are accepting.
    for (peer, slot) in streams.iter_mut().enumerate().take(cfg.process) {
        let mut stream = dial(cfg.addrs[peer], peer, deadline, cfg)?;
        stream
            .set_nodelay(true)
            .map_err(|e| transport_err(Some(peer), format!("set_nodelay: {e}")))?;
        stream
            .set_read_timeout(Some(cfg.connect_deadline))
            .map_err(|e| transport_err(Some(peer), format!("set handshake timeout: {e}")))?;
        let (_, features) = handshake(&mut stream, cfg, Some(peer))?;
        stream
            .set_read_timeout(None)
            .map_err(|e| transport_err(Some(peer), format!("clear handshake timeout: {e}")))?;
        *slot = Some((stream, features));
    }
    // Accept higher ranks.
    let expecting = nproc - cfg.process - 1;
    if expecting > 0 {
        listener
            .set_nonblocking(true)
            .map_err(|e| transport_err(None, format!("listener nonblocking: {e}")))?;
        let mut accepted = 0;
        while accepted < expecting {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| transport_err(None, format!("stream blocking: {e}")))?;
                    stream
                        .set_nodelay(true)
                        .map_err(|e| transport_err(None, format!("set_nodelay: {e}")))?;
                    stream
                        .set_read_timeout(Some(cfg.connect_deadline))
                        .map_err(|e| transport_err(None, format!("set handshake timeout: {e}")))?;
                    let (peer, features) = handshake(&mut stream, cfg, None)?;
                    stream
                        .set_read_timeout(None)
                        .map_err(|e| transport_err(None, format!("clear handshake timeout: {e}")))?;
                    if peer <= cfg.process || peer >= nproc {
                        return Err(transport_err(
                            Some(peer),
                            "peer rank violates dial direction convention",
                        ));
                    }
                    if streams[peer].is_some() {
                        return Err(transport_err(Some(peer), "duplicate connection"));
                    }
                    streams[peer] = Some((stream, features));
                    accepted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(transport_err(
                            None,
                            format!("timed out waiting for {} peer(s)", expecting - accepted),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(transport_err(None, format!("accept failed: {e}"))),
            }
        }
    }

    let local = shards_of_process(cfg.num_shards, nproc, cfg.process);
    let mut inbox_txs = Vec::with_capacity(local.len());
    let mut inbox_rxs = Vec::with_capacity(local.len());
    for _ in local.clone() {
        let (tx, rx) = bounded::<ShardMsg>(cfg.mailbox_capacity);
        inbox_txs.push(tx);
        inbox_rxs.push(rx);
    }
    let (events_tx, events_rx) = bounded::<ControlEvent>(4 * nproc.max(64));
    let shutdown = Arc::new(AtomicBool::new(false));

    let mut peers: Vec<Option<PeerHandle>> = (0..nproc).map(|_| None).collect();
    for (peer, slot) in streams.into_iter().enumerate() {
        let Some((stream, features)) = slot else { continue };
        let (out_tx, out_rx) = bounded::<Vec<u8>>(cfg.max_outbox_frames);
        let counters = Arc::new(PeerCounters {
            peer,
            outq_frames: AtomicUsize::new(0),
            outq_bytes: AtomicUsize::new(0),
            pending_msgs: AtomicUsize::new(0),
            terminal_nulls_rx: AtomicUsize::new(0),
            alive: AtomicBool::new(true),
            features,
        });
        let negotiated = cfg.telemetry && features & wire::FEATURE_TELEMETRY != 0;
        let read_stream = stream
            .try_clone()
            .map_err(|e| transport_err(Some(peer), format!("socket clone: {e}")))?;
        {
            let partition = Arc::clone(&partition);
            let local = local.clone();
            let inbox_txs = inbox_txs.clone();
            let events = events_tx.clone();
            let counters = Arc::clone(&counters);
            let ctl = Arc::clone(&ctl);
            let shutdown = Arc::clone(&shutdown);
            let fault = Arc::clone(&cfg.fault);
            let recorder = cfg.recorder.clone();
            // The reader closes cross-rank wire spans into its own ring
            // — but only when telemetry was mutually negotiated, so a
            // telemetry-off run's trace output is untouched.
            let tracer = if negotiated {
                cfg.recorder.tracer(&format!("net-rx-{peer}"))
            } else {
                obs::Tracer::off()
            };
            let self_process = cfg.process;
            std::thread::Builder::new()
                .name(format!("net-rx-{peer}"))
                .spawn(move || {
                    reader_loop(
                        read_stream,
                        peer,
                        self_process,
                        partition,
                        local,
                        inbox_txs,
                        events,
                        counters,
                        ctl,
                        shutdown,
                        fault,
                        recorder,
                        tracer,
                        negotiated,
                    )
                })
                .map_err(|e| transport_err(Some(peer), format!("spawn reader: {e}")))?;
        }
        {
            let counters = Arc::clone(&counters);
            let ctl = Arc::clone(&ctl);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("net-tx-{peer}"))
                .spawn(move || writer_loop(stream, out_rx, peer, counters, ctl, shutdown))
                .map_err(|e| transport_err(Some(peer), format!("spawn writer: {e}")))?;
        }
        peers[peer] = Some(PeerHandle { counters, out_tx });
    }

    let mut local_txs: Vec<Option<Sender<ShardMsg>>> = vec![None; cfg.num_shards];
    for (off, tx) in inbox_txs.iter().enumerate() {
        local_txs[local.start + off] = Some(tx.clone());
    }
    let endpoints = local
        .clone()
        .zip(inbox_rxs)
        .map(|(shard, rx)| TcpEndpoint {
            shard,
            num_shards: cfg.num_shards,
            num_processes: nproc,
            batch_msgs: cfg.batch_msgs,
            rx,
            local_txs: local_txs.clone(),
            peers: peers.clone(),
            pending: vec![Vec::new(); nproc],
            seqs: vec![0; nproc],
            stats: LinkStats::default(),
            tracer: obs::Tracer::off(),
            telemetry: cfg.telemetry,
        })
        .collect();

    // The probe may outlive the fabric (it rides in the watchdog
    // closure), so it must hold only counters — a writer-queue sender
    // would keep the writer thread alive after teardown.
    let probe_peers = peers
        .iter()
        .map(|p| p.as_ref().map(|h| Arc::clone(&h.counters)))
        .collect();

    Ok(TcpFabric {
        endpoints,
        control: TcpControl {
            process: cfg.process,
            events: events_rx,
            peers,
            shutdown,
            features: local_features(cfg),
        },
        probe: TcpProbe {
            inbox_probes: inbox_txs,
            peers: probe_peers,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::generators::kogge_stone_adder;
    use circuit::{Logic, NodeId, Target};
    use shard::partition::PartitionStrategy;

    #[test]
    fn shard_blocks_are_balanced_and_invertible() {
        for (k, p) in [(4, 2), (5, 2), (8, 3), (3, 3), (7, 1)] {
            let mut seen = 0;
            for proc in 0..p {
                let range = shards_of_process(k, p, proc);
                assert!(!range.is_empty());
                for s in range.clone() {
                    assert_eq!(process_of_shard(k, p, s), proc, "k={k} p={p} s={s}");
                    seen += 1;
                }
                if proc + 1 < p {
                    assert_eq!(range.end, shards_of_process(k, p, proc + 1).start);
                }
            }
            assert_eq!(seen, k);
        }
    }

    fn test_cfg(process: usize, addrs: Vec<SocketAddr>, num_shards: usize) -> TcpConfig {
        TcpConfig {
            process,
            addrs,
            num_shards,
            mailbox_capacity: 64,
            batch_msgs: 4,
            max_outbox_frames: 64,
            digest: 0x1234,
            connect_deadline: Duration::from_secs(10),
            session_epoch: 0,
            retry_seed: 0,
            recorder: obs::Recorder::off(),
            fault: Arc::new(FaultPlan::none()),
            telemetry: false,
        }
    }

    fn two_process_fabric(
        num_shards: usize,
    ) -> (TcpFabric, TcpFabric, Arc<RunCtl>, Arc<RunCtl>) {
        let c = kogge_stone_adder(16);
        let partition = Arc::new(Partition::build(&c, num_shards, PartitionStrategy::RoundRobin));
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        let ctl0 = Arc::new(RunCtl::new());
        let ctl1 = Arc::new(RunCtl::new());
        let cfg0 = test_cfg(0, addrs.clone(), num_shards);
        let cfg1 = test_cfg(1, addrs, num_shards);
        let p0 = Arc::clone(&partition);
        let c0 = Arc::clone(&ctl0);
        let h = std::thread::spawn(move || establish(l0, &cfg0, p0, c0).unwrap());
        let f1 = establish(l1, &cfg1, partition, Arc::clone(&ctl1)).unwrap();
        let f0 = h.join().unwrap();
        (f0, f1, ctl0, ctl1)
    }

    #[test]
    fn messages_cross_the_socket_in_order_and_nulls_force_flush() {
        let (f0, f1, _ctl0, _ctl1) = two_process_fabric(2);
        let mut ep0 = f0.endpoints.into_iter().next().unwrap();
        let mut ep1 = f1.endpoints.into_iter().next().unwrap();
        assert_eq!(ep0.shard(), 0);
        assert_eq!(ep1.shard(), 1);

        // Target node 1: round-robin assigns node 1 to shard 1.
        let target = Target {
            node: NodeId(1),
            port: 0,
        };
        for t in [3, 5, 5] {
            ep0.try_send(1, ShardMsg::Event { target, time: t, value: Logic::One })
                .unwrap();
        }
        // Three events sit in the batch buffer (batch_msgs = 4): no
        // frame yet. The lookahead NULL forces the flush.
        assert_eq!(ep0.stats().frames_sent, 0);
        ep0.try_send(1, ShardMsg::Null { target, time: 9 }).unwrap();
        let stats = ep0.stats();
        assert_eq!(stats.frames_sent, 1);
        assert_eq!(stats.msgs_batched, 4);
        assert_eq!(stats.forced_flushes, 0); // batch was full anyway
        assert!(stats.bytes_sent > 0);

        let mut times = Vec::new();
        for _ in 0..4 {
            let msg = ep1
                .recv_timeout(Duration::from_secs(5))
                .expect("cross-socket delivery");
            match msg {
                ShardMsg::Event { time, .. } | ShardMsg::Null { time, .. } => times.push(time),
                other => panic!("unexpected control message on the wire: {other:?}"),
            }
        }
        assert_eq!(times, vec![3, 5, 5, 9]);

        // A lone NULL flushes below the batch threshold: forced.
        ep0.try_send(1, ShardMsg::Null { target, time: NULL_TS }).unwrap();
        assert_eq!(ep0.stats().forced_flushes, 1);
        assert!(matches!(
            ep1.recv_timeout(Duration::from_secs(5)),
            Ok(ShardMsg::Null { time: NULL_TS, .. })
        ));
        // Terminal-NULL accounting on the receiving side.
        assert_eq!(f1.control.terminal_nulls_from(0), 1);
        assert_eq!(f1.control.terminal_nulls_from(1), 0);
    }

    #[test]
    fn done_and_shutdown_round_trip_as_control_events() {
        let (f0, f1, _ctl0, _ctl1) = two_process_fabric(2);
        f1.control.send_outcome(0, 1, vec![7, 8, 9]).unwrap();
        f1.control.send_done(0).unwrap();
        assert_eq!(
            f0.control.recv_timeout(Duration::from_secs(5)),
            Some(ControlEvent::Outcome { shard: 1, blob: vec![7, 8, 9] })
        );
        assert_eq!(
            f0.control.recv_timeout(Duration::from_secs(5)),
            Some(ControlEvent::Done { process: 1 })
        );
        f0.control.broadcast_shutdown();
        assert_eq!(
            f1.control.recv_timeout(Duration::from_secs(5)),
            Some(ControlEvent::Shutdown)
        );
    }

    #[test]
    fn digest_mismatch_fails_handshake() {
        let c = kogge_stone_adder(16);
        let partition = Arc::new(Partition::build(&c, 2, PartitionStrategy::RoundRobin));
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        let mut cfg0 = test_cfg(0, addrs.clone(), 2);
        cfg0.connect_deadline = Duration::from_secs(5);
        let mut cfg1 = test_cfg(1, addrs, 2);
        cfg1.digest = 0x9999;
        cfg1.connect_deadline = Duration::from_secs(5);
        let p0 = Arc::clone(&partition);
        let h = std::thread::spawn(move || establish(l0, &cfg0, p0, Arc::new(RunCtl::new())));
        let r1 = establish(l1, &cfg1, partition, Arc::new(RunCtl::new()));
        let r0 = h.join().unwrap();
        assert!(matches!(r1, Err(SimError::Transport { .. })) || matches!(r0, Err(SimError::Transport { .. })));
    }

    #[test]
    fn control_messages_cross_the_socket() {
        let (f0, f1, _ctl0, _ctl1) = two_process_fabric(2);
        let mut ep0 = f0.endpoints.into_iter().next().unwrap();
        let mut ep1 = f1.endpoints.into_iter().next().unwrap();
        // Barrier markers and retirement notices are urgent: they flush
        // immediately even though the batch buffer is far from full.
        ep0.try_send(
            1,
            ShardMsg::Barrier {
                from: 0,
                epoch: 3,
                load: 11,
                depth: 2,
            },
        )
        .unwrap();
        ep0.try_send(1, ShardMsg::Retire { from: 0 }).unwrap();
        assert_eq!(ep0.stats().frames_sent, 2);
        assert_eq!(
            ep1.recv_timeout(Duration::from_secs(5)),
            Ok(ShardMsg::Barrier {
                from: 0,
                epoch: 3,
                load: 11,
                depth: 2
            })
        );
        assert_eq!(
            ep1.recv_timeout(Duration::from_secs(5)),
            Ok(ShardMsg::Retire { from: 0 })
        );
    }

    #[test]
    fn session_epoch_mismatch_fails_handshake() {
        let c = kogge_stone_adder(16);
        let partition = Arc::new(Partition::build(&c, 2, PartitionStrategy::RoundRobin));
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        let mut cfg0 = test_cfg(0, addrs.clone(), 2);
        cfg0.connect_deadline = Duration::from_secs(5);
        cfg0.session_epoch = 4;
        let mut cfg1 = test_cfg(1, addrs, 2);
        cfg1.connect_deadline = Duration::from_secs(5);
        cfg1.session_epoch = 2; // stale incarnation
        let p0 = Arc::clone(&partition);
        let h = std::thread::spawn(move || establish(l0, &cfg0, p0, Arc::new(RunCtl::new())));
        let r1 = establish(l1, &cfg1, partition, Arc::new(RunCtl::new()));
        let r0 = h.join().unwrap();
        let fenced = [r0.err(), r1.err()].into_iter().flatten().any(|e| {
            matches!(&e, SimError::Transport { context, .. } if context.contains("session epoch"))
        });
        assert!(fenced, "expected a session-epoch handshake rejection");
    }

    /// Play a raw process 0 against a real process 1: accept its dial,
    /// handshake by hand, then drive the reader with hand-crafted frames.
    fn raw_peer_fabric(cfg1: TcpConfig) -> (TcpStream, TcpFabric, Arc<RunCtl>) {
        let c = kogge_stone_adder(16);
        let partition = Arc::new(Partition::build(&c, 2, PartitionStrategy::RoundRobin));
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        let cfg1 = TcpConfig { addrs, ..cfg1 };
        let ctl1 = Arc::new(RunCtl::new());
        let c1 = Arc::clone(&ctl1);
        let h = std::thread::spawn(move || establish(l1, &cfg1, partition, c1).unwrap());
        let (mut s, _) = l0.accept().unwrap();
        let hello = wire::read_frame(&mut s).unwrap().unwrap();
        assert!(matches!(hello, Frame::Hello { process: 1, .. }));
        s.write_all(&wire::encode_frame(&Frame::Hello {
            process: 0,
            num_shards: 2,
            digest: 0x1234,
            session_epoch: 0,
            features: 0,
        }))
        .unwrap();
        (s, h.join().unwrap(), ctl1)
    }

    #[test]
    fn replayed_batch_frames_are_deduped() {
        let cfg1 = test_cfg(1, Vec::new(), 2);
        let (mut s, f1, _ctl1) = raw_peer_fabric(cfg1);
        // Round-robin assigns node 1 to shard 1, owned by process 1.
        let target = Target {
            node: NodeId(1),
            port: 0,
        };
        let batch = Frame::Batch {
            src: 0,
            seq: 1,
            msgs: vec![(
                1,
                ShardMsg::Event {
                    target,
                    time: 5,
                    value: Logic::One,
                },
            )],
        };
        s.write_all(&wire::encode_frame(&batch)).unwrap();
        // Replay of the same frame (reconnect resend) and a stale seq:
        // both must be dropped whole, without disturbing the stream.
        s.write_all(&wire::encode_frame(&batch)).unwrap();
        let stale = Frame::Batch {
            src: 0,
            seq: 1,
            msgs: vec![(1, ShardMsg::Null { target, time: 2 })],
        };
        s.write_all(&wire::encode_frame(&stale)).unwrap();
        let next = Frame::Batch {
            src: 0,
            seq: 2,
            msgs: vec![(1, ShardMsg::Null { target, time: 9 })],
        };
        s.write_all(&wire::encode_frame(&next)).unwrap();
        let mut ep1 = f1.endpoints.into_iter().next().unwrap();
        assert_eq!(
            ep1.recv_timeout(Duration::from_secs(5)),
            Ok(ShardMsg::Event {
                target,
                time: 5,
                value: Logic::One
            })
        );
        // The duplicate and the stale frame were skipped: next delivery
        // is the seq-2 NULL.
        assert_eq!(
            ep1.recv_timeout(Duration::from_secs(5)),
            Ok(ShardMsg::Null { target, time: 9 })
        );
    }

    #[test]
    fn drop_link_fault_fails_the_reader_deterministically() {
        let mut cfg1 = test_cfg(1, Vec::new(), 2);
        cfg1.fault = Arc::new(FaultPlan::seeded(9).drop_link(0, 2));
        let (mut s, f1, ctl1) = raw_peer_fabric(cfg1);
        let target = Target {
            node: NodeId(1),
            port: 0,
        };
        for (seq, t) in [(1u64, 3u64), (2, 4), (3, 5)] {
            let _ = s.write_all(&wire::encode_frame(&Frame::Batch {
                src: 0,
                seq,
                msgs: vec![(1, ShardMsg::Null { target, time: t })],
            }));
        }
        let start = Instant::now();
        while !ctl1.has_error() {
            assert!(start.elapsed() < Duration::from_secs(5), "drop_link never fired");
            std::thread::sleep(Duration::from_millis(10));
        }
        match ctl1.take_error() {
            Some(SimError::Transport {
                peer,
                direction,
                context,
                ..
            }) => {
                assert_eq!(peer, Some(0));
                assert_eq!(direction, Some(fault::LinkDirection::Inbound));
                assert!(context.contains("fault injection"), "{context}");
            }
            other => panic!("expected transport error, got {other:?}"),
        }
        assert!(!f1.control.peer_alive(0));
    }

    /// Like [`two_process_fabric`] but with telemetry negotiated on
    /// both sides and live recorders.
    fn telemetry_fabric() -> (TcpFabric, TcpFabric) {
        let c = kogge_stone_adder(16);
        let partition = Arc::new(Partition::build(&c, 2, PartitionStrategy::RoundRobin));
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        let mut cfg0 = test_cfg(0, addrs.clone(), 2);
        cfg0.telemetry = true;
        cfg0.recorder = obs::Recorder::new(&obs::ObsConfig::enabled());
        let mut cfg1 = test_cfg(1, addrs, 2);
        cfg1.telemetry = true;
        cfg1.recorder = obs::Recorder::new(&obs::ObsConfig::enabled());
        let p0 = Arc::clone(&partition);
        let h =
            std::thread::spawn(move || establish(l0, &cfg0, p0, Arc::new(RunCtl::new())).unwrap());
        let f1 = establish(l1, &cfg1, partition, Arc::new(RunCtl::new())).unwrap();
        (h.join().unwrap(), f1)
    }

    #[test]
    fn telemetry_frames_round_trip_when_negotiated() {
        let (f0, f1) = telemetry_fabric();
        assert!(f0.control.peer_telemetry(1));
        assert!(f1.control.peer_telemetry(0));

        assert!(f1.control.send_telemetry(0, 7, vec![1, 2, 3]));
        assert_eq!(
            f0.control.recv_timeout(Duration::from_secs(5)),
            Some(ControlEvent::Telemetry {
                peer: 1,
                seq: 7,
                blob: vec![1, 2, 3]
            })
        );

        // Full four-timestamp ping/pong exchange, replies driven from
        // the control loops exactly as the engines drive them.
        assert!(f0.control.send_clock_ping(1, 1000));
        let Some(ControlEvent::ClockPing { peer, echo_ns, t_rx_ns }) =
            f1.control.recv_timeout(Duration::from_secs(5))
        else {
            panic!("expected a clock ping");
        };
        assert_eq!((peer, echo_ns), (0, 1000));
        assert!(f1.control.send_clock_pong(peer, echo_ns, t_rx_ns, t_rx_ns + 5));
        let Some(ControlEvent::ClockPong {
            peer,
            echo_ns,
            t_rx_ns: rx,
            t_tx_ns: tx,
            t_recv_ns,
        }) = f0.control.recv_timeout(Duration::from_secs(5))
        else {
            panic!("expected a clock pong");
        };
        assert_eq!((peer, echo_ns), (1, 1000));
        assert_eq!(tx, rx + 5);
        // Both stamps came off live recorders; the pong receive stamp
        // must be sane (monotonic clock, nonzero once the run started).
        assert!(t_recv_ns > 0);
    }

    #[test]
    fn telemetry_sends_are_inert_without_negotiation() {
        // Default fabric: neither side advertises the feature.
        let (f0, f1, _ctl0, _ctl1) = two_process_fabric(2);
        assert!(!f0.control.peer_telemetry(1));
        assert!(!f0.control.send_telemetry(1, 1, vec![9]));
        assert!(!f0.control.send_clock_ping(1, 123));
        // Nothing reached the peer: the next frame it sees is a real
        // control frame, not telemetry.
        f0.control.send_done(1).unwrap();
        assert_eq!(
            f1.control.recv_timeout(Duration::from_secs(5)),
            Some(ControlEvent::Done { process: 0 })
        );
    }

    #[test]
    fn peer_death_records_structured_error() {
        let (f0, f1, ctl0, _ctl1) = two_process_fabric(2);
        // Simulate process 1 dying: drop its whole fabric (endpoints,
        // control, probe) — its writer threads exit and close the
        // sockets without any shutdown announcement.
        drop(f1);
        // Process 0's reader sees the EOF and records a transport error.
        let start = Instant::now();
        while !ctl0.has_error() {
            assert!(start.elapsed() < Duration::from_secs(5), "no error recorded");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(ctl0.is_cancelled());
        match ctl0.take_error() {
            Some(SimError::Transport { peer, .. }) => assert_eq!(peer, Some(1)),
            other => panic!("expected transport error, got {other:?}"),
        }
        assert!(!f0.control.peer_alive(1));
        drop(f0);
    }
}
