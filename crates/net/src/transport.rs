//! Transport abstraction for the shard fabric.
//!
//! The sharded conservative engine (in `des-core`) is written against
//! [`Link`]: one per shard, offering non-blocking send toward any shard,
//! receive from the shard's own inbox, and an explicit [`Link::flush`]
//! for transports that coalesce messages. Two implementations exist:
//!
//! * [`Loopback`] — wraps the in-process bounded crossbeam mailboxes
//!   from `shard::comm` one-to-one. No batching, no framing, no copies:
//!   the single-process engine keeps its exact pre-transport behavior.
//! * [`crate::tcp::TcpEndpoint`] — routes messages for remote shards
//!   through batched, checksummed frames over sockets.
//!
//! The watchdog inspects the fabric through [`FabricProbe`] without
//! participating in the protocol: inbox depths for every local shard
//! plus per-peer link depths (batching buffers, writer queues) for
//! transports that have them.

use std::time::Duration;

use fault::LinkSnapshot;
use shard::comm::{self, Endpoint, ShardMsg};
use shard::partition::ShardId;

/// Why a non-blocking send did not complete.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError {
    /// The destination mailbox (or outbound queue) is full; the message
    /// is handed back so the caller can drain its own inbox and retry.
    Full(ShardMsg),
    /// The destination is gone (peer process died or fabric torn down).
    Disconnected,
}

/// Why a non-blocking receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Inbox currently empty.
    Empty,
    /// All senders are gone; nothing will ever arrive.
    Disconnected,
}

/// Why a bounded-wait receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the wait.
    Timeout,
    /// All senders are gone; nothing will ever arrive.
    Disconnected,
}

/// The link's peer is unreachable; queued traffic cannot be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkClosed;

/// Transport-side counters a shard core merges into its `SimStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Wire frames this link enqueued toward peers.
    pub frames_sent: u64,
    /// Encoded bytes in those frames (header and trailer included).
    pub bytes_sent: u64,
    /// Cross-process messages that rode in those frames.
    pub msgs_batched: u64,
    /// Flushes forced by urgency (a NULL another shard may be stalled
    /// on) before the batch-size threshold was reached.
    pub forced_flushes: u64,
}

impl LinkStats {
    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &LinkStats) {
        self.frames_sent += other.frames_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_batched += other.msgs_batched;
        self.forced_flushes += other.forced_flushes;
    }
}

/// One shard's handle on the fabric.
///
/// Contract inherited from the in-process mailboxes: per (destination
/// shard, source shard) the transport is FIFO, and [`Link::try_send`]
/// returning [`TrySendError::Full`] is the backpressure signal — the
/// caller must drain its own inbox before retrying, which is what keeps
/// cyclic shard topologies deadlock-free.
pub trait Link: Send {
    /// The shard this link belongs to.
    fn shard(&self) -> ShardId;

    /// Queue `msg` toward shard `dst` without blocking.
    fn try_send(&mut self, dst: ShardId, msg: ShardMsg) -> Result<(), TrySendError>;

    /// Pop one message from this shard's inbox without blocking.
    fn try_recv(&mut self) -> Result<ShardMsg, TryRecvError>;

    /// Pop one message, waiting up to `timeout` for one to arrive.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<ShardMsg, RecvTimeoutError>;

    /// Number of messages waiting in this shard's inbox.
    fn inbox_len(&self) -> usize;

    /// Push any coalesced traffic toward the wire. Returns `Ok(true)`
    /// once nothing of this link's remains buffered or queued locally,
    /// `Ok(false)` if some traffic is still in flight (caller should
    /// drain its inbox and call again).
    fn flush(&mut self) -> Result<bool, LinkClosed>;

    /// Transport counters accumulated so far.
    fn stats(&self) -> LinkStats;
}

/// Watchdog's read-only view of the fabric.
pub trait FabricProbe: Send + Sync {
    /// Depth of every local shard inbox, indexed by local shard order.
    fn inbox_depths(&self) -> Vec<usize>;

    /// Per-peer transport depths. Empty for in-process fabrics.
    fn link_depths(&self) -> Vec<LinkSnapshot>;
}

// ---------------------------------------------------------------------------
// Loopback: the in-process fabric, unchanged semantics.

/// In-process link: a thin wrapper over one `shard::comm::Endpoint`.
pub struct Loopback {
    ep: Endpoint,
}

impl Link for Loopback {
    fn shard(&self) -> ShardId {
        self.ep.shard
    }

    fn try_send(&mut self, dst: ShardId, msg: ShardMsg) -> Result<(), TrySendError> {
        match self.ep.txs[dst].try_send(msg) {
            Ok(()) => Ok(()),
            Err(crossbeam::channel::TrySendError::Full(m)) => Err(TrySendError::Full(m)),
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                Err(TrySendError::Disconnected)
            }
        }
    }

    fn try_recv(&mut self) -> Result<ShardMsg, TryRecvError> {
        match self.ep.rx.try_recv() {
            Ok(m) => Ok(m),
            Err(crossbeam::channel::TryRecvError::Empty) => Err(TryRecvError::Empty),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<ShardMsg, RecvTimeoutError> {
        match self.ep.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(RecvTimeoutError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(RecvTimeoutError::Disconnected)
            }
        }
    }

    fn inbox_len(&self) -> usize {
        self.ep.rx.len()
    }

    fn flush(&mut self) -> Result<bool, LinkClosed> {
        // Sends go straight into the destination mailbox; there is
        // nothing to coalesce.
        Ok(true)
    }

    fn stats(&self) -> LinkStats {
        LinkStats::default()
    }
}

/// Depth probe for the loopback fabric: cloned senders whose `len()`
/// reads each inbox without participating in the protocol.
pub struct LoopbackProbe {
    probes: Vec<crossbeam::channel::Sender<ShardMsg>>,
}

impl FabricProbe for LoopbackProbe {
    fn inbox_depths(&self) -> Vec<usize> {
        self.probes.iter().map(|p| p.len()).collect()
    }

    fn link_depths(&self) -> Vec<LinkSnapshot> {
        Vec::new()
    }
}

/// Build the in-process fabric: one [`Loopback`] link per shard plus a
/// depth probe for the watchdog.
pub fn loopback(num_shards: usize, capacity: usize) -> (Vec<Loopback>, LoopbackProbe) {
    let (eps, probes) = comm::endpoints(num_shards, capacity);
    let links = eps.into_iter().map(|ep| Loopback { ep }).collect();
    (links, LoopbackProbe { probes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::{Logic, NodeId, Target};

    fn msg(t: u64) -> ShardMsg {
        ShardMsg::Event {
            target: Target {
                node: NodeId(0),
                port: 0,
            },
            time: t,
            value: Logic::One,
        }
    }

    #[test]
    fn loopback_preserves_fifo_and_backpressure() {
        let (mut links, probe) = loopback(2, 2);
        let mut l1 = links.pop().unwrap();
        let mut l0 = links.pop().unwrap();
        assert_eq!(l0.shard(), 0);

        l0.try_send(1, msg(1)).unwrap();
        l0.try_send(1, msg(2)).unwrap();
        assert_eq!(probe.inbox_depths(), vec![0, 2]);
        assert!(matches!(l0.try_send(1, msg(3)), Err(TrySendError::Full(_))));

        assert!(matches!(l1.try_recv(), Ok(ShardMsg::Event { time: 1, .. })));
        assert!(matches!(l1.try_recv(), Ok(ShardMsg::Event { time: 2, .. })));
        assert_eq!(l1.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(l0.flush(), Ok(true));
        assert!(probe.link_depths().is_empty());
        assert_eq!(l0.stats(), LinkStats::default());
    }

    #[test]
    fn recv_timeout_times_out_when_idle() {
        let (mut links, _probe) = loopback(1, 1);
        let err = links[0].recv_timeout(Duration::from_millis(1));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
    }
}
