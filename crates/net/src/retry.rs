//! Deterministic capped-exponential backoff for link (re)connection.
//!
//! Recovery must stay reproducible under test: two runs with the same
//! `FaultPlan` seed must produce *identical* retry schedules, so the
//! jitter is not sampled from a thread-local RNG but hashed from
//! `(seed, peer, attempt)` with splitmix64. The schedule is pure state —
//! it performs no sleeping itself; callers sleep for whatever
//! [`BackoffSchedule::next_delay`] returns.
//!
//! Shape: attempt `n` draws uniformly from `[cap_n / 2, cap_n]` where
//! `cap_n = min(base << n, cap)` — exponential growth with a capped
//! ceiling and at most 2× spread, so the expected total wait stays
//! within a small constant factor of the deterministic equivalent while
//! two ranks redialing each other never phase-lock.

use std::time::Duration;

/// Default first-retry ceiling.
pub const DEFAULT_BASE: Duration = Duration::from_millis(10);

/// Default cap on any single retry delay.
pub const DEFAULT_CAP: Duration = Duration::from_millis(500);

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic per-link retry schedule.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    seed: u64,
    peer: u64,
    attempt: u64,
    base: Duration,
    cap: Duration,
}

impl BackoffSchedule {
    /// Schedule for the link toward `peer`, jitter-seeded by `seed`
    /// (typically the run's `FaultPlan` seed), with default bounds.
    pub fn new(seed: u64, peer: u64) -> Self {
        Self::with_bounds(seed, peer, DEFAULT_BASE, DEFAULT_CAP)
    }

    /// Schedule with explicit base and cap.
    pub fn with_bounds(seed: u64, peer: u64, base: Duration, cap: Duration) -> Self {
        assert!(!base.is_zero() && cap >= base);
        BackoffSchedule {
            seed,
            peer,
            attempt: 0,
            base,
            cap,
        }
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u64 {
        self.attempt
    }

    /// The delay to sleep before the next retry. Advances the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let attempt = self.attempt;
        self.attempt += 1;
        // Capped exponential ceiling; the shift saturates long before
        // the cap does for any sane bounds.
        let ceiling = self
            .base
            .saturating_mul(1u32 << attempt.min(20) as u32)
            .min(self.cap);
        let ceil_us = ceiling.as_micros() as u64;
        let half = ceil_us / 2;
        let h = splitmix64(
            self.seed
                ^ self.peer.wrapping_mul(0x9E37_79B9)
                ^ attempt.wrapping_mul(0x85EB_CA6B),
        );
        let jitter = if half == 0 { 0 } else { h % (half + 1) };
        Duration::from_micros(half + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = BackoffSchedule::new(42, 1);
        let mut b = BackoffSchedule::new(42, 1);
        let da: Vec<Duration> = (0..12).map(|_| a.next_delay()).collect();
        let db: Vec<Duration> = (0..12).map(|_| b.next_delay()).collect();
        assert_eq!(da, db);
        assert_eq!(a.attempts(), 12);
    }

    #[test]
    fn different_seed_or_peer_diverges() {
        let mut a = BackoffSchedule::new(1, 0);
        let mut b = BackoffSchedule::new(2, 0);
        let mut c = BackoffSchedule::new(1, 3);
        let da: Vec<Duration> = (0..8).map(|_| a.next_delay()).collect();
        let db: Vec<Duration> = (0..8).map(|_| b.next_delay()).collect();
        let dc: Vec<Duration> = (0..8).map(|_| c.next_delay()).collect();
        assert_ne!(da, db);
        assert_ne!(da, dc);
    }

    #[test]
    fn delays_grow_exponentially_then_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(160);
        let mut s = BackoffSchedule::with_bounds(7, 0, base, cap);
        let delays: Vec<Duration> = (0..10).map(|_| s.next_delay()).collect();
        for (n, d) in delays.iter().enumerate() {
            let ceiling = base.saturating_mul(1 << n.min(20) as u32).min(cap);
            assert!(*d <= ceiling, "attempt {n}: {d:?} > {ceiling:?}");
            assert!(*d >= ceiling / 2, "attempt {n}: {d:?} < {:?}", ceiling / 2);
        }
        // Late attempts are pinned to the cap window.
        assert!(delays[9] >= cap / 2 && delays[9] <= cap);
    }
}
