//! # sim-net — socket transport for the sharded conservative engine
//!
//! Takes the Chandy–Misra shard fabric cross-machine (DESIGN.md §9):
//!
//! * [`wire`] — a hand-rolled, versioned, checksummed frame codec for
//!   [`shard::comm::ShardMsg`] streams and the control frames of the
//!   distributed termination protocol. Varint-packed, no serde, and
//!   total: corrupt or truncated input decodes to a [`wire::WireError`],
//!   never a panic.
//! * [`transport`] — the [`Link`] trait the engine is generic over,
//!   with the in-process [`transport::Loopback`] implementation that
//!   preserves the single-process engine's exact behavior, and the
//!   [`FabricProbe`] the watchdog reads depths through.
//! * [`retry`] — deterministic capped-exponential backoff schedules for
//!   link (re)connection, jitter-seeded from the run's fault plan so
//!   recovery timing is reproducible under test.
//! * [`tcp`] — the cross-process fabric: one multiplexed nonblocking
//!   connection per peer pair, per-peer reader/writer threads, adaptive
//!   batching (coalesce until `batch_msgs`, flush NULLs immediately),
//!   bounded outboxes that extend the engine's drain-own-inbox
//!   backpressure to the wire, and per-peer terminal-NULL accounting
//!   for distributed termination.

pub mod retry;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use retry::BackoffSchedule;
pub use tcp::{
    establish, process_of_shard, shards_of_process, ControlEvent, TcpConfig, TcpControl,
    TcpEndpoint, TcpFabric, TcpProbe, DEFAULT_BATCH_MSGS, DEFAULT_OUTBOX_FRAMES,
};
pub use transport::{
    loopback, FabricProbe, Link, LinkClosed, LinkStats, Loopback, LoopbackProbe, RecvTimeoutError,
    TryRecvError, TrySendError,
};
pub use wire::{
    decode_frame, encode_frame, read_frame, Frame, WireError, FEATURE_TELEMETRY, MAGIC, VERSION,
};
