//! Hand-rolled wire codec for the cross-machine shard fabric.
//!
//! Everything that crosses a socket is a *frame*:
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0x5DE5, little-endian
//! 2       1     protocol version (currently 2)
//! 3       1     frame kind
//! 4       4     payload length, little-endian
//! 8       len   payload (kind-specific, varint-packed)
//! 8+len   4     CRC32 (IEEE) over bytes [0, 8+len), little-endian
//! ```
//!
//! Version 2 extends version 1 for the fault-tolerant fabric:
//!
//! * `Batch` carries a per-link sequence number (1-based, per sender
//!   shard per peer) so a receiver can discard duplicate frames replayed
//!   after a reconnect, and each message is prefixed with its
//!   destination shard id so *control* messages (barriers, retirement)
//!   can cross the wire — a receiver no longer needs a `Target` to
//!   route.
//! * `Hello` carries the sender's session epoch (the checkpoint epoch a
//!   restarted rank resumed from; 0 for a fresh run). Peers refuse a
//!   handshake whose session epoch differs from their own, fencing off
//!   stale writers from a pre-restart incarnation.
//!
//! The fleet-telemetry extension (DESIGN.md §16) rides on the same
//! framing without bumping the version: `Hello` gains an *optional*
//! trailing `features` capability bitmask that is encoded only when
//! non-zero, so a rank with telemetry disabled emits byte-identical
//! handshakes (and never emits the new frame kinds). The three
//! telemetry kinds — `ClockPing`/`ClockPong` for per-link clock-offset
//! estimation and `Telemetry` for rank-tagged metric/trace snapshots —
//! are CRC-covered like everything else and may only be sent to a peer
//! whose `Hello` advertised [`FEATURE_TELEMETRY`].
//!
//! Timestamps and node ids are LEB128 unsigned varints: the common case
//! (small simulated times, small node ids) costs one or two bytes instead
//! of eight. Terminal Chandy–Misra NULLs (`time == NULL_TS == u64::MAX`)
//! get their own message tag rather than a ten-byte varint — they are the
//! per-cut-edge termination currency, so the codec makes them both cheap
//! and unambiguous.
//!
//! Decoding is total: every path through [`decode_frame`] and
//! [`read_frame`] returns a [`WireError`] on truncated, corrupt, or
//! malformed input. Nothing in this module panics on untrusted bytes.

use circuit::{Logic, NodeId, Target};
use shard::comm::{ShardMsg, NULL_TS};

/// First two bytes of every frame, little-endian on the wire.
pub const MAGIC: u16 = 0x5DE5;

/// Current protocol version. Bump on any incompatible layout change;
/// peers reject mismatches at [`Frame::Hello`] time and per frame.
pub const VERSION: u8 = 2;

/// Hard upper bound on a frame payload. A length field above this is
/// treated as corruption rather than an allocation request.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Frame header size (magic + version + kind + payload length).
pub const HEADER_LEN: usize = 8;

/// CRC trailer size.
pub const TRAILER_LEN: usize = 4;

const KIND_BATCH: u8 = 0;
const KIND_DONE: u8 = 1;
const KIND_SHUTDOWN: u8 = 2;
const KIND_OUTCOME: u8 = 3;
const KIND_HELLO: u8 = 4;
const KIND_CLOCK_PING: u8 = 5;
const KIND_CLOCK_PONG: u8 = 6;
const KIND_TELEMETRY: u8 = 7;

/// `Hello::features` bit: this rank emits and accepts the telemetry
/// frame kinds (`ClockPing`/`ClockPong`/`Telemetry`). Send those frames
/// only to peers that advertised the bit.
pub const FEATURE_TELEMETRY: u64 = 1 << 0;

const TAG_EVENT: u8 = 0;
const TAG_NULL: u8 = 1;
const TAG_TERMINAL_NULL: u8 = 2;
const TAG_BARRIER_REQUEST: u8 = 3;
const TAG_BARRIER: u8 = 4;
const TAG_TRANSFERRED: u8 = 5;
const TAG_RETIRE: u8 = 6;

/// Everything that can go wrong while decoding bytes off a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended mid-frame (or mid-varint).
    Truncated,
    /// First two bytes were not [`MAGIC`].
    BadMagic(u16),
    /// Frame carried an unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// CRC mismatch: the frame was corrupted in flight.
    BadChecksum { expected: u32, found: u32 },
    /// Unknown message tag inside a batch payload.
    BadTag(u8),
    /// A field held a value its type forbids (logic byte not 0/1,
    /// payload timestamp equal to the NULL sentinel, oversized node id).
    BadValue,
    /// Varint did not fit in 64 bits.
    Overflow,
    /// Payload length field exceeded [`MAX_PAYLOAD`].
    TooLarge(usize),
    /// Payload decoded cleanly but left unconsumed bytes.
    TrailingBytes,
    /// Underlying socket error while reading.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadChecksum { expected, found } => {
                write!(f, "checksum mismatch: expected {expected:#010x}, found {found:#010x}")
            }
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadValue => write!(f, "field value out of range"),
            WireError::Overflow => write!(f, "varint overflows u64"),
            WireError::TooLarge(n) => write!(f, "payload length {n} exceeds limit"),
            WireError::TrailingBytes => write!(f, "trailing bytes after payload"),
            WireError::Io(kind) => write!(f, "socket read failed: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One unit of socket traffic. Batches carry the simulation protocol;
/// the rest are control frames for setup and distributed termination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Coalesced cross-shard messages from one source shard. `seq` is a
    /// 1-based per-(source shard, peer) counter: after a reconnect the
    /// receiver drops any frame whose `seq` is not beyond the last one it
    /// applied. Each message is paired with its destination shard id.
    Batch {
        src: u64,
        seq: u64,
        msgs: Vec<(u64, ShardMsg)>,
    },
    /// Worker → coordinator: all local shards finished cleanly.
    Done { process: u64 },
    /// Coordinator → workers: every process is done, tear down.
    Shutdown,
    /// Worker → coordinator: one shard's encoded [`ShardOutcome`] blob.
    /// The blob format belongs to the engine layer; the wire treats it
    /// as opaque bytes.
    Outcome { shard: u64, blob: Vec<u8> },
    /// Connection handshake: who is dialing, a digest of the run
    /// configuration so mismatched processes fail fast instead of
    /// desynchronizing mid-run, and the sender's session epoch (the
    /// checkpoint epoch a restarted rank resumed from; 0 when fresh) so
    /// stale pre-restart incarnations are fenced off.
    Hello {
        process: u64,
        num_shards: u64,
        digest: u64,
        session_epoch: u64,
        /// Capability bitmask (see [`FEATURE_TELEMETRY`]). Encoded on
        /// the wire only when non-zero, so a zero-feature handshake is
        /// byte-identical to the pre-extension encoding.
        features: u64,
    },
    /// Clock-offset probe: `t_send_ns` is the sender's monotonic clock
    /// (its recorder timebase) at send. The receiver answers immediately
    /// with a [`Frame::ClockPong`] echoing it.
    ClockPing { from: u64, t_send_ns: u64 },
    /// Answer to a [`Frame::ClockPing`]: `echo_ns` is the ping's
    /// `t_send_ns` unchanged; `t_rx_ns`/`t_tx_ns` are the responder's
    /// monotonic clock when the ping arrived and when this pong left.
    /// With the pinger's own receive stamp that makes the four NTP
    /// timestamps, so the responder's processing delay cancels out of
    /// the offset/RTT estimate.
    ClockPong {
        from: u64,
        echo_ns: u64,
        t_rx_ns: u64,
        t_tx_ns: u64,
    },
    /// Rank-tagged telemetry snapshot (metrics + sampled trace-ring
    /// flush), sent toward the coordinator. The blob encoding belongs to
    /// the observability layer (`obs::fleet`); the wire carries it
    /// opaquely, CRC-covered like any other payload.
    Telemetry { from: u64, seq: u64, blob: Vec<u8> },
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table generated at compile time.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// LEB128 unsigned varints.

/// Append `v` as a LEB128 unsigned varint (1..=10 bytes).
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Read a LEB128 unsigned varint from `buf` starting at `*pos`,
/// advancing `*pos` past it.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        if shift == 63 && (b & 0x7F) > 1 {
            return Err(WireError::Overflow);
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::Overflow);
        }
    }
}

/// Read a single byte.
pub fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, WireError> {
    let b = *buf.get(*pos).ok_or(WireError::Truncated)?;
    *pos += 1;
    Ok(b)
}

// ---------------------------------------------------------------------------
// ShardMsg codec.

/// Append one cross-shard message to a batch payload.
pub fn put_msg(buf: &mut Vec<u8>, msg: &ShardMsg) {
    match *msg {
        ShardMsg::Event { target, time, value } => {
            buf.push(TAG_EVENT);
            put_uvarint(buf, u64::from(target.node.0));
            buf.push(target.port);
            put_uvarint(buf, time);
            buf.push(value.as_bit() as u8);
        }
        ShardMsg::Null { target, time } if time == NULL_TS => {
            buf.push(TAG_TERMINAL_NULL);
            put_uvarint(buf, u64::from(target.node.0));
            buf.push(target.port);
        }
        ShardMsg::Null { target, time } => {
            buf.push(TAG_NULL);
            put_uvarint(buf, u64::from(target.node.0));
            buf.push(target.port);
            put_uvarint(buf, time);
        }
        ShardMsg::BarrierRequest { from, epoch } => {
            buf.push(TAG_BARRIER_REQUEST);
            put_uvarint(buf, from as u64);
            put_uvarint(buf, epoch);
        }
        ShardMsg::Barrier {
            from,
            epoch,
            load,
            depth,
        } => {
            buf.push(TAG_BARRIER);
            put_uvarint(buf, from as u64);
            put_uvarint(buf, epoch);
            put_uvarint(buf, load);
            put_uvarint(buf, depth);
        }
        ShardMsg::Transferred { from, epoch } => {
            buf.push(TAG_TRANSFERRED);
            put_uvarint(buf, from as u64);
            put_uvarint(buf, epoch);
        }
        ShardMsg::Retire { from } => {
            buf.push(TAG_RETIRE);
            put_uvarint(buf, from as u64);
        }
    }
}

fn get_shard_id(buf: &[u8], pos: &mut usize) -> Result<usize, WireError> {
    let id = get_uvarint(buf, pos)?;
    usize::try_from(id).map_err(|_| WireError::BadValue)
}

fn get_target(buf: &[u8], pos: &mut usize) -> Result<Target, WireError> {
    let node = get_uvarint(buf, pos)?;
    let node = u32::try_from(node).map_err(|_| WireError::BadValue)?;
    let port = get_u8(buf, pos)?;
    Ok(Target {
        node: NodeId(node),
        port,
    })
}

/// Decode one cross-shard message from a batch payload.
pub fn get_msg(buf: &[u8], pos: &mut usize) -> Result<ShardMsg, WireError> {
    let tag = get_u8(buf, pos)?;
    match tag {
        TAG_EVENT => {
            let target = get_target(buf, pos)?;
            let time = get_uvarint(buf, pos)?;
            if time == NULL_TS {
                return Err(WireError::BadValue);
            }
            let value = match get_u8(buf, pos)? {
                0 => Logic::Zero,
                1 => Logic::One,
                _ => return Err(WireError::BadValue),
            };
            Ok(ShardMsg::Event { target, time, value })
        }
        TAG_NULL => {
            let target = get_target(buf, pos)?;
            let time = get_uvarint(buf, pos)?;
            // Terminal nulls have their own tag; a lookahead null at the
            // sentinel is a malformed (non-canonical) encoding.
            if time == NULL_TS {
                return Err(WireError::BadValue);
            }
            Ok(ShardMsg::Null { target, time })
        }
        TAG_TERMINAL_NULL => {
            let target = get_target(buf, pos)?;
            Ok(ShardMsg::Null {
                target,
                time: NULL_TS,
            })
        }
        TAG_BARRIER_REQUEST => {
            let from = get_shard_id(buf, pos)?;
            let epoch = get_uvarint(buf, pos)?;
            Ok(ShardMsg::BarrierRequest { from, epoch })
        }
        TAG_BARRIER => {
            let from = get_shard_id(buf, pos)?;
            let epoch = get_uvarint(buf, pos)?;
            let load = get_uvarint(buf, pos)?;
            let depth = get_uvarint(buf, pos)?;
            Ok(ShardMsg::Barrier {
                from,
                epoch,
                load,
                depth,
            })
        }
        TAG_TRANSFERRED => {
            let from = get_shard_id(buf, pos)?;
            let epoch = get_uvarint(buf, pos)?;
            Ok(ShardMsg::Transferred { from, epoch })
        }
        TAG_RETIRE => {
            let from = get_shard_id(buf, pos)?;
            Ok(ShardMsg::Retire { from })
        }
        other => Err(WireError::BadTag(other)),
    }
}

// ---------------------------------------------------------------------------
// Frame codec.

fn frame_kind(frame: &Frame) -> u8 {
    match frame {
        Frame::Batch { .. } => KIND_BATCH,
        Frame::Done { .. } => KIND_DONE,
        Frame::Shutdown => KIND_SHUTDOWN,
        Frame::Outcome { .. } => KIND_OUTCOME,
        Frame::Hello { .. } => KIND_HELLO,
        Frame::ClockPing { .. } => KIND_CLOCK_PING,
        Frame::ClockPong { .. } => KIND_CLOCK_PONG,
        Frame::Telemetry { .. } => KIND_TELEMETRY,
    }
}

fn put_payload(buf: &mut Vec<u8>, frame: &Frame) {
    match frame {
        Frame::Batch { src, seq, msgs } => {
            put_uvarint(buf, *src);
            put_uvarint(buf, *seq);
            put_uvarint(buf, msgs.len() as u64);
            for (dst, msg) in msgs {
                put_uvarint(buf, *dst);
                put_msg(buf, msg);
            }
        }
        Frame::Done { process } => put_uvarint(buf, *process),
        Frame::Shutdown => {}
        Frame::Outcome { shard, blob } => {
            put_uvarint(buf, *shard);
            put_uvarint(buf, blob.len() as u64);
            buf.extend_from_slice(blob);
        }
        Frame::Hello {
            process,
            num_shards,
            digest,
            session_epoch,
            features,
        } => {
            put_uvarint(buf, *process);
            put_uvarint(buf, *num_shards);
            put_uvarint(buf, *digest);
            put_uvarint(buf, *session_epoch);
            // Trailing capability mask, omitted when zero so a
            // no-features handshake stays byte-identical to the
            // pre-extension encoding.
            if *features != 0 {
                put_uvarint(buf, *features);
            }
        }
        Frame::ClockPing { from, t_send_ns } => {
            put_uvarint(buf, *from);
            put_uvarint(buf, *t_send_ns);
        }
        Frame::ClockPong {
            from,
            echo_ns,
            t_rx_ns,
            t_tx_ns,
        } => {
            put_uvarint(buf, *from);
            put_uvarint(buf, *echo_ns);
            put_uvarint(buf, *t_rx_ns);
            put_uvarint(buf, *t_tx_ns);
        }
        Frame::Telemetry { from, seq, blob } => {
            put_uvarint(buf, *from);
            put_uvarint(buf, *seq);
            put_uvarint(buf, blob.len() as u64);
            buf.extend_from_slice(blob);
        }
    }
}

fn get_payload(kind: u8, buf: &[u8]) -> Result<Frame, WireError> {
    let mut pos = 0;
    let frame = match kind {
        KIND_BATCH => {
            let src = get_uvarint(buf, &mut pos)?;
            let seq = get_uvarint(buf, &mut pos)?;
            let count = get_uvarint(buf, &mut pos)?;
            // A message is at least two bytes; reject counts the payload
            // cannot possibly hold before reserving for them.
            if count > (buf.len() as u64) {
                return Err(WireError::BadValue);
            }
            let mut msgs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let dst = get_uvarint(buf, &mut pos)?;
                msgs.push((dst, get_msg(buf, &mut pos)?));
            }
            Frame::Batch { src, seq, msgs }
        }
        KIND_DONE => Frame::Done {
            process: get_uvarint(buf, &mut pos)?,
        },
        KIND_SHUTDOWN => Frame::Shutdown,
        KIND_OUTCOME => {
            let shard = get_uvarint(buf, &mut pos)?;
            let len = get_uvarint(buf, &mut pos)?;
            let end = pos
                .checked_add(usize::try_from(len).map_err(|_| WireError::BadValue)?)
                .ok_or(WireError::BadValue)?;
            if end > buf.len() {
                return Err(WireError::Truncated);
            }
            let blob = buf[pos..end].to_vec();
            pos = end;
            Frame::Outcome { shard, blob }
        }
        KIND_HELLO => {
            let process = get_uvarint(buf, &mut pos)?;
            let num_shards = get_uvarint(buf, &mut pos)?;
            let digest = get_uvarint(buf, &mut pos)?;
            let session_epoch = get_uvarint(buf, &mut pos)?;
            // Optional trailing capability mask (absent == 0).
            let features = if pos < buf.len() {
                get_uvarint(buf, &mut pos)?
            } else {
                0
            };
            Frame::Hello {
                process,
                num_shards,
                digest,
                session_epoch,
                features,
            }
        }
        KIND_CLOCK_PING => Frame::ClockPing {
            from: get_uvarint(buf, &mut pos)?,
            t_send_ns: get_uvarint(buf, &mut pos)?,
        },
        KIND_CLOCK_PONG => Frame::ClockPong {
            from: get_uvarint(buf, &mut pos)?,
            echo_ns: get_uvarint(buf, &mut pos)?,
            t_rx_ns: get_uvarint(buf, &mut pos)?,
            t_tx_ns: get_uvarint(buf, &mut pos)?,
        },
        KIND_TELEMETRY => {
            let from = get_uvarint(buf, &mut pos)?;
            let seq = get_uvarint(buf, &mut pos)?;
            let len = get_uvarint(buf, &mut pos)?;
            let end = pos
                .checked_add(usize::try_from(len).map_err(|_| WireError::BadValue)?)
                .ok_or(WireError::BadValue)?;
            if end > buf.len() {
                return Err(WireError::Truncated);
            }
            let blob = buf[pos..end].to_vec();
            pos = end;
            Frame::Telemetry { from, seq, blob }
        }
        other => return Err(WireError::BadKind(other)),
    };
    if pos != buf.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(frame)
}

/// Encode `frame` into a self-delimiting byte string (header, payload,
/// CRC trailer).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + 16);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(VERSION);
    buf.push(frame_kind(frame));
    buf.extend_from_slice(&[0; 4]); // payload length placeholder
    put_payload(&mut buf, frame);
    let len = (buf.len() - HEADER_LEN) as u32;
    buf[4..8].copy_from_slice(&len.to_le_bytes());
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decode one frame from the front of `buf`. Returns the frame and the
/// number of bytes it occupied.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let magic = u16::from_le_bytes([buf[0], buf[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if buf[2] != VERSION {
        return Err(WireError::BadVersion(buf[2]));
    }
    let kind = buf[3];
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let total = HEADER_LEN + len + TRAILER_LEN;
    if buf.len() < total {
        return Err(WireError::Truncated);
    }
    let body_end = HEADER_LEN + len;
    let found = u32::from_le_bytes([
        buf[body_end],
        buf[body_end + 1],
        buf[body_end + 2],
        buf[body_end + 3],
    ]);
    let expected = crc32(&buf[..body_end]);
    if found != expected {
        return Err(WireError::BadChecksum { expected, found });
    }
    let frame = get_payload(kind, &buf[HEADER_LEN..body_end])?;
    Ok((frame, total))
}

fn read_full(
    r: &mut impl std::io::Read,
    buf: &mut [u8],
    allow_eof_at_start: bool,
) -> Result<bool, WireError> {
    let mut read = 0;
    while read < buf.len() {
        match r.read(&mut buf[read..]) {
            Ok(0) => {
                if read == 0 && allow_eof_at_start {
                    return Ok(false);
                }
                return Err(WireError::Truncated);
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    Ok(true)
}

/// Read one frame from a blocking reader. `Ok(None)` means the stream
/// ended cleanly at a frame boundary; EOF inside a frame is
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header, true)? {
        return Ok(None);
    }
    let magic = u16::from_le_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[2] != VERSION {
        return Err(WireError::BadVersion(header[2]));
    }
    let kind = header[3];
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let mut rest = vec![0u8; len + TRAILER_LEN];
    read_full(r, &mut rest, false)?;
    let found = u32::from_le_bytes([
        rest[len],
        rest[len + 1],
        rest[len + 2],
        rest[len + 3],
    ]);
    let mut checked = Vec::with_capacity(HEADER_LEN + len);
    checked.extend_from_slice(&header);
    checked.extend_from_slice(&rest[..len]);
    let expected = crc32(&checked);
    if found != expected {
        return Err(WireError::BadChecksum { expected, found });
    }
    let frame = get_payload(kind, &rest[..len])?;
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(node: u32, port: u8) -> Target {
        Target {
            node: NodeId(node),
            port,
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn uvarint_round_trips_edge_values() {
        for v in [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn uvarint_rejects_overflow_and_truncation() {
        // Eleven continuation bytes can never be a u64.
        let buf = [0xFF; 11];
        let mut pos = 0;
        assert_eq!(get_uvarint(&buf, &mut pos), Err(WireError::Overflow));
        // A lone continuation byte is truncated input.
        let mut pos = 0;
        assert_eq!(get_uvarint(&[0x80], &mut pos), Err(WireError::Truncated));
    }

    #[test]
    fn terminal_null_has_compact_canonical_form() {
        let msg = ShardMsg::Null {
            target: target(3, 1),
            time: NULL_TS,
        };
        let mut buf = Vec::new();
        put_msg(&mut buf, &msg);
        // tag + node varint + port: three bytes, not a 10-byte varint.
        assert_eq!(buf.len(), 3);
        let mut pos = 0;
        assert_eq!(get_msg(&buf, &mut pos), Ok(msg));
    }

    #[test]
    fn control_messages_round_trip() {
        let msgs = [
            ShardMsg::BarrierRequest { from: 3, epoch: 7 },
            ShardMsg::Barrier {
                from: 0,
                epoch: 12,
                load: 40_000,
                depth: 17,
            },
            ShardMsg::Transferred { from: 2, epoch: 12 },
            ShardMsg::Retire { from: 1 },
        ];
        for msg in msgs {
            let mut buf = Vec::new();
            put_msg(&mut buf, &msg);
            let mut pos = 0;
            assert_eq!(get_msg(&buf, &mut pos), Ok(msg));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn non_canonical_terminal_null_rejected() {
        // TAG_NULL carrying the sentinel timestamp must not decode.
        let mut buf = vec![1u8]; // TAG_NULL
        put_uvarint(&mut buf, 3);
        buf.push(0);
        put_uvarint(&mut buf, NULL_TS);
        let mut pos = 0;
        assert_eq!(get_msg(&buf, &mut pos), Err(WireError::BadValue));
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            Frame::Batch {
                src: 2,
                seq: 17,
                msgs: vec![
                    (
                        0,
                        ShardMsg::Event {
                            target: target(9, 0),
                            time: 42,
                            value: Logic::One,
                        },
                    ),
                    (
                        1,
                        ShardMsg::Null {
                            target: target(1000, 3),
                            time: 7,
                        },
                    ),
                    (
                        3,
                        ShardMsg::Null {
                            target: target(5, 2),
                            time: NULL_TS,
                        },
                    ),
                    (1, ShardMsg::Barrier { from: 2, epoch: 4, load: 10, depth: 0 }),
                    (0, ShardMsg::Retire { from: 2 }),
                ],
            },
            Frame::Done { process: 1 },
            Frame::Shutdown,
            Frame::Outcome {
                shard: 3,
                blob: vec![1, 2, 3, 255],
            },
            Frame::Hello {
                process: 0,
                num_shards: 8,
                digest: 0xDEAD_BEEF,
                session_epoch: 12,
                features: 0,
            },
            Frame::Hello {
                process: 1,
                num_shards: 4,
                digest: 7,
                session_epoch: 0,
                features: FEATURE_TELEMETRY,
            },
            Frame::ClockPing {
                from: 0,
                t_send_ns: 1_234_567_890,
            },
            Frame::ClockPong {
                from: 1,
                echo_ns: 1_234_567_890,
                t_rx_ns: 42,
                t_tx_ns: 77,
            },
            Frame::Telemetry {
                from: 1,
                seq: 9,
                blob: vec![0, 1, 2, 254, 255],
            },
        ];
        for frame in &frames {
            let bytes = encode_frame(frame);
            let (decoded, used) = decode_frame(&bytes).unwrap();
            assert_eq!(&decoded, frame);
            assert_eq!(used, bytes.len());
            // And through the streaming reader.
            let mut cursor = std::io::Cursor::new(bytes);
            assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(frame));
            assert_eq!(read_frame(&mut cursor).unwrap(), None);
        }
    }

    #[test]
    fn bad_magic_version_checksum_detected() {
        let bytes = encode_frame(&Frame::Done { process: 4 });

        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        assert!(matches!(decode_frame(&b), Err(WireError::BadMagic(_))));

        let mut b = bytes.clone();
        b[2] = 9;
        assert_eq!(decode_frame(&b), Err(WireError::BadVersion(9)));

        let mut b = bytes.clone();
        *b.last_mut().unwrap() ^= 0x01;
        assert!(matches!(decode_frame(&b), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn every_truncation_errors_not_panics() {
        let bytes = encode_frame(&Frame::Batch {
            src: 0,
            seq: 1,
            msgs: vec![(
                2,
                ShardMsg::Event {
                    target: target(77, 1),
                    time: 123456,
                    value: Logic::Zero,
                },
            )],
        });
        for cut in 0..bytes.len() {
            assert_eq!(decode_frame(&bytes[..cut]), Err(WireError::Truncated));
            let mut cursor = std::io::Cursor::new(&bytes[..cut]);
            if cut == 0 {
                assert_eq!(read_frame(&mut cursor), Ok(None));
            } else {
                assert!(read_frame(&mut cursor).is_err());
            }
        }
    }

    #[test]
    fn zero_feature_hello_is_byte_identical_to_legacy_encoding() {
        // With telemetry off the handshake must be bit-identical to the
        // pre-extension wire format: four varints, no trailing mask.
        let hello = Frame::Hello {
            process: 2,
            num_shards: 8,
            digest: 0xABCD,
            session_epoch: 3,
            features: 0,
        };
        let bytes = encode_frame(&hello);
        let mut legacy = Vec::with_capacity(HEADER_LEN + 16);
        legacy.extend_from_slice(&MAGIC.to_le_bytes());
        legacy.push(VERSION);
        legacy.push(KIND_HELLO);
        legacy.extend_from_slice(&[0; 4]);
        put_uvarint(&mut legacy, 2);
        put_uvarint(&mut legacy, 8);
        put_uvarint(&mut legacy, 0xABCD);
        put_uvarint(&mut legacy, 3);
        let len = (legacy.len() - HEADER_LEN) as u32;
        legacy[4..8].copy_from_slice(&len.to_le_bytes());
        let crc = crc32(&legacy);
        legacy.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(bytes, legacy);
        // And a legacy (featureless) Hello decodes with features == 0.
        let (decoded, _) = decode_frame(&legacy).unwrap();
        assert_eq!(decoded, hello);
    }

    #[test]
    fn telemetry_blob_and_truncation_are_total() {
        let frame = Frame::Telemetry {
            from: 3,
            seq: 1,
            blob: vec![9; 100],
        };
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap().0, frame);
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn oversized_length_field_is_rejected_without_allocation() {
        let mut bytes = encode_frame(&Frame::Shutdown);
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(WireError::TooLarge(u32::MAX as usize)));
    }
}
