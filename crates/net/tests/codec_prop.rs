//! Property tests for the wire codec: random message streams must
//! round-trip exactly, and arbitrarily mangled input must decode to an
//! error — never a panic, never a bogus frame accepted.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use circuit::{Logic, NodeId, Target, NULL_TS};
use net::wire::{decode_frame, encode_frame, read_frame, Frame, WireError};
use shard::comm::ShardMsg;

fn random_msg(rng: &mut StdRng) -> ShardMsg {
    let target = Target {
        node: NodeId(rng.gen_range(0..1u32 << 20)),
        port: rng.gen_range(0..4u8),
    };
    // Exercise the varint width boundaries as well as typical clocks.
    let time = match rng.gen_range(0..4u8) {
        0 => rng.gen_range(0..128u64),
        1 => rng.gen_range(0..1u64 << 14),
        2 => rng.gen_range(0..1u64 << 28),
        _ => rng.gen_range(0..NULL_TS - 1),
    };
    match rng.gen_range(0..7u8) {
        0 | 1 => ShardMsg::Event {
            target,
            time,
            value: if rng.gen() { Logic::One } else { Logic::Zero },
        },
        2 => ShardMsg::Null { target, time },
        3 => ShardMsg::Null {
            target,
            time: NULL_TS,
        },
        4 => ShardMsg::BarrierRequest {
            from: rng.gen_range(0..64usize),
            epoch: rng.gen_range(0..1u64 << 20),
        },
        5 => ShardMsg::Barrier {
            from: rng.gen_range(0..64usize),
            epoch: rng.gen_range(0..1u64 << 20),
            load: rng.gen_range(0..1u64 << 32),
            depth: rng.gen_range(0..1024u64),
        },
        _ => {
            if rng.gen() {
                ShardMsg::Transferred {
                    from: rng.gen_range(0..64usize),
                    epoch: rng.gen_range(0..1u64 << 20),
                }
            } else {
                ShardMsg::Retire {
                    from: rng.gen_range(0..64usize),
                }
            }
        }
    }
}

fn random_frame(rng: &mut StdRng) -> Frame {
    match rng.gen_range(0..8u8) {
        0 => Frame::Batch {
            src: rng.gen_range(0..64u64),
            seq: rng.gen_range(1..1u64 << 40),
            msgs: (0..rng.gen_range(0..200usize))
                .map(|_| (rng.gen_range(0..64u64), random_msg(rng)))
                .collect(),
        },
        1 => Frame::Done {
            process: rng.gen_range(0..64u64),
        },
        2 => Frame::Shutdown,
        3 => Frame::Outcome {
            shard: rng.gen_range(0..64u64),
            blob: (0..rng.gen_range(0..512usize)).map(|_| rng.gen::<u8>()).collect(),
        },
        4 => Frame::ClockPing {
            from: rng.gen_range(0..64u64),
            t_send_ns: rng.gen::<u64>() >> rng.gen_range(0..64u32),
        },
        5 => Frame::ClockPong {
            from: rng.gen_range(0..64u64),
            echo_ns: rng.gen::<u64>() >> rng.gen_range(0..64u32),
            t_rx_ns: rng.gen::<u64>() >> rng.gen_range(0..64u32),
            t_tx_ns: rng.gen::<u64>() >> rng.gen_range(0..64u32),
        },
        6 => Frame::Telemetry {
            from: rng.gen_range(0..64u64),
            seq: rng.gen_range(0..1u64 << 30),
            blob: (0..rng.gen_range(0..2048usize)).map(|_| rng.gen::<u8>()).collect(),
        },
        _ => Frame::Hello {
            process: rng.gen_range(0..64u64),
            num_shards: rng.gen_range(1..1024u64),
            digest: rng.gen::<u64>(),
            session_epoch: rng.gen_range(0..1u64 << 30),
            // Exercise both the omitted (legacy-identical) and the
            // advertised-features encodings.
            features: if rng.gen() { rng.gen::<u64>() >> 32 } else { 0 },
        },
    }
}

#[test]
fn random_frames_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5DE5_0001);
    for _ in 0..500 {
        let frame = random_frame(&mut rng);
        let bytes = encode_frame(&frame);
        let (back, consumed) = decode_frame(&bytes).expect("own encoding must decode");
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, frame);
    }
}

#[test]
fn random_frame_streams_round_trip_through_read_frame() {
    let mut rng = StdRng::seed_from_u64(0x5DE5_0002);
    for _ in 0..50 {
        let frames: Vec<Frame> = (0..rng.gen_range(1..20usize))
            .map(|_| random_frame(&mut rng))
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let mut reader = std::io::Cursor::new(&stream);
        for f in &frames {
            let got = read_frame(&mut reader).unwrap().expect("frame expected");
            assert_eq!(&got, f);
        }
        // Clean EOF exactly at a frame boundary decodes to None.
        assert!(read_frame(&mut reader).unwrap().is_none());
    }
}

#[test]
fn every_truncation_errors_or_is_clean_eof() {
    let mut rng = StdRng::seed_from_u64(0x5DE5_0003);
    for _ in 0..50 {
        let bytes = encode_frame(&random_frame(&mut rng));
        for len in 0..bytes.len() {
            // Buffer decode: a short buffer is never a valid frame.
            assert!(
                decode_frame(&bytes[..len]).is_err(),
                "decode_frame accepted a {len}-byte prefix of {} bytes",
                bytes.len()
            );
            // Stream decode: zero bytes is a clean EOF, anything else is
            // an unexpected-EOF error.
            let mut reader = std::io::Cursor::new(&bytes[..len]);
            match read_frame(&mut reader) {
                Ok(None) => assert_eq!(len, 0),
                Ok(Some(_)) => panic!("truncated stream produced a frame"),
                Err(_) => assert!(len > 0),
            }
        }
    }
}

#[test]
fn random_corruption_never_panics_and_never_forges_a_frame() {
    let mut rng = StdRng::seed_from_u64(0x5DE5_0004);
    for _ in 0..200 {
        let frame = random_frame(&mut rng);
        let mut bytes = encode_frame(&frame);
        let ix = rng.gen_range(0..bytes.len());
        let flip = 1u8 << rng.gen_range(0..8u8);
        bytes[ix] ^= flip;
        match decode_frame(&bytes) {
            // Either the codec rejects the damage...
            Err(_) => {}
            // ...or the flip must have been masked by the decode (it
            // never is: every byte is covered by the CRC), so an
            // accepted frame differing from the original is a forgery.
            Ok((back, _)) => assert_eq!(back, frame, "corrupt frame accepted"),
        }
    }
}

#[test]
fn pure_noise_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x5DE5_0005);
    for _ in 0..500 {
        let junk: Vec<u8> = (0..rng.gen_range(0..256usize)).map(|_| rng.gen::<u8>()).collect();
        let _ = decode_frame(&junk);
        let mut reader = std::io::Cursor::new(&junk);
        while let Ok(Some(_)) = read_frame(&mut reader) {}
    }
}

#[test]
fn stale_protocol_version_is_rejected() {
    // A peer still speaking wire v1 (pre-recovery fabric) must be
    // refused at the first frame, not misparsed.
    let mut rng = StdRng::seed_from_u64(0x5DE5_0006);
    for _ in 0..50 {
        let mut bytes = encode_frame(&random_frame(&mut rng));
        bytes[2] = 1; // downgrade the version byte
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::BadVersion(1) | WireError::BadChecksum { .. })
        ));
    }
}

#[test]
fn error_display_is_total() {
    // Smoke-check the error type's Display for the variants the fuzz
    // loops above can produce.
    let e = decode_frame(&[0u8; 4]).unwrap_err();
    assert!(!e.to_string().is_empty());
    assert!(matches!(e, WireError::BadMagic { .. } | WireError::Truncated));
}
