//! The single source of truth for `repro`'s experiment list.
//!
//! Every surface that names experiments — the `--help` text, the `all`
//! expansion, the unknown-experiment error, and the README table — must
//! derive from [`EXPERIMENTS`]; the `repro` binary asserts its dispatch
//! table matches this registry, so adding an experiment in one place
//! and not the other fails tests instead of silently drifting.

/// One reproducible experiment of the evaluation.
pub struct Experiment {
    /// CLI name (`repro <name>`).
    pub name: &'static str,
    /// One-line summary for `--help` and the README table.
    pub summary: &'static str,
}

/// Every experiment, in the order `all` runs them.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment { name: "table1", summary: "profiles of the input circuits (nodes, edges, events)" },
    Experiment { name: "table2", summary: "sequential execution time, workset vs priority-queue" },
    Experiment { name: "fig1", summary: "available parallelism over simulated time" },
    Experiment { name: "fig4", summary: "execution time and speedup vs workers (mult12)" },
    Experiment { name: "fig5", summary: "execution time and speedup vs workers (ks64)" },
    Experiment { name: "fig6", summary: "execution time and speedup vs workers (ks128)" },
    Experiment { name: "fig7", summary: "mean execution time ± 95% CI at max workers" },
    Experiment { name: "ablation", summary: "ablation of the §4.5 optimizations" },
    Experiment { name: "ext", summary: "extension engines: Time Warp, HJ, queueing kernels" },
    Experiment { name: "shard", summary: "sharded engine partition quality and cut traffic" },
    Experiment { name: "rebalance", summary: "dynamic shard rebalancing under skew" },
    Experiment { name: "net", summary: "distributed fabric: sockets loopback run" },
    Experiment { name: "faults", summary: "fault-injection drills and structured failures" },
    Experiment { name: "obs", summary: "observability overhead and trace/metric reports" },
    Experiment {
        name: "obs-dist",
        summary: "fleet telemetry: merged trace, clock offsets, straggler report",
    },
    Experiment { name: "recover", summary: "checkpoint/restore recovery drill" },
    Experiment { name: "phold", summary: "PHOLD + M/M/c model workloads, seq vs sharded" },
    Experiment {
        name: "replicate",
        summary: "replication sweep: runs/sec scaling and bit-identical aggregates",
    },
    Experiment {
        name: "mem",
        summary: "memory layer: owned heap vs arena, batched drain, core pinning",
    },
];

/// All experiment names, `all`-expansion order.
pub fn names() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|e| e.name).collect()
}

/// The space-separated name list used by usage strings.
pub fn names_line() -> String {
    let mut line = names().join(" ");
    line.push_str(" all");
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_nonempty() {
        let names = names();
        assert!(!names.is_empty());
        let mut sorted: Vec<_> = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate experiment name");
        for e in EXPERIMENTS {
            assert!(!e.summary.is_empty(), "{} needs a summary", e.name);
            assert!(e
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn all_is_not_a_registered_name() {
        // `all` is the expansion keyword, not an experiment.
        assert!(!names().contains(&"all"));
    }
}
