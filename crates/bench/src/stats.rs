//! Summary statistics for repeated timing runs.
//!
//! The paper reports minimum execution times (Figures 4–6) and means with
//! confidence intervals (Figure 7); we compute both.

use std::time::Duration;

/// Two-sided 95% Student-t critical values for n-1 degrees of freedom
/// (n = sample count), indexed by `df - 1`; falls back to the normal
/// z ≈ 1.96 beyond the table.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Summary of a sample of run times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub min: Duration,
    pub max: Duration,
    pub mean: Duration,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci95_half: Duration,
}

impl Summary {
    /// Summarize a non-empty sample.
    ///
    /// # Panics
    /// If `times` is empty.
    pub fn of(times: &[Duration]) -> Summary {
        assert!(!times.is_empty(), "cannot summarize an empty sample");
        let n = times.len();
        let secs: Vec<f64> = times.iter().map(Duration::as_secs_f64).collect();
        let mean = secs.iter().sum::<f64>() / n as f64;
        let ci_half = if n >= 2 {
            let var = secs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            let se = (var / n as f64).sqrt();
            let t = T_95.get(n - 2).copied().unwrap_or(1.960);
            t * se
        } else {
            0.0
        };
        Summary {
            n,
            min: *times.iter().min().expect("non-empty"),
            max: *times.iter().max().expect("non-empty"),
            mean: Duration::from_secs_f64(mean),
            ci95_half: Duration::from_secs_f64(ci_half),
        }
    }

    /// Speedup of `baseline` over this sample's minimum (the paper's
    /// speedup definition: sequential-Galois time / parallel time, using
    /// minimum times).
    pub fn speedup_vs(&self, baseline: Duration) -> f64 {
        baseline.as_secs_f64() / self.min.as_secs_f64()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:>10.3?}  mean {:>10.3?} ± {:>8.3?} (95% CI, n={})",
            self.min, self.mean, self.ci95_half, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[ms(10), ms(10), ms(10)]);
        assert_eq!(s.min, ms(10));
        assert_eq!(s.mean, ms(10));
        assert_eq!(s.ci95_half, Duration::ZERO);
    }

    #[test]
    fn summary_of_single_run_has_no_ci() {
        let s = Summary::of(&[ms(7)]);
        assert_eq!(s.n, 1);
        assert_eq!(s.ci95_half, Duration::ZERO);
        assert_eq!(s.min, s.max);
    }

    #[test]
    fn ci_uses_t_distribution() {
        // n=2: df=1 → t=12.706; sample {1, 3}s: mean 2, sd=√2, se=1.
        let s = Summary::of(&[Duration::from_secs(1), Duration::from_secs(3)]);
        assert!((s.ci95_half.as_secs_f64() - 12.706).abs() < 1e-6);
    }

    #[test]
    fn speedup_is_baseline_over_min() {
        let s = Summary::of(&[ms(50), ms(100)]);
        assert!((s.speedup_vs(ms(200)) - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }
}
