//! The paper's three evaluation workloads (Table 1) at configurable scale.
//!
//! Paper initial-event counts: mult12 49, ks64 128,258, ks128 66,050 —
//! i.e. roughly `#inputs × #vectors` with 2, 994 and 257 vectors
//! respectively. [`Scale::paper`] reproduces those vector counts;
//! [`Scale::quick`] shrinks them so the whole suite runs in seconds.

use circuit::generators::{kogge_stone_adder, wallace_multiplier};
use circuit::{Circuit, DelayModel, Stimulus};

/// One ready-to-run workload.
pub struct Workload {
    pub name: &'static str,
    pub circuit: Circuit,
    pub stimulus: Stimulus,
    pub delays: DelayModel,
}

impl Workload {
    /// Initial event count (Table 1 column).
    pub fn initial_events(&self) -> usize {
        self.stimulus.num_events()
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("nodes", &self.circuit.num_nodes())
            .field("initial_events", &self.initial_events())
            .finish()
    }
}

/// The three circuits of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperCircuit {
    /// 12-bit tree multiplier.
    Mult12,
    /// 64-bit Kogge–Stone adder.
    Ks64,
    /// 128-bit Kogge–Stone adder.
    Ks128,
}

impl PaperCircuit {
    /// All three, in the paper's Table 1 order.
    pub const ALL: [PaperCircuit; 3] = [PaperCircuit::Mult12, PaperCircuit::Ks64, PaperCircuit::Ks128];

    /// Table-ready name.
    pub fn name(self) -> &'static str {
        match self {
            PaperCircuit::Mult12 => "mult12",
            PaperCircuit::Ks64 => "ks64",
            PaperCircuit::Ks128 => "ks128",
        }
    }

    /// Build the circuit.
    pub fn circuit(self) -> Circuit {
        match self {
            PaperCircuit::Mult12 => wallace_multiplier(12),
            PaperCircuit::Ks64 => kogge_stone_adder(64),
            PaperCircuit::Ks128 => kogge_stone_adder(128),
        }
    }

    /// Build the full workload at the given scale.
    pub fn workload(self, scale: Scale) -> Workload {
        let circuit = self.circuit();
        let vectors = scale.vectors(self);
        // Period 10 keeps consecutive vectors overlapping in flight (the
        // paper's event totals imply heavy in-flight overlap), while the
        // seed pins determinism.
        let stimulus = Stimulus::random_vectors(&circuit, vectors, 10, 0x5EED ^ vectors as u64);
        Workload {
            name: self.name(),
            circuit,
            stimulus,
            delays: DelayModel::standard(),
        }
    }
}

/// How many stimulus vectors to drive per circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    pub mult12_vectors: usize,
    pub ks64_vectors: usize,
    pub ks128_vectors: usize,
}

impl Scale {
    /// The paper's initial-event counts (Table 1).
    pub fn paper() -> Self {
        Scale {
            mult12_vectors: 2,
            ks64_vectors: 994,
            ks128_vectors: 257,
        }
    }

    /// A seconds-scale default for development and CI.
    pub fn quick() -> Self {
        Scale {
            mult12_vectors: 1,
            ks64_vectors: 30,
            ks128_vectors: 12,
        }
    }

    /// A sub-second scale for Criterion micro-runs.
    pub fn tiny() -> Self {
        Scale {
            mult12_vectors: 1,
            ks64_vectors: 4,
            ks128_vectors: 2,
        }
    }

    /// Vector count for one circuit.
    pub fn vectors(self, which: PaperCircuit) -> usize {
        match which {
            PaperCircuit::Mult12 => self.mult12_vectors,
            PaperCircuit::Ks64 => self.ks64_vectors,
            PaperCircuit::Ks128 => self.ks128_vectors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1_initial_events() {
        // Table 1: 49 / 128,258 / 66,050. Ours: #inputs × #vectors.
        let m = PaperCircuit::Mult12.workload(Scale::paper());
        assert_eq!(m.initial_events(), 24 * 2); // paper: 49
        let a = PaperCircuit::Ks64.workload(Scale::paper());
        assert_eq!(a.initial_events(), 129 * 994); // paper: 128,258
        let b = PaperCircuit::Ks128.workload(Scale::paper());
        assert_eq!(b.initial_events(), 257 * 257); // paper: 66,050
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = PaperCircuit::Ks64.workload(Scale::tiny());
        let b = PaperCircuit::Ks64.workload(Scale::tiny());
        assert_eq!(a.stimulus, b.stimulus);
        assert_eq!(a.circuit.num_nodes(), b.circuit.num_nodes());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PaperCircuit::Mult12.name(), "mult12");
        assert_eq!(PaperCircuit::ALL.len(), 3);
    }
}
