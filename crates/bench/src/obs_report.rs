//! The `repro obs` experiment: measure what the sim-obs layer costs and
//! prove the exporters produce machine-readable output.
//!
//! Every engine in [`des::ENGINE_NAMES`] runs the same workload twice —
//! once with a disabled recorder (the default) and once with tracing +
//! metrics enabled — and the report compares min-of-reps times. The
//! enabled run's recorder also feeds the per-engine time breakdown
//! (node-run latency histogram, event throughput) that lands in
//! `BENCH_obs.json`. The JSON is written by hand (this workspace has no
//! serde) and re-parsed with [`obs::json`] before it is trusted.

use std::time::Duration;

use des::engine::{try_build, EngineConfig};
use des::{ObsConfig, Recorder};
use obs::HistogramSnapshot;

use crate::runner::measure;
use crate::workloads::Workload;

/// One engine's disabled-vs-enabled comparison plus the breakdown
/// extracted from the enabled run's recorder.
#[derive(Debug, Clone)]
pub struct ObsEngineRow {
    /// Factory name (`des::ENGINE_NAMES` entry), not the decorated
    /// `Engine::name()`.
    pub engine: String,
    pub disabled_min: Duration,
    pub enabled_min: Duration,
    /// `(enabled - disabled) / disabled`, in percent; negative when the
    /// enabled run happened to be faster (noise).
    pub overhead_pct: f64,
    /// Events delivered in one run (deterministic per engine).
    pub events_delivered: u64,
    /// Events delivered per second of the *enabled* min-time run.
    pub events_per_sec: f64,
    /// Merged `sim_node_run_ns` histogram across the enabled run's
    /// engine labels (the distributed engine publishes one per rank).
    pub node_run_ns: HistogramSnapshot,
}

/// The whole experiment, ready to render or serialize.
#[derive(Debug, Clone)]
pub struct ObsReport {
    pub workload: String,
    pub scale: String,
    pub reps: usize,
    pub rows: Vec<ObsEngineRow>,
}

fn merge_histograms(snaps: &[HistogramSnapshot]) -> HistogramSnapshot {
    let mut merged = HistogramSnapshot::default();
    for s in snaps {
        merged.sum += s.sum;
        merged.count += s.count;
        if merged.buckets.len() < s.buckets.len() {
            merged.buckets.resize(s.buckets.len(), 0);
        }
        for (m, b) in merged.buckets.iter_mut().zip(&s.buckets) {
            *m += b;
        }
    }
    merged
}

/// Configure `name` for this host: parallel engines get `workers`
/// threads, sharded ones a small fixed shard count.
fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig::default().with_workers(workers).with_shards(2)
}

/// Run the disabled/enabled pair for one engine and extract its row.
/// Returns `Err` for unknown engine names.
pub fn measure_engine(
    name: &str,
    workload: &Workload,
    workers: usize,
    reps: usize,
) -> Result<(ObsEngineRow, Recorder), String> {
    let base_cfg = engine_config(workers);
    let disabled = measure(try_build(name, &base_cfg)?.as_ref(), workload, 1, reps);

    let recorder = Recorder::new(&ObsConfig::enabled());
    let enabled_cfg = base_cfg.with_recorder(recorder.clone());
    let enabled = measure(try_build(name, &enabled_cfg)?.as_ref(), workload, 1, reps);

    let d = disabled.summary().min;
    let e = enabled.summary().min;
    let overhead_pct = if d.as_nanos() > 0 {
        (e.as_secs_f64() - d.as_secs_f64()) / d.as_secs_f64() * 100.0
    } else {
        0.0
    };
    let node_run: Vec<HistogramSnapshot> = recorder
        .histogram_values()
        .into_iter()
        .filter(|(n, _, _)| n == "sim_node_run_ns")
        .map(|(_, _, s)| s)
        .collect();
    let events = enabled.sim_stats.events_delivered;
    let row = ObsEngineRow {
        engine: name.to_string(),
        disabled_min: d,
        enabled_min: e,
        overhead_pct,
        events_delivered: events,
        events_per_sec: events as f64 / e.as_secs_f64().max(f64::EPSILON),
        node_run_ns: merge_histograms(&node_run),
    };
    Ok((row, recorder))
}

/// Serialize the report as the `BENCH_obs.json` document.
pub fn to_json(report: &ObsReport) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(2048);
    write!(
        s,
        "{{\"report\":\"obs\",\"workload\":\"{}\",\"scale\":\"{}\",\"reps\":{},\"engines\":[",
        obs::json::escape(&report.workload),
        obs::json::escape(&report.scale),
        report.reps
    )
    .unwrap();
    for (i, r) in report.rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let h = &r.node_run_ns;
        write!(
            s,
            "{{\"engine\":\"{}\",\"disabled_ns\":{},\"enabled_ns\":{},\
             \"overhead_pct\":{:.2},\"events_delivered\":{},\"events_per_sec\":{:.1},\
             \"node_run_ns\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}}}",
            obs::json::escape(&r.engine),
            r.disabled_min.as_nanos(),
            r.enabled_min.as_nanos(),
            r.overhead_pct,
            r.events_delivered,
            r.events_per_sec,
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
        )
        .unwrap();
    }
    s.push_str("]}");
    s
}

/// Parse a `BENCH_obs.json` document back and check its shape: the
/// report tag, and per engine the numeric comparison fields plus a
/// non-degenerate histogram summary. This is what `repro obs` runs on
/// the file it just wrote, and what CI runs on the artifact.
pub fn validate_json(src: &str) -> Result<usize, String> {
    let doc = obs::json::parse(src)?;
    if doc.get("report").and_then(|j| j.as_str()) != Some("obs") {
        return Err("missing report:\"obs\" tag".into());
    }
    let engines = doc
        .get("engines")
        .and_then(|j| j.as_arr())
        .ok_or("missing engines array")?;
    if engines.is_empty() {
        return Err("engines array is empty".into());
    }
    for e in engines {
        let name = e
            .get("engine")
            .and_then(|j| j.as_str())
            .ok_or("engine row without a name")?;
        for key in ["disabled_ns", "enabled_ns", "overhead_pct", "events_delivered"] {
            e.get(key)
                .and_then(|j| j.as_f64())
                .ok_or_else(|| format!("{name}: missing numeric field '{key}'"))?;
        }
        let hist = e
            .get("node_run_ns")
            .ok_or_else(|| format!("{name}: missing node_run_ns"))?;
        for key in ["count", "mean", "p50", "p99"] {
            hist.get(key)
                .and_then(|j| j.as_f64())
                .ok_or_else(|| format!("{name}: node_run_ns missing '{key}'"))?;
        }
    }
    Ok(engines.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{PaperCircuit, Scale};

    #[test]
    fn report_round_trips_through_the_json_parser() {
        let w = PaperCircuit::Ks64.workload(Scale::tiny());
        let mut rows = Vec::new();
        for name in ["seq-workset", "hj"] {
            let (row, _) = measure_engine(name, &w, 2, 1).expect("known engine");
            assert!(row.events_delivered > 0);
            assert!(row.node_run_ns.count > 0, "{name}: histogram populated");
            rows.push(row);
        }
        let report = ObsReport {
            workload: w.name.to_string(),
            scale: "tiny".into(),
            reps: 1,
            rows,
        };
        let json = to_json(&report);
        assert_eq!(validate_json(&json), Ok(2));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("{\"report\":\"obs\",\"engines\":[]}").is_err());
        assert!(validate_json("not json").is_err());
    }
}
