//! The `repro obs` experiment: measure what the sim-obs layer costs and
//! prove the exporters produce machine-readable output.
//!
//! Every engine in [`des::ENGINE_NAMES`] runs the same workload twice —
//! once with a disabled recorder (the default) and once with tracing +
//! metrics enabled — and the report compares min-of-reps times. The
//! enabled run's recorder also feeds the per-engine time breakdown
//! (node-run latency histogram, event throughput) that lands in
//! `BENCH_obs.json`. The JSON is written by hand (this workspace has no
//! serde) and re-parsed with [`obs::json`] before it is trusted.

use std::time::Duration;

use des::engine::{try_build, EngineConfig};
use des::{ObsConfig, Recorder};
use obs::HistogramSnapshot;

use crate::runner::measure;
use crate::workloads::Workload;

/// One engine's disabled-vs-enabled comparison plus the breakdown
/// extracted from the enabled run's recorder.
#[derive(Debug, Clone)]
pub struct ObsEngineRow {
    /// Factory name (`des::ENGINE_NAMES` entry), not the decorated
    /// `Engine::name()`.
    pub engine: String,
    pub disabled_min: Duration,
    pub enabled_min: Duration,
    /// `(enabled - disabled) / disabled`, in percent; negative when the
    /// enabled run happened to be faster (noise).
    pub overhead_pct: f64,
    /// Events delivered in one run (deterministic per engine).
    pub events_delivered: u64,
    /// Events delivered per second of the *enabled* min-time run.
    pub events_per_sec: f64,
    /// Merged `sim_node_run_ns` histogram across the enabled run's
    /// engine labels (the distributed engine publishes one per rank).
    pub node_run_ns: HistogramSnapshot,
}

/// The whole experiment, ready to render or serialize.
#[derive(Debug, Clone)]
pub struct ObsReport {
    pub workload: String,
    pub scale: String,
    pub reps: usize,
    pub rows: Vec<ObsEngineRow>,
}

fn merge_histograms(snaps: &[HistogramSnapshot]) -> HistogramSnapshot {
    let mut merged = HistogramSnapshot::default();
    for s in snaps {
        merged.sum += s.sum;
        merged.count += s.count;
        if merged.buckets.len() < s.buckets.len() {
            merged.buckets.resize(s.buckets.len(), 0);
        }
        for (m, b) in merged.buckets.iter_mut().zip(&s.buckets) {
            *m += b;
        }
    }
    merged
}

/// Configure `name` for this host: parallel engines get `workers`
/// threads, sharded ones a small fixed shard count.
fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig::default().with_workers(workers).with_shards(2)
}

/// Run the disabled/enabled pair for one engine and extract its row.
/// Returns `Err` for unknown engine names.
pub fn measure_engine(
    name: &str,
    workload: &Workload,
    workers: usize,
    reps: usize,
) -> Result<(ObsEngineRow, Recorder), String> {
    let base_cfg = engine_config(workers);
    let disabled = measure(try_build(name, &base_cfg)?.as_ref(), workload, 1, reps);

    let recorder = Recorder::new(&ObsConfig::enabled());
    let enabled_cfg = base_cfg.with_recorder(recorder.clone());
    let enabled = measure(try_build(name, &enabled_cfg)?.as_ref(), workload, 1, reps);

    let d = disabled.summary().min;
    let e = enabled.summary().min;
    let overhead_pct = if d.as_nanos() > 0 {
        (e.as_secs_f64() - d.as_secs_f64()) / d.as_secs_f64() * 100.0
    } else {
        0.0
    };
    let node_run: Vec<HistogramSnapshot> = recorder
        .histogram_values()
        .into_iter()
        .filter(|(n, _, _)| n == "sim_node_run_ns")
        .map(|(_, _, s)| s)
        .collect();
    let events = enabled.sim_stats.events_delivered;
    let row = ObsEngineRow {
        engine: name.to_string(),
        disabled_min: d,
        enabled_min: e,
        overhead_pct,
        events_delivered: events,
        events_per_sec: events as f64 / e.as_secs_f64().max(f64::EPSILON),
        node_run_ns: merge_histograms(&node_run),
    };
    Ok((row, recorder))
}

/// Serialize the report as the `BENCH_obs.json` document.
pub fn to_json(report: &ObsReport) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(2048);
    write!(
        s,
        "{{\"report\":\"obs\",\"workload\":\"{}\",\"scale\":\"{}\",\"reps\":{},\"engines\":[",
        obs::json::escape(&report.workload),
        obs::json::escape(&report.scale),
        report.reps
    )
    .unwrap();
    for (i, r) in report.rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let h = &r.node_run_ns;
        write!(
            s,
            "{{\"engine\":\"{}\",\"disabled_ns\":{},\"enabled_ns\":{},\
             \"overhead_pct\":{:.2},\"events_delivered\":{},\"events_per_sec\":{:.1},\
             \"node_run_ns\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}}}",
            obs::json::escape(&r.engine),
            r.disabled_min.as_nanos(),
            r.enabled_min.as_nanos(),
            r.overhead_pct,
            r.events_delivered,
            r.events_per_sec,
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
        )
        .unwrap();
    }
    s.push_str("]}");
    s
}

/// Parse a `BENCH_obs.json` document back and check its shape: the
/// report tag, and per engine the numeric comparison fields plus a
/// non-degenerate histogram summary. This is what `repro obs` runs on
/// the file it just wrote, and what CI runs on the artifact.
pub fn validate_json(src: &str) -> Result<usize, String> {
    let doc = obs::json::parse(src)?;
    if doc.get("report").and_then(|j| j.as_str()) != Some("obs") {
        return Err("missing report:\"obs\" tag".into());
    }
    let engines = doc
        .get("engines")
        .and_then(|j| j.as_arr())
        .ok_or("missing engines array")?;
    if engines.is_empty() {
        return Err("engines array is empty".into());
    }
    for e in engines {
        let name = e
            .get("engine")
            .and_then(|j| j.as_str())
            .ok_or("engine row without a name")?;
        for key in ["disabled_ns", "enabled_ns", "overhead_pct", "events_delivered"] {
            e.get(key)
                .and_then(|j| j.as_f64())
                .ok_or_else(|| format!("{name}: missing numeric field '{key}'"))?;
        }
        let hist = e
            .get("node_run_ns")
            .ok_or_else(|| format!("{name}: missing node_run_ns"))?;
        for key in ["count", "mean", "p50", "p99"] {
            hist.get(key)
                .and_then(|j| j.as_f64())
                .ok_or_else(|| format!("{name}: node_run_ns missing '{key}'"))?;
        }
    }
    Ok(engines.len())
}

/// Gate a fresh [`ObsReport`] against the committed `BENCH_obs.json`
/// baseline: per engine, the enabled-run overhead may not exceed twice
/// the baseline allowance, where the allowance is the baseline overhead
/// with a noise floor under it (tiny/quick runs swing tens of percent,
/// so a 0.3% baseline must not make a 1% rerun a "3x regression").
/// Returns one verdict line per compared engine; engines absent from
/// the baseline are noted and skipped, optimistic engines are never
/// gated (see `UNGATED`), and a baseline recorded at a different
/// scale skips the whole gate (overhead ratios are only comparable
/// between runs of the same workload size). `Err` names every
/// offender.
pub fn check_regression(baseline_json: &str, report: &ObsReport) -> Result<Vec<String>, String> {
    const FLOOR_PCT: f64 = 25.0;
    const MAX_GROWTH: f64 = 2.0;
    // Optimistic execution has no stable overhead ratio to gate: the
    // recorder's timing perturbation feeds back into the rollback
    // count, which swings the runtime several-fold between identical
    // runs (observed -7%..+230% on the same build on a 1-core host).
    const UNGATED: &[&str] = &["timewarp"];
    let doc = obs::json::parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    if doc.get("report").and_then(|j| j.as_str()) != Some("obs") {
        return Err("baseline: missing report:\"obs\" tag".into());
    }
    if let Some(base_scale) = doc.get("scale").and_then(|j| j.as_str()) {
        if base_scale != report.scale {
            return Ok(vec![format!(
                "baseline is {base_scale}-scale, this run is {}-scale: \
                 not comparable, gate skipped",
                report.scale
            )]);
        }
    }
    let engines = doc
        .get("engines")
        .and_then(|j| j.as_arr())
        .ok_or("baseline: missing engines array")?;
    let mut baseline = std::collections::BTreeMap::new();
    for e in engines {
        let name = e
            .get("engine")
            .and_then(|j| j.as_str())
            .ok_or("baseline: engine row without a name")?;
        let pct = e
            .get("overhead_pct")
            .and_then(|j| j.as_f64())
            .ok_or_else(|| format!("baseline: {name}: missing overhead_pct"))?;
        baseline.insert(name.to_string(), pct);
    }
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for row in &report.rows {
        if UNGATED.contains(&row.engine.as_str()) {
            lines.push(format!(
                "{}: optimistic engine (rollback-count variance), not gated",
                row.engine
            ));
            continue;
        }
        let Some(&base) = baseline.get(&row.engine) else {
            lines.push(format!("{}: no baseline row (new engine), skipped", row.engine));
            continue;
        };
        let allowed = MAX_GROWTH * base.max(FLOOR_PCT);
        let verdict = format!(
            "{}: overhead {:+.1}% vs allowance {:+.1}% (baseline {:+.1}%)",
            row.engine, row.overhead_pct, allowed, base
        );
        if row.overhead_pct > allowed {
            failures.push(verdict);
        } else {
            lines.push(verdict);
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures.join("; "))
    }
}

// ---------------------------------------------------------------------
// The `repro obs-dist` fleet summary (`BENCH_obs_dist.json`).
// ---------------------------------------------------------------------

/// One rank's slice of the fleet summary: its engine identity, how long
/// its shards sat blocked on NULLs, and the coordinator's clock-offset
/// estimate for its link (zeros for the coordinator itself — there is
/// no link to measure).
#[derive(Debug, Clone)]
pub struct ObsDistRank {
    pub rank: u64,
    pub engine: String,
    pub null_wait_ns: u64,
    pub clock_offset_ns: i64,
    pub clock_rtt_ns: u64,
    pub clock_samples: u64,
}

/// The whole `repro obs-dist` run, ready to serialize.
#[derive(Debug, Clone)]
pub struct ObsDistReport {
    pub workload: String,
    pub scale: String,
    pub shards: usize,
    pub processes: usize,
    /// Fleet-wide merged total from the coordinator's final publish.
    pub events_delivered: u64,
    /// Events in the merged, offset-corrected Perfetto document.
    pub trace_events: usize,
    pub ranks: Vec<ObsDistRank>,
    pub straggler: obs::StragglerReport,
}

/// Serialize the fleet summary as the `BENCH_obs_dist.json` document.
pub fn dist_to_json(report: &ObsDistReport) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(1024);
    write!(
        s,
        "{{\"report\":\"obs-dist\",\"workload\":\"{}\",\"scale\":\"{}\",\
         \"shards\":{},\"processes\":{},\"events_delivered\":{},\"trace_events\":{},\"ranks\":[",
        obs::json::escape(&report.workload),
        obs::json::escape(&report.scale),
        report.shards,
        report.processes,
        report.events_delivered,
        report.trace_events,
    )
    .unwrap();
    for (i, r) in report.ranks.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write!(
            s,
            "{{\"rank\":{},\"engine\":\"{}\",\"null_wait_ns\":{},\
             \"clock_offset_ns\":{},\"clock_rtt_ns\":{},\"clock_samples\":{}}}",
            r.rank,
            obs::json::escape(&r.engine),
            r.null_wait_ns,
            r.clock_offset_ns,
            r.clock_rtt_ns,
            r.clock_samples,
        )
        .unwrap();
    }
    write!(
        s,
        "],\"straggler\":{{\"total_wait_ns\":{},\"links\":{}",
        report.straggler.total_wait_ns,
        report.straggler.entries.len()
    )
    .unwrap();
    if let Some(top) = report.straggler.top() {
        write!(
            s,
            ",\"top_rank\":{},\"top_peer\":\"{}\",\"top_share_pct\":{:.1}",
            top.rank,
            obs::json::escape(&top.peer),
            top.share * 100.0
        )
        .unwrap();
    }
    s.push_str("}}");
    s
}

/// Parse a `BENCH_obs_dist.json` document back and check its shape.
/// Returns the number of rank rows. This is what `repro obs-dist` runs
/// on the file it just wrote, and what CI runs on the artifact.
pub fn validate_dist_json(src: &str) -> Result<usize, String> {
    let doc = obs::json::parse(src)?;
    if doc.get("report").and_then(|j| j.as_str()) != Some("obs-dist") {
        return Err("missing report:\"obs-dist\" tag".into());
    }
    for key in ["shards", "processes", "events_delivered", "trace_events"] {
        doc.get(key)
            .and_then(|j| j.as_f64())
            .ok_or_else(|| format!("missing numeric field '{key}'"))?;
    }
    let ranks = doc
        .get("ranks")
        .and_then(|j| j.as_arr())
        .ok_or("missing ranks array")?;
    if ranks.is_empty() {
        return Err("ranks array is empty".into());
    }
    for r in ranks {
        r.get("engine")
            .and_then(|j| j.as_str())
            .ok_or("rank row without an engine")?;
        for key in ["rank", "null_wait_ns", "clock_offset_ns", "clock_rtt_ns", "clock_samples"] {
            r.get(key)
                .and_then(|j| j.as_f64())
                .ok_or_else(|| format!("rank row missing numeric field '{key}'"))?;
        }
    }
    let straggler = doc.get("straggler").ok_or("missing straggler object")?;
    let total = straggler
        .get("total_wait_ns")
        .and_then(|j| j.as_f64())
        .ok_or("straggler missing total_wait_ns")?;
    if total > 0.0 {
        straggler
            .get("top_peer")
            .and_then(|j| j.as_str())
            .ok_or("straggler wait recorded but no top_peer named")?;
    }
    Ok(ranks.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{PaperCircuit, Scale};

    #[test]
    fn report_round_trips_through_the_json_parser() {
        let w = PaperCircuit::Ks64.workload(Scale::tiny());
        let mut rows = Vec::new();
        for name in ["seq-workset", "hj"] {
            let (row, _) = measure_engine(name, &w, 2, 1).expect("known engine");
            assert!(row.events_delivered > 0);
            assert!(row.node_run_ns.count > 0, "{name}: histogram populated");
            rows.push(row);
        }
        let report = ObsReport {
            workload: w.name.to_string(),
            scale: "tiny".into(),
            reps: 1,
            rows,
        };
        let json = to_json(&report);
        assert_eq!(validate_json(&json), Ok(2));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("{\"report\":\"obs\",\"engines\":[]}").is_err());
        assert!(validate_json("not json").is_err());
    }

    fn gate_report(rows: &[(&str, f64)]) -> ObsReport {
        ObsReport {
            workload: "ks128".into(),
            scale: "quick".into(),
            reps: 1,
            rows: rows
                .iter()
                .map(|(name, pct)| ObsEngineRow {
                    engine: name.to_string(),
                    disabled_min: Duration::from_millis(1),
                    enabled_min: Duration::from_millis(1),
                    overhead_pct: *pct,
                    events_delivered: 1,
                    events_per_sec: 1.0,
                    node_run_ns: HistogramSnapshot::default(),
                })
                .collect(),
        }
    }

    #[test]
    fn regression_gate_applies_floor_and_growth_factor() {
        let baseline = "{\"report\":\"obs\",\"engines\":[\
            {\"engine\":\"hj\",\"overhead_pct\":2.0},\
            {\"engine\":\"sharded\",\"overhead_pct\":40.0}]}";
        // Tiny baseline overhead: the 25% floor doubles to a 50% allowance.
        let ok = gate_report(&[("hj", 49.0), ("sharded", 79.0), ("brand-new", 900.0)]);
        let lines = check_regression(baseline, &ok).expect("within allowance");
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().any(|l| l.contains("skipped")), "{lines:?}");
        // Past 2x the floored baseline: fail, naming the engine.
        let bad = gate_report(&[("hj", 51.0)]);
        let err = check_regression(baseline, &bad).unwrap_err();
        assert!(err.contains("hj"), "{err}");
        // Large baseline overhead dominates the floor: 40% -> 80% allowance.
        assert!(check_regression(baseline, &gate_report(&[("sharded", 81.0)])).is_err());
        // A malformed baseline is an error, not a silent pass.
        assert!(check_regression("{}", &ok).is_err());
        // Optimistic engines are never gated: rollback-count variance
        // makes their overhead ratio meaningless run to run.
        let warped = gate_report(&[("timewarp", 900.0)]);
        let lines = check_regression(baseline, &warped).expect("timewarp is not gated");
        assert!(lines[0].contains("not gated"), "{lines:?}");
    }

    #[test]
    fn regression_gate_skips_cross_scale_comparisons() {
        // Overhead ratios from a tiny run say nothing about a quick
        // baseline (and vice versa): the gate must stand down rather
        // than flag a phantom regression — or wave a real one through.
        let tiny_baseline = "{\"report\":\"obs\",\"scale\":\"tiny\",\"engines\":[\
            {\"engine\":\"hj\",\"overhead_pct\":2.0}]}";
        let quick_run = gate_report(&[("hj", 500.0)]);
        let lines = check_regression(tiny_baseline, &quick_run).expect("skipped, not failed");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("gate skipped"), "{lines:?}");
        // Same scale still gates.
        let quick_baseline = tiny_baseline.replace("tiny", "quick");
        assert!(check_regression(&quick_baseline, &quick_run).is_err());
    }

    #[test]
    fn dist_report_round_trips_through_the_json_parser() {
        let report = ObsDistReport {
            workload: "ks128".into(),
            scale: "quick".into(),
            shards: 4,
            processes: 2,
            events_delivered: 1000,
            trace_events: 12,
            ranks: vec![
                ObsDistRank {
                    rank: 0,
                    engine: "dist[p=0/2]".into(),
                    null_wait_ns: 500,
                    clock_offset_ns: 0,
                    clock_rtt_ns: 0,
                    clock_samples: 0,
                },
                ObsDistRank {
                    rank: 1,
                    engine: "dist[p=1/2]".into(),
                    null_wait_ns: 1500,
                    clock_offset_ns: -40,
                    clock_rtt_ns: 9000,
                    clock_samples: 5,
                },
            ],
            straggler: obs::StragglerReport {
                entries: vec![obs::StragglerEntry {
                    rank: 1,
                    peer: "0".into(),
                    wait_ns: 1500,
                    share: 0.75,
                }],
                total_wait_ns: 2000,
            },
        };
        let json = dist_to_json(&report);
        assert_eq!(validate_dist_json(&json), Ok(2));
        assert!(json.contains("\"top_peer\":\"0\""), "{json}");
        // Zero-wait fleets omit the top link and still validate.
        let mut quiet = report.clone();
        quiet.straggler = obs::StragglerReport::default();
        assert_eq!(validate_dist_json(&dist_to_json(&quiet)), Ok(2));
    }

    #[test]
    fn validate_dist_rejects_malformed_documents() {
        assert!(validate_dist_json("{}").is_err());
        assert!(validate_dist_json("{\"report\":\"obs-dist\"}").is_err());
        // A recorded wait without an attributed top link is malformed.
        let no_top = "{\"report\":\"obs-dist\",\"workload\":\"w\",\"scale\":\"s\",\
            \"shards\":4,\"processes\":2,\"events_delivered\":1,\"trace_events\":1,\
            \"ranks\":[{\"rank\":0,\"engine\":\"e\",\"null_wait_ns\":1,\
            \"clock_offset_ns\":0,\"clock_rtt_ns\":0,\"clock_samples\":0}],\
            \"straggler\":{\"total_wait_ns\":5,\"links\":0}}";
        assert!(validate_dist_json(no_top).is_err());
    }
}
