//! # des-bench — the experiment harness
//!
//! Reproduces every table and figure of the paper's evaluation (§5):
//! Table 1 (circuit profiles), Table 2 (sequential execution times),
//! Figure 1 (available parallelism), Figures 4–6 (execution time and
//! speedup vs. worker count for the three circuits), Figure 7 (mean ±
//! confidence interval at the maximum worker count), plus the §4.5
//! ablations. The `repro` binary prints paper-style rows; the Criterion
//! benches under `benches/` regenerate the same measurements in a
//! statistics-friendly harness.

pub mod experiments;
pub mod obs_report;
pub mod report;
pub mod runner;
pub mod stats;
pub mod workloads;

pub use experiments::{Experiment, EXPERIMENTS};
pub use runner::{measure, Measurement};
pub use stats::Summary;
pub use workloads::{PaperCircuit, Scale, Workload};
