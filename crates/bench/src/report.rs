//! Plain-text table rendering for the `repro` binary's paper-style output.

/// A simple fixed-width table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a duration in engineering style (µs/ms/s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Format a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["circuit", "nodes"]);
        t.row(["mult12", "2731"]).row(["ks64", "1306"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("circuit"));
        assert!(lines[2].contains("2731"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0 µs");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(56_035_581), "56,035,581");
    }
}
