//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [OPTIONS] [EXPERIMENT...]
//!
//! EXPERIMENTS: see `repro --help` — the list is generated from
//! `des_bench::experiments::EXPERIMENTS`, the single source of truth
//! the dispatch table below is tested against.
//!
//! OPTIONS:
//!   --full            paper-scale stimuli (Table 1 initial-event counts)
//!   --tiny            sub-second stimuli (CI smoke)
//!   --workers LIST    comma-separated worker counts (default 1,2,4)
//!   --reps N          repetitions per timing point (default 3; paper: 20)
//! ```
//!
//! Host note: the evaluation machine in the paper had 32 POWER7 cores;
//! worker counts beyond this host's cores measure oversubscription, not
//! scaling. The engine-vs-engine comparison is the reproducible claim.

use std::sync::Arc;

use des::engine::hj::{HjEngine, HjEngineConfig};
use des::engine::seq::SeqWorksetEngine;
use des::engine::seq_heap::SeqHeapEngine;
use des::engine::timewarp::TimeWarpEngine;
use des::engine::{Engine, EngineConfig};
use des::profile::available_parallelism;
use des_bench::report::{fmt_count, fmt_duration, Table};
use des_bench::runner::measure;
use des_bench::workloads::{PaperCircuit, Scale, Workload};
use galois::{GaloisEngine, GaloisSeqEngine};
use hj::HjRuntime;

struct Options {
    scale: Scale,
    scale_name: &'static str,
    workers: Vec<usize>,
    reps: usize,
    experiments: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: Scale::quick(),
        scale_name: "quick",
        workers: vec![1, 2, 4],
        reps: 3,
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => {
                opts.scale = Scale::paper();
                opts.scale_name = "paper";
            }
            "--tiny" => {
                opts.scale = Scale::tiny();
                opts.scale_name = "tiny";
            }
            "--workers" => {
                let list = args.next().expect("--workers needs a value");
                opts.workers = list
                    .split(',')
                    .map(|w| w.parse().expect("worker counts are integers"))
                    .collect();
            }
            "--reps" => {
                opts.reps = args
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("reps is an integer");
            }
            "--help" | "-h" => {
                println!("usage: repro [--full|--tiny] [--workers 1,2,4] [--reps N] [EXPERIMENT...]");
                println!("experiments ('all' or none runs every row):");
                for e in des_bench::EXPERIMENTS {
                    println!("  {:<10} {}", e.name, e.summary);
                }
                std::process::exit(0);
            }
            exp => opts.experiments.push(exp.to_string()),
        }
    }
    if opts.experiments.is_empty() || opts.experiments.iter().any(|e| e == "all") {
        opts.experiments =
            des_bench::experiments::names().iter().map(|s| s.to_string()).collect();
    }
    opts
}

/// Experiment dispatch. Kept in lockstep with
/// [`des_bench::experiments::EXPERIMENTS`] — see the test below.
type ExperimentFn = fn(&Options);
const DISPATCH: &[(&str, ExperimentFn)] = &[
    ("table1", table1),
    ("table2", table2),
    ("fig1", fig1),
    ("fig4", |o| figure_sweep(o, PaperCircuit::Mult12, "Figure 4")),
    ("fig5", |o| figure_sweep(o, PaperCircuit::Ks64, "Figure 5")),
    ("fig6", |o| figure_sweep(o, PaperCircuit::Ks128, "Figure 6")),
    ("fig7", fig7),
    ("ablation", ablation),
    ("ext", extensions),
    ("shard", shard_experiment),
    ("rebalance", rebalance_experiment),
    ("net", net_experiment),
    ("faults", faults),
    ("obs", obs_experiment),
    ("obs-dist", obs_dist_experiment),
    ("recover", recover_experiment),
    ("phold", phold_experiment),
    ("replicate", replicate_experiment),
    ("mem", mem_experiment),
];

fn main() {
    let opts = parse_args();
    println!(
        "# PMAM'15 DES reproduction — scale={}, workers={:?}, reps={}, host cores={}",
        opts.scale_name,
        opts.workers,
        opts.reps,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    println!();
    for exp in &opts.experiments {
        match DISPATCH.iter().find(|(name, _)| name == exp) {
            Some((_, run)) => run(&opts),
            None => eprintln!(
                "unknown experiment {exp:?} — known: {}",
                des_bench::experiments::names_line()
            ),
        }
    }
}


/// Paper values for side-by-side reporting.
fn paper_table1(which: PaperCircuit) -> (u64, u64, u64, u64) {
    // (nodes, edges, initial events, total events)
    match which {
        PaperCircuit::Mult12 => (2_731, 5_100, 49, 56_035_581),
        PaperCircuit::Ks64 => (1_306, 2_289, 128_258, 89_683_016),
        PaperCircuit::Ks128 => (2_973, 5_303, 66_050, 102_591_960),
    }
}

fn table1(opts: &Options) {
    println!("## Table 1: profiles of the input circuits");
    let mut t = Table::new([
        "circuit", "nodes", "nodes(paper)", "edges", "edges(paper)", "init ev", "init(paper)",
        "total ev", "total(paper)",
    ]);
    for pc in PaperCircuit::ALL {
        let w = pc.workload(opts.scale);
        let out = SeqWorksetEngine::new().run(&w.circuit, &w.stimulus, &w.delays);
        let (pn, pe, pi, pt) = paper_table1(pc);
        t.row([
            w.name.to_string(),
            fmt_count(w.circuit.num_nodes() as u64),
            fmt_count(pn),
            fmt_count(w.circuit.num_edges() as u64),
            fmt_count(pe),
            fmt_count(w.initial_events() as u64),
            fmt_count(pi),
            fmt_count(out.stats.events_delivered),
            fmt_count(pt),
        ]);
    }
    println!("{}", t.render());
}

fn table2(opts: &Options) {
    println!("## Table 2: sequential execution time (ArrayDeque-style vs PriorityQueue-style)");
    let mut t = Table::new(["circuit", "hj-seq (min)", "galois-seq (min)", "ratio", "paper ratio"]);
    for pc in PaperCircuit::ALL {
        let w = pc.workload(opts.scale);
        let hj = measure(&SeqWorksetEngine::new(), &w, 1, opts.reps).summary();
        let ga = measure(&GaloisSeqEngine::new(), &w, 1, opts.reps).summary();
        let ratio = ga.min.as_secs_f64() / hj.min.as_secs_f64();
        let paper_ratio = match pc {
            PaperCircuit::Mult12 => 84_077.0 / 31_934.0,
            PaperCircuit::Ks64 => 134_061.0 / 49_004.0,
            PaperCircuit::Ks128 => 163_643.0 / 66_363.0,
        };
        t.row([
            w.name.to_string(),
            fmt_duration(hj.min),
            fmt_duration(ga.min),
            format!("{ratio:.2}x"),
            format!("{paper_ratio:.2}x"),
        ]);
    }
    println!("{}", t.render());
    // Cross-check: the global-heap reference should also be slower than
    // the per-port-deque engine.
    let w = PaperCircuit::Ks64.workload(opts.scale);
    let heap = measure(&SeqHeapEngine::new(), &w, 1, opts.reps).summary();
    println!(
        "(reference: global-event-heap engine on ks64: min {})\n",
        fmt_duration(heap.min)
    );
}

fn fig1(opts: &Options) {
    println!("## Figure 1: available parallelism in DES (tree multiplier)");
    let w = PaperCircuit::Mult12.workload(opts.scale);
    let p = available_parallelism(&w.circuit, &w.stimulus, &w.delays);
    println!(
        "rounds={} peak={} mean={:.1} total events={}",
        p.rounds(),
        p.peak(),
        p.mean(),
        fmt_count(p.total_events)
    );
    // Condense to at most 60 buckets (max-pooled) for terminal display.
    let n = p.active_per_round.len();
    let bucket = n.div_ceil(60).max(1);
    println!("step  parallelism (each row max-pools {bucket} steps)");
    let peak = p.peak().max(1);
    for (b, chunk) in p.active_per_round.chunks(bucket).enumerate() {
        let m = chunk.iter().copied().max().unwrap_or(0);
        let bar_len = m * 50 / peak;
        println!("{:>5} {:>6} {}", b * bucket, m, "#".repeat(bar_len));
    }
    println!();
}

fn figure_sweep(opts: &Options, pc: PaperCircuit, figure: &str) {
    println!(
        "## {figure}: execution time and speedup vs workers ({})",
        pc.name()
    );
    let w = pc.workload(opts.scale);
    // Speedup baseline: sequential Galois (the paper's choice).
    let baseline = measure(&GaloisSeqEngine::new(), &w, 1, opts.reps).summary().min;
    println!("baseline (galois-seq, min): {}", fmt_duration(baseline));
    let mut t = Table::new([
        "workers", "hj (min)", "hj speedup", "galois (min)", "galois speedup", "hj/galois",
    ]);
    for &workers in &opts.workers {
        let rt = Arc::new(HjRuntime::new(workers));
        let hj_engine = HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default());
        let hj = measure(&hj_engine, &w, 1, opts.reps).summary();
        let ga = measure(&GaloisEngine::new(workers), &w, 1, opts.reps).summary();
        t.row([
            workers.to_string(),
            fmt_duration(hj.min),
            format!("{:.2}x", hj.speedup_vs(baseline)),
            fmt_duration(ga.min),
            format!("{:.2}x", ga.speedup_vs(baseline)),
            format!("{:.2}", hj.min.as_secs_f64() / ga.min.as_secs_f64()),
        ]);
    }
    println!("{}", t.render());
}

fn fig7(opts: &Options) {
    let workers = *opts.workers.iter().max().expect("non-empty worker list");
    println!("## Figure 7: mean execution time ± 95% CI at {workers} workers (n={})", opts.reps);
    let mut t = Table::new(["circuit", "hj mean", "hj ±CI", "galois mean", "galois ±CI"]);
    for pc in PaperCircuit::ALL {
        let w = pc.workload(opts.scale);
        let rt = Arc::new(HjRuntime::new(workers));
        let hj_engine = HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default());
        let hj = measure(&hj_engine, &w, 1, opts.reps).summary();
        let ga = measure(&GaloisEngine::new(workers), &w, 1, opts.reps).summary();
        t.row([
            w.name.to_string(),
            fmt_duration(hj.mean),
            fmt_duration(hj.ci95_half),
            fmt_duration(ga.mean),
            fmt_duration(ga.ci95_half),
        ]);
    }
    println!("{}", t.render());
}

fn ablation_configs() -> Vec<(&'static str, HjEngineConfig)> {
    vec![
        ("all-on (paper)", HjEngineConfig::default()),
        (
            "per-node locks (§4.5.1a off)",
            HjEngineConfig {
                per_port_locks: false,
                ..HjEngineConfig::default()
            },
        ),
        (
            "no early release (§4.5.1b off)",
            HjEngineConfig {
                early_port_release: false,
                ..HjEngineConfig::default()
            },
        ),
        (
            "redundant spawns (§4.5.3 off)",
            HjEngineConfig {
                avoid_redundant_spawns: false,
                ..HjEngineConfig::default()
            },
        ),
    ]
}

fn ablation(opts: &Options) {
    let workers = *opts.workers.iter().max().expect("non-empty worker list");
    println!("## Ablation of the §4.5 optimizations ({} workers)", workers);
    for pc in [PaperCircuit::Ks64, PaperCircuit::Mult12] {
        let w: Workload = pc.workload(opts.scale);
        println!("### {}", w.name);
        let mut t = Table::new(["configuration", "min time", "lock failures", "wasted", "tasks note"]);
        for (label, config) in ablation_configs() {
            let rt = Arc::new(HjRuntime::new(workers));
            let engine = HjEngine::with_config(Arc::clone(&rt), config);
            let m = measure(&engine, &w, 1, opts.reps);
            let s = m.summary();
            t.row([
                label.to_string(),
                fmt_duration(s.min),
                fmt_count(m.sim_stats.lock_failures),
                fmt_count(m.sim_stats.wasted_activations),
                format!("{} runs", fmt_count(m.sim_stats.node_runs)),
            ]);
        }
        println!("{}", t.render());
    }
    // §4.5.1 queue-representation ablation is Table 2 (deque vs ordered
    // queue); §4.5.2 (AtomicBool vs heavier locks) is benchmarked in
    // `benches/ablation_queues.rs`.
}

fn extensions(opts: &Options) {
    let workers = *opts.workers.iter().max().expect("non-empty worker list");
    println!("## Extensions: optimistic Time Warp vs conservative HJ ({} workers)", workers);
    let mut t = Table::new(["circuit", "hj (min)", "timewarp (min)", "rollbacks", "wasted spec."]);
    for pc in PaperCircuit::ALL {
        let w = pc.workload(opts.scale);
        let rt = Arc::new(HjRuntime::new(workers));
        let hj_engine = HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default());
        let hj = measure(&hj_engine, &w, 1, opts.reps).summary();
        let tw_engine = TimeWarpEngine::from_config(&EngineConfig::default().with_workers(workers));
        let tw = measure(&tw_engine, &w, 1, opts.reps);
        let tws = tw.summary();
        t.row([
            w.name.to_string(),
            fmt_duration(hj.min),
            fmt_duration(tws.min),
            fmt_count(tw.sim_stats.aborts),
            fmt_count(tw.sim_stats.wasted_activations),
        ]);
    }
    println!("{}", t.render());

    println!("## Extensions: queueing networks on the generic PDES kernel (§6 future work)");
    use pdes::kernel::{ParKernel, SeqKernel};
    use pdes::queueing::{self, NetworkSpec};
    let horizon = 60_000;
    let mut t = Table::new([
        "network", "packets", "mean latency", "payload ev", "null msgs", "seq (min)", "par (min)",
    ]);
    for spec in [
        NetworkSpec::tandem(4, 0.7, 1),
        NetworkSpec::feedback(0.35, 2),
        NetworkSpec::ring(4, 0.5, 3),
        NetworkSpec::jackson(4),
        NetworkSpec::fork_join(5),
    ] {
        let mut seq_times = Vec::new();
        let mut par_times = Vec::new();
        let mut result = None;
        for _ in 0..opts.reps {
            let t0 = std::time::Instant::now();
            let r = queueing::run(&spec, &SeqKernel::new(), horizon);
            seq_times.push(t0.elapsed());
            let t0 = std::time::Instant::now();
            let p = queueing::run(&spec, &ParKernel::new(workers), horizon);
            par_times.push(t0.elapsed());
            assert_eq!(r.observables(), p.observables(), "kernels agree");
            result = Some(r);
        }
        let r = result.expect("reps >= 1");
        t.row([
            spec.name.to_string(),
            fmt_count(r.sinks[0].received),
            format!("{:.1} ticks", r.sinks[0].mean_latency()),
            fmt_count(r.stats.events_delivered),
            fmt_count(r.stats.nulls_sent),
            fmt_duration(*seq_times.iter().min().expect("non-empty")),
            fmt_duration(*par_times.iter().min().expect("non-empty")),
        ]);
    }
    println!("{}", t.render());
}

/// Sharded conservative engine: partition quality (cut edges, load
/// imbalance) across strategies and shard counts, and the cross-shard
/// traffic each partition induces at run time (DESIGN.md "Sharded
/// conservative engine").
fn shard_experiment(opts: &Options) {
    use des::engine::sharded::ShardedEngine;
    use des::{Partition, PartitionStrategy};

    println!("## Sharded engine: partition quality and cut traffic (K shard threads)");
    let baseline_w = PaperCircuit::Ks64.workload(opts.scale);
    let baseline = measure(&SeqWorksetEngine::new(), &baseline_w, 1, opts.reps)
        .summary()
        .min;
    println!(
        "baseline (seq-workset on {}, min): {}",
        baseline_w.name,
        fmt_duration(baseline)
    );
    for pc in [PaperCircuit::Ks64, PaperCircuit::Ks128] {
        let w = pc.workload(opts.scale);
        println!("### {}", w.name);
        let mut t = Table::new([
            "shards", "strategy", "cut edges", "imbalance", "min time", "cut events",
            "shard nulls",
        ]);
        for k in [2usize, 4, 8] {
            for strategy in [
                PartitionStrategy::RoundRobin,
                PartitionStrategy::BfsLayered,
                PartitionStrategy::GreedyCut,
            ] {
                let partition = Partition::build(&w.circuit, k, strategy);
                let metrics = partition.metrics(&w.circuit);
                let engine = ShardedEngine::from_config(
                    &EngineConfig::default().with_shards(k).with_strategy(strategy),
                );
                let m = measure(&engine, &w, 1, opts.reps);
                let s = m.summary();
                t.row([
                    k.to_string(),
                    strategy.name().to_string(),
                    fmt_count(metrics.cut_edges as u64),
                    format!("{}%", metrics.load_imbalance_pct),
                    fmt_duration(s.min),
                    fmt_count(m.sim_stats.cut_events_sent),
                    fmt_count(m.sim_stats.shard_nulls_sent),
                ]);
            }
        }
        println!("{}", t.render());
    }
}

/// Dynamic repartitioning experiment (DESIGN.md §10): a deliberately
/// skewed stimulus concentrates events on a few inputs of ks128, so the
/// node-count-balanced static partition is badly load-imbalanced. The
/// rebalancing engine must observe that imbalance at its epoch barriers,
/// migrate boundary nodes off the hot shard, and report a lower observed
/// imbalance — with the deterministic observables untouched.
fn rebalance_experiment(opts: &Options) {
    use des::engine::sharded::ShardedEngine;
    use des::validate::check_equivalent;
    use des::RebalancePolicy;

    let base = PaperCircuit::Ks128.workload(opts.scale);
    let num_vectors = opts.scale.vectors(PaperCircuit::Ks128).max(8);
    let stimulus =
        circuit::Stimulus::skewed_vectors(&base.circuit, num_vectors, 10, 0xD15EA5E, 8);
    let w = Workload {
        name: "ks128-skewed",
        circuit: base.circuit,
        stimulus,
        delays: base.delays,
    };
    println!(
        "## Dynamic repartitioning: skewed {} ({} initial events), K=4 shards",
        w.name,
        w.initial_events()
    );
    let policy = RebalancePolicy {
        epoch_events: 512,
        min_imbalance_pct: 10,
        max_moves: 64,
    };
    let cfg = EngineConfig::default().with_shards(4);
    let static_m = measure(&ShardedEngine::from_config(&cfg), &w, 1, opts.reps);
    let dynamic_m = measure(
        &ShardedEngine::from_config(&cfg.clone().with_rebalance(Some(policy))),
        &w,
        1,
        opts.reps,
    );

    let mut t = Table::new([
        "engine", "min time", "observed imbalance", "rebalances", "nodes moved", "cut events",
    ]);
    for (label, m) in [("static", &static_m), ("rebalancing", &dynamic_m)] {
        let s = &m.sim_stats;
        t.row([
            label.to_string(),
            fmt_duration(m.summary().min),
            format!("{}%", s.shard_load_imbalance_pct),
            fmt_count(s.rebalances),
            fmt_count(s.nodes_migrated),
            fmt_count(s.cut_events_sent),
        ]);
    }
    println!("{}", t.render());

    let static_out = ShardedEngine::from_config(&cfg).run(&w.circuit, &w.stimulus, &w.delays);
    let dynamic_out = ShardedEngine::from_config(&cfg.clone().with_rebalance(Some(policy)))
        .run(&w.circuit, &w.stimulus, &w.delays);
    check_equivalent(&static_out, &dynamic_out)
        .expect("rebalancing must not change the deterministic observables");
    assert!(
        dynamic_out.stats.rebalances >= 1,
        "the skewed workload must trigger at least one rebalance"
    );
    println!(
        "observables identical; imbalance {}% -> {}% with {} rebalances ({} nodes moved)",
        static_out.stats.shard_load_imbalance_pct,
        dynamic_out.stats.shard_load_imbalance_pct,
        dynamic_out.stats.rebalances,
        fmt_count(dynamic_out.stats.nodes_migrated),
    );
    println!();
}

/// Socket-transport experiment: the sharded engine over the two-process
/// localhost TCP fabric, sweeping the adaptive batching threshold
/// (DESIGN.md §9). Loopback sharded at the same K is the transport-free
/// baseline; the frames/bytes columns show what batching buys on the
/// wire, and `msgs/frame` how close each threshold gets to its target.
fn net_experiment(opts: &Options) {
    use des::engine::sharded::ShardedEngine;
    use des::TcpShardedEngine;

    let w = PaperCircuit::Ks128.workload(opts.scale);
    println!(
        "## Socket transport: batch-size sweep ({}, K=4 shards over 2 localhost processes)",
        w.name
    );
    let loopback = measure(
        &ShardedEngine::from_config(&EngineConfig::default().with_shards(4)),
        &w,
        1,
        opts.reps,
    );
    println!(
        "loopback sharded K=4 baseline (min): {}, cut events {}",
        fmt_duration(loopback.summary().min),
        fmt_count(loopback.sim_stats.cut_events_sent),
    );
    let mut t = Table::new([
        "batch", "min time", "frames", "bytes", "msgs/frame", "forced flushes",
    ]);
    for batch in [1usize, 16, 64, 256] {
        let engine = TcpShardedEngine::from_config(
            &EngineConfig::default().with_shards(4).with_processes(2).with_batch_msgs(batch),
        );
        let m = measure(&engine, &w, 1, opts.reps);
        let s = m.sim_stats;
        assert_eq!(
            s.cut_events_sent, loopback.sim_stats.cut_events_sent,
            "transport must not change the cut traffic"
        );
        let per_frame = if s.net_frames_sent > 0 {
            s.net_msgs_batched as f64 / s.net_frames_sent as f64
        } else {
            0.0
        };
        t.row([
            batch.to_string(),
            fmt_duration(m.summary().min),
            fmt_count(s.net_frames_sent),
            fmt_count(s.net_bytes_sent),
            format!("{per_frame:.1}"),
            fmt_count(s.net_forced_flushes),
        ]);
    }
    println!("{}", t.render());
}

/// Observability experiment (DESIGN.md §11): every engine runs the same
/// workload with the sim-obs recorder off and on; the table is the
/// overhead verdict and the per-engine time breakdown. The run then
/// exercises all three exporters end to end — `BENCH_obs.json` is
/// written and re-parsed, the Perfetto trace is written and re-parsed,
/// and a real scrape endpoint is served, fetched over TCP, and linted.
fn obs_experiment(opts: &Options) {
    use des_bench::obs_report::{self, ObsReport};
    use obs::prometheus::MetricsServer;
    use std::io::{Read, Write};

    let workers = *opts.workers.iter().max().expect("non-empty worker list");
    let w = PaperCircuit::Ks128.workload(opts.scale);
    println!(
        "## Observability: sim-obs overhead and exporters ({}, {} workers, min of {} reps)",
        w.name, workers, opts.reps
    );
    let mut t = Table::new([
        "engine", "obs off (min)", "obs on (min)", "overhead", "events/s", "node-run p50",
        "node-run p99",
    ]);
    let mut rows = Vec::new();
    let mut exemplar: Option<des::Recorder> = None;
    for name in des::ENGINE_NAMES {
        let (row, recorder) =
            obs_report::measure_engine(name, &w, workers, opts.reps).expect("known engine");
        t.row([
            name.to_string(),
            fmt_duration(row.disabled_min),
            fmt_duration(row.enabled_min),
            format!("{:+.1}%", row.overhead_pct),
            fmt_count(row.events_per_sec as u64),
            format!("{} ns", fmt_count(row.node_run_ns.quantile(0.50))),
            format!("{} ns", fmt_count(row.node_run_ns.quantile(0.99))),
        ]);
        rows.push(row);
        // The richest trace for the Perfetto export: the parallel
        // conservative engine the paper is about.
        if name == "hj" {
            exemplar = Some(recorder);
        }
    }
    println!("{}", t.render());
    let worst = rows
        .iter()
        .map(|r| r.overhead_pct)
        .fold(f64::MIN, f64::max);
    println!(
        "worst-case enabled overhead: {worst:+.1}% (target: <= 5% on ks128 at paper scale; \
         tiny/quick runs are noise-dominated)"
    );

    // Exporter 1: the JSON report — written, then re-parsed before
    // anything downstream is allowed to trust it.
    let report = ObsReport {
        workload: w.name.to_string(),
        scale: opts.scale_name.to_string(),
        reps: opts.reps,
        rows,
    };
    // Regression gate: compare against the committed baseline before
    // overwriting it, so a rerun that made the recorder meaningfully
    // more expensive fails loudly. A checkout without the file (first
    // run, or a wiped workspace) skips the gate rather than inventing a
    // baseline.
    match std::fs::read_to_string("BENCH_obs.json") {
        Ok(baseline) => match obs_report::check_regression(&baseline, &report) {
            Ok(lines) => {
                for line in &lines {
                    println!("gate: {line}");
                }
                println!("obs overhead gate: no regression");
            }
            Err(e) => panic!("obs overhead regressed vs committed BENCH_obs.json: {e}"),
        },
        Err(_) => println!("obs overhead gate: no committed BENCH_obs.json, skipped"),
    }

    let json = obs_report::to_json(&report);
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    match obs_report::validate_json(&json) {
        Ok(n) => println!("BENCH_obs.json: written and re-parsed OK ({n} engines)"),
        Err(e) => panic!("BENCH_obs.json failed validation: {e}"),
    }

    // Exporter 2: Perfetto trace-event JSON from the hj run's rings.
    let recorder = exemplar.expect("hj is in ENGINE_NAMES");
    let trace = recorder.perfetto_json("repro-obs");
    let doc = obs::json::parse(&trace).expect("Perfetto export must be valid JSON");
    let n_events = doc
        .get("traceEvents")
        .and_then(|j| j.as_arr())
        .map(|a| a.len())
        .expect("traceEvents array");
    assert!(n_events > 0, "hj run produced no trace events");
    std::fs::write("BENCH_obs_trace.json", &trace).expect("write BENCH_obs_trace.json");
    println!("BENCH_obs_trace.json: {n_events} Perfetto trace events, re-parsed OK");

    // Exporter 3: a real Prometheus scrape — served on a loopback port,
    // fetched over TCP like a scraper would, and format-linted.
    let server =
        MetricsServer::serve("127.0.0.1:0", recorder.clone()).expect("bind metrics server");
    let mut conn = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    server.stop();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .expect("HTTP response has a body");
    assert!(
        body.contains("sim_events_delivered_total"),
        "scrape is missing the canonical counter"
    );
    match obs::prometheus::lint(body) {
        Ok(samples) => println!("prometheus scrape: {samples} samples, lint OK"),
        Err(e) => panic!("prometheus exposition failed lint: {e}"),
    }
    println!();
}

/// Fleet observability experiment (DESIGN.md §16): run the distributed
/// engine over two localhost TCP ranks with telemetry frames enabled,
/// then read everything back off the coordinator's fleet collector —
/// the offset-corrected merged Perfetto timeline, the rank-labelled
/// Prometheus exposition, the per-link clock estimates, and the
/// straggler attribution. `BENCH_obs_dist.json` and the merged trace
/// are written and re-parsed before they are trusted.
fn obs_dist_experiment(opts: &Options) {
    use des::TcpShardedEngine;
    use des_bench::obs_report::{self, ObsDistRank, ObsDistReport};
    use obs::FleetCollector;
    use std::sync::{Arc, Mutex};

    const SHARDS: usize = 4;
    const PROCESSES: usize = 2;
    let w = PaperCircuit::Ks128.workload(opts.scale);
    println!(
        "## Fleet observability: telemetry over {PROCESSES} localhost TCP ranks ({}, K={SHARDS})",
        w.name
    );
    let fleet = Arc::new(Mutex::new(FleetCollector::new()));
    let recorder = des::Recorder::new(&des::ObsConfig::enabled());
    let engine = TcpShardedEngine::from_config(
        &EngineConfig::default()
            .with_shards(SHARDS)
            .with_processes(PROCESSES)
            .with_recorder(recorder),
    )
    .with_fleet(Arc::clone(&fleet));
    // One run, no warmup: the collector then holds exactly this run's
    // telemetry (report sequence numbers restart per run, so a second
    // run's reports would look stale to the collector).
    let m = measure(&engine, &w, 0, 1);
    println!(
        "tcp-sharded k={SHARDS} p={PROCESSES} with telemetry: {}, {} events",
        fmt_duration(m.summary().min),
        fmt_count(m.sim_stats.events_delivered),
    );

    let fleet = fleet.lock().expect("fleet collector");
    let ranks = fleet.ranks();
    assert_eq!(
        ranks,
        (0..PROCESSES as u64).collect::<Vec<_>>(),
        "every rank must report telemetry"
    );

    let mut t = Table::new(["rank", "engine", "null wait", "clock offset", "rtt", "samples"]);
    let mut rank_rows = Vec::new();
    for &rank in &ranks {
        let engine_name = fleet.rank_engine(rank).unwrap_or("?").to_string();
        let wait = fleet.rank_counter_total(rank, "sim_null_wait_ns_total");
        let clock = fleet.clock_estimate(rank).unwrap_or_default();
        if rank != 0 {
            assert!(clock.samples > 0, "no clock exchange completed with rank {rank}");
        }
        t.row([
            rank.to_string(),
            engine_name.clone(),
            format!("{:.3} ms", wait as f64 / 1e6),
            format!("{} ns", clock.offset_ns),
            format!("{} ns", clock.rtt_ns),
            clock.samples.to_string(),
        ]);
        rank_rows.push(ObsDistRank {
            rank,
            engine: engine_name,
            null_wait_ns: wait,
            clock_offset_ns: clock.offset_ns,
            clock_rtt_ns: clock.rtt_ns,
            clock_samples: clock.samples,
        });
    }
    println!("{}", t.render());

    // Exporter 1: the merged, offset-corrected Perfetto timeline —
    // one process track per rank.
    let trace = fleet.merged_perfetto_json();
    let doc = obs::json::parse(&trace).expect("merged trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|j| j.as_arr())
        .expect("traceEvents array");
    let mut pids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("name").and_then(|j| j.as_str()) == Some("process_name"))
        .filter_map(|e| e.get("pid").and_then(|j| j.as_f64()))
        .map(|p| p as u64)
        .collect();
    pids.sort_unstable();
    assert_eq!(pids, vec![1, 2], "one process track per rank");
    std::fs::write("BENCH_obs_dist_trace.json", &trace).expect("write BENCH_obs_dist_trace.json");
    println!(
        "BENCH_obs_dist_trace.json: {} merged trace events, both rank tracks present",
        events.len()
    );

    // Exporter 2: the rank-labelled Prometheus exposition.
    let text = fleet.prometheus_text();
    match obs::prometheus::lint(&text) {
        Ok(samples) => println!("fleet prometheus exposition: {samples} samples, lint OK"),
        Err(e) => panic!("fleet exposition failed lint: {e}"),
    }
    for rank in &ranks {
        assert!(
            text.contains(&format!("rank=\"{rank}\"")),
            "exposition missing rank {rank}"
        );
    }

    // Exporter 3: straggler attribution — who stalled whom.
    let straggler = fleet.straggler_report();
    print!("{straggler}");

    let report = ObsDistReport {
        workload: w.name.to_string(),
        scale: opts.scale_name.to_string(),
        shards: SHARDS,
        processes: PROCESSES,
        events_delivered: m.sim_stats.events_delivered,
        trace_events: events.len(),
        ranks: rank_rows,
        straggler,
    };
    let json = obs_report::dist_to_json(&report);
    std::fs::write("BENCH_obs_dist.json", &json).expect("write BENCH_obs_dist.json");
    match obs_report::validate_dist_json(&json) {
        Ok(n) => println!("BENCH_obs_dist.json: written and re-parsed OK ({n} ranks)"),
        Err(e) => panic!("BENCH_obs_dist.json failed validation: {e}"),
    }
    println!();
}

/// Fault-injection demonstration: the deterministic fault layer and the
/// fallible `try_run` API (robustness extension; DESIGN.md "Fault model
/// & failure semantics").
fn faults(opts: &Options) {
    use des::{FaultPlan, SimError};
    use std::time::{Duration, Instant};

    let workers = *opts.workers.iter().max().expect("non-empty worker list");
    let w = PaperCircuit::Ks64.workload(opts.scale);
    println!(
        "## Fault injection: structured failure semantics ({} workers, {})",
        workers, w.name
    );
    let rt = Arc::new(HjRuntime::new(workers));
    let mk = || HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default());

    // Injected task panic: surfaces as a structured error; the shared
    // runtime survives and is reused by the cases below.
    let engine = mk().with_fault_plan(FaultPlan::seeded(7).panic_on_spawn(5));
    match engine.try_run(&w.circuit, &w.stimulus, &w.delays) {
        Err(err @ SimError::TaskPanicked { .. }) => {
            println!("* injected panic     -> {err}");
        }
        Err(err) => println!("* injected panic     -> UNEXPECTED error: {err}"),
        Ok(_) => println!("* injected panic     -> UNEXPECTED success"),
    }

    // Forced trylock failures: bounded retry-with-backoff rides them out;
    // the run completes with identical observables and visible counters.
    let engine = mk().with_fault_plan(FaultPlan::seeded(21).fail_trylock(0.3));
    match engine.try_run(&w.circuit, &w.stimulus, &w.delays) {
        Ok(out) => println!(
            "* 30% trylock fail   -> completed; lock failures {}, retries {}, backoff waits {}",
            fmt_count(out.stats.lock_failures),
            fmt_count(out.stats.lock_retries),
            fmt_count(out.stats.backoff_waits),
        ),
        Err(err) => println!("* 30% trylock fail   -> UNEXPECTED error: {err}"),
    }

    // Deliberately wedged run: the no-progress watchdog must trip within
    // its deadline and return a stall snapshot instead of hanging.
    let deadline = Duration::from_millis(250);
    let engine = mk()
        .with_fault_plan(FaultPlan::seeded(1).wedged())
        .with_watchdog(Some(deadline));
    let start = Instant::now();
    match engine.try_run(&w.circuit, &w.stimulus, &w.delays) {
        Err(SimError::NoProgress { snapshot }) => {
            println!(
                "* wedged run         -> watchdog tripped after {:?} (deadline {:?}):",
                start.elapsed(),
                deadline
            );
            for line in snapshot.to_string().lines() {
                println!("    {line}");
            }
        }
        Err(err) => println!("* wedged run         -> UNEXPECTED error: {err}"),
        Ok(_) => println!("* wedged run         -> UNEXPECTED success"),
    }
    println!();
}

/// Recovery experiment (DESIGN.md §12): checkpoint cost vs interval on
/// the sharded engine, then the kill+restore drill — a rank killed at a
/// checkpoint barrier, restarted from the newest consistent snapshot,
/// and required to reproduce the reference observables bit for bit
/// (both in-process and through the TCP harness's recovery supervisor).
/// Results land in `BENCH_recover.json`.
fn recover_experiment(opts: &Options) {
    use des::engine::sharded::ShardedEngine;
    use des::validate::check_equivalent;
    use des::{
        latest_consistent_epoch, FaultPlan, ObsConfig, Recorder, SimError, TcpShardedEngine,
    };
    use std::fmt::Write as _;

    const K: usize = 4;
    let w = PaperCircuit::Ks64.workload(opts.scale);
    let scratch = std::env::temp_dir().join(format!("des-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let cfg = EngineConfig::default().with_shards(K);

    let baseline_m = measure(&ShardedEngine::from_config(&cfg), &w, 1, opts.reps);
    let baseline_out = ShardedEngine::from_config(&cfg).run(&w.circuit, &w.stimulus, &w.delays);
    let per_shard = (baseline_out.stats.events_delivered / K as u64).max(1);
    println!(
        "## Recovery: checkpoint overhead and kill+restore drill ({}, K={K}, {} events)",
        w.name,
        fmt_count(baseline_out.stats.events_delivered)
    );

    // Checkpoint cost vs interval, relative to the checkpoint-free
    // baseline. Intervals scale with the workload so every row crosses
    // multiple epochs at any --tiny/--full scale.
    let base_min = baseline_m.summary().min;
    let mut t = Table::new([
        "interval (events/shard)", "min time", "overhead", "checkpoints", "write p50", "write p99",
    ]);
    t.row([
        "off (baseline)".to_string(),
        fmt_duration(base_min),
        "-".to_string(),
        "0".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    let mut interval_rows = String::new();
    for every in [(per_shard / 16).max(64), (per_shard / 4).max(64)] {
        let dir = scratch.join(format!("sweep-{every}"));
        let ck_cfg = cfg.clone().with_checkpoints(every, &dir);
        let m = measure(&ShardedEngine::from_config(&ck_cfg), &w, 1, opts.reps);
        // One instrumented run for the counters the timing runs skip.
        let recorder = Recorder::new(&ObsConfig::enabled());
        let _ = std::fs::remove_dir_all(&dir);
        ShardedEngine::from_config(&ck_cfg.clone().with_recorder(recorder.clone()))
            .run(&w.circuit, &w.stimulus, &w.delays);
        let written = recorder.counter("sim_checkpoints_total", &[("rank", "0")]).get();
        let (p50, p99) = recorder
            .histogram_values()
            .into_iter()
            .find(|(name, _, _)| name == "sim_checkpoint_write_ns")
            .map(|(_, _, snap)| (snap.quantile(0.50), snap.quantile(0.99)))
            .unwrap_or((0, 0));
        assert!(written >= 1, "interval {every}: no checkpoint epoch completed");
        let min = m.summary().min;
        let overhead = (min.as_secs_f64() / base_min.as_secs_f64() - 1.0) * 100.0;
        t.row([
            fmt_count(every),
            fmt_duration(min),
            format!("{overhead:+.1}%"),
            fmt_count(written),
            format!("{} ns", fmt_count(p50)),
            format!("{} ns", fmt_count(p99)),
        ]);
        let _ = write!(
            interval_rows,
            "{}{{\"every_events\": {every}, \"min_ms\": {:.3}, \"overhead_pct\": {overhead:.2}, \
             \"checkpoints\": {written}, \"write_ns_p50\": {p50}, \"write_ns_p99\": {p99}}}",
            if interval_rows.is_empty() { "" } else { ", " },
            min.as_secs_f64() * 1e3,
        );
    }
    println!("{}", t.render());

    // Drill 1: in-process sharded engine — kill at epoch 2, restore,
    // demand bit-identical observables.
    let every = (per_shard / 16).max(64);
    let dir = scratch.join("drill-sharded");
    let kill_cfg = cfg
        .clone()
        .with_checkpoints(every, &dir)
        .with_fault_plan(FaultPlan::seeded(7).kill_rank_at_epoch(0, 2));
    let err = ShardedEngine::from_config(&kill_cfg)
        .try_run(&w.circuit, &w.stimulus, &w.delays)
        .expect_err("the injected kill must fail the run");
    assert!(
        matches!(err, SimError::Transport { epoch: Some(2), .. }),
        "unexpected kill error: {err}"
    );
    let restored_epoch =
        latest_consistent_epoch(&dir, 1).expect("a consistent checkpoint survives the kill");
    let restored = ShardedEngine::from_config(
        &cfg.clone().with_checkpoints(every, &dir).with_restore(true),
    )
    .run(&w.circuit, &w.stimulus, &w.delays);
    check_equivalent(&baseline_out, &restored)
        .expect("restored observables must match the reference bit for bit");
    println!(
        "* sharded kill@epoch2  -> restored from epoch {restored_epoch}, observables identical"
    );

    // Drill 2: the TCP harness's recovery supervisor — same kill, one
    // try_run call, recovery counted by the shared recorder.
    let dir = scratch.join("drill-tcp");
    let recorder = Recorder::new(&ObsConfig::enabled());
    let recovered = TcpShardedEngine::from_config(
        &cfg.clone()
            .with_processes(2)
            .with_checkpoints(every, &dir)
            .with_recovery_attempts(3)
            .with_recorder(recorder.clone())
            .with_fault_plan(FaultPlan::seeded(9).kill_rank_at_epoch(1, 2)),
    )
    .try_run(&w.circuit, &w.stimulus, &w.delays)
    .expect("the recovery supervisor must complete the run");
    check_equivalent(&baseline_out, &recovered)
        .expect("recovered observables must match the reference bit for bit");
    let recoveries: u64 = recorder
        .counter_values()
        .into_iter()
        .filter(|(name, _, _)| name == "sim_recoveries_total")
        .map(|(_, _, v)| v)
        .sum();
    assert!(recoveries >= 1, "the retry must actually have restored");
    println!("* tcp kill@epoch2      -> supervisor recovered ({recoveries} rank restores), observables identical");

    let json = format!(
        "{{\n  \"workload\": \"{}\",\n  \"scale\": \"{}\",\n  \"reps\": {},\n  \"shards\": {K},\n  \
         \"baseline_ms\": {:.3},\n  \"intervals\": [{interval_rows}],\n  \
         \"drill\": {{\"restored_epoch\": {restored_epoch}, \"sharded_restore_equivalent\": true, \
         \"tcp_recoveries\": {recoveries}, \"tcp_recovery_equivalent\": true}}\n}}\n",
        w.name,
        opts.scale_name,
        opts.reps,
        base_min.as_secs_f64() * 1e3,
    );
    obs::json::parse(&json).expect("BENCH_recover.json must be valid JSON");
    std::fs::write("BENCH_recover.json", &json).expect("write BENCH_recover.json");
    println!("BENCH_recover.json: written and re-parsed OK");
    let _ = std::fs::remove_dir_all(&scratch);
    println!();
}

/// PHOLD + queueing-network experiment (DESIGN.md §13): the
/// payload-generic component layer on the model engines. Runs PHOLD on
/// the sequential reference and the sharded executor at K ∈ {1,2,4},
/// asserts the deterministic observables and event-stream checksums are
/// bit-identical, prints the events/s table, cross-checks the M/M/c
/// queueing network at K=4, and writes `BENCH_phold.json`.
fn phold_experiment(opts: &Options) {
    use model::phold::{self, PholdConfig};
    use model::queueing::{self, MmcSpec};
    use std::time::Instant;

    // Scale the ring with the stimulus scale: the tiny point exists so
    // CI exercises the full seq-vs-sharded equivalence in well under a
    // second.
    let (lps, population, horizon) = match opts.scale_name {
        "tiny" => (8, 2, 400),
        "paper" => (64, 8, 20_000),
        _ => (32, 4, 4_000),
    };
    let cfg = PholdConfig {
        lps,
        population,
        lookahead: 4,
        remote_fraction: 0.5,
        mean_delay: 10.0,
    };
    const SEED: u64 = 42;
    println!(
        "## PHOLD: payload-generic components on the model engines \
         ({lps} LPs, population {}, horizon {horizon}, min of {} reps)",
        lps * population,
        opts.reps
    );

    let build = || phold::build(cfg, SEED, horizon as u64);
    let mut t = Table::new(["engine", "shards", "time (min)", "events", "events/s"]);
    let mut json_rows = Vec::new();
    let mut reference: Option<model::ModelOutput> = None;
    let shard_counts = [1usize, 2, 4];
    for (engine, k) in std::iter::once(("model-seq", 1))
        .chain(shard_counts.iter().map(|&k| ("model-sharded", k)))
    {
        let mut best = std::time::Duration::MAX;
        let mut out = None;
        for _ in 0..opts.reps {
            let ecfg = EngineConfig::new().with_shards(k);
            let start = Instant::now();
            let o = model::run(engine, &ecfg, build());
            best = best.min(start.elapsed());
            out = Some(o);
        }
        let out = out.expect("reps >= 1");
        match &reference {
            None => reference = Some(out.clone()),
            Some(r) => r.assert_equivalent(&out),
        }
        let events = out.stats.events_delivered;
        let eps = events as f64 / best.as_secs_f64();
        t.row([
            engine.to_string(),
            k.to_string(),
            fmt_duration(best),
            fmt_count(events),
            fmt_count(eps as u64),
        ]);
        json_rows.push(format!(
            "{{\"engine\": \"{engine}\", \"shards\": {k}, \"min_ms\": {:.3}, \
             \"events\": {events}, \"events_per_sec\": {:.0}, \"checksum\": {}}}",
            best.as_secs_f64() * 1e3,
            eps,
            out.checksum
        ));
    }
    println!("{}", t.render());
    println!(
        "seq vs sharded K={shard_counts:?}: observables and checksums bit-identical \
         (checksum {:#018x})",
        reference.as_ref().expect("ran").checksum
    );

    // Second workload through the same adapter: the M/M/c queueing
    // network, cross-checked at the widest shard count.
    let mmc = MmcSpec {
        stations: 3,
        servers: 2,
        mean_interarrival: 6.0,
        mean_service: 9.0,
        feedback: Some(0.3),
    };
    let mmc_horizon = (horizon as u64) * 2;
    let mmc_seq = model::run(
        "model-seq",
        &EngineConfig::default(),
        queueing::build(mmc, SEED, mmc_horizon),
    );
    let mmc_sharded = model::run(
        "model-sharded",
        &EngineConfig::new().with_shards(4),
        queueing::build(mmc, SEED, mmc_horizon),
    );
    mmc_seq.assert_equivalent(&mmc_sharded);
    let completed = mmc_seq
        .observables
        .iter()
        .find(|(key, _)| key == "sink.completed")
        .map(|(_, v)| *v)
        .expect("sink.completed observable");
    println!(
        "M/M/c cross-check: {completed} jobs completed, seq vs sharded K=4 bit-identical"
    );

    let json = format!(
        "{{\n  \"workload\": \"phold\",\n  \"scale\": \"{}\",\n  \"reps\": {},\n  \
         \"lps\": {lps},\n  \"population\": {},\n  \"horizon\": {horizon},\n  \
         \"lookahead\": {},\n  \"seed\": {SEED},\n  \"rows\": [\n    {}\n  ],\n  \
         \"mmc_completed\": {completed},\n  \"equivalent\": true\n}}\n",
        opts.scale_name,
        opts.reps,
        lps * population,
        cfg.lookahead,
        json_rows.join(",\n    ")
    );
    obs::json::parse(&json).expect("BENCH_phold.json must be valid JSON");
    std::fs::write("BENCH_phold.json", &json).expect("write BENCH_phold.json");
    println!("BENCH_phold.json: written and re-parsed OK");
    println!();
}

/// `replicate`: the massive-replication sweep. Runs the same seeded
/// PHOLD lookahead sweep through the `sim-replicate` work-stealing
/// executor at each worker count, asserts the cross-run aggregate
/// digest is bit-identical everywhere (the DESIGN.md §14 determinism
/// contract), prints the runs/sec scaling table plus a p50/p95/p99
/// sample, and writes `BENCH_replicate.json`.
fn replicate_experiment(opts: &Options) {
    use model::phold::PholdConfig;
    use replicate::spec::JobSpec;
    use std::time::Instant;

    let (lps, population, horizon, reps) = match opts.scale_name {
        "tiny" => (4, 1, 150, 12u32),
        "paper" => (16, 4, 2_000, 200u32),
        _ => (8, 2, 400, 48u32),
    };
    let base = PholdConfig {
        lps,
        population,
        lookahead: 4,
        remote_fraction: 0.5,
        mean_delay: 10.0,
    };
    const SEED: u64 = 42;
    let spec = JobSpec::phold_sweep("repro", base, &[2, 4, 8], SEED, reps, horizon as u64);
    let total = spec.total_runs();
    println!(
        "## Replication service: {total} seeded PHOLD runs ({} cells × {reps} reps, \
         {lps} LPs, horizon {horizon}, min of {} timing reps)",
        spec.cells.len(),
        opts.reps
    );

    let mut t = Table::new(["workers", "time (min)", "runs", "runs/s", "speedup"]);
    let mut json_rows = Vec::new();
    let mut reference: Option<replicate::JobAggregate> = None;
    let mut base_time: Option<f64> = None;
    for &workers in &opts.workers {
        let mut best = std::time::Duration::MAX;
        let mut agg = None;
        for _ in 0..opts.reps.max(1) {
            let start = Instant::now();
            let outcome = replicate::run_sweep(&spec, workers, &EngineConfig::default())
                .expect("replication sweep");
            best = best.min(start.elapsed());
            assert_eq!(outcome.rows, total);
            agg = Some(outcome.agg);
        }
        let agg = agg.expect("timing reps >= 1");
        match &reference {
            None => reference = Some(agg),
            Some(r) => assert_eq!(
                r.digest(),
                agg.digest(),
                "aggregate digest must not depend on the worker count"
            ),
        }
        let secs = best.as_secs_f64();
        let runs_per_sec = total as f64 / secs;
        let speedup = base_time.get_or_insert(secs).max(f64::MIN_POSITIVE) / secs;
        t.row([
            workers.to_string(),
            fmt_duration(best),
            total.to_string(),
            format!("{runs_per_sec:.0}"),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "{{\"workers\": {workers}, \"min_ms\": {:.3}, \"runs\": {total}, \
             \"runs_per_sec\": {runs_per_sec:.0}, \"speedup\": {speedup:.3}}}",
            secs * 1e3
        ));
    }
    println!("{}", t.render());
    let reference = reference.expect("at least one worker count");
    println!(
        "aggregate digest {:#018x}: bit-identical across workers={:?}",
        reference.digest(),
        opts.workers
    );

    // A percentile sample so the scaling table is attached to the
    // statistic the service actually serves.
    let mut p = Table::new(["cell", "column", "count", "p50", "p95", "p99"]);
    for (cell, col, count, _mean, p50, p95, p99) in reference.percentile_rows() {
        if col == "events" {
            p.row([
                cell.to_string(),
                col.to_string(),
                count.to_string(),
                p50.to_string(),
                p95.to_string(),
                p99.to_string(),
            ]);
        }
    }
    println!("{}", p.render());

    let json = format!(
        "{{\n  \"workload\": \"replicate\",\n  \"scale\": \"{}\",\n  \"reps\": {reps},\n  \
         \"cells\": {},\n  \"total_runs\": {total},\n  \"seed\": {SEED},\n  \
         \"digest\": \"{:#018x}\",\n  \"deterministic\": true,\n  \"rows\": [\n    {}\n  ]\n}}\n",
        opts.scale_name,
        spec.cells.len(),
        reference.digest(),
        json_rows.join(",\n    ")
    );
    obs::json::parse(&json).expect("BENCH_replicate.json must be valid JSON");
    std::fs::write("BENCH_replicate.json", &json).expect("write BENCH_replicate.json");
    println!("BENCH_replicate.json: written and re-parsed OK");
    println!();
}

/// `mem`: the arena memory-layer experiment (DESIGN.md §15). Three
/// sections: event-storage representation on ks128 (owned global heap
/// vs the arena-backed engines, with the ≥1.5× acceptance bar), batched
/// vs per-event drain through the sealed queue API, and pin policies
/// with bit-identical observables. Writes `BENCH_mem.json`.
fn mem_experiment(opts: &Options) {
    use des::engine::sharded::ShardedEngine;
    use des::node::PortQueue;
    use des::validate::check_equivalent;
    use des::{Event, EventArena, PinPolicy, Timestamp};
    use std::time::Instant;

    println!("## Memory layer: arena event storage, batched drain, core pinning (ks128)");
    let w = PaperCircuit::Ks128.workload(opts.scale);
    let mut json_rows = Vec::new();

    // -- representation: owned global heap vs arena-backed queues -----
    // seq-heap owns every event in one binary heap; seq-workset and the
    // sharded engine store events in per-thread arenas behind the sealed
    // PortQueue API and drain them in ready-batches per node wakeup.
    let mut t = Table::new(["engine", "event storage", "min time", "events", "events/s"]);
    let mut heap_eps = 0.0f64;
    let mut arena_eps = 0.0f64;
    let runs: Vec<(&str, &str, Box<dyn Engine>)> = vec![
        ("seq-heap", "owned, global heap", Box::new(SeqHeapEngine::new())),
        ("seq-workset", "arena, batched drain", Box::new(SeqWorksetEngine::new())),
        (
            "sharded[k=2]",
            "arena, batched drain",
            Box::new(ShardedEngine::from_config(&EngineConfig::default().with_shards(2))),
        ),
        (
            "sharded[k=4]",
            "arena, batched drain",
            Box::new(ShardedEngine::from_config(&EngineConfig::default().with_shards(4))),
        ),
    ];
    for (label, storage, engine) in &runs {
        let m = measure(engine.as_ref(), &w, 1, opts.reps);
        let min = m.summary().min;
        let events = m.sim_stats.events_delivered;
        let eps = events as f64 / min.as_secs_f64();
        if *label == "seq-heap" {
            heap_eps = eps;
        }
        if *label == "seq-workset" {
            arena_eps = eps;
        }
        t.row([
            label.to_string(),
            storage.to_string(),
            fmt_duration(min),
            fmt_count(events),
            fmt_count(eps as u64),
        ]);
        json_rows.push(format!(
            "{{\"engine\": \"{label}\", \"storage\": \"{storage}\", \"min_ms\": {:.3}, \
             \"events\": {events}, \"events_per_sec\": {eps:.0}}}",
            min.as_secs_f64() * 1e3
        ));
    }
    println!("{}", t.render());
    let speedup = arena_eps / heap_eps;
    println!("arena+batched (seq-workset) vs owned heap (seq-heap): {speedup:.2}x events/s");
    // Acceptance bar: the arena representation must beat the owned heap
    // by >=1.5x on ks128. Tiny runs are noise-dominated, so the hard
    // assert applies to quick/paper scale only.
    if opts.scale_name != "tiny" {
        assert!(
            speedup >= 1.5,
            "arena+batched must be >=1.5x seq-heap on ks128, got {speedup:.2}x"
        );
    }

    // -- batched vs per-event delivery through the public queue API ---
    // A node with P input ports. Per-event delivery is one event per
    // node wakeup: clock scan, min-head search, and the post-wakeup
    // activity re-check, all paid per event. Batched delivery drains
    // every ready event in one wakeup via drain_ready and pays the
    // wakeup bookkeeping once per batch — the amortization the engines
    // rely on.
    use des::node::{drain_ready, is_active, local_clock};
    const PORTS: usize = 4;
    let n: u64 = if opts.scale_name == "tiny" { 20_000 } else { 400_000 };
    let fill = |arena: &mut EventArena<u64>| {
        let mut ports: Vec<PortQueue<u64>> = (0..PORTS).map(|_| PortQueue::new()).collect();
        for ts in 0..n {
            ports[ts as usize % PORTS].push(arena, Event::new(ts as Timestamp, ts));
        }
        // Terminal NULLs: every queued event becomes ready, as at the
        // end of a conservative run.
        for p in &mut ports {
            p.advance_clock(des::NULL_TS);
        }
        ports
    };
    let bench_reps = opts.reps.max(3);
    let mut per_event_ns = f64::MAX;
    let mut batched_ns = f64::MAX;
    let mut temp: Vec<(circuit::PortIx, Event<u64>)> = Vec::with_capacity(n as usize);
    for _ in 0..bench_reps {
        let mut arena: EventArena<u64> = EventArena::with_capacity(n as usize);
        let mut ports = fill(&mut arena);
        let mut popped = 0u64;
        let start = Instant::now();
        loop {
            let clock = local_clock(&ports);
            let mut best: Option<(usize, Timestamp)> = None;
            for (i, p) in ports.iter().enumerate() {
                if let Some(h) = p.peek() {
                    if h <= clock && best.is_none_or(|(_, bh)| h < bh) {
                        best = Some((i, h));
                    }
                }
            }
            let Some((i, h)) = best else { break };
            let ev = ports[i].pop_ready(&mut arena, h).expect("head exists");
            std::hint::black_box(ev.value);
            popped += 1;
            // One event per wakeup means one activity re-check per
            // event before the node can be rescheduled.
            std::hint::black_box(is_active(&ports, true));
        }
        per_event_ns = per_event_ns.min(start.elapsed().as_nanos() as f64 / n as f64);
        assert_eq!(popped, n, "per-event loop must deliver every event");

        let mut arena: EventArena<u64> = EventArena::with_capacity(n as usize);
        let mut ports = fill(&mut arena);
        temp.clear();
        let start = Instant::now();
        let clock = local_clock(&ports);
        let drained = drain_ready(&mut ports, &mut arena, clock, &mut temp);
        for (_, ev) in &temp {
            std::hint::black_box(ev.value);
        }
        // One wakeup drained the whole batch: one activity re-check.
        std::hint::black_box(is_active(&ports, true));
        batched_ns = batched_ns.min(start.elapsed().as_nanos() as f64 / n as f64);
        assert_eq!(drained as u64, n, "drain_ready must deliver every ready event");
    }
    println!(
        "delivery microbench ({} events, {PORTS} ports, min of {bench_reps}): \
         per-event {per_event_ns:.1} ns/ev, batched {batched_ns:.1} ns/ev ({:.2}x)",
        fmt_count(n),
        per_event_ns / batched_ns
    );

    // -- pinning: placement changes, observables don't ----------------
    let baseline = ShardedEngine::from_config(&EngineConfig::default().with_shards(4))
        .run(&w.circuit, &w.stimulus, &w.delays);
    let mut pin_rows = Vec::new();
    let mut pt = Table::new(["pin policy", "min time", "events/s"]);
    for policy in [PinPolicy::None, PinPolicy::Compact, PinPolicy::Spread] {
        let label = policy.label();
        let engine = ShardedEngine::from_config(&EngineConfig::default().with_shards(4))
            .with_pinning(policy);
        let m = measure(&engine, &w, 1, opts.reps);
        let min = m.summary().min;
        let eps = m.sim_stats.events_delivered as f64 / min.as_secs_f64();
        let out = engine.run(&w.circuit, &w.stimulus, &w.delays);
        check_equivalent(&baseline, &out)
            .unwrap_or_else(|e| panic!("pin={label} changed observables: {e}"));
        pt.row([label.clone(), fmt_duration(min), fmt_count(eps as u64)]);
        pin_rows.push(format!(
            "{{\"policy\": \"{label}\", \"min_ms\": {:.3}, \"events_per_sec\": {eps:.0}}}",
            min.as_secs_f64() * 1e3
        ));
    }
    println!("{}", pt.render());
    println!("pin policies none/compact/spread: observables bit-identical (k=4)");

    let json = format!(
        "{{\n  \"circuit\": \"{}\",\n  \"scale\": \"{}\",\n  \"reps\": {},\n  \
         \"representation\": [\n    {}\n  ],\n  \"arena_vs_heap_speedup\": {speedup:.3},\n  \
         \"drain\": {{\"events\": {n}, \"per_event_ns\": {per_event_ns:.2}, \
         \"batched_ns\": {batched_ns:.2}}},\n  \"pinning\": [\n    {}\n  ],\n  \
         \"pin_observables_identical\": true\n}}\n",
        w.name,
        opts.scale_name,
        opts.reps,
        json_rows.join(",\n    "),
        pin_rows.join(",\n    ")
    );
    obs::json::parse(&json).expect("BENCH_mem.json must be valid JSON");
    std::fs::write("BENCH_mem.json", &json).expect("write BENCH_mem.json");
    println!("BENCH_mem.json: written and re-parsed OK");
    println!();
}

#[cfg(test)]
mod dispatch_tests {
    use super::DISPATCH;

    /// The registry (help text, README, `all` expansion) and the
    /// dispatch table must name exactly the same experiments.
    #[test]
    fn dispatch_matches_the_experiment_registry() {
        let registry = des_bench::experiments::names();
        let dispatch: Vec<&str> = DISPATCH.iter().map(|(name, _)| *name).collect();
        assert_eq!(registry, dispatch);
    }
}
