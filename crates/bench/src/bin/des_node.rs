//! `des-node`: one process of a distributed sharded simulation.
//!
//! Every participating process is launched with the *same* config file
//! (circuit, stimulus, partition, and the full node address list) plus
//! its own `--process` rank; rank 0 is the coordinator and prints or
//! writes the observables once every rank reports done. Agreement on
//! the config is enforced by the connection handshake's digest — two
//! nodes started from different configs refuse to connect.
//!
//! ```text
//! des-node --config run.conf --process 0 --observables obs.txt
//! des-node --config run.conf --process 1
//! ```
//!
//! Config format (one `key = value` per line, `#` comments):
//!
//! ```text
//! circuit = ks64          # ks64 | ks128 | mult12 | c17
//! vectors = 30            # random stimulus vectors
//! period = 10             # vector period (simulated time)
//! seed = 7                # stimulus seed
//! shards = 2              # total shard count across all nodes
//! strategy = greedy       # greedy | roundrobin | bfs
//! mailbox = 256           # per-shard inbox capacity (messages)
//! batch = 64              # cross-process batching threshold (msgs)
//! watchdog_ms = 10000     # no-progress deadline (0 disables)
//! connect_s = 30          # setup / termination deadline (seconds)
//! pin = compact           # none | compact | spread | 0,2,4 (core list)
//! arena = 4096            # pre-sized event-arena slots per shard (0 = grow)
//! telemetry = on          # piggyback fleet telemetry on the wire (off)
//! telemetry_ms = 100      # worker rank-report period (milliseconds)
//! node = 127.0.0.1:7101   # rank 0 (coordinator)
//! node = 127.0.0.1:7102   # rank 1
//! checkpoint_dir = /tmp/ckpt  # optional: deterministic epoch snapshots
//! checkpoint_every = 5000     # events per shard between checkpoints
//! kill_rank = 1               # optional chaos drill: kill this rank ...
//! kill_epoch = 2              # ... at this checkpoint epoch (1-based)
//! ```
//!
//! `--seq` ignores the node list and runs the sequential reference
//! engine instead (for producing the oracle observables); `--check-seq`
//! makes the coordinator additionally run it in-process and exit
//! nonzero if the distributed observables differ.
//!
//! `--metrics-addr HOST:PORT` (default: off) enables the sim-obs
//! recorder for the run and serves Prometheus text exposition on the
//! given address for the lifetime of the process. The endpoint is
//! plaintext HTTP with no authentication — bind it to loopback or a
//! trusted network only (TLS/auth is a ROADMAP follow-up). A bind
//! failure degrades to a warning: metrics are an observer, never a
//! reason to abort a simulation.
//!
//! With `telemetry = on` in the config every rank advertises the fleet
//! telemetry feature bit in its handshake; workers then ship periodic
//! rank-tagged metric/trace snapshots to the coordinator, which also
//! measures per-link clock offsets (DESIGN.md §16). On the coordinator
//! this unlocks `--trace-out PATH` (one merged, offset-corrected
//! Perfetto timeline covering every rank: rank → process track, shard
//! thread → thread track), makes the coordinator's metrics endpoint
//! serve the *fleet* exposition (every rank's metrics, labelled
//! `rank="N"`), and prints the straggler report — which rank/link
//! carried the largest blocked-on-NULL share. With `telemetry = off`
//! (the default) the handshake bytes and wire traffic are identical to
//! the pre-telemetry protocol.
//!
//! Recovery (DESIGN.md §12): with `checkpoint_dir`/`checkpoint_every`
//! configured every rank writes deterministic epoch snapshots, and
//! `--restore` resumes a crashed run from the newest consistent epoch.
//! The `kill_rank`/`kill_epoch` keys inject a rank crash at a
//! checkpoint barrier for chaos drills; they are ignored under
//! `--restore` so the restarted rank is not re-killed.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use circuit::generators::{c17, kogge_stone_adder, wallace_multiplier};
use circuit::{Circuit, DelayModel, Stimulus};
use des::engine::seq::SeqWorksetEngine;
use des::{
    run_node, CheckpointConfig, DistConfig, Engine, FaultPlan, ObsConfig, PartitionStrategy,
    PinPolicy, Recorder, SimOutput,
};
use obs::prometheus::MetricsServer;

struct NodeConfig {
    circuit_name: String,
    vectors: usize,
    period: u64,
    seed: u64,
    /// `kill_rank`/`kill_epoch` chaos injection, if both keys are set.
    kill: Option<(u64, u64)>,
    dist: DistConfig,
}

fn parse_config(path: &str, process: usize, restore: bool) -> Result<NodeConfig, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut circuit_name = None;
    let mut vectors = 16usize;
    let mut period = 10u64;
    let mut seed = 0u64;
    let mut shards = None;
    let mut strategy = PartitionStrategy::default();
    let mut mailbox = 256usize;
    let mut batch = 64usize;
    let mut watchdog_ms = 10_000u64;
    let mut connect_s = 30u64;
    let mut addrs = Vec::new();
    let mut checkpoint_dir: Option<std::path::PathBuf> = None;
    let mut checkpoint_every = 0u64;
    let mut kill_rank: Option<u64> = None;
    let mut kill_epoch: Option<u64> = None;
    let mut pinning = PinPolicy::None;
    let mut arena = 0usize;
    let mut telemetry = false;
    let mut telemetry_ms = 100u64;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("{path}:{}: expected key = value", lineno + 1))?;
        let (key, value) = (key.trim(), value.trim());
        let bad = |e: &dyn std::fmt::Display| format!("{path}:{}: {key}: {e}", lineno + 1);
        match key {
            "circuit" => circuit_name = Some(value.to_string()),
            "vectors" => vectors = value.parse().map_err(|e| bad(&e))?,
            "period" => period = value.parse().map_err(|e| bad(&e))?,
            "seed" => seed = value.parse().map_err(|e| bad(&e))?,
            "shards" => shards = Some(value.parse().map_err(|e| bad(&e))?),
            "strategy" => {
                strategy = match value {
                    "greedy" => PartitionStrategy::GreedyCut,
                    "roundrobin" => PartitionStrategy::RoundRobin,
                    "bfs" => PartitionStrategy::BfsLayered,
                    other => return Err(bad(&format!("unknown strategy '{other}'"))),
                }
            }
            "mailbox" => mailbox = value.parse().map_err(|e| bad(&e))?,
            "batch" => batch = value.parse().map_err(|e| bad(&e))?,
            "watchdog_ms" => watchdog_ms = value.parse().map_err(|e| bad(&e))?,
            "connect_s" => connect_s = value.parse().map_err(|e| bad(&e))?,
            "node" => addrs.push(value.parse().map_err(|e| bad(&e))?),
            "checkpoint_dir" => checkpoint_dir = Some(value.into()),
            "checkpoint_every" => checkpoint_every = value.parse().map_err(|e| bad(&e))?,
            "kill_rank" => kill_rank = Some(value.parse().map_err(|e| bad(&e))?),
            "kill_epoch" => kill_epoch = Some(value.parse().map_err(|e| bad(&e))?),
            "pin" => pinning = PinPolicy::parse(value).map_err(|e| bad(&e))?,
            "arena" => arena = value.parse().map_err(|e| bad(&e))?,
            "telemetry" => {
                telemetry = match value {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => return Err(bad(&format!("expected on/off, got '{other}'"))),
                }
            }
            "telemetry_ms" => telemetry_ms = value.parse().map_err(|e| bad(&e))?,
            other => return Err(format!("{path}:{}: unknown key '{other}'", lineno + 1)),
        }
    }
    let circuit_name = circuit_name.ok_or("config is missing 'circuit'")?;
    let shards = shards.ok_or("config is missing 'shards'")?;
    if addrs.is_empty() {
        return Err("config has no 'node' lines".into());
    }
    if process >= addrs.len() {
        return Err(format!(
            "--process {process} out of range: config lists {} node(s)",
            addrs.len()
        ));
    }
    let checkpoint = match checkpoint_dir {
        Some(dir) if checkpoint_every >= 1 => Some(CheckpointConfig {
            every_events: checkpoint_every,
            dir,
        }),
        Some(_) => return Err("checkpoint_dir needs checkpoint_every >= 1".into()),
        None if checkpoint_every > 0 => {
            return Err("checkpoint_every needs checkpoint_dir".into())
        }
        None => None,
    };
    if restore && checkpoint.is_none() {
        return Err("--restore needs checkpoint_dir/checkpoint_every in the config".into());
    }
    let kill = match (kill_rank, kill_epoch) {
        // Under --restore the crash being drilled already happened; the
        // restarted run must not be re-killed.
        _ if restore => None,
        (Some(r), Some(e)) => Some((r, e)),
        (None, None) => None,
        _ => return Err("kill_rank and kill_epoch must be set together".into()),
    };
    if kill.is_some() && checkpoint.is_none() {
        return Err("kill_rank/kill_epoch need checkpointing configured".into());
    }
    Ok(NodeConfig {
        circuit_name,
        vectors,
        period,
        seed,
        kill,
        dist: DistConfig {
            process,
            addrs,
            num_shards: shards,
            strategy,
            mailbox_capacity: mailbox,
            batch_msgs: batch,
            watchdog: (watchdog_ms > 0).then(|| Duration::from_millis(watchdog_ms)),
            connect_deadline: Duration::from_secs(connect_s),
            checkpoint,
            restore,
            pinning,
            arena_capacity: arena,
            telemetry,
            telemetry_period: Duration::from_millis(telemetry_ms.max(1)),
            fleet: None, // installed by the coordinator in run()
        },
    })
}

fn build_circuit(name: &str) -> Result<Circuit, String> {
    match name {
        "ks64" => Ok(kogge_stone_adder(64)),
        "ks128" => Ok(kogge_stone_adder(128)),
        "mult12" => Ok(wallace_multiplier(12)),
        "c17" => Ok(c17()),
        other => Err(format!("unknown circuit '{other}'")),
    }
}

/// The canonical observables dump: everything that must be bit-identical
/// across engines (and processes counts), nothing that legally varies.
fn render_observables(circuit_name: &str, output: &SimOutput) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(s, "observables v1").unwrap();
    writeln!(s, "circuit = {circuit_name}").unwrap();
    writeln!(s, "events_delivered = {}", output.stats.events_delivered).unwrap();
    let bits: String = output
        .node_values
        .iter()
        .map(|v| if v.as_bit() == 1 { '1' } else { '0' })
        .collect();
    writeln!(s, "node_values = {bits}").unwrap();
    for (ix, wf) in output.waveforms.iter().enumerate() {
        write!(s, "output {ix} =").unwrap();
        for (t, v) in wf.settled() {
            write!(s, " {t}:{v}").unwrap();
        }
        writeln!(s).unwrap();
    }
    s
}

fn usage() -> String {
    "usage: des-node --config PATH --process N [--seq] [--check-seq] [--restore] \
     [--observables PATH] [--metrics-addr HOST:PORT] [--trace-out PATH]"
        .to_string()
}

fn run() -> Result<ExitCode, String> {
    let mut config_path = None;
    let mut process = None;
    let mut seq = false;
    let mut check_seq = false;
    let mut restore = false;
    let mut observables_path: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config_path = Some(args.next().ok_or_else(usage)?),
            "--metrics-addr" => metrics_addr = Some(args.next().ok_or_else(usage)?),
            "--trace-out" => trace_out = Some(args.next().ok_or_else(usage)?),
            "--process" => {
                process = Some(
                    args.next()
                        .ok_or_else(usage)?
                        .parse::<usize>()
                        .map_err(|e| format!("--process: {e}"))?,
                )
            }
            "--seq" => seq = true,
            "--check-seq" => check_seq = true,
            "--restore" => restore = true,
            "--observables" => observables_path = Some(args.next().ok_or_else(usage)?),
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    let config_path = config_path.ok_or_else(usage)?;
    let process = if seq { process.unwrap_or(0) } else { process.ok_or_else(usage)? };
    let mut cfg = parse_config(&config_path, process, restore)?;
    let circuit = build_circuit(&cfg.circuit_name)?;
    let stimulus = Stimulus::random_vectors(&circuit, cfg.vectors, cfg.period, cfg.seed);
    let delays = DelayModel::standard();

    // Metrics are off unless asked for — but fleet telemetry implies
    // them: a rank report is a snapshot of this recorder, so telemetry
    // with a disabled recorder would ship empty blobs. The server (when
    // on) lives until process exit so the final post-run scrape can
    // observe the published stats.
    let telemetry = cfg.dist.telemetry && !seq;
    let recorder = if metrics_addr.is_some() || telemetry {
        Recorder::new(&ObsConfig::enabled())
    } else {
        Recorder::off()
    };
    // The coordinator's merged-telemetry sink. Installed before the
    // metrics server so the endpoint can serve the fleet exposition.
    let fleet = (telemetry && process == 0)
        .then(|| std::sync::Arc::new(std::sync::Mutex::new(obs::FleetCollector::new())));
    cfg.dist.fleet = fleet.clone();
    // A metrics bind failure (port taken, permission) must not abort the
    // simulation: metrics are an observer. Warn and run without them —
    // the recorder still collects, it is just not scrapeable.
    let _metrics_server = match &metrics_addr {
        Some(addr) => {
            let served = match &fleet {
                // Coordinator with telemetry: every scrape renders the
                // fleet exposition — each absorbed rank's metrics with a
                // rank label — falling back to the local recorder until
                // the first rank report lands.
                Some(fleet) => {
                    let fleet = std::sync::Arc::clone(fleet);
                    let recorder = recorder.clone();
                    MetricsServer::serve_with(addr.as_str(), move || {
                        let collector = fleet.lock().expect("fleet collector");
                        if collector.ranks().is_empty() {
                            obs::prometheus::render(&recorder)
                        } else {
                            collector.prometheus_text()
                        }
                    })
                }
                None => MetricsServer::serve(addr.as_str(), recorder.clone()),
            };
            match served {
                Ok(server) => {
                    eprintln!(
                        "des-node: serving Prometheus metrics on http://{}/metrics (plaintext, no auth)",
                        server.local_addr()
                    );
                    Some(server)
                }
                Err(e) => {
                    eprintln!(
                        "des-node: warning: metrics server on {addr} failed ({e}); \
                         continuing without metrics"
                    );
                    None
                }
            }
        }
        None => None,
    };

    let emit = |output: &SimOutput| -> Result<(), String> {
        let text = render_observables(&cfg.circuit_name, output);
        match &observables_path {
            Some(path) => std::fs::write(path, &text).map_err(|e| format!("write {path}: {e}")),
            None => {
                print!("{text}");
                Ok(())
            }
        }
    };

    if seq {
        let output = SeqWorksetEngine::new()
            .try_run(&circuit, &stimulus, &delays)
            .map_err(|e| format!("sequential run failed: {e}"))?;
        emit(&output)?;
        return Ok(ExitCode::SUCCESS);
    }

    let listen = cfg.dist.addrs[process];
    let listener =
        TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    eprintln!(
        "des-node: rank {process}/{} listening on {listen}, shards {:?} of {}",
        cfg.dist.num_processes(),
        net::shards_of_process(cfg.dist.num_shards, cfg.dist.num_processes(), process),
        cfg.dist.num_shards,
    );
    if cfg.dist.restore {
        eprintln!("des-node: rank {process} restoring from {:?}",
            cfg.dist.checkpoint.as_ref().map(|c| c.dir.as_path()).unwrap_or_else(|| std::path::Path::new("?")));
    }
    let fault = match cfg.kill {
        Some((rank, epoch)) => {
            eprintln!("des-node: chaos: will kill rank {rank} at checkpoint epoch {epoch}");
            FaultPlan::seeded(cfg.seed).kill_rank_at_epoch(rank, epoch)
        }
        None => FaultPlan::none(),
    };
    let result = run_node(
        &circuit,
        &stimulus,
        &delays,
        listener,
        &cfg.dist,
        Arc::new(fault),
        &recorder,
    )
    .map_err(|e| format!("distributed run failed: {e}"))?;

    match result {
        None => {
            eprintln!("des-node: rank {process} done");
            Ok(ExitCode::SUCCESS)
        }
        Some(output) => {
            emit(&output)?;
            eprintln!(
                "des-node: coordinator done: {} events, {} cut events, {} frames / {} bytes on the wire",
                output.stats.events_delivered,
                output.stats.cut_events_sent,
                output.stats.net_frames_sent,
                output.stats.net_bytes_sent,
            );
            if let Some(fleet) = &fleet {
                let collector = fleet.lock().expect("fleet collector");
                for rank in collector.ranks() {
                    if let Some(est) = collector.clock_estimate(rank) {
                        eprintln!(
                            "des-node: clock offset to rank {rank}: {} ns (rtt {} ns, {} samples)",
                            est.offset_ns, est.rtt_ns, est.samples
                        );
                    }
                }
                let stragglers = collector.straggler_report();
                eprintln!("des-node: straggler report:");
                eprint!("{stragglers}");
                if let Some(path) = &trace_out {
                    let json = collector.merged_perfetto_json();
                    std::fs::write(path, &json)
                        .map_err(|e| format!("write {path}: {e}"))?;
                    eprintln!(
                        "des-node: merged Perfetto trace ({} ranks) written to {path}",
                        collector.ranks().len()
                    );
                }
            }
            if check_seq {
                let seq_out = SeqWorksetEngine::new()
                    .try_run(&circuit, &stimulus, &delays)
                    .map_err(|e| format!("sequential check run failed: {e}"))?;
                let dist_obs = render_observables(&cfg.circuit_name, &output);
                let seq_obs = render_observables(&cfg.circuit_name, &seq_out);
                if dist_obs != seq_obs {
                    eprintln!("des-node: OBSERVABLES MISMATCH vs sequential engine");
                    return Ok(ExitCode::from(2));
                }
                eprintln!("des-node: observables match the sequential engine");
            }
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("des-node: {msg}");
            ExitCode::FAILURE
        }
    }
}
