//! Timing runner: executes an engine repeatedly on a workload and
//! collects times + simulation statistics.

use std::time::{Duration, Instant};

use des::engine::Engine;
use des::stats::SimStats;

use crate::stats::Summary;
use crate::workloads::Workload;

/// Result of repeated runs of one engine on one workload.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub engine: String,
    pub workload: &'static str,
    pub times: Vec<Duration>,
    /// Simulation counters from the last run (totals are deterministic).
    pub sim_stats: SimStats,
}

impl Measurement {
    /// Summary statistics over the collected times.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.times)
    }
}

/// Run `engine` on `workload` `reps` times (after `warmup` discarded
/// runs) and collect wall-clock times.
pub fn measure(engine: &dyn Engine, workload: &Workload, warmup: usize, reps: usize) -> Measurement {
    assert!(reps >= 1);
    for _ in 0..warmup {
        let out = engine.run(&workload.circuit, &workload.stimulus, &workload.delays);
        std::hint::black_box(&out);
    }
    let mut times = Vec::with_capacity(reps);
    let mut last_stats = SimStats::default();
    for _ in 0..reps {
        let start = Instant::now();
        let out = engine.run(&workload.circuit, &workload.stimulus, &workload.delays);
        times.push(start.elapsed());
        last_stats = out.stats;
        std::hint::black_box(&out);
    }
    Measurement {
        engine: engine.name(),
        workload: workload.name,
        times,
        sim_stats: last_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{PaperCircuit, Scale};
    use des::engine::seq::SeqWorksetEngine;

    #[test]
    fn measure_collects_reps_and_stats() {
        let w = PaperCircuit::Ks64.workload(Scale::tiny());
        let m = measure(&SeqWorksetEngine::new(), &w, 0, 3);
        assert_eq!(m.times.len(), 3);
        assert!(m.sim_stats.events_delivered > 0);
        assert_eq!(m.workload, "ks64");
        let s = m.summary();
        assert!(s.min <= s.mean && s.mean <= s.max + Duration::from_nanos(1));
    }
}
