//! Real two-process kill/restart drill (DESIGN.md §12): launches two
//! actual `des-node` processes over localhost TCP, crashes rank 1 at a
//! checkpoint barrier via the `kill_rank`/`kill_epoch` chaos keys, then
//! restarts both ranks with `--restore` and asserts the resumed run's
//! observables are bit-identical to the sequential reference
//! (`--check-seq` exits nonzero on any divergence). This is the same
//! drill the CI chaos smoke runs from the shell, kept here so `cargo
//! test` exercises it without CI.

use std::net::TcpListener;
use std::path::Path;
use std::process::{Child, Command, Output};

use des::latest_consistent_epoch;

const NODE_BIN: &str = env!("CARGO_BIN_EXE_des-node");

/// Two currently-free localhost ports. Racy by nature (they are free,
/// not reserved), which is fine for a test that fails loudly on a bind
/// collision.
fn free_ports() -> (u16, u16) {
    let a = TcpListener::bind("127.0.0.1:0").unwrap();
    let b = TcpListener::bind("127.0.0.1:0").unwrap();
    (
        a.local_addr().unwrap().port(),
        b.local_addr().unwrap().port(),
    )
}

fn write_config(path: &Path, ports: (u16, u16), ckpt: &Path) {
    let text = format!(
        "circuit = ks64\n\
         vectors = 6\n\
         period = 10\n\
         seed = 7\n\
         shards = 2\n\
         strategy = greedy\n\
         mailbox = 256\n\
         batch = 64\n\
         watchdog_ms = 15000\n\
         connect_s = 15\n\
         node = 127.0.0.1:{}\n\
         node = 127.0.0.1:{}\n\
         checkpoint_dir = {}\n\
         checkpoint_every = 200\n\
         kill_rank = 1\n\
         kill_epoch = 2\n",
        ports.0,
        ports.1,
        ckpt.display(),
    );
    std::fs::write(path, text).unwrap();
}

fn spawn_rank(config: &Path, rank: usize, extra: &[&str]) -> Child {
    Command::new(NODE_BIN)
        .arg("--config")
        .arg(config)
        .arg("--process")
        .arg(rank.to_string())
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn des-node")
}

fn finish(child: Child, tag: &str) -> Output {
    let out = child.wait_with_output().expect("wait des-node");
    eprintln!(
        "--- {tag}: exit {:?}\n{}{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

#[test]
fn two_process_kill_and_restart_is_bit_identical() {
    let scratch = std::env::temp_dir().join(format!("des-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let ckpt = scratch.join("ckpt");
    let config = scratch.join("run.conf");

    // Life 1: rank 1 is killed at checkpoint epoch 2; both ranks must
    // exit nonzero with a structured failure — no hang, no abort.
    write_config(&config, free_ports(), &ckpt);
    let worker = spawn_rank(&config, 1, &[]);
    let coord = spawn_rank(&config, 0, &[]);
    let coord_out = finish(coord, "life1 rank0");
    let worker_out = finish(worker, "life1 rank1");
    assert!(
        !worker_out.status.success(),
        "rank 1 must die from the injected kill"
    );
    assert!(
        !coord_out.status.success(),
        "rank 0 must fail once its peer is gone"
    );
    let epoch = latest_consistent_epoch(&ckpt, 2)
        .expect("a consistent checkpoint must survive the crash");
    assert_eq!(epoch, 1, "the kill fires before epoch 2's snapshot is written");

    // Life 2: fresh ports, both ranks restarted with --restore (the
    // chaos keys in the config are ignored under restore). The
    // coordinator replays to completion and self-checks against the
    // in-process sequential reference.
    write_config(&config, free_ports(), &ckpt);
    let obs = scratch.join("obs.txt");
    let worker = spawn_rank(&config, 1, &["--restore"]);
    let coord = spawn_rank(
        &config,
        0,
        &[
            "--restore",
            "--check-seq",
            "--observables",
            obs.to_str().unwrap(),
        ],
    );
    let coord_out = finish(coord, "life2 rank0");
    let worker_out = finish(worker, "life2 rank1");
    assert!(worker_out.status.success(), "restored rank 1 must finish");
    assert!(
        coord_out.status.success(),
        "restored run must match the sequential reference bit for bit"
    );
    assert!(obs.exists(), "observables file written");

    let _ = std::fs::remove_dir_all(&scratch);
}
