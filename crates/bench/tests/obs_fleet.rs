//! Real two-process fleet-telemetry drill (DESIGN.md §16): launches
//! two actual `des-node` processes over localhost TCP with
//! `telemetry = on`, and asserts the coordinator produces the merged,
//! offset-corrected Perfetto timeline (one process track per rank),
//! prints the per-link clock estimates and the straggler report, and —
//! the feature's safety contract — that a re-run with `telemetry = off`
//! yields bit-identical observables. This is the same drill the CI
//! fleet-telemetry smoke runs from the shell, kept here so `cargo
//! test` exercises it without CI.

use std::net::TcpListener;
use std::path::Path;
use std::process::{Child, Command, Output};

const NODE_BIN: &str = env!("CARGO_BIN_EXE_des-node");

/// Two currently-free localhost ports. Racy by nature (they are free,
/// not reserved), which is fine for a test that fails loudly on a bind
/// collision.
fn free_ports() -> (u16, u16) {
    let a = TcpListener::bind("127.0.0.1:0").unwrap();
    let b = TcpListener::bind("127.0.0.1:0").unwrap();
    (
        a.local_addr().unwrap().port(),
        b.local_addr().unwrap().port(),
    )
}

fn write_config(path: &Path, ports: (u16, u16), telemetry: bool) {
    let text = format!(
        "circuit = ks64\n\
         vectors = 8\n\
         period = 10\n\
         seed = 11\n\
         shards = 2\n\
         strategy = greedy\n\
         mailbox = 256\n\
         batch = 64\n\
         watchdog_ms = 15000\n\
         connect_s = 15\n\
         telemetry = {}\n\
         telemetry_ms = 20\n\
         node = 127.0.0.1:{}\n\
         node = 127.0.0.1:{}\n",
        if telemetry { "on" } else { "off" },
        ports.0,
        ports.1,
    );
    std::fs::write(path, text).unwrap();
}

fn spawn_rank(config: &Path, rank: usize, extra: &[&str]) -> Child {
    Command::new(NODE_BIN)
        .arg("--config")
        .arg(config)
        .arg("--process")
        .arg(rank.to_string())
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn des-node")
}

fn finish(child: Child, tag: &str) -> Output {
    let out = child.wait_with_output().expect("wait des-node");
    eprintln!(
        "--- {tag}: exit {:?}\n{}{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

#[test]
fn two_process_telemetry_merges_traces_and_leaves_observables_untouched() {
    let scratch = std::env::temp_dir().join(format!("des-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let config = scratch.join("run.conf");
    let trace = scratch.join("merged.json");
    let obs_on = scratch.join("obs-on.txt");
    let obs_off = scratch.join("obs-off.txt");

    // Run 1: telemetry on. The coordinator must finish, self-check
    // against the sequential reference, and write the merged trace.
    write_config(&config, free_ports(), true);
    let worker = spawn_rank(&config, 1, &[]);
    let coord = spawn_rank(
        &config,
        0,
        &[
            "--check-seq",
            "--observables",
            obs_on.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ],
    );
    let coord_out = finish(coord, "telemetry-on rank0");
    let worker_out = finish(worker, "telemetry-on rank1");
    assert!(worker_out.status.success(), "rank 1 must finish cleanly");
    assert!(
        coord_out.status.success(),
        "coordinator must finish and match the sequential reference"
    );

    let stderr = String::from_utf8_lossy(&coord_out.stderr);
    assert!(
        stderr.contains("clock offset to rank 1:"),
        "coordinator must print a clock estimate for its peer"
    );
    assert!(
        stderr.contains("straggler report:"),
        "coordinator must print the straggler report"
    );

    // The merged trace must be one well-formed Perfetto document with
    // a process track per rank (pid = rank + 1), each with named
    // thread tracks, i.e. genuinely merged — not one rank's dump.
    let json = std::fs::read_to_string(&trace).expect("merged trace written");
    let doc = obs::json::parse(&json).expect("merged trace must parse as JSON");
    let events = doc.get("traceEvents").expect("traceEvents key");
    let events = events.as_arr().expect("traceEvents is an array");
    assert!(!events.is_empty(), "merged trace has events");
    let meta_pids = |kind: &str| -> Vec<u64> {
        let mut pids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some(kind))
            .filter_map(|e| e.get("pid").and_then(|p| p.as_f64()))
            .map(|p| p as u64)
            .collect();
        pids.sort_unstable();
        pids.dedup();
        pids
    };
    assert_eq!(meta_pids("process_name"), vec![1, 2], "one process track per rank");
    assert_eq!(
        meta_pids("thread_name"),
        vec![1, 2],
        "both rank tracks carry named thread tracks"
    );

    // Run 2: same config with telemetry off. The observables — the
    // simulation's defined output — must be bit-identical: telemetry
    // is an observer, never a participant.
    write_config(&config, free_ports(), false);
    let worker = spawn_rank(&config, 1, &[]);
    let coord = spawn_rank(
        &config,
        0,
        &["--observables", obs_off.to_str().unwrap()],
    );
    let coord_out = finish(coord, "telemetry-off rank0");
    let worker_out = finish(worker, "telemetry-off rank1");
    assert!(worker_out.status.success(), "rank 1 must finish cleanly");
    assert!(coord_out.status.success(), "coordinator must finish cleanly");
    let on = std::fs::read_to_string(&obs_on).unwrap();
    let off = std::fs::read_to_string(&obs_off).unwrap();
    assert_eq!(on, off, "telemetry must not change the observables");

    let _ = std::fs::remove_dir_all(&scratch);
}
