//! Ablation benches for the design decisions of §4.5 (plus §3.2/§4.5.2's
//! lock choice):
//!
//! * `queue_repr` — §4.5.1(a): per-port deques vs per-node ordered queue,
//!   isolated at the sequential level (paper: "nearly 50%" of the win);
//! * `hj_config` — each [`HjEngineConfig`] toggle flipped individually on
//!   the parallel engine;
//! * `lock_kind` — §4.5.2: raw `AtomicBool` CAS trylock vs a full mutex
//!   `try_lock`, microbenchmarked on the acquisition path the DES engine
//!   hammers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::engine::hj::{HjEngine, HjEngineConfig};
use des::engine::seq::SeqWorksetEngine;
use des::engine::Engine;
use des_bench::workloads::{PaperCircuit, Scale};
use galois::GaloisSeqEngine;
use hj::{HjRuntime, LockRegistry};
use parking_lot::Mutex;

fn queue_repr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_queue_repr");
    group.sample_size(10);
    let w = PaperCircuit::Ks64.workload(Scale::tiny());
    group.bench_function("per_port_deques", |b| {
        let e = SeqWorksetEngine::new();
        b.iter(|| e.run(&w.circuit, &w.stimulus, &w.delays))
    });
    group.bench_function("per_node_ordered_queue", |b| {
        let e = GaloisSeqEngine::new();
        b.iter(|| e.run(&w.circuit, &w.stimulus, &w.delays))
    });
    group.finish();
}

fn hj_config(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hj_config");
    group.sample_size(10);
    let w = PaperCircuit::Ks64.workload(Scale::tiny());
    let configs: [(&str, HjEngineConfig); 4] = [
        ("all_on", HjEngineConfig::default()),
        (
            "per_node_locks",
            HjEngineConfig {
                per_port_locks: false,
                ..HjEngineConfig::default()
            },
        ),
        (
            "no_early_release",
            HjEngineConfig {
                early_port_release: false,
                ..HjEngineConfig::default()
            },
        ),
        (
            "redundant_spawns",
            HjEngineConfig {
                avoid_redundant_spawns: false,
                ..HjEngineConfig::default()
            },
        ),
    ];
    for (name, config) in configs {
        let rt = Arc::new(HjRuntime::new(2));
        let engine = HjEngine::with_config(Arc::clone(&rt), config);
        group.bench_with_input(BenchmarkId::new("ks64", name), &w, |b, w| {
            b.iter(|| engine.run(&w.circuit, &w.stimulus, &w.delays))
        });
    }
    group.finish();
}

fn lock_kind(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lock_kind");
    const N: usize = 64;
    let registry = LockRegistry::new(N);
    group.bench_function("atomicbool_trylock", |b| {
        b.iter(|| {
            let mut locker = registry.locker();
            for id in 0..N as u32 {
                assert!(locker.try_lock(id));
            }
            locker.release_all();
        })
    });
    let mutexes: Vec<Mutex<()>> = (0..N).map(|_| Mutex::new(())).collect();
    group.bench_function("mutex_trylock", |b| {
        b.iter(|| {
            let guards: Vec<_> = mutexes.iter().map(|m| m.try_lock().unwrap()).collect();
            drop(guards);
        })
    });
    group.finish();
}

criterion_group!(benches, queue_repr, hj_config, lock_kind);
criterion_main!(benches);
