//! Extension bench: task-management overhead of the two runtimes.
//!
//! The paper attributes part of HJlib's win to "the runtime overhead of
//! task management inside HJlib [being] lower than that in the Galois
//! system" (§5). This bench isolates that claim from the DES logic:
//! spawn/execute throughput of empty work items through each runtime's
//! scheduling path, plus the finish-scope and trylock primitives.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use circuit::NodeId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use galois::Workset;
use hj::{HjRuntime, LockRegistry};

const TASKS: usize = 10_000;

fn spawn_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_overhead_spawn");
    group.sample_size(10);
    for workers in [1, 2, 4] {
        let rt = Arc::new(HjRuntime::new(workers));
        group.bench_with_input(BenchmarkId::new("hj_finish_spawn", workers), &rt, |b, rt| {
            b.iter(|| {
                let counter = AtomicUsize::new(0);
                rt.finish(|scope| {
                    for _ in 0..TASKS {
                        scope.spawn(|| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                assert_eq!(counter.load(Ordering::Relaxed), TASKS);
            })
        });
        group.bench_with_input(
            BenchmarkId::new("galois_workset_drain", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let ws = Workset::new();
                    let counter = AtomicUsize::new(0);
                    for i in 0..TASKS {
                        ws.push(NodeId(i as u32));
                    }
                    std::thread::scope(|scope| {
                        for _ in 0..workers {
                            scope.spawn(|| loop {
                                match ws.pop() {
                                    Some(_) => {
                                        counter.fetch_add(1, Ordering::Relaxed);
                                        ws.done_one();
                                    }
                                    None => {
                                        if ws.is_quiescent() {
                                            return;
                                        }
                                        std::hint::spin_loop();
                                    }
                                }
                            });
                        }
                    });
                    assert_eq!(counter.load(Ordering::Relaxed), TASKS);
                })
            },
        );
    }
    group.finish();
}

fn lock_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_overhead_locks");
    let registry = LockRegistry::new(1024);
    group.bench_function("trylock_release_pair", |b| {
        let mut locker = registry.locker();
        let mut id = 0u32;
        b.iter(|| {
            assert!(locker.try_lock(id));
            locker.release_all();
            id = (id + 1) % 1024;
        })
    });
    group.bench_function("trylock_all_8_sorted", |b| {
        let mut locker = registry.locker();
        b.iter(|| {
            locker
                .try_lock_all([0, 10, 20, 30, 40, 50, 60, 70])
                .expect("uncontended");
            locker.release_all();
        })
    });
    group.finish();
}

criterion_group!(benches, spawn_throughput, lock_primitives);
criterion_main!(benches);
