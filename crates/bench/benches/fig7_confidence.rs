//! Figure 7 — average execution time (with confidence intervals) of both
//! versions at the maximum worker count, for all three circuits.
//!
//! Criterion's bootstrap CIs stand in for the paper's n=20 mean ± CI; the
//! repro binary's `fig7` subcommand additionally prints classical t-based
//! intervals.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::engine::hj::{HjEngine, HjEngineConfig};
use des::engine::Engine;
use des_bench::workloads::{PaperCircuit, Scale};
use galois::GaloisEngine;
use hj::HjRuntime;

/// The paper's Figure 7 uses 32 workers; this host has one core, so we
/// use a modest oversubscription that still exercises the same paths.
const WORKERS: usize = 4;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_at_max_workers");
    group.sample_size(20); // match the paper's 20 repetitions
    for pc in PaperCircuit::ALL {
        let w = pc.workload(Scale::tiny());
        let rt = Arc::new(HjRuntime::new(WORKERS));
        let hj_engine = HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default());
        group.bench_with_input(BenchmarkId::new("hj", w.name), &w, |b, w| {
            b.iter(|| hj_engine.run(&w.circuit, &w.stimulus, &w.delays))
        });
        let ga_engine = GaloisEngine::new(WORKERS);
        group.bench_with_input(BenchmarkId::new("galois", w.name), &w, |b, w| {
            b.iter(|| ga_engine.run(&w.circuit, &w.stimulus, &w.delays))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
