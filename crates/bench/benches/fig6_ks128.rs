//! Figure 6 — execution time and speedup vs. worker count for the
//! Ks128 Kogge–Stone adder, HJ version vs Galois version.
//! See `fig4_multiplier.rs` for the shape claims under reproduction.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::engine::hj::{HjEngine, HjEngineConfig};
use des::engine::Engine;
use des_bench::workloads::{PaperCircuit, Scale};
use galois::GaloisEngine;
use hj::HjRuntime;

const WORKERS: [usize; 3] = [1, 2, 4];

fn bench(c: &mut Criterion) {
    let w = PaperCircuit::Ks128.workload(Scale::tiny());
    let mut group = c.benchmark_group("fig6_ks128");
    group.sample_size(10);
    for workers in WORKERS {
        let rt = Arc::new(HjRuntime::new(workers));
        let hj_engine = HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default());
        group.bench_with_input(BenchmarkId::new("hj", workers), &w, |b, w| {
            b.iter(|| hj_engine.run(&w.circuit, &w.stimulus, &w.delays))
        });
        let ga_engine = GaloisEngine::new(workers);
        group.bench_with_input(BenchmarkId::new("galois", workers), &w, |b, w| {
            b.iter(|| ga_engine.run(&w.circuit, &w.stimulus, &w.delays))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
