//! Figure 1 — available parallelism in DES.
//!
//! Regenerates the parallelism-vs-computation-step curve for the tree
//! multiplier (printed at start-up) and times the level-synchronous
//! profiler itself.

use criterion::{criterion_group, criterion_main, Criterion};
use des::profile::available_parallelism;
use des_bench::workloads::{PaperCircuit, Scale};

fn bench(c: &mut Criterion) {
    let w = PaperCircuit::Mult12.workload(Scale::tiny());
    let p = available_parallelism(&w.circuit, &w.stimulus, &w.delays);
    println!(
        "fig1: mult12 rounds={} peak={} mean={:.1}",
        p.rounds(),
        p.peak(),
        p.mean()
    );
    println!("fig1 series: {:?}", p.active_per_round);

    let mut group = c.benchmark_group("fig1_parallelism_profile");
    group.sample_size(10);
    group.bench_function("mult12", |b| {
        b.iter(|| available_parallelism(&w.circuit, &w.stimulus, &w.delays).peak())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
