//! Extension bench: the §6 future-work workload — queueing-network DES on
//! the generic conservative kernel, sequential vs parallel drivers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdes::kernel::{ParKernel, SeqKernel};
use pdes::queueing::{self, NetworkSpec};

const HORIZON: u64 = 40_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_network");
    group.sample_size(10);
    let specs = [
        ("tandem4", NetworkSpec::tandem(4, 0.7, 1)),
        ("feedback", NetworkSpec::feedback(0.35, 2)),
        ("fork_join", NetworkSpec::fork_join(3)),
    ];
    for (name, spec) in &specs {
        group.bench_with_input(BenchmarkId::new("seq", name), spec, |b, spec| {
            let kernel = SeqKernel::new();
            b.iter(|| queueing::run(spec, &kernel, HORIZON).stats.events_processed)
        });
        group.bench_with_input(BenchmarkId::new("par2", name), spec, |b, spec| {
            let kernel = ParKernel::new(2);
            b.iter(|| queueing::run(spec, &kernel, HORIZON).stats.events_processed)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
