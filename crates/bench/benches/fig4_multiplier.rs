//! Figure 4 — execution time and speedup vs. worker count for the 12-bit
//! tree multiplier, HJ version vs Galois version.
//!
//! The paper's claims to reproduce in shape: (a) HJ beats Galois at every
//! worker count, most at low counts; (b) on a single core, adding workers
//! cannot speed anything up (the original's scaling needed 32 real cores;
//! this host measures overhead, which is itself informative).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::engine::hj::{HjEngine, HjEngineConfig};
use des::engine::Engine;
use des_bench::workloads::{PaperCircuit, Scale};
use galois::GaloisEngine;
use hj::HjRuntime;

const WORKERS: [usize; 3] = [1, 2, 4];

fn bench(c: &mut Criterion) {
    let w = PaperCircuit::Mult12.workload(Scale::tiny());
    let mut group = c.benchmark_group("fig4_mult12");
    group.sample_size(10);
    for workers in WORKERS {
        let rt = Arc::new(HjRuntime::new(workers));
        let hj_engine = HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default());
        group.bench_with_input(BenchmarkId::new("hj", workers), &w, |b, w| {
            b.iter(|| hj_engine.run(&w.circuit, &w.stimulus, &w.delays))
        });
        let ga_engine = GaloisEngine::new(workers);
        group.bench_with_input(BenchmarkId::new("galois", workers), &w, |b, w| {
            b.iter(|| ga_engine.run(&w.circuit, &w.stimulus, &w.delays))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
