//! Table 2 — minimum sequential execution time.
//!
//! "HJlib" row = `SeqWorksetEngine` (per-port ArrayDeque-style queues,
//! Algorithm 1); "Galois (Java)" row = `GaloisSeqEngine` (per-node
//! ordered PriorityQueue-style queue). The paper measured the Galois row
//! 2.5–2.7× slower; the *shape* to reproduce is galois-seq > hj-seq on
//! every circuit, driven by the queue representation (§4.5.1, §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::engine::{seq::SeqWorksetEngine, seq_heap::SeqHeapEngine, Engine};
use des_bench::workloads::{PaperCircuit, Scale};
use galois::GaloisSeqEngine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_sequential");
    group.sample_size(10);
    for pc in PaperCircuit::ALL {
        let w = pc.workload(Scale::tiny());
        group.bench_with_input(BenchmarkId::new("hj-seq", w.name), &w, |b, w| {
            let e = SeqWorksetEngine::new();
            b.iter(|| e.run(&w.circuit, &w.stimulus, &w.delays))
        });
        group.bench_with_input(BenchmarkId::new("galois-seq", w.name), &w, |b, w| {
            let e = GaloisSeqEngine::new();
            b.iter(|| e.run(&w.circuit, &w.stimulus, &w.delays))
        });
        group.bench_with_input(BenchmarkId::new("global-heap", w.name), &w, |b, w| {
            let e = SeqHeapEngine::new();
            b.iter(|| e.run(&w.circuit, &w.stimulus, &w.delays))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
