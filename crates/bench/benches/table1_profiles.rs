//! Table 1 — circuit profiles.
//!
//! The static columns (# nodes, # edges, # initial events) are free; the
//! dynamic column (# total events) requires a full simulation, which is
//! what this bench times (one sequential counting run per circuit). The
//! actual profile values are printed once at start-up so a bench run also
//! regenerates the table itself.

use criterion::{criterion_group, criterion_main, Criterion};
use des::engine::{seq::SeqWorksetEngine, Engine};
use des_bench::workloads::{PaperCircuit, Scale};

fn bench(c: &mut Criterion) {
    let engine = SeqWorksetEngine::new();
    let mut group = c.benchmark_group("table1_total_events");
    group.sample_size(10);
    for pc in PaperCircuit::ALL {
        let w = pc.workload(Scale::tiny());
        let out = engine.run(&w.circuit, &w.stimulus, &w.delays);
        println!(
            "table1: {} nodes={} edges={} initial={} total={}",
            w.name,
            w.circuit.num_nodes(),
            w.circuit.num_edges(),
            w.initial_events(),
            out.stats.events_delivered
        );
        group.bench_function(w.name, |b| {
            b.iter(|| engine.run(&w.circuit, &w.stimulus, &w.delays).stats.events_delivered)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
