//! The two model engines: a sequential reference and a sharded
//! conservative executor, both driving [`CompCore`] activations and
//! both wired into the shared run machinery — [`des::EngineConfig`],
//! [`des::RunPolicy`] fault injection, the no-progress watchdog, and
//! the sim-obs recorder.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use des::{
    EngineConfig, Partition, Recorder, RunCtl, SimError, SpanKind, StallSnapshot, Watchdog,
};

use crate::component::Payload;
use crate::graph::{Link, ModelGraph};
use crate::runtime::{fold_run_checksum, CompCore, OutMsg};

/// Names accepted by [`run`]/[`try_run`].
pub const MODEL_ENGINE_NAMES: [&str; 2] = ["model-seq", "model-sharded"];

/// Emit a sampled activation span every `HOT_SAMPLE_MASK + 1`
/// activations (the same 1-in-64 cadence as the circuit engines' run
/// probe).
const HOT_SAMPLE_MASK: u64 = 63;

/// Aggregate counters for one model run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Events handled by component handlers.
    pub events_delivered: u64,
    /// Protocol messages routed between components (events, promises
    /// and terminal NULLs).
    pub msgs_routed: u64,
    /// Component activations executed.
    pub activations: u64,
    /// Emissions dropped because they landed at or past the horizon.
    pub dropped_at_horizon: u64,
}

/// What a model run produces.
///
/// `observables` and `checksum` are the deterministic half: for a fixed
/// graph and seed they are bit-identical across engines and shard
/// counts. `stats` describes *this* execution (activation counts vary
/// with scheduling) — only `events_delivered` and `dropped_at_horizon`
/// are deterministic.
#[derive(Debug, Clone)]
pub struct ModelOutput {
    /// Engine that produced this output.
    pub engine: String,
    /// Execution counters.
    pub stats: ModelStats,
    /// `component.key` observables, in component-id order.
    pub observables: Vec<(String, u64)>,
    /// FNV fold of every handled event `(time, source, payload)`,
    /// per component, combined in component-id order.
    pub checksum: u64,
}

impl ModelOutput {
    /// True when the deterministic halves agree.
    pub fn equivalent(&self, other: &ModelOutput) -> bool {
        self.observables == other.observables && self.checksum == other.checksum
    }

    /// Panic with a pinpointed diff when the deterministic halves
    /// disagree.
    pub fn assert_equivalent(&self, other: &ModelOutput) {
        for (i, (a, b)) in self.observables.iter().zip(&other.observables).enumerate() {
            assert_eq!(
                a, b,
                "observable {i} diverges between {} and {}",
                self.engine, other.engine
            );
        }
        assert_eq!(
            self.observables.len(),
            other.observables.len(),
            "observable count diverges between {} and {}",
            self.engine,
            other.engine
        );
        assert_eq!(
            self.checksum, other.checksum,
            "event-stream checksum diverges between {} and {}",
            self.engine, other.engine
        );
    }
}

/// Run `graph` on the named engine, panicking on failure.
pub fn run<P: Payload>(name: &str, cfg: &EngineConfig, graph: ModelGraph<P>) -> ModelOutput {
    try_run(name, cfg, graph).unwrap_or_else(|e| panic!("model engine '{name}' failed: {e}"))
}

/// Run `graph` on the named engine (`"model-seq"` or
/// `"model-sharded"`), surfacing faults as structured [`SimError`]s.
pub fn try_run<P: Payload>(
    name: &str,
    cfg: &EngineConfig,
    graph: ModelGraph<P>,
) -> Result<ModelOutput, SimError> {
    match name {
        "model-seq" => SeqModelEngine::new(cfg.clone()).try_run(graph),
        "model-sharded" => ShardedModelEngine::new(cfg.clone()).try_run(graph),
        other => panic!("unknown model engine '{other}' (expected one of {MODEL_ENGINE_NAMES:?})"),
    }
}

/// Per-component results a finished executor hands back.
struct CompResult {
    id: usize,
    checksum: u64,
    dropped: u64,
    observables: Vec<(String, u64)>,
}

fn collect_comp<P: Payload>(core: &CompCore<P>) -> CompResult {
    let mut observables = Vec::new();
    core.observables(&mut observables);
    CompResult {
        id: core.id,
        checksum: core.checksum,
        dropped: core.dropped,
        observables,
    }
}

/// Assemble the deterministic output from per-component results.
fn finish(
    engine: &str,
    names: &[String],
    mut comps: Vec<CompResult>,
    mut stats: ModelStats,
    recorder: &Recorder,
    rank: Option<u64>,
    wall: Duration,
) -> ModelOutput {
    comps.sort_by_key(|c| c.id);
    let mut observables = Vec::new();
    for c in &comps {
        stats.dropped_at_horizon += c.dropped;
        for (k, v) in &c.observables {
            observables.push((format!("{}.{k}", names[c.id]), *v));
        }
    }
    let checksum = fold_run_checksum(comps.iter().map(|c| c.checksum));
    if recorder.is_enabled() {
        let rank_str = rank.map(|r| r.to_string());
        let mut labels: Vec<(&str, &str)> = vec![("engine", engine)];
        if let Some(r) = rank_str.as_deref() {
            labels.push(("rank", r));
        }
        recorder
            .counter("sim_model_events_total", &labels)
            .add(stats.events_delivered);
        recorder
            .counter("sim_model_msgs_total", &labels)
            .add(stats.msgs_routed);
        recorder
            .counter("sim_model_activations_total", &labels)
            .add(stats.activations);
        recorder
            .counter("sim_model_dropped_total", &labels)
            .add(stats.dropped_at_horizon);
        recorder
            .gauge("sim_model_run_wall_ns", &labels)
            .set(wall.as_nanos() as u64);
    }
    ModelOutput {
        engine: engine.to_string(),
        stats,
        observables,
        checksum,
    }
}

fn arm_watchdog(
    engine: &'static str,
    cfg: &EngineConfig,
    ctl: &Arc<RunCtl>,
    recorder: &Recorder,
) -> Option<Watchdog> {
    let deadline = cfg.watchdog()?;
    let fault = Arc::clone(cfg.fault());
    let recorder = recorder.clone();
    Some(Watchdog::arm(
        Arc::clone(ctl),
        deadline,
        move |stalled_for, ticks| {
            let mut notes = vec!["model protocol made no progress".to_string()];
            if fault.is_active() {
                notes.push(format!("fault injection active: {:?}", fault.injected()));
            }
            StallSnapshot {
                engine: engine.to_string(),
                stalled_for,
                progress_ticks: ticks,
                notes,
                traces: recorder.recent_traces(16),
                ..Default::default()
            }
        },
    ))
}

fn lower<P: Payload>(
    seed: u64,
    horizon: u64,
    comps: Vec<Box<dyn crate::Component<P>>>,
    links: &[Link],
) -> Vec<CompCore<P>> {
    let mut in_counts = vec![0usize; comps.len()];
    for l in links {
        in_counts[l.dst] += 1;
    }
    comps
        .into_iter()
        .enumerate()
        .map(|(id, c)| CompCore::new(id, c, seed, horizon, in_counts[id], links))
        .collect()
}

fn deliver<P: Payload>(core: &mut CompCore<P>, msg: OutMsg<P>) {
    match msg {
        OutMsg::Event { port, ev, .. } => core.deliver_event(port, ev),
        OutMsg::Promise { port, ts, .. } => core.deliver_promise(port, ts),
        OutMsg::Null { port, .. } => core.deliver_null(port),
    }
}

/// The sequential reference executor: one round-robin activation loop,
/// messages delivered in place.
pub struct SeqModelEngine {
    cfg: EngineConfig,
}

impl SeqModelEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        SeqModelEngine { cfg }
    }

    pub fn name(&self) -> &'static str {
        "model-seq"
    }

    pub fn try_run<P: Payload>(&self, graph: ModelGraph<P>) -> Result<ModelOutput, SimError> {
        let wall = Instant::now();
        let fault = Arc::clone(self.cfg.fault());
        fault.reset();
        let recorder = self.cfg.recorder();
        let tracer = recorder.tracer("model-seq");
        let ctl = Arc::new(RunCtl::new());
        let watchdog = arm_watchdog("model-seq", &self.cfg, &ctl, &recorder);

        let (seed, horizon, names, comps, links) = graph.into_parts();
        let mut cores = lower(seed, horizon, comps, &links);
        let mut stats = ModelStats::default();
        let mut out: Vec<OutMsg<P>> = Vec::new();
        let mut result: Result<(), SimError> = Ok(());

        'run: while !ctl.is_cancelled() {
            if fault.is_wedged() {
                // Burn wall-clock without ticking progress; the
                // watchdog records NoProgress and cancels us.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            if fault.should_panic_shard(0) {
                let payload = catch_unwind(|| panic!("injected fault: model executor panic"))
                    .expect_err("closure panics");
                result = Err(SimError::from_panic(None, &*payload));
                break 'run;
            }
            let mut progress = 0u64;
            for i in 0..cores.len() {
                if cores[i].is_done() {
                    continue;
                }
                let sampled =
                    (recorder.is_enabled() && stats.activations & HOT_SAMPLE_MASK == 0)
                        .then(Instant::now);
                let core = &mut cores[i];
                let handled = match catch_unwind(AssertUnwindSafe(|| core.activate(&mut out))) {
                    Ok(n) => n,
                    Err(payload) => {
                        result = Err(SimError::from_panic(Some(i), &*payload));
                        break 'run;
                    }
                };
                if let Some(start) = sampled {
                    tracer.complete(SpanKind::NodeRun, i as u64, handled, start);
                }
                stats.activations += 1;
                stats.events_delivered += handled;
                stats.msgs_routed += out.len() as u64;
                progress += handled + out.len() as u64;
                for msg in out.drain(..) {
                    let dst = match &msg {
                        OutMsg::Event { dst, .. }
                        | OutMsg::Promise { dst, .. }
                        | OutMsg::Null { dst, .. } => *dst,
                    };
                    deliver(&mut cores[dst], msg);
                }
            }
            ctl.tick_n(progress);
            if cores.iter().all(|c| c.is_done()) {
                break;
            }
            if progress == 0 {
                result = Err(SimError::invariant(
                    "model-seq: no progress with components still pending",
                ));
                break;
            }
        }

        if let Some(wd) = watchdog {
            wd.disarm();
        }
        if let Some(err) = ctl.take_error() {
            if result.is_ok() {
                result = Err(err);
            }
        }
        result?;
        let comps: Vec<CompResult> = cores.iter().map(collect_comp).collect();
        Ok(finish("model-seq", &names, comps, stats, &recorder, self.cfg.rank(), wall.elapsed()))
    }
}

/// The sharded conservative executor: components partitioned into K
/// shards ([`Partition::build_graph`] handles the cyclic graphs the
/// circuit partitioner never sees), one thread per shard, cross-shard
/// traffic over bounded mailboxes.
pub struct ShardedModelEngine {
    cfg: EngineConfig,
}

/// What one shard thread hands back after a clean (or cancelled) run.
struct ShardDone {
    handled: u64,
    routed: u64,
    activations: u64,
    comps: Vec<CompResult>,
}

impl ShardedModelEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        ShardedModelEngine { cfg }
    }

    pub fn name(&self) -> &'static str {
        "model-sharded"
    }

    pub fn try_run<P: Payload>(&self, graph: ModelGraph<P>) -> Result<ModelOutput, SimError> {
        let wall = Instant::now();
        let fault = Arc::clone(self.cfg.fault());
        fault.reset();
        let recorder = self.cfg.recorder();
        let ctl = Arc::new(RunCtl::new());
        let watchdog = arm_watchdog("model-sharded", &self.cfg, &ctl, &recorder);

        let (seed, horizon, names, comps, links) = graph.into_parts();
        let n = comps.len();
        let k = self.cfg.shards().max(1).min(n.max(1));
        let edges: Vec<(usize, usize)> = links.iter().map(|l| (l.src, l.dst)).collect();
        let partition = Partition::build_graph(n, &edges, k, self.cfg.strategy());
        // Resolve the pin plan before spawning: an invalid explicit core
        // list is a configuration error, not a per-thread surprise.
        let pin_plan = self.cfg.pinning().plan(k)?;
        let assignment: Arc<Vec<usize>> = Arc::new(partition.assignment().to_vec());

        // Split the lowered cores by shard; each shard also gets a
        // global-id → local-index map for inbox delivery.
        let mut shard_cores: Vec<Vec<CompCore<P>>> = (0..k).map(|_| Vec::new()).collect();
        let mut g2l = vec![usize::MAX; n];
        for core in lower(seed, horizon, comps, &links) {
            let s = assignment[core.id];
            g2l[core.id] = shard_cores[s].len();
            shard_cores[s].push(core);
        }
        let g2l = Arc::new(g2l);

        let capacity = self.cfg.mailbox_capacity().max(1);
        let mut txs: Vec<Sender<OutMsg<P>>> = Vec::with_capacity(k);
        let mut rxs: Vec<Receiver<OutMsg<P>>> = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = bounded(capacity);
            txs.push(tx);
            rxs.push(rx);
        }

        let mut results: Vec<Result<ShardDone, SimError>> = Vec::with_capacity(k);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(k);
            for (me, (local, rx)) in shard_cores
                .drain(..)
                .zip(rxs.drain(..))
                .enumerate()
            {
                let txs = txs.clone();
                let ctl = Arc::clone(&ctl);
                let fault = Arc::clone(&fault);
                let assignment = Arc::clone(&assignment);
                let g2l = Arc::clone(&g2l);
                let recorder = recorder.clone();
                let pin_slot = pin_plan[me];
                handles.push(scope.spawn(move || {
                    run_shard(me, pin_slot, local, rx, txs, assignment, g2l, ctl, fault, recorder)
                }));
            }
            // Parent drops its sender clones so only live shards hold
            // them.
            txs.clear();
            for h in handles {
                results.push(h.join().unwrap_or_else(|payload| {
                    Err(SimError::from_panic(None, &*payload))
                }));
            }
        });

        if let Some(wd) = watchdog {
            wd.disarm();
        }
        let mut stats = ModelStats::default();
        let mut comps: Vec<CompResult> = Vec::with_capacity(n);
        let mut first_err: Option<SimError> = None;
        for r in results {
            match r {
                Ok(done) => {
                    stats.events_delivered += done.handled;
                    stats.msgs_routed += done.routed;
                    stats.activations += done.activations;
                    comps.extend(done.comps);
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        // The ctl error is the primary cause (first recorded wins
        // there); thread-local errors are the fallback.
        if let Some(err) = ctl.take_error() {
            return Err(err);
        }
        if let Some(err) = first_err {
            return Err(err);
        }
        Ok(finish(
            "model-sharded",
            &names,
            comps,
            stats,
            &recorder,
            self.cfg.rank(),
            wall.elapsed(),
        ))
    }
}

#[allow(clippy::too_many_arguments)]
fn run_shard<P: Payload>(
    me: usize,
    pin_slot: Option<usize>,
    mut local: Vec<CompCore<P>>,
    rx: Receiver<OutMsg<P>>,
    txs: Vec<Sender<OutMsg<P>>>,
    assignment: Arc<Vec<usize>>,
    g2l: Arc<Vec<usize>>,
    ctl: Arc<RunCtl>,
    fault: Arc<des::FaultPlan>,
    recorder: Recorder,
) -> Result<ShardDone, SimError> {
    // Pin first: component arenas grow on demand, so their pages are
    // first-touched from the pinned core.
    if let Some(core) = pin_slot {
        des::engine::pin::pin_current_thread(core);
    }
    let tracer = recorder.tracer(&format!("model-shard-{me}"));
    let mut handled_total = 0u64;
    let mut routed_total = 0u64;
    let mut activations = 0u64;
    let mut out: Vec<OutMsg<P>> = Vec::new();

    let shard_done = |local: &[CompCore<P>], handled, routed, activations| ShardDone {
        handled,
        routed,
        activations,
        comps: local.iter().map(collect_comp).collect(),
    };

    loop {
        if ctl.is_cancelled() {
            return Ok(shard_done(&local, handled_total, routed_total, activations));
        }
        if fault.is_wedged() {
            // Hold the shard without ticking progress until the
            // watchdog cancels the run.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        if fault.should_panic_shard(me as u64) {
            let payload = catch_unwind(|| panic!("injected fault: shard {me} panic"))
                .expect_err("closure panics");
            let err = SimError::from_panic(None, &*payload);
            ctl.record_error(err.clone());
            return Err(err);
        }

        let mut moved = 0u64;
        while let Ok(msg) = rx.try_recv() {
            deliver_local(&mut local, &g2l, msg);
            moved += 1;
        }

        let mut handled = 0u64;
        let mut routed = 0u64;
        for li in 0..local.len() {
            if local[li].is_done() {
                continue;
            }
            let gid = local[li].id;
            let sampled = (recorder.is_enabled() && activations & HOT_SAMPLE_MASK == 0)
                .then(Instant::now);
            let core = &mut local[li];
            let n = match catch_unwind(AssertUnwindSafe(|| core.activate(&mut out))) {
                Ok(n) => n,
                Err(payload) => {
                    let err = SimError::from_panic(Some(gid), &*payload);
                    ctl.record_error(err.clone());
                    return Err(err);
                }
            };
            if let Some(start) = sampled {
                tracer.complete(SpanKind::NodeRun, gid as u64, n, start);
            }
            activations += 1;
            handled += n;
            routed += out.len() as u64;
            for msg in out.drain(..) {
                let dst = match &msg {
                    OutMsg::Event { dst, .. }
                    | OutMsg::Promise { dst, .. }
                    | OutMsg::Null { dst, .. } => *dst,
                };
                let s = assignment[dst];
                if s == me {
                    deliver_local(&mut local, &g2l, msg);
                    continue;
                }
                // Bounded-mailbox backpressure: when the destination is
                // full, drain our own inbox (breaking send cycles)
                // before retrying.
                let mut pending = Some(msg);
                while let Some(m) = pending.take() {
                    match txs[s].try_send(m) {
                        Ok(()) => {}
                        Err(TrySendError::Full(m)) => {
                            pending = Some(m);
                            let mut drained = false;
                            while let Ok(inmsg) = rx.try_recv() {
                                deliver_local(&mut local, &g2l, inmsg);
                                moved += 1;
                                drained = true;
                            }
                            if ctl.is_cancelled() {
                                return Ok(shard_done(
                                    &local,
                                    handled_total + handled,
                                    routed_total + routed,
                                    activations,
                                ));
                            }
                            if !drained {
                                std::thread::sleep(Duration::from_micros(50));
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            if ctl.is_cancelled() {
                                return Ok(shard_done(
                                    &local,
                                    handled_total + handled,
                                    routed_total + routed,
                                    activations,
                                ));
                            }
                            let err = SimError::invariant(format!(
                                "model-sharded: shard {me} sent to exited shard {s}"
                            ));
                            ctl.record_error(err.clone());
                            return Err(err);
                        }
                    }
                }
            }
        }
        handled_total += handled;
        routed_total += routed;
        ctl.tick_n(handled + routed + moved);

        if local.iter().all(|c| c.is_done()) {
            return Ok(shard_done(&local, handled_total, routed_total, activations));
        }
        if handled == 0 && routed == 0 && moved == 0 {
            // Nothing local to do: block briefly for upstream traffic,
            // re-checking cancellation at a human-invisible cadence.
            if let Ok(msg) = rx.recv_timeout(Duration::from_millis(1)) {
                deliver_local(&mut local, &g2l, msg);
                ctl.tick();
            }
        }
    }
}

fn deliver_local<P: Payload>(local: &mut [CompCore<P>], g2l: &[usize], msg: OutMsg<P>) {
    let dst = match &msg {
        OutMsg::Event { dst, .. } | OutMsg::Promise { dst, .. } | OutMsg::Null { dst, .. } => *dst,
    };
    deliver(&mut local[g2l[dst]], msg);
}
