//! # sim-model — payload-generic components on the conservative engines
//!
//! The circuit engines simulate exactly one workload: logic netlists.
//! This crate is the layer that turns the reproduction into a reusable
//! PDES framework (ROADMAP "beyond circuits"): user code implements
//! [`Component`] over an opaque [`Payload`], declares outbound links
//! with per-link lookahead in a [`ModelGraph`], and the adapter lowers
//! that graph onto the existing conservative machinery — components
//! become nodes, links become input ports backed by `des`'s generic
//! [`des::node::PortQueue`], and lookahead feeds the NULL-promise
//! protocol. Configuration ([`des::EngineConfig`]), fault semantics
//! ([`fault::RunPolicy`]: injected panics surface as structured
//! [`des::SimError`]s, wedged runs trip the watchdog) and sim-obs
//! probes all come along for free.
//!
//! Two engines execute a graph:
//!
//! * [`SeqModelEngine`] (`"model-seq"`) — the sequential reference: one
//!   workset loop over component activations.
//! * [`ShardedModelEngine`] (`"model-sharded"`) — components split into
//!   K shards by the `sim-shard` partitioner (its graph-generic face,
//!   [`des::Partition::build_graph`], since component graphs may be
//!   cyclic), one thread per shard, cross-shard events/promises/NULLs
//!   over bounded mailboxes with drain-own-inbox backpressure.
//!
//! ## Determinism contract
//!
//! Model observables are **bit-identical across engines and shard
//! counts**. The runtime guarantees it with three rules (see
//! `DESIGN.md` §13 for the proof sketch):
//!
//! 1. *Strict safety*: an event is handled only once the component's
//!    local clock (min over input-port clocks) is strictly greater than
//!    its timestamp, so a timestamp cohort is never split between
//!    activations by message timing.
//! 2. *Sender-side staging*: `ctx.send` parks emissions in a per-link
//!    staging buffer; after each activation the runtime flushes, in
//!    (time, emission) order, exactly the staged sends at or below
//!    `clock + lookahead` — restoring the nondecreasing per-link FIFO
//!    order the port queues require even when handlers emit with
//!    non-monotone delays (PHOLD's signature behaviour).
//! 3. *Per-component RNG*: every component owns a [`DetRng`] stream
//!    seeded from (graph seed, component id) and draws from it only
//!    inside its own handler, so trajectories are a pure function of
//!    the event order rule 1 fixed.
//!
//! ## Workloads
//!
//! [`phold`] is the canonical PDES benchmark (N LPs on a ring, constant
//! event population, tunable remote fraction and lookahead);
//! [`queueing`] is an M/M/c queueing network (exponential arrivals and
//! service, per-station routing, occupancy/latency observables).
//!
//! ## Quickstart
//!
//! ```
//! use des::EngineConfig;
//! use model::{run, Component, Ctx, EventSource, ModelGraph};
//!
//! struct Ping { hops: u64 }
//! impl Component<u64> for Ping {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
//!         ctx.send(0, 5, 1); // link 0, delay 5 >= lookahead, payload 1
//!     }
//!     fn on_event(&mut self, _src: EventSource, n: u64, ctx: &mut Ctx<'_, u64>) {
//!         self.hops += 1;
//!         let jitter = ctx.rng().range(0, 3);
//!         ctx.send(0, 5 + jitter, n + 1);
//!     }
//!     fn observables(&self, out: &mut Vec<(String, u64)>) {
//!         out.push(("hops".into(), self.hops));
//!     }
//! }
//!
//! let mut g = ModelGraph::new(42, 200); // seed, horizon
//! let a = g.add("a", Ping { hops: 0 });
//! let b = g.add("b", Ping { hops: 0 });
//! g.link(a, b, 5); // lookahead 5
//! g.link(b, a, 5);
//! let out = run("model-seq", &EngineConfig::default(), g);
//! assert!(out.stats.events_delivered > 0);
//! ```

pub mod component;
pub mod engine;
pub mod graph;
pub mod phold;
pub mod queueing;
pub(crate) mod runtime;

pub use component::{Component, Ctx, EventSource, Payload};
pub use engine::{
    run, try_run, ModelOutput, ModelStats, SeqModelEngine, ShardedModelEngine, MODEL_ENGINE_NAMES,
};
pub use graph::ModelGraph;
/// Deterministic per-component random stream (SplitMix64), re-exported
/// from the PDES kernel so models and kernel LPs share one generator.
pub use pdes::rng::DetRng;
