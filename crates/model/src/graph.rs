//! The component graph a model engine executes: components plus
//! directed, lookahead-annotated links.

use des::Timestamp;

use crate::component::{Component, Payload};

/// One directed link between components.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// Source component id.
    pub src: usize,
    /// Destination component id.
    pub dst: usize,
    /// Outbound index at the source (its `link()` declaration order —
    /// the index `Ctx::send` takes).
    pub out_ix: usize,
    /// Input-port index at the destination (its inbound declaration
    /// order — the index `EventSource::Port` reports).
    pub dst_port: usize,
    /// Declared minimum delay: every send on this link has
    /// `delay >= lookahead`, and `lookahead >= 1`.
    pub lookahead: u64,
}

/// A simulation model: named components wired by lookahead links.
///
/// Components are added with [`ModelGraph::add`] (ids are dense, in
/// insertion order) and wired with [`ModelGraph::link`]; cycles are
/// fine — lookahead keeps the conservative protocol deadlock-free.
pub struct ModelGraph<P: Payload> {
    seed: u64,
    horizon: Timestamp,
    names: Vec<String>,
    pub(crate) components: Vec<Box<dyn Component<P>>>,
    links: Vec<Link>,
    /// Per-component outbound link count (next `out_ix`).
    out_counts: Vec<usize>,
    /// Per-component inbound link count (next `dst_port`).
    in_counts: Vec<usize>,
}

impl<P: Payload> ModelGraph<P> {
    /// A fresh graph with the RNG `seed` every component stream derives
    /// from, running until `horizon` (exclusive; must be ≥ 1).
    pub fn new(seed: u64, horizon: Timestamp) -> Self {
        assert!(horizon >= 1, "horizon must be >= 1");
        ModelGraph {
            seed,
            horizon,
            names: Vec::new(),
            components: Vec::new(),
            links: Vec::new(),
            out_counts: Vec::new(),
            in_counts: Vec::new(),
        }
    }

    /// Add a component; returns its dense id.
    pub fn add(&mut self, name: impl Into<String>, component: impl Component<P> + 'static) -> usize {
        let id = self.components.len();
        self.names.push(name.into());
        self.components.push(Box::new(component));
        self.out_counts.push(0);
        self.in_counts.push(0);
        id
    }

    /// Wire `src → dst` with the given `lookahead` (≥ 1). Returns the
    /// outbound index at `src`, i.e. the `link` argument `Ctx::send`
    /// expects from `src`'s handlers.
    pub fn link(&mut self, src: usize, dst: usize, lookahead: u64) -> usize {
        assert!(src < self.components.len(), "unknown src component {src}");
        assert!(dst < self.components.len(), "unknown dst component {dst}");
        assert!(lookahead >= 1, "link lookahead must be >= 1");
        let out_ix = self.out_counts[src];
        let dst_port = self.in_counts[dst];
        self.out_counts[src] += 1;
        self.in_counts[dst] += 1;
        self.links.push(Link {
            src,
            dst,
            out_ix,
            dst_port,
            lookahead,
        });
        out_ix
    }

    /// The graph seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The run horizon (exclusive upper bound on event timestamps).
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when no components have been added.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Component name by id.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// All links, in declaration order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// `(src, dst)` pairs for the partitioner.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.links.iter().map(|l| (l.src, l.dst)).collect()
    }

    /// Inbound link count of component `id`.
    pub fn in_count(&self, id: usize) -> usize {
        self.in_counts[id]
    }

    /// Outbound link count of component `id`.
    pub fn out_count(&self, id: usize) -> usize {
        self.out_counts[id]
    }

    pub(crate) fn into_parts(self) -> GraphParts<P> {
        (self.seed, self.horizon, self.names, self.components, self.links)
    }
}

/// What [`ModelGraph::into_parts`] hands the engines: seed, horizon,
/// component names, the components themselves, and the links.
pub(crate) type GraphParts<P> = (u64, Timestamp, Vec<String>, Vec<Box<dyn Component<P>>>, Vec<Link>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Ctx, EventSource};

    struct Nop;
    impl Component<u64> for Nop {
        fn on_event(&mut self, _s: EventSource, _p: u64, _ctx: &mut Ctx<'_, u64>) {}
    }

    #[test]
    fn link_indices_follow_declaration_order() {
        let mut g = ModelGraph::new(1, 10);
        let a = g.add("a", Nop);
        let b = g.add("b", Nop);
        let c = g.add("c", Nop);
        assert_eq!(g.link(a, b, 1), 0); // a's out 0, b's port 0
        assert_eq!(g.link(a, c, 2), 1); // a's out 1, c's port 0
        assert_eq!(g.link(c, b, 3), 0); // c's out 0, b's port 1
        assert_eq!(g.out_count(a), 2);
        assert_eq!(g.in_count(b), 2);
        let l = g.links()[2];
        assert_eq!((l.src, l.dst, l.out_ix, l.dst_port, l.lookahead), (c, b, 0, 1, 3));
        assert_eq!(g.edges(), vec![(a, b), (a, c), (c, b)]);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_rejected() {
        let mut g = ModelGraph::new(1, 10);
        let a = g.add("a", Nop);
        let b = g.add("b", Nop);
        g.link(a, b, 0);
    }
}
