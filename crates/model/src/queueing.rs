//! An M/M/c queueing network: a Poisson source, a tandem of c-server
//! exponential-service stations (optionally with a feedback loop from
//! the last station back to the first), and an absorbing sink.
//!
//! All statistics are integer arithmetic over tick timestamps —
//! occupancy integrals, waiting-time sums, completion latencies — so
//! the observables are exact and bit-identical across engines.

use std::collections::VecDeque;

use crate::component::{Component, Ctx, EventSource, Payload};
use crate::graph::ModelGraph;

/// A job flowing through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Monotone id assigned by the source.
    pub id: u64,
    /// Tick the source emitted it.
    pub created: u64,
}

impl Payload for Job {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.created.to_le_bytes());
    }
}

/// Network shape and rates.
#[derive(Debug, Clone, Copy)]
pub struct MmcSpec {
    /// Number of tandem stations.
    pub stations: usize,
    /// Servers per station (the `c` in M/M/c).
    pub servers: usize,
    /// Mean exponential interarrival time at the source, in ticks.
    pub mean_interarrival: f64,
    /// Mean exponential service time per station, in ticks.
    pub mean_service: f64,
    /// When set, a completed job at the *last* station re-enters the
    /// first station with this probability instead of departing.
    pub feedback: Option<f64>,
}

impl Default for MmcSpec {
    fn default() -> Self {
        MmcSpec {
            stations: 3,
            servers: 2,
            mean_interarrival: 8.0,
            mean_service: 12.0,
            feedback: None,
        }
    }
}

/// Poisson source: its whole arrival timeline is self-scheduled, so it
/// has no input ports and the runtime plays it out in one activation.
struct Source {
    mean_interarrival: f64,
    next_id: u64,
    generated: u64,
}

impl Component<Job> for Source {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Job>) {
        let gap = ctx.rng().exp_ticks(self.mean_interarrival);
        ctx.schedule_self(gap, Job { id: 0, created: 0 });
    }

    fn on_event(&mut self, _src: EventSource, _tick: Job, ctx: &mut Ctx<'_, Job>) {
        let job = Job {
            id: self.next_id,
            created: ctx.now(),
        };
        self.next_id += 1;
        self.generated += 1;
        ctx.send(0, 1, job); // one-tick transfer into the first station
        let gap = ctx.rng().exp_ticks(self.mean_interarrival);
        ctx.schedule_self(gap, Job { id: 0, created: 0 });
    }

    fn observables(&self, out: &mut Vec<(String, u64)>) {
        out.push(("generated".into(), self.generated));
    }
}

/// One M/M/c station: `servers` parallel servers, FIFO waiting room.
/// Arrivals come in on input ports; service completions are
/// self-events carrying the job being served.
struct Station {
    servers: usize,
    mean_service: f64,
    /// Forward jobs on out link 0; when `Some(p)`, re-route with
    /// probability `p` on out link 1 (the feedback edge) instead.
    feedback: Option<f64>,
    busy: usize,
    waiting: VecDeque<(Job, u64)>,
    // Integer statistics.
    served: u64,
    wait_sum: u64,
    max_queue: u64,
    occupancy_integral: u64,
    last_change: u64,
}

impl Station {
    fn new(servers: usize, mean_service: f64, feedback: Option<f64>) -> Self {
        Station {
            servers,
            mean_service,
            feedback,
            busy: 0,
            waiting: VecDeque::new(),
            served: 0,
            wait_sum: 0,
            max_queue: 0,
            occupancy_integral: 0,
            last_change: 0,
        }
    }

    /// Advance the time-weighted occupancy integral (jobs in system ×
    /// ticks) to `now`.
    fn roll_occupancy(&mut self, now: u64) {
        let in_system = (self.busy + self.waiting.len()) as u64;
        self.occupancy_integral += in_system * (now - self.last_change);
        self.last_change = now;
    }

    fn start_service(&mut self, job: Job, ctx: &mut Ctx<'_, Job>) {
        self.busy += 1;
        let service = ctx.rng().exp_ticks(self.mean_service);
        ctx.schedule_self(service, job);
    }
}

impl Component<Job> for Station {
    fn on_event(&mut self, src: EventSource, job: Job, ctx: &mut Ctx<'_, Job>) {
        let now = ctx.now();
        self.roll_occupancy(now);
        match src {
            EventSource::Port(_) => {
                // Arrival: grab a free server or queue up.
                if self.busy < self.servers {
                    self.start_service(job, ctx);
                } else {
                    self.waiting.push_back((job, now));
                    self.max_queue = self.max_queue.max(self.waiting.len() as u64);
                }
            }
            EventSource::SelfTimer => {
                // Service completion: route the job onward, then pull
                // the next waiting job into the freed server.
                self.served += 1;
                let recirculate = match self.feedback {
                    Some(p) => ctx.rng().chance(p),
                    None => false,
                };
                ctx.send(if recirculate { 1 } else { 0 }, 1, job);
                if let Some((next, arrived)) = self.waiting.pop_front() {
                    self.wait_sum += now - arrived;
                    self.busy -= 1;
                    self.start_service(next, ctx);
                } else {
                    self.busy -= 1;
                }
            }
        }
    }

    fn observables(&self, out: &mut Vec<(String, u64)>) {
        out.push(("served".into(), self.served));
        out.push(("wait_sum".into(), self.wait_sum));
        out.push(("max_queue".into(), self.max_queue));
        out.push(("occupancy_integral".into(), self.occupancy_integral));
    }
}

/// Absorbing sink: counts completions and total source-to-sink latency.
struct Sink {
    completed: u64,
    latency_sum: u64,
}

impl Component<Job> for Sink {
    fn on_event(&mut self, _src: EventSource, job: Job, ctx: &mut Ctx<'_, Job>) {
        self.completed += 1;
        self.latency_sum += ctx.now() - job.created;
    }

    fn observables(&self, out: &mut Vec<(String, u64)>) {
        out.push(("completed".into(), self.completed));
        out.push(("latency_sum".into(), self.latency_sum));
    }
}

/// Build the network: `src → q0 → q1 → … → sink`, every edge with
/// lookahead 1 (the one-tick transfer), plus the optional feedback edge
/// `q_last → q0`.
pub fn build(spec: MmcSpec, seed: u64, horizon: u64) -> ModelGraph<Job> {
    assert!(spec.stations >= 1, "need at least one station");
    assert!(spec.servers >= 1, "need at least one server per station");
    let mut g = ModelGraph::new(seed, horizon);
    let src = g.add(
        "src",
        Source {
            mean_interarrival: spec.mean_interarrival,
            next_id: 0,
            generated: 0,
        },
    );
    let stations: Vec<usize> = (0..spec.stations)
        .map(|i| {
            let feedback = if i + 1 == spec.stations {
                spec.feedback
            } else {
                None
            };
            g.add(
                format!("q{i}"),
                Station::new(spec.servers, spec.mean_service, feedback),
            )
        })
        .collect();
    let sink = g.add(
        "sink",
        Sink {
            completed: 0,
            latency_sum: 0,
        },
    );
    g.link(src, stations[0], 1);
    for w in stations.windows(2) {
        g.link(w[0], w[1], 1); // station out link 0: forward
    }
    g.link(*stations.last().expect("nonempty"), sink, 1); // last station's out link 0
    if spec.feedback.is_some() {
        g.link(*stations.last().expect("nonempty"), stations[0], 1); // out link 1: feedback
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use des::EngineConfig;

    fn get(out: &crate::ModelOutput, key: &str) -> u64 {
        out.observables
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing observable {key}"))
    }

    #[test]
    fn jobs_flow_source_to_sink() {
        let out = run(
            "model-seq",
            &EngineConfig::default(),
            build(MmcSpec::default(), 9, 2_000),
        );
        let generated = get(&out, "src.generated");
        let completed = get(&out, "sink.completed");
        assert!(generated > 0);
        assert!(completed > 0);
        // Jobs can still be in flight at the horizon, but never appear
        // from nowhere.
        assert!(completed <= generated);
        // Minimum source-to-sink path: one tick into q0, then per
        // station ≥1 tick of service plus a one-tick transfer out.
        assert!(get(&out, "sink.latency_sum") >= completed * 7);
    }

    #[test]
    fn feedback_loop_recirculates_jobs() {
        let spec = MmcSpec {
            feedback: Some(0.5),
            ..MmcSpec::default()
        };
        let out = run("model-seq", &EngineConfig::default(), build(spec, 21, 4_000));
        let served_last = get(&out, &format!("q{}.served", spec.stations - 1));
        let completed = get(&out, "sink.completed");
        // With p=0.5 feedback, the last station serves measurably more
        // jobs than ever reach the sink.
        assert!(served_last > completed, "served_last={served_last} completed={completed}");
    }
}
