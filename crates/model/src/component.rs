//! The user-facing model vocabulary: payloads, components, and the
//! handler context.

use des::{Timestamp, NULL_TS};
use pdes::rng::DetRng;

/// An opaque event payload exchanged between components.
///
/// `encode` must write a stable byte representation: it feeds the
/// deterministic observables checksum that the engine-equivalence
/// machinery compares bit for bit, so it must depend only on the
/// payload's value (never on addresses, hashes with random state, or
/// iteration order of unordered containers).
pub trait Payload: Clone + Send + 'static {
    /// Append this payload's canonical byte encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

impl Payload for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
}

impl Payload for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Payload for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Payload for (u64, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
        out.extend_from_slice(&self.1.to_le_bytes());
    }
}

/// Where an event handled by [`Component::on_event`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSource {
    /// Delivered over an inbound link; the index counts the links
    /// *into* this component in [`crate::ModelGraph::link`] call order.
    Port(usize),
    /// Scheduled by this component on itself via
    /// [`Ctx::schedule_self`].
    SelfTimer,
}

/// A user-defined simulation entity (one logical process).
///
/// Handlers run with exclusive access to the component's state, a
/// private deterministic RNG, and a [`Ctx`] for emitting future events.
/// A handler must not touch shared mutable state — determinism across
/// engines relies on a component's trajectory being a pure function of
/// its event sequence and RNG stream.
pub trait Component<P: Payload>: Send {
    /// Called once at time 0, before any event, to seed initial
    /// activity (`ctx.now() == 0`).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, P>) {}

    /// Handle one event arriving at `ctx.now()`.
    fn on_event(&mut self, source: EventSource, payload: P, ctx: &mut Ctx<'_, P>);

    /// Deterministic end-of-run summary, appended as (key, value)
    /// pairs; these are part of the bit-identical observables.
    fn observables(&self, _out: &mut Vec<(String, u64)>) {}
}

/// The handler context: simulation time, the component's RNG, and the
/// two emission primitives.
///
/// Emissions are *staged*, not sent: the runtime releases a staged send
/// only once the conservative protocol proves no earlier emission can
/// still occur on that link (see the crate docs' determinism contract),
/// so handlers are free to emit with non-monotone delays.
pub struct Ctx<'a, P: Payload> {
    pub(crate) now: Timestamp,
    pub(crate) horizon: Timestamp,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) lookaheads: &'a [u64],
    /// Raw emissions `(out link, at)`; absorbed into the per-link
    /// staging heaps after the handler returns.
    pub(crate) sent: &'a mut Vec<(usize, Timestamp, P)>,
    /// Raw self-schedules `(at, payload)` for the local event heap.
    pub(crate) self_sched: &'a mut Vec<(Timestamp, P)>,
    /// Emissions at or past the horizon, dropped and counted.
    pub(crate) dropped: &'a mut u64,
}

impl<P: Payload> Ctx<'_, P> {
    /// Current simulation time (the handled event's timestamp; 0 in
    /// [`Component::on_start`]).
    #[inline]
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The run's horizon: emissions at or past it are dropped (and
    /// counted in [`crate::ModelStats::dropped_at_horizon`]).
    #[inline]
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// This component's private deterministic random stream.
    #[inline]
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Number of outbound links this component declared.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.lookaheads.len()
    }

    /// The lookahead of outbound link `link`.
    #[inline]
    pub fn lookahead(&self, link: usize) -> u64 {
        self.lookaheads[link]
    }

    /// Emit `payload` over outbound link `link` (in
    /// [`crate::ModelGraph::link`] call order for this component),
    /// arriving `delay` ticks from now.
    ///
    /// # Panics
    /// If `delay` is below the link's declared lookahead — the contract
    /// that makes conservative parallel execution possible.
    #[inline]
    pub fn send(&mut self, link: usize, delay: u64, payload: P) {
        assert!(
            delay >= self.lookaheads[link],
            "send on link {link} with delay {delay} below its lookahead {}",
            self.lookaheads[link]
        );
        let at = self.now.saturating_add(delay);
        if at >= self.horizon || at == NULL_TS {
            *self.dropped += 1;
            return;
        }
        self.sent.push((link, at, payload));
    }

    /// Schedule an event on this component itself, `delay >= 1` ticks
    /// from now. Self-events live in a local heap, not on a link, so no
    /// lookahead applies — but zero delays are rejected to keep every
    /// timeline finitely terminating.
    #[inline]
    pub fn schedule_self(&mut self, delay: u64, payload: P) {
        assert!(delay >= 1, "self-schedule delay must be >= 1");
        let at = self.now.saturating_add(delay);
        if at >= self.horizon || at == NULL_TS {
            *self.dropped += 1;
            return;
        }
        self.self_sched.push((at, payload));
    }
}
