//! PHOLD, the canonical PDES benchmark (Fujimoto's parallel HOLD): N
//! logical processes on a bidirectional ring, a constant event
//! population, exponential holding times, and a tunable fraction of
//! events that hop to a neighbour instead of returning to their own
//! timeline.
//!
//! Every delay is `lookahead + exp_ticks(mean)`, so the minimum
//! timestamp increment equals the declared link lookahead — the knob
//! that decides how much conservative parallelism the sharded engine
//! can extract.

use crate::component::{Component, Ctx, EventSource, Payload};
use crate::graph::ModelGraph;

/// The event token: where it was born and how many hops it has made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PholdToken {
    /// LP that seeded this token at start-up.
    pub origin: u64,
    /// Handled-event count along this token's lifetime.
    pub hops: u64,
}

impl Payload for PholdToken {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.origin.to_le_bytes());
        out.extend_from_slice(&self.hops.to_le_bytes());
    }
}

/// PHOLD parameters.
#[derive(Debug, Clone, Copy)]
pub struct PholdConfig {
    /// Number of logical processes on the ring.
    pub lps: usize,
    /// Tokens seeded per LP at start-up (total population = lps × this).
    pub population: usize,
    /// Per-link lookahead = minimum timestamp increment.
    pub lookahead: u64,
    /// Probability a handled token hops to a ring neighbour instead of
    /// rescheduling locally.
    pub remote_fraction: f64,
    /// Mean of the exponential holding time added on top of the
    /// lookahead.
    pub mean_delay: f64,
}

impl Default for PholdConfig {
    fn default() -> Self {
        PholdConfig {
            lps: 16,
            population: 4,
            lookahead: 4,
            remote_fraction: 0.5,
            mean_delay: 10.0,
        }
    }
}

/// One PHOLD logical process.
struct PholdLp {
    id: u64,
    cfg: PholdConfig,
    received: u64,
    sent_remote: u64,
    hop_sum: u64,
}

impl Component<PholdToken> for PholdLp {
    fn on_start(&mut self, ctx: &mut Ctx<'_, PholdToken>) {
        for _ in 0..self.cfg.population {
            let delay = self.cfg.lookahead + ctx.rng().exp_ticks(self.cfg.mean_delay);
            ctx.schedule_self(
                delay,
                PholdToken {
                    origin: self.id,
                    hops: 0,
                },
            );
        }
    }

    fn on_event(&mut self, _src: EventSource, token: PholdToken, ctx: &mut Ctx<'_, PholdToken>) {
        self.received += 1;
        self.hop_sum += token.hops;
        let next = PholdToken {
            origin: token.origin,
            hops: token.hops + 1,
        };
        // Fixed draw order (delay, remote?, direction?) keeps the RNG
        // stream a pure function of the event sequence.
        let delay = self.cfg.lookahead + ctx.rng().exp_ticks(self.cfg.mean_delay);
        let remote = ctx.num_links() > 0 && ctx.rng().chance(self.cfg.remote_fraction);
        if remote {
            let n = ctx.num_links() as u64;
            let link = ctx.rng().range(0, n) as usize;
            ctx.send(link, delay, next);
            self.sent_remote += 1;
        } else {
            ctx.schedule_self(delay, next);
        }
    }

    fn observables(&self, out: &mut Vec<(String, u64)>) {
        out.push(("received".into(), self.received));
        out.push(("sent_remote".into(), self.sent_remote));
        out.push(("hop_sum".into(), self.hop_sum));
    }
}

/// Build the PHOLD ring: `cfg.lps` LPs, each linked to its right and
/// left neighbour with `cfg.lookahead`.
pub fn build(cfg: PholdConfig, seed: u64, horizon: u64) -> ModelGraph<PholdToken> {
    assert!(cfg.lps >= 1, "phold needs at least one LP");
    let mut g = ModelGraph::new(seed, horizon);
    for i in 0..cfg.lps {
        g.add(
            format!("lp{i}"),
            PholdLp {
                id: i as u64,
                cfg,
                received: 0,
                sent_remote: 0,
                hop_sum: 0,
            },
        );
    }
    if cfg.lps > 1 {
        for i in 0..cfg.lps {
            let right = (i + 1) % cfg.lps;
            let left = (i + cfg.lps - 1) % cfg.lps;
            g.link(i, right, cfg.lookahead); // out link 0
            g.link(i, left, cfg.lookahead); // out link 1
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use des::EngineConfig;

    #[test]
    fn phold_runs_and_conserves_population_activity() {
        let cfg = PholdConfig {
            lps: 4,
            population: 2,
            lookahead: 2,
            remote_fraction: 0.5,
            mean_delay: 5.0,
        };
        let out = run("model-seq", &EngineConfig::default(), build(cfg, 11, 500));
        assert!(out.stats.events_delivered > 0);
        // Every handled event reschedules exactly one token, so events
        // handled ≈ population × (horizon / mean step); at minimum the
        // seeded tokens all get handled at least once.
        let received: u64 = out
            .observables
            .iter()
            .filter(|(k, _)| k.ends_with(".received"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(received, out.stats.events_delivered);
    }

    #[test]
    fn single_lp_ring_degenerates_to_self_traffic() {
        let cfg = PholdConfig {
            lps: 1,
            population: 3,
            ..PholdConfig::default()
        };
        let out = run("model-seq", &EngineConfig::default(), build(cfg, 5, 300));
        assert!(out.stats.events_delivered > 0);
        assert_eq!(
            out.observables
                .iter()
                .find(|(k, _)| k == "lp0.sent_remote")
                .map(|(_, v)| *v),
            Some(0)
        );
    }
}
