//! The per-component conservative runtime: one [`CompCore`] wraps a
//! user [`Component`] with its input-port queues, self-event heap,
//! per-link staging buffers and promise clocks.
//!
//! The three determinism rules from the crate docs live here:
//!
//! * **Strict safety** — [`CompCore::activate`] handles an event only
//!   when its timestamp is strictly below the local clock (the minimum
//!   over input-port clocks, [`des::node::local_clock`]). The circuit
//!   engines use the non-strict bound, which is safe for them because a
//!   gate's output is a function of latched values, not of how a
//!   timestamp cohort was split across activations; an opaque component
//!   sees event *batches*, so the cohort boundary must be
//!   message-timing-independent. Strictness buys exactly that: every
//!   event below the clock is present (FIFO links deliver in
//!   nondecreasing order, so nothing below the clock is still in
//!   flight), and nothing at the clock is handled until the clock moves
//!   past it.
//! * **Sender-side staging** — `ctx.send` emissions park in a per-link
//!   binary heap ordered by (timestamp, emission index). After the
//!   activation's handler batch, the flush step releases exactly the
//!   staged events at or below `clock + lookahead`: any *future*
//!   emission on the link happens in a handler at time ≥ clock and so
//!   lands at ≥ clock + lookahead, meaning the released prefix can no
//!   longer be undercut — per-link nondecreasing order is restored even
//!   though handlers emit with non-monotone delays.
//! * **Promises** — after flushing, the link's receive clock is
//!   advanced to `clock + lookahead` (a NULL promise, sent only when it
//!   grew). Once the promise reaches the horizon — or the local clock
//!   is exhausted ([`NULL_TS`]) — the link gets its terminal NULL and
//!   closes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use des::node::{local_clock, PortQueue};
use des::{Event, EventArena, EventRef, Timestamp, NULL_TS};
use pdes::rng::DetRng;

use crate::component::{Component, Ctx, EventSource, Payload};
use crate::graph::Link;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One outbound link, resolved to its destination port.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutLink {
    pub(crate) dst: usize,
    pub(crate) dst_port: usize,
    pub(crate) lookahead: u64,
}

/// What an activation emits for the engine to route.
pub(crate) enum OutMsg<P> {
    /// A payload event for `dst`'s input port `port`.
    Event {
        dst: usize,
        port: usize,
        ev: Event<P>,
    },
    /// A lookahead NULL promise: no event earlier than `ts` will follow
    /// on this link.
    Promise {
        dst: usize,
        port: usize,
        ts: Timestamp,
    },
    /// The terminal NULL: the link is closed.
    Null { dst: usize, port: usize },
}

/// A staged (not yet released) emission on one outbound link.
struct Staged<P> {
    ts: Timestamp,
    seq: u64,
    payload: P,
}

/// A pending self-scheduled event. The payload lives in the
/// component's arena (as `Event { time: at, value }`); the heap orders
/// lightweight handles only.
struct SelfEv {
    at: Timestamp,
    seq: u64,
    ev: EventRef,
}

// BinaryHeap is a max-heap; both orderings are *reversed* so the heap
// pops the smallest (time, insertion) pair first. `seq` is unique, so
// total order needs no payload comparison.
impl<P> PartialEq for Staged<P> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<P> Eq for Staged<P> {}
impl<P> PartialOrd for Staged<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Staged<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.ts, other.seq).cmp(&(self.ts, self.seq))
    }
}

impl PartialEq for SelfEv {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for SelfEv {}
impl PartialOrd for SelfEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SelfEv {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A component lowered onto the conservative machinery.
pub(crate) struct CompCore<P: Payload> {
    pub(crate) id: usize,
    comp: Box<dyn Component<P>>,
    rng: DetRng,
    horizon: Timestamp,
    /// Slab holding every event queued on this component (port events
    /// and self-events alike); the queues below hold handles into it.
    arena: EventArena<P>,
    /// One generic FIFO-plus-clock queue per inbound link.
    ports: Vec<PortQueue<P>>,
    out: Vec<OutLink>,
    lookaheads: Vec<u64>,
    /// Per-out-link staging heap of unreleased emissions.
    staged: Vec<BinaryHeap<Staged<P>>>,
    staged_seq: u64,
    /// Pending self-events (own heap: they are not on any FIFO link, so
    /// non-monotone self-schedules need no staging detour).
    self_heap: BinaryHeap<SelfEv>,
    self_seq: u64,
    /// Last promise sent per out link; [`NULL_TS`] once its terminal
    /// NULL went out.
    promised: Vec<Timestamp>,
    started: bool,
    done: bool,
    /// Events handled by this component.
    pub(crate) delivered: u64,
    /// Emissions dropped at the horizon.
    pub(crate) dropped: u64,
    /// FNV-1a over the handled event stream (ts, source, payload).
    pub(crate) checksum: u64,
    // Reusable scratch buffers.
    sent_buf: Vec<(usize, Timestamp, P)>,
    self_buf: Vec<(Timestamp, P)>,
    enc_buf: Vec<u8>,
}

impl<P: Payload> CompCore<P> {
    /// Lower component `id`: derive its RNG stream from the graph seed
    /// and wire its declared links.
    pub(crate) fn new(
        id: usize,
        comp: Box<dyn Component<P>>,
        seed: u64,
        horizon: Timestamp,
        in_count: usize,
        links: &[Link],
    ) -> Self {
        let mut out: Vec<(usize, OutLink)> = links
            .iter()
            .filter(|l| l.src == id)
            .map(|l| {
                (
                    l.out_ix,
                    OutLink {
                        dst: l.dst,
                        dst_port: l.dst_port,
                        lookahead: l.lookahead,
                    },
                )
            })
            .collect();
        out.sort_by_key(|(ix, _)| *ix);
        let out: Vec<OutLink> = out.into_iter().map(|(_, l)| l).collect();
        let lookaheads: Vec<u64> = out.iter().map(|l| l.lookahead).collect();
        let n_out = out.len();
        CompCore {
            id,
            comp,
            rng: DetRng::new(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id as u64 + 1)),
            horizon,
            arena: EventArena::new(),
            ports: (0..in_count).map(|_| PortQueue::new()).collect(),
            out,
            lookaheads,
            staged: (0..n_out).map(|_| BinaryHeap::new()).collect(),
            staged_seq: 0,
            self_heap: BinaryHeap::new(),
            self_seq: 0,
            promised: vec![0; n_out],
            started: false,
            done: false,
            delivered: 0,
            dropped: 0,
            checksum: FNV_OFFSET,
            sent_buf: Vec::new(),
            self_buf: Vec::new(),
            enc_buf: Vec::new(),
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    /// Deliver a cross-component payload event.
    #[inline]
    pub(crate) fn deliver_event(&mut self, port: usize, ev: Event<P>) {
        self.ports[port].push(&mut self.arena, ev);
    }

    /// Deliver a lookahead promise.
    #[inline]
    pub(crate) fn deliver_promise(&mut self, port: usize, ts: Timestamp) {
        self.ports[port].advance_clock(ts);
    }

    /// Deliver the terminal NULL.
    #[inline]
    pub(crate) fn deliver_null(&mut self, port: usize) {
        self.ports[port].push_null();
    }

    /// Run one activation: handle every safe event (strictly below the
    /// local clock, ports merged with self-events in timestamp order,
    /// port events winning ties), then flush staged emissions and
    /// promises into `out`. Returns the number of events handled.
    pub(crate) fn activate(&mut self, out: &mut Vec<OutMsg<P>>) -> u64 {
        if self.done {
            return 0;
        }
        if !self.started {
            self.started = true;
            self.run_start();
        }
        let clock = local_clock(&self.ports);
        let mut handled = 0u64;
        loop {
            // Safe port event: smallest head strictly below the clock,
            // lowest port on ties (deterministic merge).
            let mut port_pick: Option<(usize, Timestamp)> = None;
            for (i, p) in self.ports.iter().enumerate() {
                let h = p.head_ts();
                if h != NULL_TS
                    && (clock == NULL_TS || h < clock)
                    && port_pick.is_none_or(|(_, bh)| h < bh)
                {
                    port_pick = Some((i, h));
                }
            }
            // Safe self event under the same strict bound. A fresh
            // self-event created by a handler in this very loop joins
            // immediately: deferring it to the next activation would
            // make the handling order depend on where activation
            // boundaries fell, which differs across engines.
            let self_pick: Option<Timestamp> = self
                .self_heap
                .peek()
                .and_then(|s| (clock == NULL_TS || s.at < clock).then_some(s.at));
            // Port wins ties: the port side orders a timestamp cohort
            // (port index, then FIFO), and self-events slot in after it.
            let take_self = match (port_pick, self_pick) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some((_, h)), Some(at)) => at < h,
            };
            if take_self {
                let s = self.self_heap.pop().expect("peeked");
                let ev = self.arena.take(s.ev);
                self.handle(EventSource::SelfTimer, s.at, ev.value);
            } else {
                let (i, h) = port_pick.expect("picked");
                let ev = self.ports[i].pop_ready(&mut self.arena, h).expect("peeked");
                self.handle(EventSource::Port(i), ev.time, ev.value);
            }
            handled += 1;
        }
        self.flush(clock, out);
        if clock == NULL_TS {
            debug_assert!(self.self_heap.is_empty(), "self-events past exhaustion");
            debug_assert_eq!(self.arena.live(), 0, "undrained events leaked in the arena");
            self.done = true;
        }
        handled
    }

    /// End-of-run observables, prefixed with nothing — the engine adds
    /// the component name.
    pub(crate) fn observables(&self, out: &mut Vec<(String, u64)>) {
        self.comp.observables(out);
    }

    fn run_start(&mut self) {
        let mut sent = std::mem::take(&mut self.sent_buf);
        let mut selfs = std::mem::take(&mut self.self_buf);
        let mut dropped = 0u64;
        {
            let mut ctx = Ctx {
                now: 0,
                horizon: self.horizon,
                rng: &mut self.rng,
                lookaheads: &self.lookaheads,
                sent: &mut sent,
                self_sched: &mut selfs,
                dropped: &mut dropped,
            };
            self.comp.on_start(&mut ctx);
        }
        self.dropped += dropped;
        self.absorb(&mut sent, &mut selfs);
        self.sent_buf = sent;
        self.self_buf = selfs;
    }

    fn handle(&mut self, source: EventSource, ts: Timestamp, payload: P) {
        self.fold_checksum(source, ts, &payload);
        let mut sent = std::mem::take(&mut self.sent_buf);
        let mut selfs = std::mem::take(&mut self.self_buf);
        let mut dropped = 0u64;
        {
            let mut ctx = Ctx {
                now: ts,
                horizon: self.horizon,
                rng: &mut self.rng,
                lookaheads: &self.lookaheads,
                sent: &mut sent,
                self_sched: &mut selfs,
                dropped: &mut dropped,
            };
            self.comp.on_event(source, payload, &mut ctx);
        }
        self.dropped += dropped;
        self.delivered += 1;
        self.absorb(&mut sent, &mut selfs);
        self.sent_buf = sent;
        self.self_buf = selfs;
    }

    fn absorb(&mut self, sent: &mut Vec<(usize, Timestamp, P)>, selfs: &mut Vec<(Timestamp, P)>) {
        for (link, ts, payload) in sent.drain(..) {
            self.staged_seq += 1;
            self.staged[link].push(Staged {
                ts,
                seq: self.staged_seq,
                payload,
            });
        }
        for (at, payload) in selfs.drain(..) {
            self.self_seq += 1;
            let ev = self.arena.alloc(Event::new(at, payload));
            self.self_heap.push(SelfEv {
                at,
                seq: self.self_seq,
                ev,
            });
        }
    }

    /// Release staged emissions proven final and advance promises.
    fn flush(&mut self, clock: Timestamp, out: &mut Vec<OutMsg<P>>) {
        for ix in 0..self.out.len() {
            let OutLink {
                dst,
                dst_port: port,
                lookahead,
            } = self.out[ix];
            if self.promised[ix] == NULL_TS {
                debug_assert!(self.staged[ix].is_empty(), "emission after terminal NULL");
                continue;
            }
            let limit = if clock == NULL_TS {
                NULL_TS
            } else {
                clock.saturating_add(lookahead)
            };
            loop {
                let ready = match self.staged[ix].peek() {
                    Some(top) => limit == NULL_TS || top.ts <= limit,
                    None => false,
                };
                if !ready {
                    break;
                }
                let s = self.staged[ix].pop().expect("peeked");
                out.push(OutMsg::Event {
                    dst,
                    port,
                    ev: Event::new(s.ts, s.payload),
                });
            }
            if limit == NULL_TS || limit >= self.horizon {
                out.push(OutMsg::Null { dst, port });
                self.promised[ix] = NULL_TS;
            } else if limit > self.promised[ix] {
                out.push(OutMsg::Promise {
                    dst,
                    port,
                    ts: limit,
                });
                self.promised[ix] = limit;
            }
        }
    }

    fn fold_checksum(&mut self, source: EventSource, ts: Timestamp, payload: &P) {
        self.enc_buf.clear();
        self.enc_buf.extend_from_slice(&ts.to_le_bytes());
        match source {
            EventSource::Port(p) => {
                self.enc_buf.push(0);
                self.enc_buf.extend_from_slice(&(p as u64).to_le_bytes());
            }
            EventSource::SelfTimer => self.enc_buf.push(1),
        }
        payload.encode(&mut self.enc_buf);
        let mut h = self.checksum;
        for &b in &self.enc_buf {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.checksum = h;
    }
}

/// Fold per-component checksums (in component-id order) into one run
/// checksum.
pub(crate) fn fold_run_checksum(comp_checksums: impl Iterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for c in comp_checksums {
        for &b in &c.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        got: Vec<(Timestamp, u64)>,
    }
    impl Component<u64> for Echo {
        fn on_event(&mut self, _s: EventSource, p: u64, ctx: &mut Ctx<'_, u64>) {
            self.got.push((ctx.now(), p));
        }
    }

    fn core(in_count: usize) -> CompCore<u64> {
        CompCore::new(
            0,
            Box::new(Echo { got: Vec::new() }),
            7,
            100,
            in_count,
            &[],
        )
    }

    #[test]
    fn strict_safety_holds_events_at_the_clock() {
        let mut c = core(1);
        let mut out = Vec::new();
        c.deliver_event(0, Event::new(5, 1));
        // Clock is 5: the event at 5 is NOT yet safe.
        assert_eq!(c.activate(&mut out), 0);
        // A promise of 6 moves the clock past it.
        c.deliver_promise(0, 6);
        assert_eq!(c.activate(&mut out), 1);
        assert_eq!(c.delivered, 1);
    }

    #[test]
    fn exhausted_ports_drain_everything_and_finish() {
        let mut c = core(2);
        let mut out = Vec::new();
        c.deliver_event(0, Event::new(9, 1));
        c.deliver_null(0);
        assert_eq!(c.activate(&mut out), 0); // port 1 clock still 0
        c.deliver_null(1);
        assert_eq!(c.activate(&mut out), 1);
        assert!(c.is_done());
    }

    #[test]
    fn checksum_tracks_event_stream() {
        let run = |promise_first: bool| {
            let mut c = core(1);
            let mut out = Vec::new();
            if promise_first {
                c.deliver_promise(0, 3);
                c.activate(&mut out);
            }
            c.deliver_event(0, Event::new(4, 7));
            c.deliver_null(0);
            c.activate(&mut out);
            c.checksum
        };
        // Activation boundaries don't change the checksum…
        assert_eq!(run(false), run(true));
        // …but a different event stream does.
        let mut c = core(1);
        let mut out = Vec::new();
        c.deliver_event(0, Event::new(4, 8));
        c.deliver_null(0);
        c.activate(&mut out);
        assert_ne!(c.checksum, run(false));
    }
}
