//! Epoch-based rebalance planning: decide which boundary nodes to
//! migrate when the *observed* per-shard load drifts away from the
//! static partition's estimate.
//!
//! The planner is a pure deterministic function of `(circuit, current
//! partition, per-shard telemetry, policy)`. Every shard core computes
//! the plan locally from the telemetry carried in the epoch-barrier
//! markers; because all shards see identical inputs at the barrier they
//! all compute an identical plan, so no plan broadcast is needed.
//!
//! Load is measured in *pressure* units: events processed during the
//! epoch plus the inbox depth at the barrier (a deep inbox means the
//! shard is falling behind its producers even if its processed count
//! looks healthy). Migration reuses the greedy boundary-refinement
//! idea from [`crate::partition`]: only nodes with a cross-shard edge
//! move, each to an active neighbouring shard that is strictly lighter,
//! preferring the destination holding most of the node's edges (so a
//! migration never makes the cut much worse while it fixes the load).

use circuit::{Circuit, NodeId};

use crate::partition::{Partition, ShardId};

/// When and how aggressively to rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalancePolicy {
    /// A shard asks for an epoch barrier after processing this many
    /// events since the last barrier.
    pub epoch_events: u64,
    /// Minimum observed pressure imbalance (percent over the ideal
    /// even split) before any node moves; below it the barrier is a
    /// telemetry-only no-op.
    pub min_imbalance_pct: u64,
    /// Upper bound on node migrations per epoch.
    pub max_moves: usize,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            epoch_events: 4096,
            min_imbalance_pct: 25,
            max_moves: 64,
        }
    }
}

/// One shard's telemetry for the epoch, as carried in its barrier marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardLoad {
    /// Events the shard processed since the previous barrier.
    pub events: u64,
    /// The shard's inbox depth when it emitted its marker.
    pub inbox_depth: u64,
    /// False once the shard has retired (all nodes terminally NULLed);
    /// retired shards neither donate nor receive nodes.
    pub active: bool,
}

impl ShardLoad {
    /// Pressure = processed events + backlog.
    pub fn pressure(&self) -> u64 {
        self.events + self.inbox_depth
    }
}

/// One planned migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeMove {
    pub node: NodeId,
    pub from: ShardId,
    pub to: ShardId,
}

/// The outcome of one planning round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalancePlan {
    /// Migrations, in apply order.
    pub moves: Vec<NodeMove>,
    /// Pressure imbalance observed at the barrier (percent over ideal).
    pub observed_imbalance_pct: u64,
    /// Estimated pressure imbalance after applying `moves`.
    pub predicted_imbalance_pct: u64,
}

/// Pressure imbalance over the active shards: how far the heaviest
/// exceeds the ideal even split, in percent.
fn imbalance_pct(pressure: &[u64], active: &[bool]) -> u64 {
    let (total, count, max) = pressure
        .iter()
        .zip(active)
        .filter(|&(_, &a)| a)
        .fold((0u64, 0u64, 0u64), |(t, c, m), (&p, _)| {
            (t + p, c + 1, m.max(p))
        });
    if count == 0 || total == 0 {
        return 0;
    }
    let ideal = (total as f64 / count as f64).max(1.0);
    ((max as f64 / ideal - 1.0) * 100.0).round().max(0.0) as u64
}

/// Plan the epoch's migrations. Returns `None` when the observed load
/// is within tolerance (or nothing can legally move).
///
/// Deterministic: identical inputs yield an identical plan on every
/// shard. The working state below mirrors what each move does to the
/// real partition so successive moves see each other.
pub fn plan_rebalance(
    circuit: &Circuit,
    partition: &Partition,
    loads: &[ShardLoad],
    policy: &RebalancePolicy,
) -> Option<RebalancePlan> {
    let k = partition.num_shards();
    assert_eq!(loads.len(), k, "one ShardLoad per shard");
    let active: Vec<bool> = loads.iter().map(|l| l.active).collect();
    if active.iter().filter(|&&a| a).count() < 2 {
        return None;
    }
    let mut pressure: Vec<u64> = loads.iter().map(|l| l.pressure()).collect();
    let observed = imbalance_pct(&pressure, &active);
    if observed < policy.min_imbalance_pct {
        return None;
    }

    let mut assignment: Vec<ShardId> = partition.assignment().to_vec();
    let mut counts = vec![0usize; k];
    for &s in &assignment {
        counts[s] += 1;
    }

    let mut moves = Vec::new();
    let mut edge_counts = vec![0u64; k];
    // Each node moves at most once per plan: the apply protocol parks a
    // donated node on the bus until the barrier's transfer round ends, so
    // a chained move (A→B then B→C in one plan) would ask B to donate a
    // node it has not adopted yet.
    let mut moved = vec![false; circuit.num_nodes()];
    while moves.len() < policy.max_moves {
        // Heaviest active shard that can still donate (ties: lowest id).
        let Some(h) = (0..k)
            .filter(|&s| active[s] && counts[s] > 1 && pressure[s] > 0)
            .max_by_key(|&s| (pressure[s], std::cmp::Reverse(s)))
        else {
            break;
        };
        // Approximate one node's share of the donor's pressure.
        let w = (pressure[h] / counts[h] as u64).max(1);

        // Best (node, destination): a boundary node of `h` whose move to
        // an active, strictly-lighter neighbouring shard keeps the most
        // edges internal. Ties: more incident edges first, then lower
        // node id, then lower destination id — all deterministic.
        let mut best: Option<(u64, NodeId, ShardId)> = None;
        for i in 0..circuit.num_nodes() {
            if assignment[i] != h || moved[i] {
                continue;
            }
            let id = NodeId(i as u32);
            let node = circuit.node(id);
            edge_counts.iter_mut().for_each(|c| *c = 0);
            for src in &node.fanin {
                edge_counts[assignment[src.index()]] += 1;
            }
            for t in &node.fanout {
                edge_counts[assignment[t.node.index()]] += 1;
            }
            for to in 0..k {
                if to == h || !active[to] || edge_counts[to] == 0 {
                    continue;
                }
                // Strict improvement: the destination stays lighter than
                // the donor even after absorbing the node's share.
                if pressure[to].saturating_add(w) >= pressure[h] {
                    continue;
                }
                let cand = (edge_counts[to], id, to);
                let better = match best {
                    None => true,
                    Some((bc, bid, bto)) => {
                        (cand.0, std::cmp::Reverse(cand.1.index()), std::cmp::Reverse(cand.2))
                            > (bc, std::cmp::Reverse(bid.index()), std::cmp::Reverse(bto))
                    }
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        let Some((_, node, to)) = best else {
            break;
        };
        assignment[node.index()] = to;
        moved[node.index()] = true;
        counts[h] -= 1;
        counts[to] += 1;
        pressure[h] -= w;
        pressure[to] += w;
        moves.push(NodeMove { node, from: h, to });
    }

    if moves.is_empty() {
        return None;
    }
    Some(RebalancePlan {
        moves,
        observed_imbalance_pct: observed,
        predicted_imbalance_pct: imbalance_pct(&pressure, &active),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionStrategy;
    use circuit::generators::kogge_stone_adder;

    fn loads(pressures: &[u64]) -> Vec<ShardLoad> {
        pressures
            .iter()
            .map(|&p| ShardLoad {
                events: p,
                inbox_depth: 0,
                active: true,
            })
            .collect()
    }

    #[test]
    fn balanced_load_plans_nothing() {
        let c = kogge_stone_adder(16);
        let p = Partition::build(&c, 4, PartitionStrategy::GreedyCut);
        let policy = RebalancePolicy::default();
        assert_eq!(
            plan_rebalance(&c, &p, &loads(&[100, 100, 100, 100]), &policy),
            None
        );
    }

    #[test]
    fn skewed_load_moves_nodes_off_the_hot_shard() {
        let c = kogge_stone_adder(16);
        let p = Partition::build(&c, 4, PartitionStrategy::GreedyCut);
        let policy = RebalancePolicy {
            max_moves: 8,
            ..RebalancePolicy::default()
        };
        let plan = plan_rebalance(&c, &p, &loads(&[1000, 10, 10, 10]), &policy)
            .expect("a 10x hot shard must trigger moves");
        assert!(!plan.moves.is_empty() && plan.moves.len() <= 8);
        for m in &plan.moves {
            assert_eq!(m.from, 0, "only the hot shard donates");
            assert_eq!(p.shard_of(m.node), 0);
        }
        assert!(plan.predicted_imbalance_pct < plan.observed_imbalance_pct);
    }

    #[test]
    fn plan_is_deterministic() {
        let c = kogge_stone_adder(32);
        let p = Partition::build(&c, 4, PartitionStrategy::BfsLayered);
        let policy = RebalancePolicy::default();
        let l = loads(&[5000, 100, 4000, 50]);
        assert_eq!(
            plan_rebalance(&c, &p, &l, &policy),
            plan_rebalance(&c, &p, &l, &policy)
        );
    }

    #[test]
    fn retired_shards_are_untouchable() {
        let c = kogge_stone_adder(16);
        let p = Partition::build(&c, 4, PartitionStrategy::GreedyCut);
        let mut l = loads(&[1000, 10, 10, 10]);
        l[1].active = false;
        let policy = RebalancePolicy::default();
        if let Some(plan) = plan_rebalance(&c, &p, &l, &policy) {
            for m in &plan.moves {
                assert_ne!(m.to, 1, "retired shards never receive nodes");
                assert_ne!(m.from, 1);
            }
        }
        // With at most one active shard there is nowhere to move.
        l.iter_mut().for_each(|s| s.active = false);
        l[0].active = true;
        assert_eq!(plan_rebalance(&c, &p, &l, &policy), None);
    }

    #[test]
    fn below_threshold_is_a_no_op() {
        let c = kogge_stone_adder(16);
        let p = Partition::build(&c, 2, PartitionStrategy::GreedyCut);
        let policy = RebalancePolicy {
            min_imbalance_pct: 50,
            ..RebalancePolicy::default()
        };
        // 120 vs 100: 20% over ideal 110 is ~9%, under the 50% gate.
        assert_eq!(plan_rebalance(&c, &p, &loads(&[120, 100]), &policy), None);
    }

    #[test]
    fn each_node_moves_at_most_once_per_plan() {
        // The apply protocol transfers each node's state exactly once per
        // epoch, so a plan must never chain moves (A→B then B→C) — every
        // `from` must be the node's owner in the *input* partition.
        let c = kogge_stone_adder(32);
        for strategy in [PartitionStrategy::GreedyCut, PartitionStrategy::RoundRobin] {
            let p = Partition::build(&c, 4, strategy);
            for pressures in [[9000, 4000, 20, 10], [100, 1, 80, 1], [5000, 100, 4000, 50]] {
                let policy = RebalancePolicy {
                    min_imbalance_pct: 5,
                    ..RebalancePolicy::default()
                };
                let Some(plan) = plan_rebalance(&c, &p, &loads(&pressures), &policy) else {
                    continue;
                };
                let mut seen = std::collections::HashSet::new();
                for m in &plan.moves {
                    assert!(seen.insert(m.node), "node {:?} moved twice", m.node);
                    assert_eq!(m.from, p.shard_of(m.node), "from must be the current owner");
                }
            }
        }
    }

    #[test]
    fn moves_never_empty_a_shard() {
        let c = circuit::generators::c17(); // 13 nodes
        let p = Partition::build(&c, 4, PartitionStrategy::RoundRobin);
        let policy = RebalancePolicy {
            max_moves: 64,
            ..RebalancePolicy::default()
        };
        if let Some(plan) = plan_rebalance(&c, &p, &loads(&[10_000, 1, 1, 1]), &policy) {
            let mut counts = vec![0usize; 4];
            for &s in p.assignment() {
                counts[s] += 1;
            }
            for m in &plan.moves {
                counts[m.from] -= 1;
                counts[m.to] += 1;
            }
            assert!(counts.iter().all(|&c| c >= 1), "counts: {counts:?}");
        }
    }
}
