//! Netlist partitioning: split a [`Circuit`] DAG — or any directed
//! graph given as an edge list, cycles included (see
//! [`Partition::build_graph`], used by `sim-model` component graphs) —
//! into K shards.
//!
//! Any assignment of nodes to shards is *correct* — the cross-shard
//! protocol (see [`crate::comm`]) preserves per-port FIFO delivery for an
//! arbitrary cut — so strategies trade off only *quality*: the number of
//! cut edges (cross-shard messages per event wave) and the load balance
//! (the slowest shard bounds the run). Three strategies are provided:
//!
//! * [`PartitionStrategy::RoundRobin`] — node `i` goes to shard `i % K`.
//!   Perfect balance, pathological cut; the baseline everything must beat.
//! * [`PartitionStrategy::BfsLayered`] — order nodes by BFS depth from
//!   the circuit inputs (ties by node id) and slice that order into K
//!   equal contiguous blocks. Keeps topological neighbourhoods together,
//!   so most edges stay inside a shard or cross into the next one.
//! * [`PartitionStrategy::GreedyCut`] — start from the BFS layering, then
//!   run boundary-refinement passes: greedily move a node to the
//!   neighbouring shard where most of its edges live whenever that
//!   strictly reduces the cut and keeps every shard within the balance
//!   tolerance.

use circuit::{Circuit, NodeId};

/// Index of a shard (0-based, dense).
pub type ShardId = usize;

/// How to split the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// `node i -> shard i % K`: perfect balance, worst-case cut.
    RoundRobin,
    /// Contiguous blocks of the BFS-layer order.
    BfsLayered,
    /// BFS layering plus greedy cut-minimizing boundary refinement.
    #[default]
    GreedyCut,
}

impl PartitionStrategy {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::RoundRobin => "round-robin",
            PartitionStrategy::BfsLayered => "bfs-layered",
            PartitionStrategy::GreedyCut => "greedy-cut",
        }
    }
}

/// Partition-quality metrics, reported alongside every partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMetrics {
    /// Edges whose endpoints live in different shards.
    pub cut_edges: usize,
    /// Total edges (for cut-fraction reporting).
    pub total_edges: usize,
    /// Nodes per shard.
    pub shard_loads: Vec<usize>,
    /// `(max_load / ideal_load - 1) * 100`, rounded: how far the heaviest
    /// shard exceeds a perfectly balanced split.
    pub load_imbalance_pct: u64,
}

/// A validated assignment of every node to one of `num_shards` shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    num_shards: usize,
    assignment: Vec<ShardId>,
}

impl Partition {
    /// Split `circuit` into `num_shards` shards with `strategy`.
    /// Deterministic: same circuit + K + strategy => same partition.
    ///
    /// # Panics
    /// If `num_shards` is 0.
    pub fn build(circuit: &Circuit, num_shards: usize, strategy: PartitionStrategy) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let n = circuit.num_nodes();
        let assignment = match strategy {
            PartitionStrategy::RoundRobin => (0..n).map(|i| i % num_shards).collect(),
            PartitionStrategy::BfsLayered => bfs_layered(circuit, num_shards),
            PartitionStrategy::GreedyCut => {
                let mut a = bfs_layered(circuit, num_shards);
                refine(circuit, num_shards, &mut a);
                a
            }
        };
        Partition {
            num_shards,
            assignment,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Shard owning `id`.
    #[inline]
    pub fn shard_of(&self, id: NodeId) -> ShardId {
        self.assignment[id.index()]
    }

    /// The full assignment, indexed by `NodeId::index`.
    pub fn assignment(&self) -> &[ShardId] {
        &self.assignment
    }

    /// Node ids owned by `shard`, ascending.
    pub fn nodes_of(&self, shard: ShardId) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Reassign one node to another shard (dynamic repartitioning).
    ///
    /// # Panics
    /// If `to` is out of range.
    pub fn reassign(&mut self, id: NodeId, to: ShardId) {
        assert!(to < self.num_shards, "shard {to} out of range");
        self.assignment[id.index()] = to;
    }

    /// Compute the quality metrics of this partition over `circuit`.
    pub fn metrics(&self, circuit: &Circuit) -> PartitionMetrics {
        let mut shard_loads = vec![0usize; self.num_shards];
        for &s in &self.assignment {
            shard_loads[s] += 1;
        }
        let cut_edges = circuit
            .edges()
            .filter(|&(src, t)| self.shard_of(src) != self.shard_of(t.node))
            .count();
        let max_load = shard_loads.iter().copied().max().unwrap_or(0);
        let ideal = (circuit.num_nodes() as f64 / self.num_shards as f64).max(1.0);
        let load_imbalance_pct = ((max_load as f64 / ideal - 1.0) * 100.0).round().max(0.0) as u64;
        PartitionMetrics {
            cut_edges,
            total_edges: circuit.num_edges(),
            shard_loads,
            load_imbalance_pct,
        }
    }

    /// Split an arbitrary directed graph — `num_nodes` nodes, edges as
    /// `(src, dst)` pairs — into `num_shards` shards with `strategy`.
    ///
    /// This is the graph-agnostic face of the partitioner: `sim-model`
    /// lowers component graphs (which, unlike netlists, may contain
    /// cycles and self-loops) through it. The BFS layering runs a real
    /// breadth-first search from the in-degree-0 roots, seeding any
    /// component left unreached by cycles at its lowest node id, so
    /// every strategy is total and deterministic on cyclic inputs.
    ///
    /// # Panics
    /// If `num_shards` is 0 or an edge endpoint is out of range.
    pub fn build_graph(
        num_nodes: usize,
        edges: &[(usize, usize)],
        num_shards: usize,
        strategy: PartitionStrategy,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        assert!(
            edges.iter().all(|&(s, d)| s < num_nodes && d < num_nodes),
            "edge endpoint out of range"
        );
        let assignment = match strategy {
            PartitionStrategy::RoundRobin => (0..num_nodes).map(|i| i % num_shards).collect(),
            PartitionStrategy::BfsLayered => graph_bfs_layered(num_nodes, edges, num_shards),
            PartitionStrategy::GreedyCut => {
                let mut a = graph_bfs_layered(num_nodes, edges, num_shards);
                refine_neighbours(&undirected_neighbours(num_nodes, edges), num_shards, &mut a);
                a
            }
        };
        Partition {
            num_shards,
            assignment,
        }
    }

    /// Quality metrics of this partition over an edge-list graph (the
    /// [`Partition::build_graph`] counterpart of [`Partition::metrics`]).
    pub fn metrics_graph(&self, num_nodes: usize, edges: &[(usize, usize)]) -> PartitionMetrics {
        let mut shard_loads = vec![0usize; self.num_shards];
        for &s in &self.assignment {
            shard_loads[s] += 1;
        }
        let cut_edges = edges
            .iter()
            .filter(|&&(src, dst)| self.assignment[src] != self.assignment[dst])
            .count();
        let max_load = shard_loads.iter().copied().max().unwrap_or(0);
        let ideal = (num_nodes as f64 / self.num_shards as f64).max(1.0);
        let load_imbalance_pct = ((max_load as f64 / ideal - 1.0) * 100.0).round().max(0.0) as u64;
        PartitionMetrics {
            cut_edges,
            total_edges: edges.len(),
            shard_loads,
            load_imbalance_pct,
        }
    }
}

/// Undirected incidence lists from a directed edge list (one entry per
/// incident edge end; self-loops contribute to their own node twice,
/// which only ever biases a node towards staying put).
fn undirected_neighbours(num_nodes: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut neighbours = vec![Vec::new(); num_nodes];
    for &(src, dst) in edges {
        neighbours[src].push(dst);
        neighbours[dst].push(src);
    }
    neighbours
}

/// BFS depths over an arbitrary directed graph: multi-source BFS from
/// the in-degree-0 roots, then every node a cycle kept unreached is
/// seeded (lowest id first) as a fresh depth-0 root. Deterministic.
fn graph_bfs_layers(num_nodes: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut out = vec![Vec::new(); num_nodes];
    let mut indeg = vec![0usize; num_nodes];
    for &(src, dst) in edges {
        out[src].push(dst);
        indeg[dst] += 1;
    }
    let mut depth = vec![usize::MAX; num_nodes];
    let mut queue = std::collections::VecDeque::new();
    for (i, &d) in indeg.iter().enumerate() {
        if d == 0 {
            depth[i] = 0;
            queue.push_back(i);
        }
    }
    let mut next_seed = 0;
    loop {
        while let Some(i) = queue.pop_front() {
            for &j in &out[i] {
                if depth[j] == usize::MAX {
                    depth[j] = depth[i] + 1;
                    queue.push_back(j);
                }
            }
        }
        // A cycle with no root: seed its lowest unreached node.
        while next_seed < num_nodes && depth[next_seed] != usize::MAX {
            next_seed += 1;
        }
        if next_seed == num_nodes {
            return depth;
        }
        depth[next_seed] = 0;
        queue.push_back(next_seed);
    }
}

/// Order nodes by (BFS depth, id) and slice into K near-equal
/// contiguous blocks — the edge-list analogue of [`bfs_layered`].
fn graph_bfs_layered(num_nodes: usize, edges: &[(usize, usize)], k: usize) -> Vec<ShardId> {
    let depth = graph_bfs_layers(num_nodes, edges);
    let mut order: Vec<usize> = (0..num_nodes).collect();
    order.sort_by_key(|&i| (depth[i], i));
    let mut assignment = vec![0; num_nodes];
    for (rank, &i) in order.iter().enumerate() {
        assignment[i] = (rank * k) / num_nodes.max(1);
    }
    assignment
}

/// BFS depth of every node from the circuit inputs (inputs are depth 0;
/// a node's depth is 1 + max over fanin — computed over the topological
/// order, so it is a longest-path layering).
fn bfs_layers(circuit: &Circuit) -> Vec<usize> {
    let mut depth = vec![0usize; circuit.num_nodes()];
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        for &src in &node.fanin {
            depth[id.index()] = depth[id.index()].max(depth[src.index()] + 1);
        }
    }
    depth
}

/// Order nodes by (layer, id) and slice into K near-equal contiguous
/// blocks.
fn bfs_layered(circuit: &Circuit, k: usize) -> Vec<ShardId> {
    let n = circuit.num_nodes();
    let depth = bfs_layers(circuit);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (depth[i], i));
    let mut assignment = vec![0; n];
    for (rank, &i) in order.iter().enumerate() {
        // Balanced slicing: ranks [s*n/k, (s+1)*n/k) go to shard s.
        assignment[i] = (rank * k) / n.max(1);
    }
    assignment
}

/// Greedy boundary refinement: repeatedly move a node to the shard where
/// most of its edges live, when the move strictly reduces the cut and no
/// shard exceeds `ideal * (1 + TOLERANCE)` nodes. A few passes suffice —
/// each pass only ever decreases the cut, so this terminates.
fn refine(circuit: &Circuit, k: usize, assignment: &mut [ShardId]) {
    // Per-node neighbour list (fanin sources + fanout targets), each entry
    // one incident edge.
    let neighbours: Vec<Vec<usize>> = (0..circuit.num_nodes())
        .map(|i| {
            let node = circuit.node(NodeId(i as u32));
            node.fanin
                .iter()
                .map(|s| s.index())
                .chain(node.fanout.iter().map(|t| t.node.index()))
                .collect()
        })
        .collect();
    refine_neighbours(&neighbours, k, assignment);
}

/// The refinement core, over undirected incidence lists — shared by the
/// netlist and edge-list paths so both see identical move decisions.
fn refine_neighbours(neighbours: &[Vec<usize>], k: usize, assignment: &mut [ShardId]) {
    const TOLERANCE: f64 = 0.10;
    const MAX_PASSES: usize = 4;
    let n = neighbours.len();
    let max_load = (((n as f64 / k as f64) * (1.0 + TOLERANCE)).ceil() as usize).max(1);
    let mut loads = vec![0usize; k];
    for &s in assignment.iter() {
        loads[s] += 1;
    }
    let mut counts = vec![0usize; k];
    for _ in 0..MAX_PASSES {
        let mut moved = false;
        for i in 0..n {
            let home = assignment[i];
            if loads[home] == 1 {
                continue; // never empty a shard
            }
            counts.iter_mut().for_each(|c| *c = 0);
            for &nb in &neighbours[i] {
                counts[assignment[nb]] += 1;
            }
            // Best destination: most incident edges, ties to the lowest
            // shard id (determinism).
            let (best, &best_count) = counts
                .iter()
                .enumerate()
                .max_by_key(|&(s, &c)| (c, std::cmp::Reverse(s)))
                .expect("k > 0");
            if best != home && best_count > counts[home] && loads[best] < max_load {
                assignment[i] = best;
                loads[home] -= 1;
                loads[best] += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::generators::{c17, inverter_chain, kogge_stone_adder};

    const ALL: [PartitionStrategy; 3] = [
        PartitionStrategy::RoundRobin,
        PartitionStrategy::BfsLayered,
        PartitionStrategy::GreedyCut,
    ];

    #[test]
    fn every_node_assigned_within_range() {
        let c = kogge_stone_adder(16);
        for strategy in ALL {
            for k in [1, 2, 3, 8] {
                let p = Partition::build(&c, k, strategy);
                assert_eq!(p.assignment().len(), c.num_nodes());
                assert!(p.assignment().iter().all(|&s| s < k), "{strategy:?} k={k}");
                let m = p.metrics(&c);
                assert_eq!(m.shard_loads.iter().sum::<usize>(), c.num_nodes());
            }
        }
    }

    #[test]
    fn single_shard_has_no_cut() {
        let c = c17();
        for strategy in ALL {
            let p = Partition::build(&c, 1, strategy);
            let m = p.metrics(&c);
            assert_eq!(m.cut_edges, 0, "{strategy:?}");
            assert_eq!(m.load_imbalance_pct, 0);
        }
    }

    #[test]
    fn partitions_are_deterministic() {
        let c = kogge_stone_adder(32);
        for strategy in ALL {
            let a = Partition::build(&c, 4, strategy);
            let b = Partition::build(&c, 4, strategy);
            assert_eq!(a, b, "{strategy:?}");
        }
    }

    #[test]
    fn greedy_cut_no_worse_than_bfs_layering() {
        for k in [2, 4, 8] {
            let c = kogge_stone_adder(64);
            let bfs = Partition::build(&c, k, PartitionStrategy::BfsLayered).metrics(&c);
            let greedy = Partition::build(&c, k, PartitionStrategy::GreedyCut).metrics(&c);
            assert!(
                greedy.cut_edges <= bfs.cut_edges,
                "k={k}: greedy {} > bfs {}",
                greedy.cut_edges,
                bfs.cut_edges
            );
        }
    }

    #[test]
    fn layered_beats_round_robin_on_a_chain() {
        // On a chain, round-robin cuts every edge; layering cuts K-1.
        let c = inverter_chain(40);
        let rr = Partition::build(&c, 4, PartitionStrategy::RoundRobin).metrics(&c);
        let bfs = Partition::build(&c, 4, PartitionStrategy::BfsLayered).metrics(&c);
        assert!(bfs.cut_edges < rr.cut_edges);
        assert_eq!(bfs.cut_edges, 3);
    }

    #[test]
    fn refinement_respects_balance_tolerance() {
        let c = kogge_stone_adder(64);
        for k in [2, 4, 8] {
            let m = Partition::build(&c, k, PartitionStrategy::GreedyCut).metrics(&c);
            // 10% tolerance + ceil rounding: stay comfortably under 25%.
            assert!(
                m.load_imbalance_pct <= 25,
                "k={k}: imbalance {}%",
                m.load_imbalance_pct
            );
        }
    }

    #[test]
    fn more_shards_than_nodes_leaves_empty_shards_only() {
        let c = c17(); // 13 nodes: 5 inputs + 6 gates + 2 outputs
        let p = Partition::build(&c, 16, PartitionStrategy::RoundRobin);
        let m = p.metrics(&c);
        assert_eq!(m.shard_loads.iter().sum::<usize>(), 13);
        assert!(m.shard_loads.iter().all(|&l| l <= 1));
    }

    #[test]
    fn nodes_of_matches_assignment() {
        let c = c17();
        let p = Partition::build(&c, 3, PartitionStrategy::GreedyCut);
        for s in 0..3 {
            for id in p.nodes_of(s) {
                assert_eq!(p.shard_of(id), s);
            }
        }
    }
}
