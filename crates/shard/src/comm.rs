//! Cross-shard communication: bounded mailboxes carrying timestamped
//! events and NULL messages.
//!
//! Each shard owns one bounded MPSC inbox; every other shard holds a
//! sender to it. Because each circuit input port is fed by exactly one
//! edge, and the source node emits on each of its out-edges in
//! nondecreasing timestamp order, FIFO channel delivery preserves the
//! per-port nondecreasing-arrival invariant the Chandy–Misra cores rely
//! on — no reordering buffer is needed at the receiver.
//!
//! Two message kinds cross a cut edge:
//!
//! * [`ShardMsg::Event`] — a payload event for one input port;
//! * [`ShardMsg::Null`] — a clock promise for one input port: "no event
//!   earlier than `time` will ever arrive here". `time == `[`NULL_TS`]
//!   is the terminal Chandy–Misra NULL (the port is closed forever);
//!   any smaller value is a *lookahead* null derived from the sender's
//!   local clock plus the source node's delay, letting the receiving
//!   shard advance its local clocks — and process events that were
//!   already safe — without waiting for a payload event.
//!
//! Mailboxes are bounded. A full inbox exerts backpressure on the
//! sending shard; the engine's send loop drains its own inbox while
//! retrying (see `des::engine::sharded`), which is what keeps the
//! shard-level cycle `A ⇄ B` deadlock-free even though both mailboxes
//! may momentarily be full.

use circuit::{Circuit, Logic, NodeId, Target};
use crossbeam::channel::{bounded, Receiver, Sender};

use crate::partition::{Partition, ShardId};

// The canonical simulated-time vocabulary lives in `circuit::time`;
// re-exported here so the message protocol and the engines share one
// definition instead of drifting copies.
pub use circuit::{Timestamp, NULL_TS};

/// One message crossing a shard boundary.
///
/// The first two variants carry simulation traffic for one input port.
/// The rest are *control* messages for the epoch-barrier rebalancing
/// protocol (see `des::engine::sharded`): they ride the same FIFO
/// mailboxes as payload traffic, so a barrier marker received from a
/// peer proves every pre-barrier message from that peer has already
/// been delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMsg {
    /// A payload event for `target`'s input port.
    Event {
        target: Target,
        time: Timestamp,
        value: Logic,
    },
    /// Clock promise for `target`'s input port: no event earlier than
    /// `time` will ever arrive. [`NULL_TS`] closes the port for good.
    Null { target: Target, time: Timestamp },
    /// Ask the barrier leader (shard 0) to start epoch `epoch`: the
    /// sender's telemetry counters crossed the epoch threshold.
    BarrierRequest { from: ShardId, epoch: u64 },
    /// Epoch-barrier marker: `from` has flushed all pre-barrier traffic
    /// for `epoch` and reports its telemetry (events processed this
    /// epoch, inbox depth at the marker).
    Barrier {
        from: ShardId,
        epoch: u64,
        load: u64,
        depth: u64,
    },
    /// `from` has parked every node it donates in epoch `epoch` on the
    /// migration bus; receivers may take their arrivals once they hold
    /// one of these from every active peer.
    Transferred { from: ShardId, epoch: u64 },
    /// `from` has finished (all its nodes forwarded terminal NULLs) and
    /// will never participate in another barrier.
    Retire { from: ShardId },
}

impl ShardMsg {
    /// The destination node/port, for simulation traffic. Control
    /// messages address the receiving shard itself, not a port.
    pub fn target(&self) -> Option<Target> {
        match *self {
            ShardMsg::Event { target, .. } | ShardMsg::Null { target, .. } => Some(target),
            _ => None,
        }
    }
}

/// One shard's view of the mailbox fabric: its own inbox plus a sender
/// to every shard (index = destination shard id).
pub struct Endpoint {
    /// This endpoint's shard id.
    pub shard: ShardId,
    /// The shard's inbox.
    pub rx: Receiver<ShardMsg>,
    /// Senders to every shard's inbox, indexed by shard id.
    pub txs: Vec<Sender<ShardMsg>>,
}

/// Build the full K×K mailbox fabric. Returns one [`Endpoint`] per shard
/// plus one depth probe per inbox (a cloned sender the watchdog reads
/// `len()` from without participating in the protocol).
pub fn endpoints(num_shards: usize, capacity: usize) -> (Vec<Endpoint>, Vec<Sender<ShardMsg>>) {
    assert!(num_shards > 0 && capacity > 0);
    let mut txs = Vec::with_capacity(num_shards);
    let mut rxs = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        let (tx, rx) = bounded(capacity);
        txs.push(tx);
        rxs.push(rx);
    }
    let probes = txs.clone();
    let endpoints = rxs
        .into_iter()
        .enumerate()
        .map(|(shard, rx)| Endpoint {
            shard,
            rx,
            txs: txs.clone(),
        })
        .collect();
    (endpoints, probes)
}

/// One outgoing cut edge of a shard: the owned source node, the foreign
/// target port, and the shard owning it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutEdge {
    pub src: NodeId,
    pub target: Target,
    pub dst_shard: ShardId,
}

/// All cut edges leaving `shard`, in deterministic (source id, fanout
/// order) order. The engine walks this list to emit lookahead nulls.
pub fn outgoing_cut_edges(circuit: &Circuit, partition: &Partition, shard: ShardId) -> Vec<CutEdge> {
    let mut edges = Vec::new();
    for id in partition.nodes_of(shard) {
        for &target in &circuit.node(id).fanout {
            let dst_shard = partition.shard_of(target.node);
            if dst_shard != shard {
                edges.push(CutEdge {
                    src: id,
                    target,
                    dst_shard,
                });
            }
        }
    }
    edges
}

/// All cut edges *entering* `shard`, as `(source shard, local target
/// port)` pairs in deterministic (source node id, fanout order) order —
/// the mirror of [`outgoing_cut_edges`]. The engine scans this list
/// when idle to attribute a blocked-on-NULL wait to the upstream shard
/// whose channel clock is holding it back.
pub fn incoming_cut_edges(
    circuit: &Circuit,
    partition: &Partition,
    shard: ShardId,
) -> Vec<(ShardId, Target)> {
    let mut edges = Vec::new();
    for ix in 0..circuit.num_nodes() {
        let id = NodeId(ix as u32);
        let src_shard = partition.shard_of(id);
        if src_shard == shard {
            continue;
        }
        for &target in &circuit.node(id).fanout {
            if partition.shard_of(target.node) == shard {
                edges.push((src_shard, target));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionStrategy;
    use circuit::generators::{c17, kogge_stone_adder};

    #[test]
    fn fabric_routes_between_shards_in_fifo_order() {
        let (mut eps, probes) = endpoints(3, 8);
        let target = Target {
            node: NodeId(4),
            port: 1,
        };
        let e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        for t in [5, 7, 7, 9] {
            e0.txs[2]
                .try_send(ShardMsg::Event {
                    target,
                    time: t,
                    value: Logic::One,
                })
                .unwrap();
        }
        e1.txs[2]
            .try_send(ShardMsg::Null {
                target,
                time: NULL_TS,
            })
            .unwrap();
        assert_eq!(probes[2].len(), 5);
        let times: Vec<Timestamp> = (0..4)
            .map(|_| match e2.rx.try_recv().unwrap() {
                ShardMsg::Event { time, .. } => time,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(times, vec![5, 7, 7, 9]);
        assert!(matches!(
            e2.rx.try_recv(),
            Ok(ShardMsg::Null { time: NULL_TS, .. })
        ));
        assert_eq!(probes[0].len(), 0);
    }

    #[test]
    fn capacity_exerts_backpressure() {
        let (eps, _probes) = endpoints(2, 2);
        let target = Target {
            node: NodeId(0),
            port: 0,
        };
        let msg = ShardMsg::Null { target, time: 3 };
        eps[0].txs[1].try_send(msg).unwrap();
        eps[0].txs[1].try_send(msg).unwrap();
        assert!(eps[0].txs[1].try_send(msg).is_err());
    }

    #[test]
    fn cut_edges_partition_the_cut() {
        for k in [2, 4] {
            let c = kogge_stone_adder(16);
            let p = Partition::build(&c, k, PartitionStrategy::GreedyCut);
            let total: usize = (0..k)
                .map(|s| outgoing_cut_edges(&c, &p, s).len())
                .sum();
            assert_eq!(total, p.metrics(&c).cut_edges);
            for s in 0..k {
                for e in outgoing_cut_edges(&c, &p, s) {
                    assert_eq!(p.shard_of(e.src), s);
                    assert_ne!(p.shard_of(e.target.node), s);
                }
            }
        }
    }

    #[test]
    fn single_shard_has_no_cut_edges() {
        let c = c17();
        let p = Partition::build(&c, 1, PartitionStrategy::RoundRobin);
        assert!(outgoing_cut_edges(&c, &p, 0).is_empty());
        assert!(incoming_cut_edges(&c, &p, 0).is_empty());
    }

    #[test]
    fn incoming_cut_edges_mirror_outgoing() {
        let c = kogge_stone_adder(16);
        let k = 4;
        let p = Partition::build(&c, k, PartitionStrategy::GreedyCut);
        let mut out: Vec<(ShardId, ShardId, Target)> = Vec::new();
        for s in 0..k {
            for e in outgoing_cut_edges(&c, &p, s) {
                out.push((s, e.dst_shard, e.target));
            }
        }
        let mut inc: Vec<(ShardId, ShardId, Target)> = Vec::new();
        for s in 0..k {
            for (src, target) in incoming_cut_edges(&c, &p, s) {
                assert_ne!(src, s);
                assert_eq!(p.shard_of(target.node), s);
                inc.push((src, s, target));
            }
        }
        out.sort_by_key(|&(a, b, t)| (a, b, t.node.index(), t.port));
        inc.sort_by_key(|&(a, b, t)| (a, b, t.node.index(), t.port));
        assert_eq!(out, inc, "every outgoing cut edge is someone's incoming");
    }
}
