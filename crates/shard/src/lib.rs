//! Sharded-simulation support: netlist partitioning and cross-shard
//! messaging for the `ShardedEngine` in `des-core`.
//!
//! This crate is deliberately engine-agnostic. [`partition`] splits a
//! `Circuit` DAG into K shards under pluggable strategies and reports
//! partition-quality metrics; [`comm`] builds the bounded mailbox fabric
//! and defines the cross-shard message protocol (timestamped events plus
//! lookahead-based NULL messages). The per-shard Chandy–Misra cores and
//! the fault/watchdog plumbing live in `des::engine::sharded`, which
//! composes these two modules.

pub mod comm;
pub mod partition;
pub mod rebalance;

pub use comm::{endpoints, outgoing_cut_edges, CutEdge, Endpoint, ShardMsg};
pub use partition::{Partition, PartitionMetrics, PartitionStrategy, ShardId};
pub use rebalance::{plan_rebalance, NodeMove, RebalancePlan, RebalancePolicy, ShardLoad};
