//! Counters, gauges, and log₂-bucketed histograms.
//!
//! Metric handles are `Option<Arc<...>>`: a handle from a disabled
//! recorder is `None`, so every hot-path operation on it is a single
//! branch — no atomic traffic, no allocation. Handles are fetched once
//! at engine setup and kept in worker state, never looked up per event.
//!
//! Histograms use HDR-style logarithmic buckets: bucket 0 holds exact
//! zeros and bucket `i` (1..=64) holds values in `[2^(i-1), 2^i - 1]`,
//! i.e. `index = 64 - value.leading_zeros()`. That gives full `u64`
//! range with 65 fixed slots and ≤2× relative error, which is plenty
//! for latency/depth distributions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: one for zero plus one per bit width.
pub const NUM_BUCKETS: usize = 65;

/// Well-known metric name: live events in an execution context's event
/// arena (gauge, labelled by thread). One slab per shard/actor/component
/// — the fleet-wide sum is the in-flight event population.
pub const ARENA_LIVE: &str = "sim_arena_live";

/// Well-known metric name: high-water arena occupancy (gauge). The
/// working-set size `EngineConfig::with_arena` should pre-size to.
pub const ARENA_HIGH_WATER: &str = "sim_arena_high_water";

/// Well-known metric name: ready-batch size per node wakeup (histogram).
/// Batched delivery drains whole batches into a reusable scratch buffer;
/// this distribution shows how many events each wakeup amortizes over.
pub const DRAIN_BATCH_EVENTS: &str = "sim_drain_batch_events";

/// Bucket index for a value (log₂ rule; see the module docs).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `index`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that drops every update (disabled recorder).
    pub const fn off() -> Counter {
        Counter(None)
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that drops every update (disabled recorder).
    pub const fn off() -> Gauge {
        Gauge(None)
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the value to at least `v`.
    #[inline]
    pub fn set_max(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Shared storage of one histogram.
#[derive(Debug)]
pub struct HistogramCore {
    pub(crate) buckets: [AtomicU64; NUM_BUCKETS],
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: [(); NUM_BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that drops every sample (disabled recorder).
    pub const fn off() -> Histogram {
        Histogram(None)
    }

    /// Record one sample: three relaxed atomic adds, no allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(value, Ordering::Relaxed);
            core.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether this handle feeds a live histogram.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Copy out the current distribution (empty snapshot when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let Some(core) = &self.0 else {
            return HistogramSnapshot::default();
        };
        let buckets: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            sum: core.sum.load(Ordering::Relaxed),
            count: core.count.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of a histogram's distribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sum of all recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
    /// Raw per-bucket counts, indexed like [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing quantile `q` (0.0..=1.0).
    /// Resolution is the bucket width, i.e. within 2× of the true value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// `(upper_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_follow_powers_of_two() {
        // Zero gets its own bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_upper_bound(0), 0);
        // 1 is the sole occupant of bucket 1.
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_upper_bound(1), 1);
        // Each power of two opens a new bucket; its predecessor closes one.
        for bit in 1..64 {
            let p: u64 = 1 << bit;
            assert_eq!(bucket_index(p), bit + 1, "2^{bit} opens bucket {}", bit + 1);
            assert_eq!(bucket_index(p - 1), bit, "2^{bit}-1 closes bucket {bit}");
            assert_eq!(bucket_upper_bound(bit), p - 1);
        }
        // Max value lands in the last bucket, whose bound is saturated.
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        assert_eq!(bucket_upper_bound(200), u64::MAX);
    }

    #[test]
    fn histogram_records_across_edges() {
        let h = Histogram(Some(Arc::new(HistogramCore::default())));
        for v in [0, 0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 9);
        // 1+2+3+4+7+8 = 25; the u64::MAX sample wraps the sum (documented
        // fetch_add semantics — sums of ns-scale values never get close).
        assert_eq!(snap.sum, 25u64.wrapping_add(u64::MAX));
        assert_eq!(snap.buckets[0], 2); // the zeros
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[3], 2); // 4, 7
        assert_eq!(snap.buckets[4], 1); // 8
        assert_eq!(snap.buckets[64], 1); // u64::MAX
        assert_eq!(
            snap.nonzero_buckets(),
            vec![(0, 2), (1, 1), (3, 2), (7, 2), (15, 1), (u64::MAX, 1)]
        );
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let h = Histogram(Some(Arc::new(HistogramCore::default())));
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), 1); // rank clamps to the first sample
        assert_eq!(snap.quantile(0.5), 63); // rank 50 falls in [32,63]
        assert_eq!(snap.quantile(1.0), 127); // rank 100 falls in [64,127]
        assert_eq!(snap.mean(), 5050 / 100);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::off();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::off();
        g.set(5);
        g.set_max(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::off();
        h.record(42);
        assert!(!h.is_enabled());
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        assert_eq!(h.snapshot().quantile(0.5), 0);
    }
}
