//! Chrome/Perfetto trace-event JSON export.
//!
//! Emits the classic trace-event format (the JSON flavor both
//! `chrome://tracing` and `ui.perfetto.dev` ingest): an object with a
//! `traceEvents` array where every event carries `name`, `ph`, `ts`
//! (microseconds, fractional), `pid`, and `tid`. Span begins/ends map
//! to `"B"`/`"E"`, complete spans to `"X"` with a `dur` (so every
//! exported span carries its duration and cross-thread critical paths
//! can be read straight off the track), instants to `"i"` with thread
//! scope, and each registered thread contributes a `thread_name`
//! metadata event so the UI labels its track.

use std::fmt::Write as _;

use crate::json::escape;
use crate::ring::{Phase, ThreadTraceDump};

fn push_event(out: &mut String, first: &mut bool, text: &str) {
    if !std::mem::take(first) {
        out.push(',');
    }
    out.push_str(text);
}

/// Append one process track (`process_name` metadata, per-thread
/// `thread_name` metadata, and every record) to an open `traceEvents`
/// array. Shared between the single-process export and the fleet
/// merge, which renders each rank as its own `pid`.
pub(crate) fn render_process(
    out: &mut String,
    first: &mut bool,
    pid: u32,
    process_name: &str,
    threads: &[ThreadTraceDump],
) {
    push_event(
        out,
        first,
        &format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(process_name)
        ),
    );

    for dump in threads {
        push_event(
            out,
            first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                dump.tid,
                escape(&dump.thread)
            ),
        );
        for rec in &dump.records {
            let name = rec
                .span_kind()
                .map(|k| k.label())
                // Torn byte from a racing writer: keep the event, mark it.
                .unwrap_or("torn_record");
            let ts_us = rec.ts_ns as f64 / 1000.0;
            let phase = Phase::from_u8(rec.phase);
            let mut ev = String::with_capacity(96);
            let _ = write!(
                ev,
                "{{\"name\":\"{name}\",\"ph\":\"{}\",\"ts\":{ts_us:.3},\
                 \"pid\":{pid},\"tid\":{}",
                match phase {
                    Phase::Begin => "B",
                    Phase::End => "E",
                    Phase::Complete => "X",
                    Phase::Instant => "i",
                },
                dump.tid
            );
            match phase {
                Phase::Instant => ev.push_str(",\"s\":\"t\""),
                Phase::Complete => {
                    let _ = write!(ev, ",\"dur\":{:.3}", rec.dur_ns as f64 / 1000.0);
                }
                _ => {}
            }
            let _ = write!(ev, ",\"args\":{{\"a\":{},\"b\":{}}}}}", rec.a, rec.b);
            push_event(out, first, &ev);
        }
    }
}

/// Render thread dumps as a complete trace-event JSON document.
pub fn trace_json(process_name: &str, threads: &[ThreadTraceDump]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    render_process(&mut out, &mut first, 1, process_name, threads);
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::ring::{SpanKind, TraceRecord};

    fn dump() -> ThreadTraceDump {
        ThreadTraceDump {
            thread: "shard-\"0\"".into(),
            tid: 1,
            pushed: 3,
            records: vec![
                TraceRecord {
                    ts_ns: 1500,
                    kind: SpanKind::NodeRun as u8,
                    phase: Phase::Begin as u8,
                    a: 7,
                    b: 0,
                    dur_ns: 0,
                },
                TraceRecord {
                    ts_ns: 2500,
                    kind: SpanKind::NodeRun as u8,
                    phase: Phase::End as u8,
                    a: 7,
                    b: 2,
                    dur_ns: 0,
                },
                TraceRecord {
                    ts_ns: 3000,
                    kind: SpanKind::NullSend as u8,
                    phase: Phase::Instant as u8,
                    a: 1,
                    b: 40,
                    dur_ns: 0,
                },
                TraceRecord {
                    ts_ns: 4000,
                    kind: SpanKind::NodeRun as u8,
                    phase: Phase::Complete as u8,
                    a: 9,
                    b: 3,
                    dur_ns: 2750,
                },
            ],
        }
    }

    #[test]
    fn export_parses_and_carries_required_fields() {
        let text = trace_json("des \"test\"", &[dump()]);
        let doc = parse(&text).expect("trace JSON must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 1 thread_name + 4 records.
        assert_eq!(events.len(), 6);
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "B" | "E" | "X" | "i" | "M"), "bad ph {ph}");
            assert!(ev.get("name").unwrap().as_str().is_some());
            assert!(ev.get("pid").unwrap().as_f64().is_some());
            assert!(ev.get("tid").unwrap().as_f64().is_some());
            if !matches!(ph, "M") {
                assert!(ev.get("ts").unwrap().as_f64().is_some());
            }
        }
        // Span timestamps are microseconds.
        let begin = &events[2];
        assert_eq!(begin.get("ph").unwrap().as_str(), Some("B"));
        assert!((begin.get("ts").unwrap().as_f64().unwrap() - 1.5).abs() < 1e-9);
        // The instant carries thread scope.
        let inst = &events[4];
        assert_eq!(inst.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(inst.get("args").unwrap().get("b").unwrap().as_f64(), Some(40.0));
        // The complete span carries its duration in microseconds.
        let complete = &events[5];
        assert_eq!(complete.get("ph").unwrap().as_str(), Some("X"));
        assert!((complete.get("dur").unwrap().as_f64().unwrap() - 2.75).abs() < 1e-9);
        assert!((complete.get("ts").unwrap().as_f64().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let text = trace_json("p", &[]);
        let doc = parse(&text).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 1);
    }
}
