//! Cross-thread span pairing and wall-time attribution.
//!
//! [`Phase::Complete`] records carry their duration in one record, but
//! a span that *crosses threads* — enqueued here, executed there —
//! cannot: the begin and the end are pushed by different threads into
//! different rings. This module stitches them back together. A
//! [`Phase::Begin`] record is matched with the earliest later
//! [`Phase::End`] record sharing the same `(kind, a)` identity,
//! regardless of which thread pushed either half, which is exactly the
//! shape the replication executor emits (Begin on the submitting
//! thread at enqueue, End on the stealing worker at completion).
//!
//! [`critical_path`] then folds paired and complete spans into a small
//! wall-time attribution report: per-thread busy time, utilisation
//! against the batch wall, and the longest individual spans — the
//! "where did the wall-clock go" question a replication batch asks.

use crate::ring::{Phase, SpanKind, ThreadTraceDump};

/// A Begin/End pair stitched across rings (possibly across threads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairedSpan {
    /// Span kind shared by both halves.
    pub kind: SpanKind,
    /// The `a` payload word both halves carried (the span identity —
    /// e.g. the replication task id).
    pub id: u64,
    /// The `b` payload word of the *End* record (kind-specific; the
    /// replication executor stores the executing worker index).
    pub b: u64,
    /// Thread that pushed the Begin.
    pub begin_thread: String,
    /// Thread that pushed the End.
    pub end_thread: String,
    /// Begin timestamp (ns since the recorder was created).
    pub start_ns: u64,
    /// End timestamp (ns since the recorder was created).
    pub end_ns: u64,
}

impl PairedSpan {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Pair every [`Phase::Begin`] record with the earliest later
/// [`Phase::End`] record of the same `(kind, a)` identity, searching
/// across all dumped rings. Unmatched halves (ring overwrote the
/// partner, or the span is still open) are dropped. Output is sorted
/// by start time.
pub fn pair_spans(dumps: &[ThreadTraceDump]) -> Vec<PairedSpan> {
    // (kind, id) -> time-sorted queues of unmatched halves.
    let mut begins: Vec<(u8, u64, u64, usize)> = Vec::new(); // kind, id, ts, thread ix
    let mut ends: Vec<(u8, u64, u64, u64, usize)> = Vec::new(); // kind, id, ts, b, thread ix
    for (tix, dump) in dumps.iter().enumerate() {
        for rec in &dump.records {
            match Phase::from_u8(rec.phase) {
                Phase::Begin => begins.push((rec.kind, rec.a, rec.ts_ns, tix)),
                Phase::End => ends.push((rec.kind, rec.a, rec.ts_ns, rec.b, tix)),
                _ => {}
            }
        }
    }
    begins.sort_by_key(|&(k, id, ts, _)| (k, id, ts));
    ends.sort_by_key(|&(k, id, ts, _, _)| (k, id, ts));

    let mut out = Vec::new();
    let mut bi = 0;
    for &(kind, id, end_ts, b, end_tix) in &ends {
        // Advance to the begin group for this (kind, id).
        while bi < begins.len() && (begins[bi].0, begins[bi].1) < (kind, id) {
            bi += 1;
        }
        // Earliest unconsumed begin of the same identity at or before
        // the end; FIFO within an identity (re-used ids pair in order).
        if bi < begins.len() {
            let (bk, bid, bts, btix) = begins[bi];
            if bk == kind && bid == id && bts <= end_ts {
                if let Some(k) = SpanKind::from_u8(kind) {
                    out.push(PairedSpan {
                        kind: k,
                        id,
                        b,
                        begin_thread: dumps[btix].thread.clone(),
                        end_thread: dumps[end_tix].thread.clone(),
                        start_ns: bts,
                        end_ns: end_ts,
                    });
                }
                bi += 1;
            }
        }
    }
    out.sort_by_key(|s| (s.start_ns, s.end_ns));
    out
}

/// Busy time one thread contributed to a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadBusy {
    /// Thread name as registered with the recorder.
    pub thread: String,
    /// Sum of span durations attributed to this thread (complete spans
    /// it pushed, plus paired spans whose End it pushed). Spans are
    /// summed as-is — overlapping spans on one thread double-count, so
    /// treat this as attribution, not exact occupancy.
    pub busy_ns: u64,
    /// Number of spans attributed.
    pub spans: u64,
}

/// The wall-time attribution [`critical_path`] computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPathReport {
    /// Wall span covered by the trace: latest end minus earliest start.
    pub wall_ns: u64,
    /// Per-thread busy time, sorted descending (the top entry is the
    /// critical — most loaded — thread).
    pub per_thread: Vec<ThreadBusy>,
    /// The longest individual spans, longest first (at most 5), as
    /// `(kind label, id, duration ns)`.
    pub longest: Vec<(&'static str, u64, u64)>,
}

impl CriticalPathReport {
    /// Busy time of the most loaded thread (0 when no spans).
    pub fn critical_busy_ns(&self) -> u64 {
        self.per_thread.first().map(|t| t.busy_ns).unwrap_or(0)
    }

    /// `critical thread busy / wall` in percent — how close the batch
    /// is to being bound by its busiest thread.
    pub fn critical_utilisation(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.critical_busy_ns() as f64 * 100.0 / self.wall_ns as f64
    }

    /// Render as a small fixed-width table for run reports.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "critical path: wall {:.3} ms, busiest thread {:.1}% of wall\n",
            self.wall_ns as f64 / 1e6,
            self.critical_utilisation()
        ));
        for t in &self.per_thread {
            s.push_str(&format!(
                "  {:<18} busy {:>10.3} ms  spans {:>6}\n",
                t.thread,
                t.busy_ns as f64 / 1e6,
                t.spans
            ));
        }
        for (label, id, dur) in &self.longest {
            s.push_str(&format!(
                "  longest: {label}[{id}] {:.3} ms\n",
                *dur as f64 / 1e6
            ));
        }
        s
    }
}

/// Fold a trace dump into a [`CriticalPathReport`]: pair cross-thread
/// Begin/End spans, add same-record [`Phase::Complete`] spans, and
/// attribute each span's duration to the thread that *finished* it.
pub fn critical_path(dumps: &[ThreadTraceDump]) -> CriticalPathReport {
    let mut min_start = u64::MAX;
    let mut max_end = 0u64;
    // thread -> (busy, spans)
    let mut busy: Vec<(String, u64, u64)> = Vec::new();
    let mut longest: Vec<(&'static str, u64, u64)> = Vec::new();

    let mut account = |thread: &str, start: u64, end: u64, kind: SpanKind, id: u64| {
        min_start = min_start.min(start);
        max_end = max_end.max(end);
        let dur = end.saturating_sub(start);
        match busy.iter_mut().find(|(t, _, _)| t == thread) {
            Some((_, b, n)) => {
                *b += dur;
                *n += 1;
            }
            None => busy.push((thread.to_string(), dur, 1)),
        }
        longest.push((kind.label(), id, dur));
    };

    for span in pair_spans(dumps) {
        account(&span.end_thread, span.start_ns, span.end_ns, span.kind, span.id);
    }
    for dump in dumps {
        for rec in &dump.records {
            if Phase::from_u8(rec.phase) == Phase::Complete {
                if let Some(kind) = SpanKind::from_u8(rec.kind) {
                    account(&dump.thread, rec.ts_ns, rec.ts_ns + rec.dur_ns, kind, rec.a);
                }
            }
        }
    }

    longest.sort_by(|a, b| b.2.cmp(&a.2).then(a.1.cmp(&b.1)));
    longest.truncate(5);
    let mut per_thread: Vec<ThreadBusy> = busy
        .into_iter()
        .map(|(thread, busy_ns, spans)| ThreadBusy { thread, busy_ns, spans })
        .collect();
    per_thread.sort_by(|a, b| b.busy_ns.cmp(&a.busy_ns).then(a.thread.cmp(&b.thread)));
    CriticalPathReport {
        wall_ns: if min_start == u64::MAX { 0 } else { max_end - min_start },
        per_thread,
        longest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::TraceRecord;

    fn rec(ts: u64, kind: SpanKind, phase: Phase, a: u64, b: u64, dur: u64) -> TraceRecord {
        TraceRecord { ts_ns: ts, kind: kind as u8, phase: phase as u8, a, b, dur_ns: dur }
    }

    fn dump(name: &str, tid: u32, records: Vec<TraceRecord>) -> ThreadTraceDump {
        ThreadTraceDump { thread: name.into(), tid, pushed: records.len() as u64, records }
    }

    #[test]
    fn pairs_begin_and_end_across_threads() {
        let dumps = vec![
            dump("submitter", 1, vec![
                rec(100, SpanKind::RunExec, Phase::Begin, 7, 0, 0),
                rec(110, SpanKind::RunExec, Phase::Begin, 8, 0, 0),
            ]),
            dump("worker-0", 2, vec![rec(500, SpanKind::RunExec, Phase::End, 7, 0, 0)]),
            dump("worker-1", 3, vec![rec(460, SpanKind::RunExec, Phase::End, 8, 1, 0)]),
        ];
        let spans = pair_spans(&dumps);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, 7);
        assert_eq!(spans[0].begin_thread, "submitter");
        assert_eq!(spans[0].end_thread, "worker-0");
        assert_eq!(spans[0].dur_ns(), 400);
        assert_eq!(spans[1].id, 8);
        assert_eq!(spans[1].end_thread, "worker-1");
        assert_eq!(spans[1].b, 1);
        assert_eq!(spans[1].dur_ns(), 350);
    }

    #[test]
    fn reused_ids_pair_in_fifo_order() {
        let dumps = vec![dump("t", 1, vec![
            rec(10, SpanKind::NodeRun, Phase::Begin, 1, 0, 0),
            rec(20, SpanKind::NodeRun, Phase::End, 1, 0, 0),
            rec(30, SpanKind::NodeRun, Phase::Begin, 1, 0, 0),
            rec(45, SpanKind::NodeRun, Phase::End, 1, 0, 0),
        ])];
        let spans = pair_spans(&dumps);
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].start_ns, spans[0].end_ns), (10, 20));
        assert_eq!((spans[1].start_ns, spans[1].end_ns), (30, 45));
    }

    #[test]
    fn unmatched_halves_are_dropped() {
        let dumps = vec![dump("t", 1, vec![
            rec(10, SpanKind::RunExec, Phase::Begin, 1, 0, 0), // never ends
            rec(20, SpanKind::RunExec, Phase::End, 99, 0, 0),  // begin was overwritten
        ])];
        assert!(pair_spans(&dumps).is_empty());
    }

    #[test]
    fn end_before_begin_does_not_pair() {
        let dumps = vec![dump("t", 1, vec![
            rec(50, SpanKind::RunExec, Phase::Begin, 1, 0, 0),
            rec(10, SpanKind::RunExec, Phase::End, 1, 0, 0),
        ])];
        assert!(pair_spans(&dumps).is_empty());
    }

    #[test]
    fn critical_path_attributes_busy_to_finishing_thread() {
        let dumps = vec![
            dump("submitter", 1, vec![
                rec(0, SpanKind::RunExec, Phase::Begin, 1, 0, 0),
                rec(5, SpanKind::RunExec, Phase::Begin, 2, 0, 0),
            ]),
            dump("worker-0", 2, vec![
                rec(100, SpanKind::RunExec, Phase::End, 1, 0, 0),
                rec(140, SpanKind::NodeRun, Phase::Complete, 9, 0, 30),
            ]),
            dump("worker-1", 3, vec![rec(55, SpanKind::RunExec, Phase::End, 2, 1, 0)]),
        ];
        let report = critical_path(&dumps);
        assert_eq!(report.wall_ns, 170);
        assert_eq!(report.per_thread.len(), 2);
        assert_eq!(report.per_thread[0].thread, "worker-0");
        assert_eq!(report.per_thread[0].busy_ns, 130); // 100 paired + 30 complete
        assert_eq!(report.per_thread[0].spans, 2);
        assert_eq!(report.per_thread[1].busy_ns, 50);
        assert_eq!(report.longest[0], ("run_exec", 1, 100));
        assert!(report.critical_utilisation() > 70.0);
        assert!(!report.render().is_empty());
    }

    #[test]
    fn empty_dump_yields_empty_report() {
        let report = critical_path(&[]);
        assert_eq!(report.wall_ns, 0);
        assert!(report.per_thread.is_empty());
        assert_eq!(report.critical_utilisation(), 0.0);
    }
}
